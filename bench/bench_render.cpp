// Render hot-path benchmark: three generations of the same frame on a
// fully-resident 3d_ball volume and camera —
//
//   reference  scalar path (per-sample std::function dispatch, piecewise-
//              linear TF scan, pow opacity correction)
//   dda+lut    block-coherent fast path (3D-DDA brick traversal, transfer-
//              function LUT, raw-pointer trilinear sampling)
//   packet     SIMD ray packets (8 lanes through the same DDA segments,
//              vectorized trilinear fetch + LUT lookup + compositing)
//
// plus an adaptive-sampling sweep: the packet path with an importance mask
// (entropy threshold keeping the top `fraction` of blocks at full rate,
// everything else at stride 2 or 4) across fraction x stride combinations,
// reporting the extra ns/sample reduction and the image deviation each
// combination buys.
//
// Writes BENCH_render.json (override with json=path) with ns/sample and
// frames/s for every path plus the speedups, so the render perf trajectory
// is machine-readable from this PR onward.
//
// Extra key=value knobs: width/height (default 256), blocks (target block
// count, default 512), step (ray step, default 0.005), json=path.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/importance.hpp"
#include "render/brick_sampler.hpp"
#include "render/raycaster.hpp"

using namespace vizcache;
using namespace vizcache::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PathTiming {
  double frame_ms = 0.0;
  double fps = 0.0;
  double ns_per_sample = 0.0;
  RaycastStats stats;
};

PathTiming time_path(usize frames, const std::function<Image(RaycastStats&)>& frame) {
  PathTiming t;
  RaycastStats warm;
  frame(warm);  // warm-up: page in payloads, settle caches
  double start = now_ms();
  for (usize i = 0; i < frames; ++i) {
    t.stats = RaycastStats{};
    frame(t.stats);
  }
  double total = now_ms() - start;
  t.frame_ms = total / static_cast<double>(frames);
  t.fps = t.frame_ms > 0.0 ? 1000.0 / t.frame_ms : 0.0;
  t.ns_per_sample = t.stats.samples
                        ? t.frame_ms * 1e6 / static_cast<double>(t.stats.samples)
                        : 0.0;
  return t;
}

double max_channel_diff(const Image& a, const Image& b) {
  double worst = 0.0;
  for (usize y = 0; y < a.height(); ++y) {
    for (usize x = 0; x < a.width(); ++x) {
      const Rgba& pa = a.at(x, y);
      const Rgba& pb = b.at(x, y);
      worst = std::max({worst, std::abs(static_cast<double>(pa.r - pb.r)),
                        std::abs(static_cast<double>(pa.g - pb.g)),
                        std::abs(static_cast<double>(pa.b - pb.b)),
                        std::abs(static_cast<double>(pa.a - pb.a))});
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("render", argc, argv);
  env.banner(
      "render hot path: SIMD packets vs block-coherent DDA+LUT vs scalar "
      "reference, plus importance-masked adaptive sampling "
      "(fully resident 3d_ball)");

  const usize width = static_cast<usize>(env.cfg.get_int("width", 256));
  const usize height = static_cast<usize>(env.cfg.get_int("height", 256));
  const usize target_blocks =
      static_cast<usize>(env.cfg.get_int("blocks", 512));

  SyntheticVolume volume = make_dataset(DatasetId::kBall3d, env.scale);
  BlockGrid grid =
      BlockGrid::with_target_block_count(volume.desc.dims, target_blocks);
  SyntheticBlockStore store(std::move(volume), grid.block_dims());
  ResidentBrickSet bricks(store.grid());
  bricks.load_all(store);

  RaycastParams params;
  params.image_width = width;
  params.image_height = height;
  params.step_size = env.cfg.get_double("step", 0.005);

  const Camera camera({2.2, 1.1, 0.8}, 40.0);
  const TransferFunction tf = TransferFunction::fire();
  const TransferFunctionLUT lut(tf, params.step_size);
  const VolumeSampler reference = make_reference_sampler(bricks);
  ThreadPool pool;  // hardware concurrency; 1 worker degrades to serial

  const usize fast_frames = env.quick ? 3 : 8;
  const usize ref_frames = env.quick ? 1 : 3;

  Image fast_image(1, 1);
  PathTiming fast = time_path(fast_frames, [&](RaycastStats& rs) {
    Image img = raycast(camera, bricks, lut, params, &pool, &rs);
    fast_image = img;
    return img;
  });
  Image packet_image(1, 1);
  PathTiming packet = time_path(fast_frames, [&](RaycastStats& rs) {
    Image img = raycast_packet(camera, bricks, lut, params, &pool, &rs);
    packet_image = img;
    return img;
  });
  Image ref_image(1, 1);
  PathTiming ref = time_path(ref_frames, [&](RaycastStats& rs) {
    Image img = raycast(camera, reference, tf, params, &pool, &rs);
    ref_image = img;
    return img;
  });

  // Adaptive sweep: entropy importance keeps the top `fraction` of blocks
  // at full rate, the rest samples at `stride` with the exact opacity
  // rescale. Deviation is measured against the full-rate packet image.
  struct AdaptiveRun {
    std::string key;
    double fraction;
    u8 stride;
    PathTiming timing;
    double diff_vs_full = 0.0;
  };
  const ImportanceTable importance = ImportanceTable::build(store, 256, 0, 0,
                                                            &pool);
  std::vector<AdaptiveRun> adaptive;
  for (double fraction : {0.5, 0.25}) {
    for (u8 stride : {u8{2}, u8{4}}) {
      AdaptiveRun run;
      run.key = "f" + std::to_string(static_cast<int>(fraction * 100)) +
                "_s" + std::to_string(int{stride});
      run.fraction = fraction;
      run.stride = stride;
      const SamplingMask mask = make_sampling_mask(
          importance, importance.threshold_for_fraction(fraction), stride);
      Image img(1, 1);
      run.timing = time_path(fast_frames, [&](RaycastStats& rs) {
        Image frame =
            raycast_packet(camera, bricks, lut, params, &pool, &rs, &mask);
        img = frame;
        return frame;
      });
      run.diff_vs_full = max_channel_diff(img, packet_image);
      adaptive.push_back(std::move(run));
    }
  }

  const double speedup = fast.frame_ms > 0.0 ? ref.frame_ms / fast.frame_ms : 0.0;
  const double sample_speedup =
      fast.ns_per_sample > 0.0 ? ref.ns_per_sample / fast.ns_per_sample : 0.0;
  const double packet_speedup =
      packet.frame_ms > 0.0 ? fast.frame_ms / packet.frame_ms : 0.0;
  const double packet_sample_speedup =
      packet.ns_per_sample > 0.0 ? fast.ns_per_sample / packet.ns_per_sample
                                 : 0.0;
  const double diff = max_channel_diff(fast_image, ref_image);
  const double packet_diff = max_channel_diff(packet_image, ref_image);

  TablePrinter table({"path", "frame(ms)", "frames/s", "ns/sample", "samples",
                      "rays", "composited"});
  auto row = [&](const std::string& name, const PathTiming& t) {
    table.row({name, TablePrinter::fmt(t.frame_ms, 2),
               TablePrinter::fmt(t.fps, 2), TablePrinter::fmt(t.ns_per_sample, 2),
               std::to_string(t.stats.samples), std::to_string(t.stats.rays),
               std::to_string(t.stats.composited)});
  };
  row("reference", ref);
  row("dda+lut", fast);
  row("packet", packet);
  for (const AdaptiveRun& run : adaptive) {
    row("packet+" + run.key, run.timing);
  }
  table.print("render hot path — " + std::to_string(width) + "x" +
              std::to_string(height) + ", " +
              std::to_string(grid.block_count()) + " blocks, packet width " +
              std::to_string(raycast_packet_width()) +
              (raycast_packet_native() ? " (native)" : " (fallback)"));
  std::cout << "speedup dda+lut vs reference (frame time): "
            << TablePrinter::fmt(speedup, 2)
            << "x   (ns/sample): " << TablePrinter::fmt(sample_speedup, 2)
            << "x\n"
            << "speedup packet vs dda+lut (frame time): "
            << TablePrinter::fmt(packet_speedup, 2) << "x   (ns/sample): "
            << TablePrinter::fmt(packet_sample_speedup, 2) << "x\n"
            << "max channel diff vs reference: dda+lut " << diff
            << ", packet " << packet_diff
            << (std::max(diff, packet_diff) <= 0.05
                    ? "  [ok]"
                    : "  [WARN: paths diverge]")
            << "\n";
  for (const AdaptiveRun& run : adaptive) {
    std::cout << "adaptive " << run.key << ": "
              << TablePrinter::fmt(run.timing.ns_per_sample, 2)
              << " ns/sample, frame "
              << TablePrinter::fmt(run.timing.frame_ms, 2)
              << " ms, max diff vs full-rate packet "
              << TablePrinter::fmt(run.diff_vs_full, 4) << "\n";
  }
  std::cout << (speedup >= 3.0 ? "PASS" : "WARN")
            << ": fast path is " << TablePrinter::fmt(speedup, 2)
            << "x the reference (target >= 3x)\n"
            << (packet_speedup >= 2.0 ? "PASS" : "WARN")
            << ": packet path is " << TablePrinter::fmt(packet_speedup, 2)
            << "x the dda+lut path (target >= 2x)\n";

  JsonObject config;
  config.string("dataset", "3d_ball")
      .number("scale", env.scale)
      .integer("width", static_cast<i64>(width))
      .integer("height", static_cast<i64>(height))
      .integer("blocks", static_cast<i64>(grid.block_count()))
      .number("step_size", params.step_size)
      .integer("lut_resolution", static_cast<i64>(lut.resolution()))
      .integer("packet_width", static_cast<i64>(raycast_packet_width()))
      .boolean("packet_native", raycast_packet_native())
      .boolean("quick", env.quick);
  auto path_json = [](const PathTiming& t) {
    JsonObject o;
    o.number("frame_ms", t.frame_ms)
        .number("frames_per_s", t.fps)
        .number("ns_per_sample", t.ns_per_sample)
        .integer("rays", static_cast<i64>(t.stats.rays))
        .integer("samples", static_cast<i64>(t.stats.samples))
        .integer("composited", static_cast<i64>(t.stats.composited));
    return o;
  };
  // Adaptive runs nest as one keyed object per fraction x stride combo
  // ("f50_s2" = top 50% full rate, stride 2 elsewhere), each carrying the
  // usual path fields plus the combo knobs and the deviation from the
  // full-rate packet image.
  JsonObject adaptive_json;
  for (const AdaptiveRun& run : adaptive) {
    JsonObject o = path_json(run.timing);
    o.number("full_rate_fraction", run.fraction)
        .integer("coarse_stride", int{run.stride})
        .integer("skipped", static_cast<i64>(run.timing.stats.skipped))
        .number("max_channel_diff_vs_packet", run.diff_vs_full);
    adaptive_json.object(run.key, std::move(o));
  }
  JsonObject root;
  root.string("bench", "render")
      .object("config", std::move(config))
      .object("reference", path_json(ref))
      .object("dda_lut", path_json(fast))
      .object("packet", path_json(packet))
      .object("adaptive", std::move(adaptive_json))
      .number("speedup_frame_time", speedup)
      .number("speedup_ns_per_sample", sample_speedup)
      .number("packet_speedup_frame_time", packet_speedup)
      .number("packet_speedup_ns_per_sample", packet_sample_speedup)
      .number("max_channel_diff", diff)
      .number("packet_max_channel_diff", packet_diff);
  const std::string json_path = env.cfg.get_string("json", "BENCH_render.json");
  root.write(json_path);
  std::cout << "# json -> " << json_path << "\n";
  return 0;
}
