// Ablation A4 (ours): data-dependent operations. The paper motivates its
// policy with transfer-function / query retuning whose access patterns
// conventional caches cannot anticipate (Section III-B); this bench
// quantifies that: FIFO / LRU / OPT under (a) a static iso-surface query,
// (b) a schedule that retunes the query every K steps, and (c) no query
// (pure view-dependent), on the combustion stand-in.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_query", argc, argv);
  env.banner("Ablation: view-only vs static query vs retuned queries");

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kLiftedMixFrac;
  spec.scale = env.scale;
  spec.target_blocks = 512;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.path_step_deg = 7.5;
  Workbench wb(spec);

  CameraPath path = random_path(5.0, 10.0, env.positions, env.seed);

  // Retune schedule: alternate between the flame sheet and the core band
  // every `period` steps.
  auto retune_schedule = [&](usize period) {
    std::vector<QueryChange> changes;
    for (usize s = 0; s < env.positions; s += period) {
      bool sheet = (s / period) % 2 == 0;
      changes.push_back(
          {s, sheet ? RegionQuery::iso_surface(0, 0.5f, 0.08f)
                    : RegionQuery::range(0, 0.85f, 1.0f)});
    }
    return QuerySchedule(changes);
  };

  QuerySchedule static_iso({{0, RegionQuery::iso_surface(0, 0.5f, 0.08f)}});
  QuerySchedule retune_slow = retune_schedule(std::max<usize>(1, env.positions / 4));
  QuerySchedule retune_fast = retune_schedule(std::max<usize>(1, env.positions / 16));

  TablePrinter table({"workload", "method", "miss_rate", "io(s)", "total(s)"});
  CsvWriter csv(env.csv_path(),
                {"workload", "method", "miss_rate", "io_s", "total_s"});

  auto run_workload = [&](const std::string& name,
                          const QuerySchedule* sched) {
    struct Row {
      const char* method;
      RunResult result;
    };
    std::vector<Row> rows;
    rows.push_back({"FIFO", wb.run_baseline(PolicyKind::kFifo, path, sched)});
    rows.push_back({"LRU", wb.run_baseline(PolicyKind::kLru, path, sched)});
    rows.push_back({"OPT", wb.run_app_aware(path, sched)});
    for (const Row& r : rows) {
      table.row({name, r.method, TablePrinter::fmt(r.result.fast_miss_rate, 4),
                 TablePrinter::fmt(r.result.io_time, 3),
                 TablePrinter::fmt(r.result.total_time, 3)});
      csv.row({name, r.method, CsvWriter::to_cell(r.result.fast_miss_rate),
               CsvWriter::to_cell(r.result.io_time),
               CsvWriter::to_cell(r.result.total_time)});
    }
  };

  run_workload("view-only", nullptr);
  run_workload("static-iso", &static_iso);
  run_workload("retune-slow", &retune_slow);
  run_workload("retune-fast", &retune_fast);

  table.print("Ablation — data-dependent query workloads");
  std::cout << "(query retuning shifts the working set; OPT's preloaded "
               "important blocks keep serving because the flame sheet is "
               "exactly the high-entropy region)\n";
  return 0;
}
