// Ablation A7 (ours): the view-dependent multi-resolution (LOD) strategy
// the paper contrasts against (Section III-B). LOD cuts I/O by rendering
// far regions from coarse pyramid levels — but data-dependent operations
// need full resolution, which is the paper's whole motivation. This bench
// quantifies the trade: LOD-LRU at several aggressiveness settings vs
// full-resolution LRU vs the application-aware method, reporting both I/O
// cost and rendered fidelity.

#include <iostream>

#include "common.hpp"
#include "core/lod_pipeline.hpp"
#include "volume/generators.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_lod", argc, argv);
  env.banner("Ablation: LOD baseline vs full-resolution staging");

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = env.scale;
  spec.target_blocks = 512;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.path_step_deg = 5.0;
  Workbench wb(spec);

  // Matching pyramid built from the same dataset.
  Field3D level0 = rasterize(make_dataset(DatasetId::kBall3d, env.scale));
  MipPyramid pyramid =
      MipPyramid::build(std::move(level0), wb.grid().block_dims(), 4);

  CameraPath path = random_path(4.0, 6.0, env.positions, env.seed);

  TablePrinter table(
      {"method", "miss_rate", "io(s)", "total(s)", "fidelity"});
  CsvWriter csv(env.csv_path(),
                {"method", "miss_rate", "io_s", "total_s", "fidelity"});

  auto report = [&](const std::string& name, double miss, double io,
                    double total, double fidelity) {
    table.row({name, TablePrinter::fmt(miss, 4), TablePrinter::fmt(io, 3),
               TablePrinter::fmt(total, 3), TablePrinter::fmt(fidelity, 3)});
    csv.row({name, CsvWriter::to_cell(miss), CsvWriter::to_cell(io),
             CsvWriter::to_cell(total), CsvWriter::to_cell(fidelity)});
  };

  RunResult lru = wb.run_baseline(PolicyKind::kLru, path);
  report("LRU (full res)", lru.fast_miss_rate, lru.io_time, lru.total_time,
         1.0);
  RunResult opt = wb.run_app_aware(path);
  report("OPT (full res)", opt.fast_miss_rate, opt.io_time, opt.total_time,
         1.0);

  struct LodSetting {
    const char* name;
    LodSelector selector;
  };
  for (const LodSetting& s :
       {LodSetting{"LOD mild (base=3)", {3.0, 3}},
        LodSetting{"LOD medium (base=2)", {2.0, 3}},
        LodSetting{"LOD aggressive (base=1)", {1.0, 3}}}) {
    LodPipeline pipeline(pyramid, s.selector, PolicyKind::kLru, 0.5);
    LodRunResult r = pipeline.run(path);
    report(s.name, r.fast_miss_rate, r.io_time, r.total_time,
           r.mean_fidelity);
  }

  table.print("Ablation — LOD vs full-resolution staging");
  std::cout << "(LOD buys I/O with fidelity; OPT keeps fidelity at 1.0 and "
               "still undercuts full-res LRU via prediction + overlap — the "
               "paper's data-dependent argument in numbers)\n";
  return 0;
}
