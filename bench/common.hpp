#pragma once

#include <string>

#include "core/workbench.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"

namespace vizcache::bench {

/// Shared bench-binary environment. Every binary accepts `key=value`
/// overrides:
///   scale=0.1        dataset resolution relative to Table I
///   positions=400    camera-path length (the paper uses 400)
///   seed=42          random-path seed
///   quick=1          ~4x cheaper sweep for smoke runs
///   csv=path.csv     output CSV location (default: bench_<name>.csv)
struct BenchEnv {
  Config cfg;
  std::string name;
  double scale = 0.1;
  usize positions = 400;
  u64 seed = 42;
  bool quick = false;

  static BenchEnv parse(const std::string& name, int argc, const char* const* argv);

  std::string csv_path() const;

  /// Print the run banner (binary, parameters, seed) so every reported row
  /// is reproducible.
  void banner(const std::string& what) const;
};

/// Random-path helper matching the paper's "random path with view-direction
/// changes between lo-hi degrees".
CameraPath random_path(double lo_deg, double hi_deg, usize positions, u64 seed);

/// Spherical-path helper for "spherical path with X-degree intervals".
CameraPath spherical_path(double step_deg, usize positions);

/// Formats "lo-hi" (e.g. "10-15") degree-range labels.
std::string degree_range_label(double lo, double hi);

}  // namespace vizcache::bench
