#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/workbench.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"
#include "util/step_timeline.hpp"
#include "util/table_printer.hpp"

namespace vizcache::bench {

/// Minimal insertion-ordered JSON emitter for the machine-readable
/// `BENCH_*.json` perf-trajectory files. Covers exactly what the bench
/// binaries need — flat or nested objects of numbers/strings/bools — so the
/// repo does not grow a JSON-library dependency. Keys keep insertion order
/// so diffs between runs stay line-stable.
class JsonObject {
 public:
  JsonObject();
  ~JsonObject();
  JsonObject(JsonObject&&) noexcept;
  JsonObject& operator=(JsonObject&&) noexcept;
  JsonObject(const JsonObject&) = delete;
  JsonObject& operator=(const JsonObject&) = delete;

  JsonObject& number(const std::string& key, double value);
  JsonObject& integer(const std::string& key, i64 value);
  JsonObject& boolean(const std::string& key, bool value);
  JsonObject& string(const std::string& key, const std::string& value);
  JsonObject& object(const std::string& key, JsonObject value);

  /// Pretty-printed JSON text (2-space indent), no trailing newline.
  std::string to_string() const;

  /// Writes to_string() + '\n' to `path`; throws IoError on failure.
  void write(const std::string& path) const;

 private:
  struct Entry;
  std::string render(usize depth) const;
  std::vector<Entry> entries_;
};

/// Shared bench-binary environment. Every binary accepts `key=value`
/// overrides:
///   scale=0.1        dataset resolution relative to Table I
///   positions=400    camera-path length (the paper uses 400)
///   seed=42          random-path seed
///   quick=1          ~4x cheaper sweep for smoke runs
///   csv=path.csv     output CSV location (default: bench_<name>.csv)
struct BenchEnv {
  Config cfg;
  std::string name;
  double scale = 0.1;
  usize positions = 400;
  u64 seed = 42;
  bool quick = false;

  static BenchEnv parse(const std::string& name, int argc, const char* const* argv);

  std::string csv_path() const;

  /// Print the run banner (binary, parameters, seed) so every reported row
  /// is reproducible.
  void banner(const std::string& what) const;
};

/// A registry snapshot as a nested JsonObject: {"counters": {...},
/// "gauges": {...}, "histograms": {name: {count, sum, min, max,
/// "buckets": {"le_<bound>": n, ..., "le_inf": n}}}}. Names are already
/// sorted in the snapshot, so output is diff-stable.
JsonObject metrics_snapshot_json(const MetricsSnapshot& snapshot);

/// Write a run's observability artifacts: `<stem>.trace.json` (Chrome
/// trace-event JSON, load via chrome://tracing or ui.perfetto.dev) and
/// `<stem>.metrics.json` (metrics_snapshot_json). Prints where they landed.
void write_observability(const std::string& stem, const StepTimeline& timeline,
                         const MetricsSnapshot& snapshot);

/// Random-path helper matching the paper's "random path with view-direction
/// changes between lo-hi degrees".
CameraPath random_path(double lo_deg, double hi_deg, usize positions, u64 seed);

/// Spherical-path helper for "spherical path with X-degree intervals".
CameraPath spherical_path(double step_deg, usize positions);

/// Formats "lo-hi" (e.g. "10-15") degree-range labels.
std::string degree_range_label(double lo, double hi);

}  // namespace vizcache::bench
