// Networked serving benchmark: a NetServer in front of one BlockService,
// driven over real loopback TCP by a fleet of blocking NetClients. The fleet
// holds hundreds of connections open simultaneously (each with a live
// session) while a pool of driver threads round-robins STEP and FETCH
// requests through them — so "concurrent connections" is the size of the
// fleet, not the number of in-flight requests.
//
// Between serving rounds a hostile interlude runs connection churn (clean
// and abrupt disconnects), malformed-frame clients, and a slow client that
// stops reading until backpressure drops it. The server must come out of the
// interlude still serving the whole fleet, with every hostile session
// reaped.
//
// Reports sustained req/s, wall-clock p50/p99 step latency, coalesced
// traffic, and the scenario counters. Writes BENCH_net.json (override with
// json=path) plus bench_net.{trace,metrics}.json observability artifacts.
//
// Extra key=value knobs:
//   conns=1024     fleet size (quick: 520)
//   rounds=4       serving rounds over the fleet (quick: 2)
//   drivers=16     driver threads multiplexing the fleet
//   pace_ms=1      wall-clock width of a leader's in-flight window
//   json=path      output location (default BENCH_net.json)

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "common.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "service/block_service.hpp"
#include "util/error.hpp"

using namespace vizcache;
using namespace vizcache::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const usize lo = static_cast<usize>(rank);
  const usize hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

/// One fleet connection plus what portion of the shared path it has walked.
struct Viewer {
  NetClient client;
  usize next_step = 0;
};

/// Raise RLIMIT_NOFILE so the fleet + server fds fit. Best effort: if the
/// hard limit is lower than we want, take the hard limit.
void raise_fd_limit(usize want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  const rlim_t target =
      std::min<rlim_t>(lim.rlim_max, static_cast<rlim_t>(want));
  if (lim.rlim_cur < target) {
    lim.rlim_cur = target;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("net", argc, argv);
  env.banner("networked serving front-end: fleet + hostile interlude");

  const usize conns =
      static_cast<usize>(env.cfg.get_int("conns", env.quick ? 520 : 1024));
  const usize rounds =
      static_cast<usize>(env.cfg.get_int("rounds", env.quick ? 2 : 4));
  const usize drivers =
      static_cast<usize>(env.cfg.get_int("drivers", 16));
  const double pace_ms = env.cfg.get_double("pace_ms", 1.0);
  raise_fd_limit(2 * conns + 256);

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = env.quick ? 0.08 : env.scale;
  spec.target_blocks = 256;
  spec.omega = {8, 16, 3, 2.5, 3.5};
  Workbench bench(spec);
  const BlockGrid* grid = &bench.grid();

  ServiceConfig cfg;
  cfg.max_sessions = conns + 64;  // fleet + hostile-interlude headroom
  cfg.app_aware = true;
  cfg.sigma_bits = bench.sigma_bits();
  cfg.render_model = spec.render_model;
  cfg.lookup_cost = spec.lookup_cost;
  cfg.leader_pace_seconds = pace_ms * 1e-3;
  BlockService svc(
      *grid,
      MemoryHierarchy::paper_testbed(
          bench.dataset_bytes(), spec.cache_ratio, PolicyKind::kLru,
          [grid](BlockId id) { return grid->block_bytes(id); }),
      cfg, &bench.table(), &bench.importance());

  NetServerConfig net_cfg;
  net_cfg.workers = 4;
  net_cfg.max_connections = conns + 64;
  net_cfg.max_write_queue_bytes = 128 * 1024;  // a few block replies deep
  net_cfg.write_stall_timeout_ms = 200;
  net_cfg.so_sndbuf_bytes = 4 * 1024;
  NetServer server(svc, net_cfg);
  server.start();

  // Every viewer walks the SAME seeded path: during the cold first round the
  // fleet's misses pile onto the same blocks, which is what makes the
  // coalescer's wire-visible traffic non-zero.
  const usize path_len = rounds + 1;
  const CameraPath path = random_path(4.0, 6.0, path_len, env.seed);

  // ---- fleet setup: `conns` live connections, each with a session --------
  std::vector<Viewer> fleet(conns);
  std::atomic<u64> requests{0};
  const double t_setup = now_ms();
  {
    std::vector<std::thread> pool;
    pool.reserve(drivers);
    for (usize d = 0; d < drivers; ++d) {
      pool.emplace_back([&, d] {
        for (usize i = d; i < conns; i += drivers) {
          fleet[i].client.connect("127.0.0.1", server.port());
          fleet[i].client.open();
          requests.fetch_add(1);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  const double setup_ms = now_ms() - t_setup;
  const u64 live = svc.metrics().gauge("net.connections.active").value();
  VIZ_CHECK(live == conns, "fleet setup lost connections");

  // ---- serving rounds ----------------------------------------------------
  std::vector<std::vector<double>> lat(drivers);
  std::atomic<u64> coalesced{0};
  const auto serve_round = [&](usize round) {
    std::vector<std::thread> pool;
    pool.reserve(drivers);
    for (usize d = 0; d < drivers; ++d) {
      pool.emplace_back([&, d, round] {
        for (usize i = d; i < conns; i += drivers) {
          const double t0 = now_ms();
          const SessionStepResult sr =
              fleet[i].client.step(path[fleet[i].next_step]);
          lat[d].push_back(now_ms() - t0);
          fleet[i].next_step++;
          coalesced.fetch_add(sr.coalesced_hits);
          requests.fetch_add(1);
          if (i % 4 == 0) {  // a quarter of the fleet also pulls a payload
            (void)fleet[i].client.fetch(static_cast<BlockId>((i + round) % 8));
            requests.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  };

  const double t_serve = now_ms();
  serve_round(0);

  // ---- hostile interlude: churn + malformed + slow, concurrently ---------
  {
    std::vector<std::thread> hostiles;
    hostiles.emplace_back([&] {  // connection churn, clean and abrupt
      for (usize n = 0; n < 12; ++n) {
        NetClient churner;
        churner.connect("127.0.0.1", server.port());
        churner.open();
        (void)churner.step(path[0]);
        if (n % 3 == 0) {
          churner.disconnect();  // abrupt: server must reap the session
        } else {
          churner.close_session();
        }
      }
    });
    hostiles.emplace_back([&] {  // malformed frames
      for (usize n = 0; n < 4; ++n) {
        NetClient hostile;
        hostile.connect("127.0.0.1", server.port());
        hostile.send_raw(std::vector<u8>{5, 0, 0, 0, 0x6B, 1, 2, 3, 4});
        (void)hostile.read_frame();  // the typed error
        hostile.disconnect();
      }
    });
    hostiles.emplace_back([&] {  // slow reader, dropped by backpressure
      NetClient slow;
      slow.connect("127.0.0.1", server.port(), /*so_rcvbuf_bytes=*/2048);
      slow.open();
      for (usize n = 0; n < 20; ++n) {
        slow.send_raw(encode_fetch(static_cast<BlockId>(n % 8)));
      }
      // Never read: the replies jam the write queue until the stall timer
      // fires. Wait for the drop so the metric is deterministic.
      MetricCounter& dropped = svc.metrics().counter("net.backpressure.closed");
      for (int spin = 0; spin < 5000 && dropped.value() == 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      slow.disconnect();
    });
    for (auto& t : hostiles) t.join();
  }

  // The fleet must still be fully served after the interlude.
  for (usize r = 1; r < rounds; ++r) serve_round(r);
  const double serve_seconds = (now_ms() - t_serve) / 1000.0;

  // ---- teardown: every fleet session closes cleanly ----------------------
  {
    std::vector<std::thread> pool;
    pool.reserve(drivers);
    for (usize d = 0; d < drivers; ++d) {
      pool.emplace_back([&, d] {
        for (usize i = d; i < conns; i += drivers) {
          (void)fleet[i].client.close_session();
          fleet[i].client.disconnect();
          requests.fetch_add(1);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  // Abrupt hostile disconnects settle asynchronously.
  for (int spin = 0; spin < 5000 && svc.active_sessions() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool sessions_reaped = svc.active_sessions() == 0;
  const bool server_survived = server.running();
  server.stop();

  std::vector<double> step_ms;
  for (auto& v : lat) step_ms.insert(step_ms.end(), v.begin(), v.end());
  const double p50 = percentile(step_ms, 0.5);
  const double p99 = percentile(step_ms, 0.99);
  const double req_per_s = static_cast<double>(requests.load()) / serve_seconds;
  const MetricsSnapshot snapshot = svc.metrics().snapshot();
  const u64 malformed = svc.metrics().counter("net.errors.malformed").value();
  const u64 bp_closed =
      svc.metrics().counter("net.backpressure.closed").value();

  TablePrinter table({"conns", "rounds", "req/s", "p50(ms)", "p99(ms)",
                      "coalesced", "malformed", "bp-drops"});
  table.row({std::to_string(conns), std::to_string(rounds),
             TablePrinter::fmt(req_per_s, 1), TablePrinter::fmt(p50, 2),
             TablePrinter::fmt(p99, 2), std::to_string(coalesced.load()),
             std::to_string(malformed), std::to_string(bp_closed)});
  table.print("net serving — " + std::to_string(conns) +
              " concurrent connections, setup " +
              TablePrinter::fmt(setup_ms / 1000.0, 2) + "s");

  const bool pass = server_survived && sessions_reaped &&
                    coalesced.load() > 0 && malformed > 0 && bp_closed > 0;
  std::cout << (pass ? "PASS" : "WARN") << ": survived=" << server_survived
            << " reaped=" << sessions_reaped << " coalesced="
            << coalesced.load() << " malformed=" << malformed
            << " bp_drops=" << bp_closed << "\n";

  JsonObject config;
  config.string("dataset", "3d_ball")
      .number("scale", spec.scale)
      .integer("conns", static_cast<i64>(conns))
      .integer("rounds", static_cast<i64>(rounds))
      .integer("drivers", static_cast<i64>(drivers))
      .number("pace_ms", pace_ms)
      .integer("seed", static_cast<i64>(env.seed))
      .boolean("quick", env.quick);
  JsonObject serving;
  serving.number("req_per_s", req_per_s)
      .number("steps_per_s",
              static_cast<double>(step_ms.size()) / serve_seconds)
      .number("p50_step_ms", p50)
      .number("p99_step_ms", p99)
      .number("setup_seconds", setup_ms / 1000.0)
      .number("serve_seconds", serve_seconds)
      .integer("concurrent_connections", static_cast<i64>(live))
      .integer("coalesced_hits", static_cast<i64>(coalesced.load()));
  JsonObject scenarios;
  scenarios.integer("malformed_frames", static_cast<i64>(malformed))
      .integer("backpressure_drops", static_cast<i64>(bp_closed))
      .boolean("sessions_reaped", sessions_reaped)
      .boolean("server_survived", server_survived);
  JsonObject root;
  root.string("bench", "net")
      .object("config", std::move(config))
      .object("serving", std::move(serving))
      .object("scenarios", std::move(scenarios))
      .boolean("coalesced_nonzero", coalesced.load() > 0)
      .boolean("pass", pass);
  const std::string json_path = env.cfg.get_string("json", "BENCH_net.json");
  root.write(json_path);
  std::cout << "# json -> " << json_path << "\n";

  write_observability("bench_net", svc.timeline(), snapshot);
  return 0;
}
