// Ablation A1 (ours): the entropy threshold sigma. Algorithm 1 gates both
// preloading (line 7) and prefetching (line 22) on entropy > sigma. This
// sweep sets sigma so that a target fraction of blocks qualifies and
// reports the resulting miss rate and time split — quantifying the
// trade-off the paper leaves implicit: low sigma prefetches ambient blocks
// (wasted bandwidth), high sigma starves the prefetcher.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_sigma", argc, argv);
  env.banner("Ablation: entropy threshold sigma (fraction of blocks above)");

  std::vector<double> fractions{0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  if (env.quick) fractions = {0.25, 0.75};

  TablePrinter table({"dataset", "fraction>sigma", "sigma(bits)", "miss_rate",
                      "prefetched/step", "io(s)", "prefetch(s)", "total(s)"});
  CsvWriter csv(env.csv_path(),
                {"dataset", "fraction", "sigma_bits", "miss_rate",
                 "prefetched_per_step", "io_s", "prefetch_s", "total_s"});

  for (DatasetId id : {DatasetId::kBall3d, DatasetId::kLiftedMixFrac}) {
    for (double fraction : fractions) {
      WorkbenchSpec spec;
      spec.dataset = id;
      spec.scale = env.scale;
      spec.target_blocks = 512;
      spec.sigma_fraction = fraction;
      spec.omega = {12, 24, 3, 2.5, 3.5};
      spec.vicinal_samples = 6;
      spec.path_step_deg = 7.5;
      Workbench wb(spec);

      CameraPath path = random_path(5.0, 10.0, env.positions, env.seed);
      RunResult r = wb.run_app_aware(path);
      double prefetched = 0;
      for (const StepResult& s : r.steps) {
        prefetched += static_cast<double>(s.prefetched);
      }
      prefetched /= static_cast<double>(r.steps.size());

      table.row({dataset_name(id), TablePrinter::fmt(fraction, 2),
                 TablePrinter::fmt(wb.sigma_bits(), 3),
                 TablePrinter::fmt(r.fast_miss_rate, 4),
                 TablePrinter::fmt(prefetched, 1),
                 TablePrinter::fmt(r.io_time, 3),
                 TablePrinter::fmt(r.prefetch_time, 3),
                 TablePrinter::fmt(r.total_time, 3)});
      csv.row({dataset_name(id), CsvWriter::to_cell(fraction),
               CsvWriter::to_cell(wb.sigma_bits()),
               CsvWriter::to_cell(r.fast_miss_rate),
               CsvWriter::to_cell(prefetched), CsvWriter::to_cell(r.io_time),
               CsvWriter::to_cell(r.prefetch_time),
               CsvWriter::to_cell(r.total_time)});
    }
  }

  table.print("Ablation — sigma sweep");
  return 0;
}
