// Reproduces Table I: the experimental datasets. Generates each dataset (at
// the configured scale), reports name / description / resolution /
// #variables / size, and the full-resolution figures from the paper for
// reference. Also reports the entropy skew each generator produces, since
// that is the property the importance table exploits.

#include <iostream>
#include <sstream>

#include "common.hpp"
#include "core/importance.hpp"
#include "util/units.hpp"
#include "volume/datasets.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("table1_datasets", argc, argv);
  env.banner("Table I: datasets used in the experimental study");

  TablePrinter table({"name", "description", "resolution(scaled)",
                      "resolution(paper)", "#vars", "size(scaled)",
                      "size(paper)", "entropy min/mean/max (bits)"});
  CsvWriter csv(env.csv_path(),
                {"name", "scaled_resolution", "paper_resolution", "variables",
                 "scaled_bytes", "paper_bytes", "entropy_min", "entropy_mean",
                 "entropy_max"});

  for (DatasetId id : all_datasets()) {
    SyntheticVolume vol = make_dataset(id, env.scale);
    VolumeDesc paper = vol.desc;
    paper.dims = paper_dims(id);
    paper.variables = paper_variables(id);

    BlockGrid grid = BlockGrid::with_target_block_count(vol.desc.dims, 256);
    SyntheticBlockStore store(vol, grid.block_dims());
    ImportanceTable imp = ImportanceTable::build(store, 128);

    std::ostringstream entropy;
    entropy.precision(2);
    entropy << std::fixed << imp.min_entropy() << " / " << imp.mean_entropy()
            << " / " << imp.max_entropy();

    table.row({vol.desc.name, vol.desc.description, vol.desc.dims.to_string(),
               paper.dims.to_string(), std::to_string(paper.variables),
               format_bytes(vol.desc.total_bytes()),
               format_bytes(paper.field_bytes() * paper.variables),
               entropy.str()});
    csv.row({vol.desc.name, vol.desc.dims.to_string(), paper.dims.to_string(),
             CsvWriter::to_cell(static_cast<u64>(paper.variables)),
             CsvWriter::to_cell(vol.desc.total_bytes()),
             CsvWriter::to_cell(paper.field_bytes() * paper.variables),
             CsvWriter::to_cell(imp.min_entropy()),
             CsvWriter::to_cell(imp.mean_entropy()),
             CsvWriter::to_cell(imp.max_entropy())});
  }

  table.print("Table I — experimental datasets");
  std::cout << "(paper sizes are per-timestep across all variables; scaled "
               "datasets are the procedural stand-ins described in DESIGN.md)\n";
  return 0;
}
