// Ablation A5 (ours): time-varying playback (the paper's climate dataset is
// time-varying; handling it is the paper's stated future-work direction).
// While the camera explores, the simulation clock advances every K path
// steps; each advance invalidates the entire working set (same spatial
// blocks, new data). Compares FIFO / LRU / OPT without temporal prefetch /
// OPT with temporal prefetch across playback speeds.

#include <iostream>

#include "common.hpp"
#include "core/temporal.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_temporal", argc, argv);
  env.banner("Ablation: time-varying playback (climate), temporal prefetch");

  const usize timesteps = 4;
  SyntheticVolume climate = make_dataset(DatasetId::kClimate, env.scale);
  // Rebuild with a fixed timestep count so playback spans the whole run.
  climate = make_climate_volume(climate.desc.dims,
                                std::max<usize>(4, climate.desc.variables),
                                timesteps);
  BlockGrid grid = BlockGrid::with_target_block_count(climate.desc.dims, 512);
  SyntheticBlockStore store(climate, grid.block_dims());

  std::vector<ImportanceTable> importance;
  for (usize t = 0; t < timesteps; ++t) {
    importance.push_back(ImportanceTable::build(store, 64, 1, t));
  }
  double sigma = importance[0].threshold_for_fraction(0.75);

  VisibilityTableSpec ts;
  ts.omega = {12, 24, 3, 2.5, 3.5};
  ts.vicinal_samples = 6;
  ts.view_angle_deg = 10.0;
  ts.radius_model = {10.0, 0.25, 1e-3};
  ts.path_step_deg = 5.0;
  VisibilityTable table = VisibilityTable::build(grid, ts);

  CameraPath path = random_path(4.0, 6.0, env.positions, env.seed);

  std::vector<usize> speeds{5, 20, 80};
  if (env.quick) speeds = {20};

  TablePrinter out({"steps/timestep", "method", "miss_rate", "io(s)",
                    "total(s)"});
  CsvWriter csv(env.csv_path(), {"steps_per_timestep", "method", "miss_rate",
                                 "io_s", "total_s"});

  auto report = [&](usize speed, const std::string& name, const RunResult& r) {
    out.row({std::to_string(speed), name,
             TablePrinter::fmt(r.fast_miss_rate, 4),
             TablePrinter::fmt(r.io_time, 3),
             TablePrinter::fmt(r.total_time, 3)});
    csv.row({CsvWriter::to_cell(static_cast<u64>(speed)), name,
             CsvWriter::to_cell(r.fast_miss_rate),
             CsvWriter::to_cell(r.io_time), CsvWriter::to_cell(r.total_time)});
  };

  for (usize speed : speeds) {
    PlaybackSpec playback{timesteps, speed, true};

    for (PolicyKind kind : {PolicyKind::kFifo, PolicyKind::kLru}) {
      TemporalConfig cfg;
      cfg.app_aware = false;
      cfg.policy = kind;
      TemporalPipeline p(grid,
                         make_temporal_hierarchy(grid, timesteps, 0.5, kind),
                         cfg, playback);
      report(speed, policy_kind_name(kind), p.run(path));
    }

    TemporalConfig spatial;
    spatial.app_aware = true;
    spatial.sigma_bits = sigma;
    spatial.temporal_prefetch = false;
    TemporalPipeline ps(
        grid, make_temporal_hierarchy(grid, timesteps, 0.5, spatial.policy),
        spatial, playback, &table, &importance);
    report(speed, "OPT(spatial)", ps.run(path));

    TemporalConfig full = spatial;
    full.temporal_prefetch = true;
    TemporalPipeline pf(
        grid, make_temporal_hierarchy(grid, timesteps, 0.5, full.policy),
        full, playback, &table, &importance);
    report(speed, "OPT(+temporal)", pf.run(path));
  }

  out.print("Ablation — time-varying playback");
  std::cout << "(faster playback (fewer steps/timestep) hurts every method; "
               "temporal prefetch recovers the flip-step misses)\n";
  return 0;
}
