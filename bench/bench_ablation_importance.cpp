// Ablation A9 (ours): the block-importance metric. The paper selects
// Shannon entropy (Section IV-C); this sweep swaps in mean gradient
// magnitude and a random ranking while keeping everything else identical
// (preload, entry trimming, prefetch filter) — quantifying how much of
// OPT's win comes from the specific metric vs from having *any*
// application-derived importance signal.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_importance", argc, argv);
  env.banner("Ablation: importance metric (entropy / gradient / random)");

  struct Metric {
    const char* name;
    WorkbenchSpec::ImportanceMetric metric;
  };
  const Metric metrics[] = {
      {"entropy (paper)", WorkbenchSpec::ImportanceMetric::kEntropy},
      {"gradient", WorkbenchSpec::ImportanceMetric::kGradient},
      {"random", WorkbenchSpec::ImportanceMetric::kRandom},
  };

  TablePrinter table({"dataset", "metric", "miss_rate", "io(s)",
                      "prefetch(s)", "total(s)"});
  CsvWriter csv(env.csv_path(), {"dataset", "metric", "miss_rate", "io_s",
                                 "prefetch_s", "total_s"});

  for (DatasetId id : {DatasetId::kBall3d, DatasetId::kLiftedMixFrac}) {
    CameraPath path = random_path(5.0, 10.0, env.positions, env.seed);
    for (const Metric& m : metrics) {
      WorkbenchSpec spec;
      spec.dataset = id;
      spec.scale = env.scale;
      spec.target_blocks = 512;
      spec.omega = {12, 24, 3, 2.5, 3.5};
      spec.path_step_deg = 7.5;
      spec.importance_metric = m.metric;
      Workbench wb(spec);

      RunResult r = wb.run_app_aware(path);
      table.row({dataset_name(id), m.name,
                 TablePrinter::fmt(r.fast_miss_rate, 4),
                 TablePrinter::fmt(r.io_time, 3),
                 TablePrinter::fmt(r.prefetch_time, 3),
                 TablePrinter::fmt(r.total_time, 3)});
      csv.row({dataset_name(id), m.name, CsvWriter::to_cell(r.fast_miss_rate),
               CsvWriter::to_cell(r.io_time),
               CsvWriter::to_cell(r.prefetch_time),
               CsvWriter::to_cell(r.total_time)});
    }
    // Reference: LRU needs no importance at all.
    WorkbenchSpec spec;
    spec.dataset = id;
    spec.scale = env.scale;
    spec.target_blocks = 512;
    spec.omega = {12, 24, 3, 2.5, 3.5};
    Workbench wb(spec);
    RunResult lru = wb.run_baseline(PolicyKind::kLru, path);
    table.row({dataset_name(id), "(LRU baseline)",
               TablePrinter::fmt(lru.fast_miss_rate, 4),
               TablePrinter::fmt(lru.io_time, 3), "0.000",
               TablePrinter::fmt(lru.total_time, 3)});
    csv.row({dataset_name(id), "lru_baseline",
             CsvWriter::to_cell(lru.fast_miss_rate),
             CsvWriter::to_cell(lru.io_time), CsvWriter::to_cell(0.0),
             CsvWriter::to_cell(lru.total_time)});
  }

  table.print("Ablation — importance metric");
  std::cout << "(entropy and gradient rank the same structures on these "
               "datasets; random importance wastes the preload and prefetch "
               "filter)\n";
  return 0;
}
