// Micro-benchmarks (google-benchmark): the hot inner operations of the
// pipeline — per-block entropy, cone visibility tests, T_visible queries,
// cache insert/evict cycles, policy victim selection, and raycast frames.

#include <benchmark/benchmark.h>

#include "core/importance.hpp"
#include "core/visibility.hpp"
#include "core/visibility_table.hpp"
#include "render/raycaster.hpp"
#include "storage/block_cache.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "volume/datasets.hpp"
#include "volume/octree.hpp"

namespace vizcache {
namespace {

void BM_ShannonEntropy(benchmark::State& state) {
  Rng rng(1);
  std::vector<float> values(static_cast<usize>(state.range(0)));
  for (float& v : values) v = static_cast<float>(rng.next_double());
  for (auto _ : state) {
    benchmark::DoNotOptimize(shannon_entropy_bits(values, 256));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(values.size()));
}
BENCHMARK(BM_ShannonEntropy)->Range(1 << 10, 1 << 18);

void BM_ConeVisibilityTest(benchmark::State& state) {
  BlockGrid grid = BlockGrid::with_target_block_count(
      {128, 128, 128}, static_cast<usize>(state.range(0)));
  BlockBoundsIndex idx(grid);
  Camera cam({3, 0.5, -0.2}, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.visible_blocks(cam));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(grid.block_count()));
}
BENCHMARK(BM_ConeVisibilityTest)->Arg(512)->Arg(2048)->Arg(8192);

void BM_VisibilityTableQuery(benchmark::State& state) {
  BlockGrid grid = BlockGrid::with_target_block_count({64, 64, 64}, 512);
  VisibilityTableSpec spec;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.vicinal_samples = 4;
  spec.radius_model = {10.0, 0.25, 1e-3};
  VisibilityTable table = VisibilityTable::build(grid, spec);
  Rng rng(7);
  for (auto _ : state) {
    Vec3 pos = direction_from_angles(rng.uniform(0.1, 3.0),
                                     rng.uniform(0.0, 6.28)) *
               rng.uniform(2.5, 3.5);
    benchmark::DoNotOptimize(table.query(pos));
  }
}
BENCHMARK(BM_VisibilityTableQuery);

void BM_NearestLinearScan(benchmark::State& state) {
  OmegaSamplingSpec omega{static_cast<usize>(state.range(0)),
                          static_cast<usize>(state.range(0)) * 2, 5, 2.5, 3.5};
  auto positions = sample_omega_positions(omega);
  Rng rng(9);
  for (auto _ : state) {
    Vec3 q = direction_from_angles(rng.uniform(0.1, 3.0),
                                   rng.uniform(0.0, 6.28)) *
             3.0;
    benchmark::DoNotOptimize(nearest_position_linear(positions, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(positions.size()));
}
BENCHMARK(BM_NearestLinearScan)->Arg(12)->Arg(36);

void BM_CacheInsertEvictCycle(benchmark::State& state) {
  auto policy_kind = static_cast<PolicyKind>(state.range(0));
  BlockCache cache(100 * 64, make_policy(policy_kind, 64),
                   [](BlockId) -> u64 { return 100; });
  u64 step = 0;
  BlockId next = 0;
  for (auto _ : state) {
    ++step;
    cache.insert(next++ % 4096, step);
  }
  state.SetLabel(policy_kind_name(policy_kind));
}
BENCHMARK(BM_CacheInsertEvictCycle)
    ->Arg(static_cast<int>(PolicyKind::kFifo))
    ->Arg(static_cast<int>(PolicyKind::kLru))
    ->Arg(static_cast<int>(PolicyKind::kClock))
    ->Arg(static_cast<int>(PolicyKind::kArc))
    ->Arg(static_cast<int>(PolicyKind::kTwoQ));

void BM_OctreeFrustumQuery(benchmark::State& state) {
  BlockGrid grid = BlockGrid::with_target_block_count(
      {128, 128, 128}, static_cast<usize>(state.range(0)));
  BlockOctree tree = BlockOctree::build(grid);
  ConeFrustum frustum(Camera({3, 0.5, -0.2}, 10.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query_frustum(frustum));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(grid.block_count()));
}
BENCHMARK(BM_OctreeFrustumQuery)->Arg(512)->Arg(2048)->Arg(8192);

void BM_ImportanceBuild(benchmark::State& state) {
  SyntheticVolume ball = make_ball_volume({48, 48, 48});
  SyntheticBlockStore store(ball, {12, 12, 12});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ImportanceTable::build(store, 128));
  }
}
BENCHMARK(BM_ImportanceBuild);

void BM_RaycastFrame(benchmark::State& state) {
  auto vol = std::make_shared<SyntheticVolume>(make_ball_volume({32, 32, 32}));
  VolumeSampler sampler = [vol](const Vec3& p) -> std::optional<float> {
    return vol->fn(p, 0, 0);
  };
  Camera cam({3, 0, 0}, 30.0);
  RaycastParams params;
  params.image_width = static_cast<usize>(state.range(0));
  params.image_height = static_cast<usize>(state.range(0));
  params.step_size = 0.05;
  TransferFunction tf = TransferFunction::fire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(raycast(cam, sampler, tf, params));
  }
}
BENCHMARK(BM_RaycastFrame)->Arg(32)->Arg(64);

}  // namespace
}  // namespace vizcache
