#include "common.hpp"

#include <iostream>
#include <sstream>

#include "util/log.hpp"

namespace vizcache::bench {

BenchEnv BenchEnv::parse(const std::string& name, int argc,
                         const char* const* argv) {
  BenchEnv env;
  env.name = name;
  env.cfg = Config::from_args(argc, argv);
  env.scale = env.cfg.get_double("scale", env.scale);
  env.positions = static_cast<usize>(
      env.cfg.get_int("positions", static_cast<i64>(env.positions)));
  env.seed = static_cast<u64>(env.cfg.get_int("seed", 42));
  env.quick = env.cfg.get_bool("quick", false);
  if (env.quick) {
    env.positions = std::min<usize>(env.positions, 100);
  }
  Log::set_level(LogLevel::kWarn);
  return env;
}

std::string BenchEnv::csv_path() const {
  return cfg.get_string("csv", "bench_" + name + ".csv");
}

void BenchEnv::banner(const std::string& what) const {
  std::cout << "# vizcache bench: " << name << "\n"
            << "# " << what << "\n"
            << "# scale=" << scale << " positions=" << positions
            << " seed=" << seed << (quick ? " quick=1" : "") << "\n"
            << "# csv -> " << csv_path() << "\n";
}

CameraPath random_path(double lo_deg, double hi_deg, usize positions,
                       u64 seed) {
  RandomPathSpec spec;
  spec.step_min_deg = lo_deg;
  spec.step_max_deg = hi_deg;
  spec.positions = positions;
  spec.seed = seed;
  return make_random_path(spec);
}

CameraPath spherical_path(double step_deg, usize positions) {
  SphericalPathSpec spec;
  spec.step_deg = step_deg;
  spec.positions = positions;
  return make_spherical_path(spec);
}

std::string degree_range_label(double lo, double hi) {
  std::ostringstream os;
  os << lo << "-" << hi;
  return os.str();
}

}  // namespace vizcache::bench
