#include "common.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace vizcache::bench {

struct JsonObject::Entry {
  enum class Kind { kNumber, kInteger, kBoolean, kString, kObject };
  std::string key;
  Kind kind = Kind::kNumber;
  double num = 0.0;
  i64 integer = 0;
  bool boolean = false;
  std::string str;
  std::unique_ptr<JsonObject> obj;
};

JsonObject::JsonObject() = default;
JsonObject::~JsonObject() = default;
JsonObject::JsonObject(JsonObject&&) noexcept = default;
JsonObject& JsonObject::operator=(JsonObject&&) noexcept = default;

JsonObject& JsonObject::number(const std::string& key, double value) {
  Entry e;
  e.key = key;
  e.kind = Entry::Kind::kNumber;
  e.num = value;
  entries_.push_back(std::move(e));
  return *this;
}

JsonObject& JsonObject::integer(const std::string& key, i64 value) {
  Entry e;
  e.key = key;
  e.kind = Entry::Kind::kInteger;
  e.integer = value;
  entries_.push_back(std::move(e));
  return *this;
}

JsonObject& JsonObject::boolean(const std::string& key, bool value) {
  Entry e;
  e.key = key;
  e.kind = Entry::Kind::kBoolean;
  e.boolean = value;
  entries_.push_back(std::move(e));
  return *this;
}

JsonObject& JsonObject::string(const std::string& key,
                               const std::string& value) {
  Entry e;
  e.key = key;
  e.kind = Entry::Kind::kString;
  e.str = value;
  entries_.push_back(std::move(e));
  return *this;
}

JsonObject& JsonObject::object(const std::string& key, JsonObject value) {
  Entry e;
  e.key = key;
  e.kind = Entry::Kind::kObject;
  e.obj = std::make_unique<JsonObject>(std::move(value));
  entries_.push_back(std::move(e));
  return *this;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

std::string JsonObject::render(usize depth) const {
  const std::string pad(2 * (depth + 1), ' ');
  std::string out = "{";
  for (usize i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += i == 0 ? "\n" : ",\n";
    out += pad + "\"" + json_escape(e.key) + "\": ";
    switch (e.kind) {
      case Entry::Kind::kNumber: out += json_number(e.num); break;
      case Entry::Kind::kInteger: out += std::to_string(e.integer); break;
      case Entry::Kind::kBoolean: out += e.boolean ? "true" : "false"; break;
      case Entry::Kind::kString:
        out += "\"" + json_escape(e.str) + "\"";
        break;
      case Entry::Kind::kObject: out += e.obj->render(depth + 1); break;
    }
  }
  if (!entries_.empty()) out += "\n" + std::string(2 * depth, ' ');
  out += "}";
  return out;
}

std::string JsonObject::to_string() const { return render(0); }

void JsonObject::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open JSON output for writing: " + path);
  out << to_string() << "\n";
  if (!out) throw IoError("JSON write failed: " + path);
}

BenchEnv BenchEnv::parse(const std::string& name, int argc,
                         const char* const* argv) {
  BenchEnv env;
  env.name = name;
  env.cfg = Config::from_args(argc, argv);
  env.scale = env.cfg.get_double("scale", env.scale);
  env.positions = static_cast<usize>(
      env.cfg.get_int("positions", static_cast<i64>(env.positions)));
  env.seed = static_cast<u64>(env.cfg.get_int("seed", 42));
  env.quick = env.cfg.get_bool("quick", false);
  if (env.quick) {
    env.positions = std::min<usize>(env.positions, 100);
  }
  Log::set_level(LogLevel::kWarn);
  return env;
}

std::string BenchEnv::csv_path() const {
  return cfg.get_string("csv", "bench_" + name + ".csv");
}

void BenchEnv::banner(const std::string& what) const {
  std::cout << "# vizcache bench: " << name << "\n"
            << "# " << what << "\n"
            << "# scale=" << scale << " positions=" << positions
            << " seed=" << seed << (quick ? " quick=1" : "") << "\n"
            << "# csv -> " << csv_path() << "\n";
}

JsonObject metrics_snapshot_json(const MetricsSnapshot& snapshot) {
  JsonObject counters;
  for (const auto& c : snapshot.counters) {
    counters.integer(c.name, static_cast<i64>(c.value));
  }
  JsonObject gauges;
  for (const auto& g : snapshot.gauges) {
    gauges.number(g.name, g.value);
  }
  JsonObject histograms;
  for (const auto& h : snapshot.histograms) {
    JsonObject buckets;
    for (usize i = 0; i < h.hist.buckets.size(); ++i) {
      std::string label =
          i < h.hist.bounds.size() ? "le_" + json_number(h.hist.bounds[i])
                                   : std::string("le_inf");
      buckets.integer(label, static_cast<i64>(h.hist.buckets[i]));
    }
    JsonObject one;
    one.integer("count", static_cast<i64>(h.hist.count))
        .number("sum", h.hist.sum)
        .number("min", h.hist.min)
        .number("max", h.hist.max)
        .object("buckets", std::move(buckets));
    histograms.object(h.name, std::move(one));
  }
  JsonObject out;
  out.object("counters", std::move(counters))
      .object("gauges", std::move(gauges))
      .object("histograms", std::move(histograms));
  return out;
}

void write_observability(const std::string& stem, const StepTimeline& timeline,
                         const MetricsSnapshot& snapshot) {
  const std::string trace_path = stem + ".trace.json";
  const std::string metrics_path = stem + ".metrics.json";
  timeline.write_chrome_trace(trace_path);
  metrics_snapshot_json(snapshot).write(metrics_path);
  std::cout << "# trace -> " << trace_path << "\n"
            << "# metrics -> " << metrics_path << "\n";
}

CameraPath random_path(double lo_deg, double hi_deg, usize positions,
                       u64 seed) {
  RandomPathSpec spec;
  spec.step_min_deg = lo_deg;
  spec.step_max_deg = hi_deg;
  spec.positions = positions;
  spec.seed = seed;
  return make_random_path(spec);
}

CameraPath spherical_path(double step_deg, usize positions) {
  SphericalPathSpec spec;
  spec.step_deg = step_deg;
  spec.positions = positions;
  return make_spherical_path(spec);
}

std::string degree_range_label(double lo, double hi) {
  std::ostringstream os;
  os << lo << "-" << hi;
  return os.str();
}

}  // namespace vizcache::bench
