// Ablation A2 (ours): the full replacement-policy zoo against the
// application-aware method, including ARC (the related-work policy of
// Megiddo & Modha cited by the paper) and Belady's offline-optimal MIN as
// the demand-fetch lower bound. Shows where OPT's advantage comes from:
// even the optimal pure-replacement policy cannot beat prediction +
// overlap, because it cannot fetch before the demand arrives.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_policies", argc, argv);
  env.banner("Ablation: replacement-policy zoo vs the app-aware method");

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = env.scale;
  spec.target_blocks = 1024;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.vicinal_samples = 6;
  Workbench wb(spec);

  std::vector<std::pair<double, double>> ranges{{0, 5}, {10, 15}, {25, 30}};
  if (env.quick) ranges = {{5, 10}};

  TablePrinter table({"degrees", "policy", "miss_rate", "io(s)", "total(s)"});
  CsvWriter csv(env.csv_path(),
                {"degrees", "policy", "miss_rate", "io_s", "total_s"});

  auto report = [&](const std::string& degrees, const std::string& name,
                    const RunResult& r) {
    table.row({degrees, name, TablePrinter::fmt(r.fast_miss_rate, 4),
               TablePrinter::fmt(r.io_time, 3),
               TablePrinter::fmt(r.total_time, 3)});
    csv.row({degrees, name, CsvWriter::to_cell(r.fast_miss_rate),
             CsvWriter::to_cell(r.io_time), CsvWriter::to_cell(r.total_time)});
  };

  for (auto [lo, hi] : ranges) {
    wb.set_path_step_deg(0.5 * (lo + hi));
    CameraPath path = random_path(lo, hi, env.positions, env.seed);
    std::string label = degree_range_label(lo, hi);
    for (PolicyKind kind :
         {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kMru,
          PolicyKind::kClock, PolicyKind::kLfu, PolicyKind::kArc,
          PolicyKind::kTwoQ}) {
      report(label, policy_kind_name(kind), wb.run_baseline(kind, path));
    }
    report(label, "BELADY(oracle)", wb.run_belady(path));
    report(label, "OPT(app-aware)", wb.run_app_aware(path));
  }

  table.print("Ablation — policy zoo");
  std::cout << "(BELADY lower-bounds the demand-only policies; OPT can beat "
               "even it on io/total time thanks to prefetch overlap)\n";
  return 0;
}
