// Reproduces Fig. 9 (a)-(n): miss rate versus block division for FIFO, LRU
// and our application-aware method (OPT), on spherical paths of
// {1,5,10,15,20,25,30,45} degrees per position and random paths of
// {0-5,...,30-35} degree changes.
//
// Expected shape (paper): OPT below FIFO/LRU at every division; small
// degree changes favor smaller blocks; the 1024-4096 total-block range is
// the sweet spot; at large degree changes the division matters little.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("fig9_blocksize", argc, argv);
  env.banner("Fig. 9: miss rate vs block division (FIFO / LRU / OPT)");

  // The paper divides the 1024^3 ball into 16384..512 blocks (block sizes
  // 32x32x64 .. 128^3); at bench scale we sweep the same division ratios.
  std::vector<usize> divisions{4096, 2048, 1024, 512, 256, 128};
  std::vector<double> spherical_degs{1, 5, 10, 15, 20, 25, 30, 45};
  std::vector<std::pair<double, double>> random_ranges{
      {0, 5}, {5, 10}, {10, 15}, {15, 20}, {20, 25}, {25, 30}, {30, 35}};
  if (env.quick) {
    divisions = {1024, 256};
    spherical_degs = {5, 20};
    random_ranges = {{10, 15}};
  }

  TablePrinter table({"path", "degrees", "blocks", "FIFO", "LRU", "OPT"});
  CsvWriter csv(env.csv_path(), {"path_kind", "degrees", "blocks", "fifo_miss",
                                 "lru_miss", "opt_miss"});

  auto run_point = [&](Workbench& wb, const std::string& kind,
                       const std::string& label, const CameraPath& path,
                       usize blocks) {
    double fifo = wb.run_baseline(PolicyKind::kFifo, path).fast_miss_rate;
    double lru = wb.run_baseline(PolicyKind::kLru, path).fast_miss_rate;
    double opt = wb.run_app_aware(path).fast_miss_rate;
    table.row({kind, label, std::to_string(blocks),
               TablePrinter::fmt(fifo, 4), TablePrinter::fmt(lru, 4),
               TablePrinter::fmt(opt, 4)});
    csv.row({kind, label, CsvWriter::to_cell(static_cast<u64>(blocks)),
             CsvWriter::to_cell(fifo), CsvWriter::to_cell(lru),
             CsvWriter::to_cell(opt)});
  };

  for (usize blocks : divisions) {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = env.scale;
    spec.target_blocks = blocks;
    spec.omega = {6, 12, 2, 2.5, 3.5};  // small table: this figure sweeps
                                        // divisions, not lattice density
    spec.vicinal_samples = 6;
    Workbench wb(spec);

    for (double deg : spherical_degs) {
      wb.set_path_step_deg(deg);
      run_point(wb, "spherical", TablePrinter::fmt(deg, 0),
                spherical_path(deg, env.positions), blocks);
    }
    for (auto [lo, hi] : random_ranges) {
      wb.set_path_step_deg(0.5 * (lo + hi));
      run_point(wb, "random", degree_range_label(lo, hi),
                random_path(lo, hi, env.positions, env.seed), blocks);
    }
  }

  table.print("Fig. 9 — miss rate by block division");
  std::cout << "(OPT should undercut FIFO/LRU broadly; mid divisions should "
               "be the sweet spot at small degree changes)\n";
  return 0;
}
