// Reproduces Fig. 13: total time (I/O + prefetch + render, with OPT's
// prefetch overlapped by rendering) on 3d_ball over a random path, for
// cache-size ratios (a) 0.5 and (b) 0.7 between successive memory levels.
//
// Expected shape (paper): at ratio 0.5, OPT wins for view-direction changes
// within ~10 degrees (up to -12% vs LRU, -25% vs FIFO) and loses beyond; at
// ratio 0.7 OPT stays ahead through 10-15 degrees (-8.6% vs LRU, -19.7% vs
// FIFO).

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("fig13_latency", argc, argv);
  env.banner("Fig. 13: total time vs degree change at cache ratios 0.5/0.7");

  // The paper uses 4096 blocks; at bench scale 2048 keeps per-block sizes
  // proportionate (see DESIGN.md substitutions).
  usize blocks = static_cast<usize>(env.cfg.get_int("blocks", 2048));

  std::vector<std::pair<double, double>> ranges{{0, 5},   {5, 10},  {10, 15},
                                                {15, 20}, {20, 25}, {25, 30},
                                                {30, 35}};
  std::vector<double> ratios{0.5, 0.7};
  if (env.quick) {
    ranges = {{5, 10}, {20, 25}};
    ratios = {0.5};
  }

  TablePrinter table({"ratio", "degrees", "FIFO(s)", "LRU(s)", "OPT(s)",
                      "OPT vs LRU", "OPT vs FIFO"});
  CsvWriter csv(env.csv_path(),
                {"cache_ratio", "degrees", "fifo_total_s", "lru_total_s",
                 "opt_total_s", "opt_io_s", "opt_prefetch_s", "opt_render_s"});

  bool exported = false;
  for (double ratio : ratios) {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = env.scale;
    spec.target_blocks = blocks;
    spec.cache_ratio = ratio;
    spec.omega = {12, 24, 3, 2.5, 3.5};
    spec.vicinal_samples = 6;
    Workbench wb(spec);

    for (auto [lo, hi] : ranges) {
      wb.set_path_step_deg(0.5 * (lo + hi));
      CameraPath path = random_path(lo, hi, env.positions, env.seed);
      RunResult fifo = wb.run_baseline(PolicyKind::kFifo, path);
      RunResult lru = wb.run_baseline(PolicyKind::kLru, path);
      RunResult opt = wb.run_app_aware(path);

      if (!exported) {
        // Observability artifacts of the first sweep point: the OPT trace
        // shows prefetch spans overlapping render spans (Algorithm 1 line
        // 22), the LRU trace is strictly serial. CI uploads both.
        write_observability("bench_" + env.name + "_opt", opt.timeline,
                            opt.metrics);
        write_observability("bench_" + env.name + "_lru", lru.timeline,
                            lru.metrics);
        exported = true;
      }

      auto delta = [&](double base) {
        double pct = (opt.total_time - base) / base * 100.0;
        return (pct <= 0 ? "" : std::string("+")) + TablePrinter::fmt(pct, 1) + "%";
      };
      table.row({TablePrinter::fmt(ratio, 1), degree_range_label(lo, hi),
                 TablePrinter::fmt(fifo.total_time, 2),
                 TablePrinter::fmt(lru.total_time, 2),
                 TablePrinter::fmt(opt.total_time, 2), delta(lru.total_time),
                 delta(fifo.total_time)});
      csv.row({CsvWriter::to_cell(ratio), degree_range_label(lo, hi),
               CsvWriter::to_cell(fifo.total_time),
               CsvWriter::to_cell(lru.total_time),
               CsvWriter::to_cell(opt.total_time),
               CsvWriter::to_cell(opt.io_time),
               CsvWriter::to_cell(opt.prefetch_time),
               CsvWriter::to_cell(opt.render_time)});
    }
  }

  table.print("Fig. 13 — total time (prefetch overlapped with rendering)");
  std::cout << "(OPT should win clearly at small degree changes; its edge "
               "shrinks or flips at large changes with ratio 0.5 and is "
               "restored by ratio 0.7)\n";
  return 0;
}
