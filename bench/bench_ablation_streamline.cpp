// Ablation A8 (ours): out-of-core streamline tracing (the related-work
// workload of Ueng et al., paper Section II). Streamlines make long, thin,
// partially-revisiting block access sequences — very different from
// frustum working sets. This bench traces seed batches through the
// synthetic vortex flow under every replacement policy, with and without
// entropy-based preloading of the vortex core.

#include <iostream>

#include "common.hpp"
#include "core/importance.hpp"
#include "core/streamline.hpp"
#include "volume/generators.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_streamline", argc, argv);
  env.banner("Ablation: out-of-core streamline tracing workload");

  const Dims3 dims{96, 96, 96};
  SyntheticVolume flow = make_flow_volume(dims);
  Field3D u = rasterize(flow, 0), v = rasterize(flow, 1), w = rasterize(flow, 2);
  VectorSampler velocity = [&](const Vec3& p) -> std::optional<Vec3> {
    return Vec3{u.sample_normalized(p.x, p.y, p.z),
                v.sample_normalized(p.x, p.y, p.z),
                w.sample_normalized(p.x, p.y, p.z)};
  };

  BlockGrid grid = BlockGrid::with_target_block_count(dims, 1024);
  // Importance over the speed magnitude: the vortex core is the hot region.
  SyntheticBlockStore store(flow, grid.block_dims());
  ImportanceTable importance = ImportanceTable::build(store, 64, 0);

  // Seed rake across the inflow plane.
  Rng rng(env.seed);
  usize seed_count = env.quick ? 16 : 64;
  std::vector<Vec3> seeds;
  for (usize i = 0; i < seed_count; ++i) {
    seeds.push_back({rng.uniform(-0.7, 0.7), rng.uniform(-0.7, 0.7), -0.6});
  }
  StreamlineSpec spec;
  spec.step = 0.02;
  spec.max_steps = 800;

  u64 dataset_bytes = 0;
  for (BlockId id = 0; id < grid.block_count(); ++id) {
    dataset_bytes += grid.block_bytes(id);
  }

  TablePrinter table({"policy", "preload", "miss_rate", "io(s)", "accesses",
                      "unique_blocks"});
  CsvWriter csv(env.csv_path(), {"policy", "preload", "miss_rate", "io_s",
                                 "accesses", "unique_blocks"});

  for (PolicyKind kind : {PolicyKind::kFifo, PolicyKind::kLru,
                          PolicyKind::kClock, PolicyKind::kArc,
                          PolicyKind::kTwoQ}) {
    for (bool preload : {false, true}) {
      MemoryHierarchy hierarchy = MemoryHierarchy::paper_testbed(
          dataset_bytes, 0.5, kind,
          [&grid](BlockId id) { return grid.block_bytes(id); });
      if (preload) {
        // Stage the high-importance (vortex-core) blocks ahead of tracing.
        u64 budget = hierarchy.cache(0).capacity_bytes();
        for (BlockId id : importance.ranked()) {
          u64 bytes = grid.block_bytes(id);
          if (bytes > budget) break;
          hierarchy.preload(id);
          budget -= bytes;
        }
      }
      StreamlineWorkloadResult r =
          run_streamline_workload(grid, hierarchy, seeds, velocity, spec);
      table.row({policy_kind_name(kind), preload ? "yes" : "no",
                 TablePrinter::fmt(r.fast_miss_rate, 4),
                 TablePrinter::fmt(r.io_time, 3),
                 std::to_string(r.total_accesses),
                 std::to_string(r.unique_blocks)});
      csv.row({policy_kind_name(kind), preload ? "yes" : "no",
               CsvWriter::to_cell(r.fast_miss_rate),
               CsvWriter::to_cell(r.io_time),
               CsvWriter::to_cell(static_cast<u64>(r.total_accesses)),
               CsvWriter::to_cell(static_cast<u64>(r.unique_blocks))});
    }
  }

  table.print("Ablation — streamline tracing (" + std::to_string(seeds.size()) +
              " seeds)");
  std::cout << "(importance preloading stages the vortex core the rake flows "
               "through — Observation 2 transfers to flow visualization)\n";
  return 0;
}
