// Reproduces Fig. 7: miss rate (a) and I/O time (b) versus the number of
// sampled camera positions in Omega, across the four Table I datasets, on a
// random path with 10-15 degree view-direction changes.
//
// Expected shape (paper): miss rate falls monotonically with more samples;
// I/O time is U-shaped — the 25,920-sample table wins, larger tables lose
// to lookup overhead.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

namespace {

struct Lattice {
  OmegaSamplingSpec omega;
  usize total() const { return omega.total_positions(); }
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("fig7_sampling", argc, argv);
  env.banner(
      "Fig. 7: miss rate & I/O time vs #sampling positions (random path, "
      "10-15 deg)");

  // Position-count ladder up to the paper's exact values: 36x72x10 = 25,920
  // (the paper's optimum) and beyond it the over-dense lattices where
  // lookup overhead wins (the paper's 72k/108k points).
  std::vector<Lattice> lattices{
      {{6, 12, 2, 2.5, 3.5}},     // 144
      {{9, 18, 3, 2.5, 3.5}},     // 486
      {{12, 24, 5, 2.5, 3.5}},    // 1,440
      {{18, 36, 5, 2.5, 3.5}},    // 3,240
      {{24, 48, 9, 2.5, 3.5}},    // 10,368
      {{36, 72, 10, 2.5, 3.5}},   // 25,920
  };
  // The over-dense tail is expensive to build; by default it runs on
  // 3d_ball only (pass full=1 to sweep it on every dataset).
  std::vector<Lattice> tail{
      {{48, 96, 15, 2.5, 3.5}},   // 69,120
      {{60, 120, 14, 2.5, 3.5}},  // 100,800
  };
  bool full = env.cfg.get_bool("full", false);
  if (env.quick) {
    lattices.resize(3);
    tail.clear();
  }

  std::vector<DatasetId> datasets = all_datasets();
  if (env.quick) datasets = {DatasetId::kBall3d};

  TablePrinter table(
      {"dataset", "#samples", "miss_rate", "io_time(s)", "lookup(s)",
       "io+lookup(s)"});
  CsvWriter csv(env.csv_path(), {"dataset", "samples", "miss_rate", "io_time_s",
                                 "lookup_time_s", "io_plus_lookup_s"});

  for (DatasetId id : datasets) {
    WorkbenchSpec spec;
    spec.dataset = id;
    spec.scale = env.scale;
    spec.target_blocks = 512;
    spec.path_step_deg = 12.5;
    spec.vicinal_samples = 6;
    spec.omega = lattices.front().omega;
    Workbench wb(spec);

    CameraPath path = random_path(10.0, 15.0, env.positions, env.seed);

    std::vector<Lattice> sweep = lattices;
    if (full || id == DatasetId::kBall3d) {
      sweep.insert(sweep.end(), tail.begin(), tail.end());
    }
    for (const Lattice& lat : sweep) {
      wb.rebuild_table(lat.omega, std::nullopt);
      RunResult r = wb.run_app_aware(path);
      table.row({dataset_name(id), std::to_string(lat.total()),
                 TablePrinter::fmt(r.fast_miss_rate, 4),
                 TablePrinter::fmt(r.io_time, 3),
                 TablePrinter::fmt(r.lookup_time, 3),
                 TablePrinter::fmt(r.io_plus_lookup(), 3)});
      csv.row({dataset_name(id),
               CsvWriter::to_cell(static_cast<u64>(lat.total())),
               CsvWriter::to_cell(r.fast_miss_rate),
               CsvWriter::to_cell(r.io_time),
               CsvWriter::to_cell(r.lookup_time),
               CsvWriter::to_cell(r.io_plus_lookup())});
    }
  }

  table.print("Fig. 7 — sampling-position sweep");
  std::cout << "(miss rate should fall with #samples; io+lookup should be "
               "U-shaped with the minimum near 25,920)\n";
  return 0;
}
