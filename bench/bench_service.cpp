// Multi-session block-service throughput benchmark: N concurrent viewer
// sessions (real threads) against ONE shared MemoryHierarchy behind
// BlockService, versus the same workload on sharded per-session hierarchies
// (each with 1/N of every cache level — the only option before the service
// existed). Camera paths are deterministic seeded random walks; `overlap`
// controls how many sessions walk identical paths and therefore contend for
// the same blocks at the same time.
//
// Reports sessions/s and steps/s, wall-clock p50/p99 step latency, the
// coalesced-read fraction (demand fetches served by waiting on another
// session's in-flight read), and shared-vs-sharded aggregate fast-miss rate
// and backing reads. Writes BENCH_service.json (override with json=path)
// plus bench_service.{trace,metrics}.json observability artifacts.
//
// Extra key=value knobs:
//   sessions=6     concurrent sessions (quick: 4)
//   overlap=0.75   fraction of sessions sharing a path seed [0..1]
//   pace_ms=2      wall-clock width of a leader's in-flight window
//   budget_mb=0    aggregate prefetch budget (0 = unbounded)
//   json=path      output location (default BENCH_service.json)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "common.hpp"
#include "service/block_service.hpp"
#include "util/error.hpp"

using namespace vizcache;
using namespace vizcache::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const usize lo = static_cast<usize>(rank);
  const usize hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

struct RunOutcome {
  std::vector<double> step_ms;        ///< wall latency of every step
  std::vector<SessionSummary> sessions;
  double wall_seconds = 0.0;
  u64 backing_reads = 0;
  u64 fast_hits = 0;
  u64 fast_misses = 0;
  u64 coalesced_hits = 0;
  u64 demand_requests = 0;

  double fast_miss_rate() const {
    const u64 lookups = fast_hits + fast_misses;
    return lookups ? static_cast<double>(fast_misses) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
  double coalesced_fraction() const {
    return demand_requests ? static_cast<double>(coalesced_hits) /
                                 static_cast<double>(demand_requests)
                           : 0.0;
  }
};

void accumulate_hierarchy(RunOutcome& out, const HierarchyStats& hs) {
  out.backing_reads += hs.backing_reads();
  if (!hs.level.empty()) {
    out.fast_hits += hs.level.front().hits;
    out.fast_misses += hs.level.front().misses;
  }
}

/// Drive one session over `path` on `svc`, recording wall step latencies.
SessionSummary drive_session(BlockService& svc, const CameraPath& path,
                             std::vector<double>& step_ms) {
  const auto id = svc.open_session();
  VIZ_CHECK(id.has_value(), "bench session rejected — raise max_sessions");
  step_ms.reserve(path.size());
  u64 coalesced = 0;
  for (const Camera& cam : path) {
    const double t0 = now_ms();
    const SessionStepResult sr = svc.step(*id, cam);
    step_ms.push_back(now_ms() - t0);
    coalesced += sr.coalesced_hits;
  }
  (void)coalesced;
  return svc.close_session(*id);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("service", argc, argv);
  env.banner("concurrent block service: shared cache vs sharded per-session");

  const usize sessions =
      static_cast<usize>(env.cfg.get_int("sessions", env.quick ? 4 : 6));
  const double overlap = env.cfg.get_double("overlap", 0.75);
  const double pace_ms = env.cfg.get_double("pace_ms", env.quick ? 1.0 : 2.0);
  const u64 budget_mb = static_cast<u64>(env.cfg.get_int("budget_mb", 0));
  const usize steps = env.quick ? 60 : env.positions;

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = env.quick ? 0.08 : env.scale;
  spec.target_blocks = 256;
  spec.omega = {8, 16, 3, 2.5, 3.5};
  Workbench bench(spec);
  const BlockGrid* grid = &bench.grid();
  const auto size_fn = [grid](BlockId id) { return grid->block_bytes(id); };

  // `overlap` of the sessions reuse seed group 0; the rest get distinct
  // seeds. overlap=1 -> everyone walks the same path, overlap=0 -> all
  // distinct.
  const usize distinct = std::max<usize>(
      usize{1},
      static_cast<usize>(
          std::lround((1.0 - overlap) * static_cast<double>(sessions))));
  std::vector<CameraPath> paths;
  paths.reserve(sessions);
  for (usize s = 0; s < sessions; ++s) {
    paths.push_back(random_path(4.0, 6.0, steps, env.seed + s % distinct));
  }

  ServiceConfig cfg;
  cfg.max_sessions = sessions;
  cfg.app_aware = true;
  cfg.sigma_bits = bench.sigma_bits();
  cfg.render_model = spec.render_model;
  cfg.lookup_cost = spec.lookup_cost;
  cfg.leader_pace_seconds = pace_ms * 1e-3;
  cfg.aggregate_prefetch_budget_bytes = budget_mb * 1024 * 1024;

  // ---- shared: one service, one hierarchy, N session threads ------------
  RunOutcome shared;
  StepTimeline shared_timeline;
  MetricsSnapshot shared_snapshot;
  {
    BlockService svc(*grid,
                     MemoryHierarchy::paper_testbed(bench.dataset_bytes(),
                                                    spec.cache_ratio,
                                                    PolicyKind::kLru, size_fn),
                     cfg, &bench.table(), &bench.importance());
    std::vector<std::vector<double>> lat(sessions);
    shared.sessions.resize(sessions);
    const double t0 = now_ms();
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (usize s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        shared.sessions[s] = drive_session(svc, paths[s], lat[s]);
      });
    }
    for (auto& t : threads) t.join();
    shared.wall_seconds = (now_ms() - t0) / 1000.0;
    for (auto& v : lat) shared.step_ms.insert(shared.step_ms.end(), v.begin(), v.end());
    accumulate_hierarchy(shared, svc.hierarchy().stats());
    for (const SessionSummary& s : shared.sessions) {
      shared.coalesced_hits += s.coalesced_hits;
      shared.demand_requests += s.demand_requests;
    }
    shared_timeline = svc.timeline();
    shared_snapshot = svc.metrics().snapshot();
  }

  // ---- sharded: N services, each with 1/N of every cache level ----------
  RunOutcome sharded;
  {
    std::vector<std::unique_ptr<BlockService>> shards;
    shards.reserve(sessions);
    ServiceConfig scfg = cfg;
    scfg.max_sessions = 1;
    // Each session's private budget share, fixed up front.
    scfg.aggregate_prefetch_budget_bytes =
        cfg.aggregate_prefetch_budget_bytes / std::max<usize>(1, sessions);
    for (usize s = 0; s < sessions; ++s) {
      shards.push_back(std::make_unique<BlockService>(
          *grid,
          MemoryHierarchy::paper_testbed(
              std::max<u64>(u64{1}, bench.dataset_bytes() / sessions),
              spec.cache_ratio, PolicyKind::kLru, size_fn),
          scfg, &bench.table(), &bench.importance()));
    }
    std::vector<std::vector<double>> lat(sessions);
    sharded.sessions.resize(sessions);
    const double t0 = now_ms();
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (usize s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        sharded.sessions[s] = drive_session(*shards[s], paths[s], lat[s]);
      });
    }
    for (auto& t : threads) t.join();
    sharded.wall_seconds = (now_ms() - t0) / 1000.0;
    for (auto& v : lat) {
      sharded.step_ms.insert(sharded.step_ms.end(), v.begin(), v.end());
    }
    for (const auto& shard : shards) {
      accumulate_hierarchy(sharded, shard->hierarchy().stats());
    }
    for (const SessionSummary& s : sharded.sessions) {
      sharded.coalesced_hits += s.coalesced_hits;
      sharded.demand_requests += s.demand_requests;
    }
  }

  // ---- report -----------------------------------------------------------
  auto report = [&](const char* name, const RunOutcome& r) {
    return std::vector<std::string>{
        name,
        TablePrinter::fmt(static_cast<double>(sessions) / r.wall_seconds, 2),
        TablePrinter::fmt(static_cast<double>(r.step_ms.size()) / r.wall_seconds, 1),
        TablePrinter::fmt(percentile(r.step_ms, 0.5), 2),
        TablePrinter::fmt(percentile(r.step_ms, 0.99), 2),
        TablePrinter::fmt(100.0 * r.fast_miss_rate(), 2) + "%",
        std::to_string(r.backing_reads),
        TablePrinter::fmt(100.0 * r.coalesced_fraction(), 2) + "%"};
  };
  TablePrinter table({"config", "sessions/s", "steps/s", "p50(ms)", "p99(ms)",
                      "fast-miss", "backing", "coalesced"});
  table.row(report("shared", shared));
  table.row(report("sharded", sharded));
  table.print("block service — " + std::to_string(sessions) + " sessions, " +
              std::to_string(steps) + " steps, overlap " +
              TablePrinter::fmt(overlap, 2) + ", " +
              std::to_string(distinct) + " distinct path(s)");

  const bool wins_miss = shared.fast_miss_rate() < sharded.fast_miss_rate();
  const bool wins_backing = shared.backing_reads < sharded.backing_reads;
  const bool coalesced_nonzero = shared.coalesced_hits > 0;
  std::cout << (wins_miss && wins_backing && coalesced_nonzero ? "PASS"
                                                               : "WARN")
            << ": shared fast-miss "
            << TablePrinter::fmt(100.0 * shared.fast_miss_rate(), 2)
            << "% vs sharded "
            << TablePrinter::fmt(100.0 * sharded.fast_miss_rate(), 2)
            << "%, backing reads " << shared.backing_reads << " vs "
            << sharded.backing_reads << ", coalesced hits "
            << shared.coalesced_hits << "\n";

  auto outcome_json = [&](const RunOutcome& r) {
    JsonObject o;
    o.number("sessions_per_s", static_cast<double>(sessions) / r.wall_seconds)
        .number("steps_per_s",
                static_cast<double>(r.step_ms.size()) / r.wall_seconds)
        .number("p50_step_ms", percentile(r.step_ms, 0.5))
        .number("p99_step_ms", percentile(r.step_ms, 0.99))
        .number("fast_miss_rate", r.fast_miss_rate())
        .integer("backing_reads", static_cast<i64>(r.backing_reads))
        .integer("demand_requests", static_cast<i64>(r.demand_requests))
        .integer("coalesced_hits", static_cast<i64>(r.coalesced_hits))
        .number("coalesced_fraction", r.coalesced_fraction())
        .number("wall_seconds", r.wall_seconds);
    return o;
  };
  JsonObject config;
  config.string("dataset", "3d_ball")
      .number("scale", spec.scale)
      .integer("sessions", static_cast<i64>(sessions))
      .integer("steps", static_cast<i64>(steps))
      .number("overlap", overlap)
      .integer("distinct_paths", static_cast<i64>(distinct))
      .number("pace_ms", pace_ms)
      .integer("budget_mb", static_cast<i64>(budget_mb))
      .integer("seed", static_cast<i64>(env.seed))
      .boolean("quick", env.quick);
  JsonObject root;
  root.string("bench", "service")
      .object("config", std::move(config))
      .object("shared", outcome_json(shared))
      .object("sharded", outcome_json(sharded))
      .boolean("shared_wins_fast_miss", wins_miss)
      .boolean("shared_wins_backing_reads", wins_backing)
      .boolean("coalesced_nonzero", coalesced_nonzero);
  const std::string json_path =
      env.cfg.get_string("json", "BENCH_service.json");
  root.write(json_path);
  std::cout << "# json -> " << json_path << "\n";

  write_observability("bench_service", shared_timeline, shared_snapshot);
  return 0;
}
