// Ablation A6 (ours): parallel fetching and rendering with
// importance-aware data partitioning — the paper's future work ("we plan to
// study data partitioning and distribution schemes by leveraging data
// importance information"). N workers each own a block partition and fetch
// their share of every view concurrently; a step costs its makespan, so
// the partition's balance of *interesting* blocks is what scales.

#include <iostream>

#include "common.hpp"
#include "core/parallel_pipeline.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_parallel", argc, argv);
  env.banner("Ablation: parallel fetch with importance-aware partitioning");

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kLiftedRr;
  spec.scale = env.scale;
  spec.target_blocks = 1024;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.path_step_deg = 5.0;
  Workbench wb(spec);

  CameraPath path = random_path(4.0, 6.0, env.positions, env.seed);

  std::vector<usize> worker_counts{1, 2, 4, 8};
  if (env.quick) worker_counts = {1, 4};

  TablePrinter table({"workers", "partition", "io-makespan(s)", "speedup",
                      "entropy-imbalance", "total(s)"});
  CsvWriter csv(env.csv_path(),
                {"workers", "partition", "io_makespan_s", "fetch_speedup",
                 "entropy_imbalance", "total_s"});

  std::vector<double> weight(wb.grid().block_count());
  for (BlockId id = 0; id < wb.grid().block_count(); ++id) {
    weight[id] = wb.importance().entropy(id);
  }

  for (usize workers : worker_counts) {
    for (PartitionStrategy strategy :
         {PartitionStrategy::kSpatialSlabs, PartitionStrategy::kRoundRobin,
          PartitionStrategy::kImportance}) {
      Partition part =
          make_partition(strategy, wb.grid(), wb.importance(), workers);
      double imb = Partition::imbalance(part.worker_loads(weight));

      PipelineConfig cfg;
      cfg.app_aware = true;
      cfg.sigma_bits = wb.sigma_bits();
      ParallelPipeline pipeline(wb.grid(), std::move(part), cfg, 0.5,
                                &wb.table(), &wb.importance());
      ParallelRunResult r = pipeline.run(path);

      table.row({std::to_string(workers), partition_strategy_name(strategy),
                 TablePrinter::fmt(r.io_time, 3),
                 TablePrinter::fmt(r.fetch_speedup, 2),
                 TablePrinter::fmt(imb, 3),
                 TablePrinter::fmt(r.total_time, 3)});
      csv.row({CsvWriter::to_cell(static_cast<u64>(workers)),
               partition_strategy_name(strategy),
               CsvWriter::to_cell(r.io_time),
               CsvWriter::to_cell(r.fetch_speedup), CsvWriter::to_cell(imb),
               CsvWriter::to_cell(r.total_time)});
    }
  }

  table.print("Ablation — parallel fetch partitioning");
  std::cout << "(importance-balanced partitions keep entropy-imbalance near "
               "1 and the best fetch speedups as workers grow)\n";
  return 0;
}
