// Reproduces Fig. 12: miss rate across (a) a spherical path with different
// degree intervals and (b) a random path with different degree-change
// ranges, on 3d_ball divided into 2048 blocks, for FIFO / LRU / OPT.
//
// Expected shape (paper): (a) at 1 degree OPT is ~1/4 of FIFO/LRU; miss
// rates grow with the interval; OPT stays under half of the baselines over
// the small-step range. (b) on random paths OPT ~1/3 of FIFO and ~1/2 of
// LRU overall.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("fig12_paths", argc, argv);
  env.banner("Fig. 12: miss rate across spherical (a) and random (b) paths");

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = env.scale;
  spec.target_blocks = 2048;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.vicinal_samples = 6;
  Workbench wb(spec);

  std::vector<double> spherical_degs{1, 5, 10, 15, 20, 25, 30, 45};
  std::vector<std::pair<double, double>> random_ranges{
      {0, 5}, {5, 10}, {10, 15}, {15, 20}, {20, 25}, {25, 30}, {30, 35}};
  if (env.quick) {
    spherical_degs = {1, 15};
    random_ranges = {{10, 15}};
  }

  TablePrinter table(
      {"path", "degrees", "FIFO", "LRU", "OPT", "OPT/LRU", "OPT/FIFO"});
  CsvWriter csv(env.csv_path(), {"path_kind", "degrees", "fifo_miss",
                                 "lru_miss", "opt_miss"});

  bool exported = false;
  auto run_point = [&](const std::string& kind, const std::string& label,
                       const CameraPath& path) {
    double fifo = wb.run_baseline(PolicyKind::kFifo, path).fast_miss_rate;
    double lru = wb.run_baseline(PolicyKind::kLru, path).fast_miss_rate;
    RunResult opt_run = wb.run_app_aware(path);
    double opt = opt_run.fast_miss_rate;
    if (!exported) {
      // Timeline + metrics of the first sweep point (see fig13 for the
      // OPT-vs-baseline overlap comparison; here one artifact suffices).
      write_observability("bench_" + env.name + "_opt", opt_run.timeline,
                          opt_run.metrics);
      exported = true;
    }
    auto ratio = [&](double base) {
      return base > 0.0 ? TablePrinter::fmt(opt / base, 2) : std::string("-");
    };
    table.row({kind, label, TablePrinter::fmt(fifo, 4),
               TablePrinter::fmt(lru, 4), TablePrinter::fmt(opt, 4),
               ratio(lru), ratio(fifo)});
    csv.row({kind, label, CsvWriter::to_cell(fifo), CsvWriter::to_cell(lru),
             CsvWriter::to_cell(opt)});
  };

  for (double deg : spherical_degs) {
    wb.set_path_step_deg(deg);
    run_point("spherical", TablePrinter::fmt(deg, 0),
              spherical_path(deg, env.positions));
  }
  for (auto [lo, hi] : random_ranges) {
    wb.set_path_step_deg(0.5 * (lo + hi));
    run_point("random", degree_range_label(lo, hi),
              random_path(lo, hi, env.positions, env.seed));
  }

  table.print("Fig. 12 — miss rate by camera path");
  std::cout << "(OPT/LRU and OPT/FIFO well below 1 at small degree changes; "
               "paper reports ~0.25 at 1 deg spherical)\n";
  return 0;
}
