// Ablation A3 (ours): vicinal-ball construction sensitivity (paper Section
// IV-B's under-/over-prediction discussion). Sweeps (a) the number of
// sampled points v' per vicinal ball and (b) fixed radii spanning
// under-prediction to over-prediction, reporting prediction size and the
// resulting miss rate / prefetch cost.

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("ablation_vicinal", argc, argv);
  env.banner("Ablation: vicinal sample count and radius sensitivity");

  CameraPath path = random_path(5.0, 10.0, env.positions, env.seed);

  TablePrinter table({"sweep", "value", "mean_entry", "miss_rate", "io(s)",
                      "prefetch(s)"});
  CsvWriter csv(env.csv_path(), {"sweep", "value", "mean_entry_blocks",
                                 "miss_rate", "io_s", "prefetch_s"});

  auto report = [&](Workbench& wb, const std::string& sweep,
                    const std::string& value) {
    RunResult r = wb.run_app_aware(path);
    table.row({sweep, value, TablePrinter::fmt(wb.table().mean_entry_size(), 1),
               TablePrinter::fmt(r.fast_miss_rate, 4),
               TablePrinter::fmt(r.io_time, 3),
               TablePrinter::fmt(r.prefetch_time, 3)});
    csv.row({sweep, value, CsvWriter::to_cell(wb.table().mean_entry_size()),
             CsvWriter::to_cell(r.fast_miss_rate),
             CsvWriter::to_cell(r.io_time),
             CsvWriter::to_cell(r.prefetch_time)});
  };

  // (a) vicinal sample count.
  std::vector<usize> counts{1, 2, 4, 8, 16, 32};
  if (env.quick) counts = {2, 8};
  for (usize count : counts) {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = env.scale;
    spec.target_blocks = 512;
    spec.vicinal_samples = count;
    spec.omega = {12, 24, 3, 2.5, 3.5};
    spec.path_step_deg = 7.5;
    Workbench wb(spec);
    report(wb, "vicinal_samples", std::to_string(count));
  }

  // (b) fixed radius from severe under- to severe over-prediction.
  std::vector<double> radii{0.005, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  if (env.quick) radii = {0.02, 0.2};
  for (double r : radii) {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = env.scale;
    spec.target_blocks = 512;
    spec.vicinal_samples = 6;
    spec.omega = {12, 24, 3, 2.5, 3.5};
    spec.fixed_radius = r;
    Workbench wb(spec);
    report(wb, "fixed_radius", TablePrinter::fmt(r, 3));
  }

  table.print("Ablation — vicinal construction");
  std::cout << "(tiny radii under-predict (higher miss), huge radii "
               "over-predict (entropy-trimmed entries, more prefetch I/O))\n";
  return 0;
}
