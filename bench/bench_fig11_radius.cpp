// Reproduces Fig. 11: total I/O + prefetching time over a 400-position
// camera path on lifted_rr (1024 blocks), comparing the vicinal radius
// computed by the Eq. 6 model against the pre-defined radii
// {0.1, 0.075, 0.05, 0.025} (relative to the normalized volume edge 2).
//
// Expected shape (paper): the model radius achieves the lowest total
// I/O + prefetch time — and adapts automatically when d changes (zoom).

#include <iostream>

#include "common.hpp"

using namespace vizcache;
using namespace vizcache::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse("fig11_radius", argc, argv);
  env.banner(
      "Fig. 11: I/O + prefetch time, Eq. 6 model radius vs fixed radii "
      "(lifted_rr, 1024 blocks)");

  WorkbenchSpec spec;
  spec.dataset = DatasetId::kLiftedRr;
  spec.scale = env.scale;
  spec.target_blocks = 1024;
  spec.omega = {12, 24, 3, 2.5, 3.5};
  spec.vicinal_samples = 6;
  spec.path_step_deg = 5.0;
  Workbench wb(spec);

  // Zoom-in/zoom-out path: the distance varies, which is exactly the case
  // where the model's d-dependent radius should win.
  RandomPathSpec rp;
  rp.step_min_deg = 4.0;
  rp.step_max_deg = 6.0;
  rp.distance_min = 2.5;
  rp.distance_max = 3.5;
  rp.positions = env.positions;
  rp.seed = env.seed;
  CameraPath path = make_random_path(rp);

  TablePrinter table(
      {"radius", "io(s)", "prefetch(s)", "io+prefetch(s)", "miss_rate"});
  CsvWriter csv(env.csv_path(),
                {"radius", "io_s", "prefetch_s", "io_plus_prefetch_s",
                 "miss_rate"});

  auto report = [&](const std::string& label, const RunResult& r) {
    table.row({label, TablePrinter::fmt(r.io_time, 3),
               TablePrinter::fmt(r.prefetch_time, 3),
               TablePrinter::fmt(r.io_time + r.prefetch_time, 3),
               TablePrinter::fmt(r.fast_miss_rate, 4)});
    csv.row({label, CsvWriter::to_cell(r.io_time),
             CsvWriter::to_cell(r.prefetch_time),
             CsvWriter::to_cell(r.io_time + r.prefetch_time),
             CsvWriter::to_cell(r.fast_miss_rate)});
  };

  // Model-computed radius (Eq. 6, evaluated per sample distance d).
  wb.rebuild_table(spec.omega, std::nullopt);
  report("model (Eq.6)", wb.run_app_aware(path));

  for (double r : {0.1, 0.075, 0.05, 0.025}) {
    wb.rebuild_table(spec.omega, r);
    report(TablePrinter::fmt(r, 3), wb.run_app_aware(path));
  }

  table.print("Fig. 11 — vicinal radius comparison");
  std::cout << "(the model row should have the lowest io+prefetch total)\n";
  return 0;
}
