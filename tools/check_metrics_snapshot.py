#!/usr/bin/env python3
"""Validate a vizcache metrics-snapshot JSON artifact.

CI runs the fig13 bench in quick mode and feeds the exported
`*.metrics.json` through this script: a snapshot that silently lost one of
the load-bearing instruments (a bind_metrics call dropped, a name renamed
on one side only) fails the build instead of producing an empty dashboard.

Usage:
  check_metrics_snapshot.py snapshot.json [--app-aware | --service]

`--app-aware` additionally requires the prefetch-side instruments to be
present AND non-zero (an app-aware run that never prefetched is a bug).

`--service` validates a BlockService snapshot instead (bench_service /
multi_user_demo): the `service.*` instruments must be present and, because
those runs drive overlapping sessions, the coalesced-read counters must be
non-zero (overlapping sessions that never coalesced a read is a bug).

`--net` validates a NetServer snapshot (bench_net): the `net.*` instruments
must be present, the scenario counters (malformed frames, backpressure
drops, coalesced reads) must be non-zero because the bench stages those
scenarios deterministically, and the active-connection / active-session
gauges must have returned to zero (a leaked connection or session is a
bug).

Exit status 0 when the snapshot is complete, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

# Instruments every pipeline run must export, whatever the policy.
REQUIRED_COUNTERS = [
    "cache.dram.hits",
    "cache.dram.misses",
    "cache.ssd.hits",
    "cache.ssd.misses",
    "hierarchy.demand.requests",
    "hierarchy.demand.backing_reads",
    "hierarchy.demand.backing_bytes",
    "hierarchy.prefetch.backing_reads",
    "pipeline.steps",
]
REQUIRED_GAUGES = [
    "pipeline.io_seconds",
    "pipeline.render_seconds",
    "pipeline.total_seconds",
    "pipeline.fast_miss_rate",
]
REQUIRED_HISTOGRAMS = [
    "pipeline.step.total_seconds",
]

# Extra requirements for an app-aware (OPT) run: these must be non-zero.
APP_AWARE_NONZERO_COUNTERS = [
    "hierarchy.prefetch.requests",
]

# Instruments a BlockService run must export (bench_service, multi_user_demo).
SERVICE_REQUIRED_COUNTERS = [
    "cache.dram.hits",
    "cache.dram.misses",
    "service.sessions.opened",
    "service.sessions.closed",
    "service.sessions.rejected",
    "service.steps",
    "service.demand.requests",
    "service.demand.fast_misses",
    "service.demand.coalesced_hits",
    "service.prefetch.blocks",
    "service.prefetch.shed",
    "service.prefetch.suppressed",
    "service.hierarchy.demand.requests",
    "service.hierarchy.demand.backing_reads",
    "service.hierarchy.coalescer.claims",
    "service.hierarchy.coalescer.completions",
    "service.hierarchy.coalescer.coalesced_waits",
]
SERVICE_REQUIRED_GAUGES = [
    "service.sessions.active",
]
SERVICE_REQUIRED_HISTOGRAMS = [
    "service.step.sim_seconds",
]

# Service runs drive OVERLAPPING sessions; sharing must actually happen.
SERVICE_NONZERO_COUNTERS = [
    "service.demand.coalesced_hits",
    "service.hierarchy.coalescer.coalesced_waits",
]

# Instruments a NetServer run must export (bench_net). The bench stages the
# hostile scenarios deterministically, so the scenario counters must have
# actually fired — a zero means the scenario silently stopped exercising the
# path it exists to cover.
NET_REQUIRED_COUNTERS = [
    "net.connections.accepted",
    "net.connections.closed",
    "net.connections.rejected",
    "net.frames.received",
    "net.frames.sent",
    "net.bytes.read",
    "net.bytes.written",
    "net.errors.malformed",
    "net.backpressure.closed",
]
NET_NONZERO_COUNTERS = [
    "net.connections.accepted",
    "net.frames.received",
    "net.frames.sent",
    "net.errors.malformed",
    "net.backpressure.closed",
    "service.demand.coalesced_hits",
]
# After a clean shutdown nothing may still be live.
NET_ZERO_GAUGES = [
    "net.connections.active",
    "service.sessions.active",
]


def check_net(snapshot: dict) -> list[str]:
    problems: list[str] = []
    counters = snapshot["counters"]
    for name in NET_REQUIRED_COUNTERS:
        if name not in counters:
            problems.append(f"missing counter: {name}")
    for name in NET_NONZERO_COUNTERS:
        if counters.get(name) == 0:
            problems.append(f"net run but counter is zero: {name}")
    for name in NET_ZERO_GAUGES:
        value = snapshot["gauges"].get(name)
        if value is None:
            problems.append(f"missing gauge: {name}")
        elif value != 0:
            problems.append(f"leaked after shutdown: {name} = {value}")
    accepted = counters.get("net.connections.accepted")
    closed = counters.get("net.connections.closed")
    if accepted is not None and closed is not None and accepted != closed:
        problems.append(
            f"connection leak: {accepted} accepted vs {closed} closed")
    return problems


def check_service(snapshot: dict) -> list[str]:
    problems: list[str] = []
    counters = snapshot["counters"]
    for name in SERVICE_REQUIRED_COUNTERS:
        if name not in counters:
            problems.append(f"missing counter: {name}")
    for name in SERVICE_REQUIRED_GAUGES:
        if name not in snapshot["gauges"]:
            problems.append(f"missing gauge: {name}")
    for name in SERVICE_REQUIRED_HISTOGRAMS:
        hist = snapshot["histograms"].get(name)
        if hist is None:
            problems.append(f"missing histogram: {name}")
        elif not isinstance(hist.get("buckets"), dict) or "count" not in hist:
            problems.append(f"malformed histogram: {name}")
    for name in SERVICE_NONZERO_COUNTERS:
        if counters.get(name) == 0:
            problems.append(
                f"overlapping-session run but counter is zero: {name}")
    claims = counters.get("service.hierarchy.coalescer.claims")
    completions = counters.get("service.hierarchy.coalescer.completions")
    if claims is not None and completions is not None and claims != completions:
        problems.append(
            f"coalescer leaked claims: {claims} claims vs "
            f"{completions} completions")
    return problems


def check(snapshot: dict, app_aware: bool, service: bool,
          net: bool = False) -> list[str]:
    problems: list[str] = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            problems.append(f"missing or malformed section: {section}")
    if problems:
        return problems

    if net:
        return check_net(snapshot)
    if service:
        return check_service(snapshot)

    counters = snapshot["counters"]
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            problems.append(f"missing counter: {name}")
    for name in REQUIRED_GAUGES:
        if name not in snapshot["gauges"]:
            problems.append(f"missing gauge: {name}")
    for name in REQUIRED_HISTOGRAMS:
        hist = snapshot["histograms"].get(name)
        if hist is None:
            problems.append(f"missing histogram: {name}")
        elif not isinstance(hist.get("buckets"), dict) or "count" not in hist:
            problems.append(f"malformed histogram: {name}")

    if app_aware:
        for name in APP_AWARE_NONZERO_COUNTERS:
            value = counters.get(name)
            if value is None:
                problems.append(f"missing counter: {name}")
            elif value == 0:
                problems.append(f"app-aware run but counter is zero: {name}")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", help="path to a *.metrics.json artifact")
    parser.add_argument(
        "--app-aware",
        action="store_true",
        help="require non-zero prefetch instruments (OPT runs)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="validate a BlockService snapshot (service.* instruments, "
        "non-zero coalesced-read counters)",
    )
    parser.add_argument(
        "--net",
        action="store_true",
        help="validate a NetServer snapshot (net.* instruments, non-zero "
        "scenario counters, gauges back at zero)",
    )
    args = parser.parse_args(argv)
    if sum([args.app_aware, args.service, args.net]) > 1:
        parser.error("--app-aware, --service and --net are mutually "
                     "exclusive")

    try:
        with open(args.snapshot, encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_metrics_snapshot: cannot read {args.snapshot}: {e}",
              file=sys.stderr)
        return 1

    problems = check(snapshot, args.app_aware, args.service,
                     args.net)
    for p in problems:
        print(f"check_metrics_snapshot: {args.snapshot}: {p}", file=sys.stderr)
    if not problems:
        print(f"check_metrics_snapshot: {args.snapshot}: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
