"""Hot-path discipline: no allocation, I/O, throw, or blocking on the
latency-critical entry points.

The paper's interactivity argument is an end-to-end latency budget: the
render inner loop and the per-frame fetch/step path must not hide a heap
allocation, a console write, or a blocking primitive behind three calls.
This pass walks the transitive callees (call_graph.py, src/ only) of a
*declared registry* of hot entry points and reports:

  hot-path-alloc          operator new, make_unique/make_shared, growing
                          container ops (push_back/emplace/resize/...)
  hot-path-io             console or file I/O (streams, printf, stream
                          method calls on stream-typed fields)
  hot-path-throw          a `throw` expression (includes rethrow)
  hot-path-block          sleeps, CondVar waits, thread joins
  hot-path-missing-entry  a registry entry that matches no call-graph node
                          — the registry cannot rot silently when an entry
                          point is renamed

Leaf Mutex acquisition is *not* a violation: short critical sections are
the concurrency design (DESIGN.md), and lock_graph.py polices what happens
under them. By-design allocation/I-O sites (e.g. the store read at the
bottom of a demand fetch) carry `// analyze: allow(check): justification`
— the suppression marks exactly where the hot path is allowed to touch
the allocator or the device.

`boundaries` in the registry name vetted fan-out points (with a mandatory
justification) where traversal stops: ThreadPool::parallel_for's own
bookkeeping allocates once per frame by design, while the per-row work it
runs is still scanned — lambdas are lexically part of the enclosing body.

The default registry below covers today's hot set; --hot-registry FILE
(JSON, same shape) replaces it, which is also how the fixture self-tests
pin their own entries. Extend the default list in-place when new hot
entry points land (SIMD raycaster, src/net serving loop).
"""

from __future__ import annotations

import json

from include_graph import Finding
import lock_graph as lg
import call_graph as cgm

DEFAULT_CHECKS = ("hot-path-alloc", "hot-path-io", "hot-path-throw",
                  "hot-path-block")

DEFAULT_REGISTRY = {
    "entries": [
        {"function": "raycast",
         "why": "per-pixel brick sampling inner loop (fig-13 latency)"},
        {"function": "raycast_packet",
         "why": "SIMD packet render path: per-sample vector loop plus the "
                "per-lane scalar segment walk"},
        {"function": "MemoryHierarchy::fetch",
         "why": "demand fetch on the frame critical path"},
        {"function": "MemoryHierarchy::prefetch",
         "why": "speculative fetch shares the fetch machinery"},
        {"function": "BlockService::step",
         "why": "per-frame admission/eviction step of the shared service"},
        {"function": "SharedHierarchy::fetch",
         "why": "multi-session fetch front door"},
        {"function": "AsyncPrefetcher::get_blocking",
         "why": "demand path through the prefetcher"},
    ],
    "boundaries": {
        "ThreadPool::parallel_for":
            "vetted fan-out point: one ParallelForState allocation and a "
            "completion wait per call, amortized across the whole frame; "
            "the per-row work runs in the caller's lambda, which is still "
            "scanned",
    },
}

# Incremental growth ops only: one-shot pre-sizing (reserve/resize before a
# fill) is the sanctioned idiom this check pushes call sites toward, so it
# is deliberately NOT flagged.
GROW_OPS = {"push_back", "emplace_back", "push_front", "emplace",
            "try_emplace"}
PRINTF_LIKE = {"printf", "fprintf", "puts", "fputs", "fopen", "fwrite",
               "fread"}


def load_registry(path: str | None):
    """Load a registry JSON, or the built-in default. Raises ValueError on
    a malformed file (analyze.py maps that to exit 2, not a finding)."""
    if path is None:
        return DEFAULT_REGISTRY
    with open(path, encoding="utf-8") as f:
        reg = json.load(f)
    if not isinstance(reg, dict) or not isinstance(reg.get("entries"), list):
        raise ValueError(f"hot-path registry {path}: expected an object "
                         "with an 'entries' list")
    for entry in reg["entries"]:
        if not isinstance(entry, dict) or "function" not in entry:
            raise ValueError(f"hot-path registry {path}: every entry needs "
                             "a 'function' key")
    boundaries = reg.get("boundaries", {})
    if not isinstance(boundaries, dict):
        raise ValueError(f"hot-path registry {path}: 'boundaries' must map "
                         "function -> justification")
    for fn, why in boundaries.items():
        if not str(why).strip():
            raise ValueError(f"hot-path registry {path}: boundary '{fn}' "
                             "needs a justification")
    return reg


# --------------------------------------------------------------------------
# Per-function facts
# --------------------------------------------------------------------------

def _body_facts(body: lg.FuncBody, model: lg.Model) -> list[tuple]:
    """(file, line, check, message) facts local to one body."""
    facts: list[tuple] = []
    cls = model.classes.get(body.cls) if body.cls else None
    toks = body.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        nxt = toks[i + 1].text if i + 1 < n else ""
        prev = toks[i - 1].text if i > 0 else ""
        if t.text == "throw":
            facts.append((body.file, t.line, "hot-path-throw",
                          "`throw` on the hot path — report failure via "
                          "status/optional instead"))
            continue
        if t.text == "new" and prev != "=":
            facts.append((body.file, t.line, "hot-path-alloc",
                          "operator new on the hot path"))
            continue
        if t.text in ("make_unique", "make_shared") and nxt in ("(", "<"):
            facts.append((body.file, t.line, "hot-path-alloc",
                          f"heap allocation (std::{t.text})"))
            continue
        if t.text in GROW_OPS and nxt == "(" and prev in (".", "->"):
            recv = toks[i - 2].text if i >= 2 else "?"
            facts.append((body.file, t.line, "hot-path-alloc",
                          f"container growth ({recv}.{t.text}) may "
                          "reallocate — pre-reserve or hoist the buffer"))
            continue
        if t.text in ("cout", "cerr") and prev == "::" and i >= 2 \
                and toks[i - 2].text == "std":
            facts.append((body.file, t.line, "hot-path-io",
                          f"console I/O (std::{t.text})"))
            continue
        if t.text in PRINTF_LIKE and nxt == "(":
            facts.append((body.file, t.line, "hot-path-io",
                          f"I/O call ({t.text})"))
            continue
        if t.text in lg.STREAM_TYPES:
            facts.append((body.file, t.line, "hot-path-io",
                          f"file stream (std::{t.text}) on the hot path"))
            continue
        if t.text in lg.FILE_IO_METHODS and nxt == "(" and prev in (".", "->"):
            recv = toks[i - 2].text if i >= 2 else ""
            fields = ([cls.fields[recv]] if cls and recv in (cls.fields or {})
                      else model.field_index.get(recv, []))
            if any(any(ti in lg.STREAM_TYPES for ti in f.type_ids)
                   for f in fields):
                facts.append((body.file, t.line, "hot-path-io",
                              f"file I/O ({recv}.{t.text})"))
            continue
        if t.text in lg.SLEEP_NAMES and nxt == "(":
            facts.append((body.file, t.line, "hot-path-block",
                          f"sleep ({t.text}) on the hot path"))
            continue
        if t.text == "wait" and nxt == "(" and prev in (".", "->"):
            recv = toks[i - 2].text if i >= 2 else ""
            fields = ([cls.fields[recv]] if cls and recv in (cls.fields or {})
                      else model.field_index.get(recv, []))
            if any(f.is_condvar for f in fields):
                facts.append((body.file, t.line, "hot-path-block",
                              f"CondVar wait ({recv}.wait)"))
            continue
        if t.text in lg.JOIN_METHODS and nxt == "(" and prev in (".", "->"):
            recv = toks[i - 2].text if i >= 2 else "?"
            facts.append((body.file, t.line, "hot-path-block",
                          f"thread join ({recv}.join)"))
            continue
    return facts


# --------------------------------------------------------------------------
# Traversal
# --------------------------------------------------------------------------

def check_hot_paths(model: lg.Model, cg: cgm.CallGraph, registry,
                    anchor: str) -> list[Finding]:
    """BFS the call graph from each registry entry; report every fact in
    the reachable set. `anchor` is the repo-relative path findings about
    the registry itself (missing entries) attach to."""
    findings: list[Finding] = []
    boundaries = registry.get("boundaries", {})
    facts_cache: dict[str, list[tuple]] = {}
    reported: set[tuple] = set()

    def node_facts(qual: str) -> list[tuple]:
        cached = facts_cache.get(qual)
        if cached is None:
            cached = []
            for body in cg.nodes.get(qual, ()):
                cached.extend(_body_facts(body, model))
            facts_cache[qual] = cached
        return cached

    for entry in registry.get("entries", []):
        fn = entry["function"]
        checks = set(entry.get("checks", DEFAULT_CHECKS))
        if fn not in cg.nodes:
            findings.append(Finding(
                anchor, 1, "hot-path-missing-entry",
                f"hot-path registry entry '{fn}' matches no function in "
                "the call graph — the entry point was renamed or removed; "
                "update the registry"))
            continue
        parent: dict[str, str | None] = {fn: None}
        queue = [fn]
        while queue:
            q = queue.pop(0)
            chain: list[str] = []
            c: str | None = q
            while c is not None:
                chain.append(c)
                c = parent[c]
            chain.reverse()
            for (file, line, check, msg) in node_facts(q):
                if check not in checks:
                    continue
                key = (file, line, check)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(Finding(
                    file, line, check,
                    f"{msg} — hot path {' -> '.join(chain)} "
                    f"({entry.get('why', 'registered hot entry')})",
                    chain=tuple(chain)))
            for e in cg.edges.get(q, ()):
                if e.target in parent or e.target in boundaries:
                    continue
                if e.target not in cg.nodes:
                    continue  # decl-only or out-of-scope override
                parent[e.target] = q
                queue.append(e.target)
    return findings
