"""Static lock-graph verification of the leaf-lock rule.

DESIGN.md ("Locking discipline") states the repo-wide invariant: every
vizcache Mutex is a *leaf* lock — no code path acquires a second Mutex,
sleeps, or performs blocking work while holding one. PR 1 made the data
side checkable (`GUARDED_BY` + clang -Wthread-safety); this pass makes the
*call* side checkable without running anything:

  lock-held-call       a function that directly or transitively acquires a
                       Mutex (constructs a MutexLock, or is EXCLUDES/
                       ACQUIRE-annotated) — or a REQUIRES-annotated
                       function whose mutex is not the one held — is called
                       while a MutexLock is live; indirect findings print
                       the full call chain to the acquisition
  lock-blocking        blocking work under a lock: file I/O, stream ctors,
                       thread joins, sleeps, or a call chain reaching any
                       of those (call_graph.py's transitive closure)
  lock-foreign-wait    CondVar::wait(m) while holding a lock on a mutex
                       other than m (waiting on the held mutex is the one
                       sanctioned exception)
  lock-unguarded-field a non-static field of a Mutex-owning class with no
                       GUARDED_BY/PT_GUARDED_BY and no exempting shape
                       (const, reference, atomic, Mutex/CondVar, or a type
                       that is itself a lock-owning class)

The one sanctioned escape hatch: a call or I/O operation on a *field that
is GUARDED_BY the held mutex* is exempt — operating on the data the lock
guards is the critical section's purpose (e.g. PackedFileBlockStore's
file_ reads under io_mutex_, SharedHierarchy's hier_ calls under mutex_).

Nested acquisitions additionally feed call_graph.py's lock-order graph
(held-lock-class -> acquired-lock-class, recorded even for suppressed or
guard-exempt sites), whose cycles are reported as lock-order-cycle.

What this pass can and cannot prove is documented in DESIGN.md
("Architecture analysis"): resolution rides the project call graph — a
deliberate under-approximation (no by-name fallback for unknown receivers;
macros and constructors invisible) with virtual calls over-approximated to
every overrider — so a genuinely unresolvable or ambiguous call can need
an `analyze: allow` suppression. It complements, not replaces,
-Wthread-safety (data races) and TSan (dynamic interleavings).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from cpptok import SourceCache, Tok, iter_source_files
from include_graph import Finding

# The annotated primitive itself: its internals ARE the raw synchronization
# layer and are vetted by hand + lint's raw-sync allowlist.
IMPL_ALLOWLIST = {"src/util/annotated_mutex.hpp"}

ANNOTATIONS = {
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "REQUIRES", "REQUIRES_SHARED",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE",
    "EXCLUDES", "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "VIZ_THREAD_ANNOTATION",
}

KEYWORDS = {
    "if", "while", "for", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "throw", "new", "delete", "co_await",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "assert",
    "defined", "typeid",
}

SLEEP_NAMES = {"sleep_for", "sleep_until", "usleep", "nanosleep"}
STREAM_TYPES = {"ifstream", "ofstream", "fstream"}
FILE_IO_METHODS = {"open", "read", "write", "seekg", "seekp", "tellg",
                   "getline", "close"}
JOIN_METHODS = {"join"}


@dataclass
class FieldInfo:
    name: str
    line: int
    file: str
    cls: str
    guarded_by: str | None = None
    is_mutex: bool = False
    is_condvar: bool = False
    is_const: bool = False
    is_ref: bool = False
    is_static: bool = False
    is_atomic: bool = False
    type_ids: tuple = ()


@dataclass
class MethodSig:
    name: str
    cls: str
    requires: str | None = None   # REQUIRES(arg) text
    acquires: bool = False        # EXCLUDES/ACQUIRE-annotated declaration


@dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    bases: tuple = ()                             # direct base class names
    fields: dict = field(default_factory=dict)    # name -> FieldInfo
    methods: dict = field(default_factory=dict)   # name -> MethodSig

    @property
    def mutexes(self):
        return {f.name for f in self.fields.values() if f.is_mutex}


@dataclass
class FuncBody:
    name: str
    cls: str | None
    file: str
    toks: list              # body tokens, excluding the outer braces
    line: int
    sig_toks: list = field(default_factory=list)  # declaration tokens
                                                  # (annotations stripped)

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


class Model:
    """Whole-tree registry built in pass 1, queried in passes 2 and 3."""

    def __init__(self):
        self.classes: dict[str, ClassInfo] = {}
        self.bodies: list[FuncBody] = []
        # name -> evidence; values are human-readable origins for messages.
        self.locking: dict[str, str] = {}
        self.requires: dict[str, list[MethodSig]] = {}
        self.blocking: dict[str, str] = {}
        self.field_index: dict[str, list[FieldInfo]] = {}
        # Qualified name -> (annotation arg, evidence) for EXCLUDES/ACQUIRE
        # declarations: the call graph seeds lock identities from these even
        # when the annotated function's body is elsewhere or absent.
        self.decl_acquires: dict[str, tuple[str, str]] = {}
        # `using X = std::function<...>` aliases: calls through fields of
        # these types are indirect-call sites the call graph cannot resolve.
        self.fn_aliases: set[str] = set()

    def add_class(self, cls: ClassInfo) -> None:
        self.classes[cls.name] = cls
        for f in cls.fields.values():
            self.field_index.setdefault(f.name, []).append(f)


# --------------------------------------------------------------------------
# Pass 1: parse files into classes + function bodies
# --------------------------------------------------------------------------

def _match_paren(toks: list[Tok], i: int) -> int:
    """toks[i] is '('; return index just past its matching ')'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if toks[i].kind == "punct":
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return len(toks)


def _match_brace(toks: list[Tok], i: int) -> int:
    """toks[i] is '{'; return index just past its matching '}'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if toks[i].kind == "punct":
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return len(toks)


def _expr_text(toks: list[Tok]) -> str:
    return "".join(t.text for t in toks)


def _extract_annotations(stmt: list[Tok]):
    """Split `stmt` into (tokens-without-annotation-groups, {macro: argtext})."""
    out: list[Tok] = []
    annots: dict[str, str] = {}
    i = 0
    while i < len(stmt):
        t = stmt[i]
        if (t.kind == "id" and t.text in ANNOTATIONS
                and i + 1 < len(stmt) and stmt[i + 1].text == "("):
            end = _match_paren(stmt, i + 1)
            annots[t.text] = _expr_text(stmt[i + 2 : end - 1])
            i = end
            continue
        if t.kind == "id" and t.text in ANNOTATIONS:
            annots.setdefault(t.text, "")
            i += 1
            continue
        out.append(t)
        i += 1
    return out, annots


def _paren_indices_at_angle0(stmt: list[Tok]) -> list[int]:
    """Indices of '(' tokens not nested inside template angle brackets."""
    idxs = []
    angle = 0
    pdepth = 0
    for i, t in enumerate(stmt):
        if t.kind != "punct":
            continue
        if t.text == "<":
            angle += 1
        elif t.text == ">" and angle > 0:
            angle -= 1
        elif t.text == ">>" and angle > 0:
            angle = max(0, angle - 2)
        elif t.text == "(":
            if angle == 0 and pdepth == 0:
                idxs.append(i)
            pdepth += 1
        elif t.text == ")":
            pdepth = max(0, pdepth - 1)
    return idxs


class _Parser:
    def __init__(self, rel: str, toks: list[Tok], model: Model):
        self.rel = rel
        self.toks = toks
        self.model = model

    def parse(self) -> None:
        self._scan_region(0, len(self.toks), cls=None)

    # -- region scanning ---------------------------------------------------

    def _scan_region(self, i: int, end: int, cls: ClassInfo | None) -> None:
        """Scan declarations between i and end (namespace or class body)."""
        toks = self.toks
        stmt_start = i
        while i < end:
            t = toks[i]
            if t.kind == "pp":
                i += 1
                stmt_start = i
                continue
            if t.kind == "punct" and t.text == ";":
                self._handle_statement(toks[stmt_start:i], cls, body=None)
                i += 1
                stmt_start = i
                continue
            if t.kind == "punct" and t.text == ":":
                # access specifier inside a class body
                stmt = toks[stmt_start:i]
                if (cls is not None and len(stmt) == 1 and stmt[0].kind == "id"
                        and stmt[0].text in ("public", "private", "protected")):
                    i += 1
                    stmt_start = i
                    continue
                i += 1
                continue
            if t.kind == "punct" and t.text == "{":
                stmt = toks[stmt_start:i]
                close = _match_brace(toks, i)
                kind = self._statement_kind(stmt)
                if kind == "namespace":
                    self._scan_region(i + 1, close - 1, cls=None)
                elif kind == "class":
                    self._parse_class(stmt, i, close)
                elif kind == "function":
                    self._handle_statement(stmt, cls, body=(i + 1, close - 1))
                elif kind == "initializer":
                    # brace init of a member/variable: statement continues
                    i = close
                    continue
                # enum / extern / unknown: skip the block either way
                i = close
                # an optional trailing ';' is consumed by the ';' branch
                stmt_start = i
                continue
            i += 1

    @staticmethod
    def _statement_kind(stmt: list[Tok]) -> str:
        ids = [t.text for t in stmt if t.kind == "id"]
        j = 0
        if ids[:1] == ["template"]:
            pass  # fall through: templated class or function
        for t in stmt:
            if t.kind != "id":
                continue
            if t.text == "namespace":
                return "namespace"
            if t.text in ("class", "struct", "union"):
                # 'enum class' is an enum; 'struct' in a param list can't
                # reach here (that statement would contain '(' first).
                if "enum" in ids:
                    return "enum"
                # a declaration like 'struct X x = {...}' is not a definition
                return "class"
            if t.text == "enum":
                return "enum"
            break
        if _paren_indices_at_angle0(_extract_annotations(stmt)[0]):
            return "function"
        if stmt and any(t.text == "=" for t in stmt):
            return "initializer"
        if not ids:
            return "unknown"
        return "initializer"

    # -- class parsing -----------------------------------------------------

    def _parse_class(self, head: list[Tok], brace: int, close: int) -> None:
        # class name: last plain id before ':' (bases) / '{', skipping
        # annotation macros and 'final'.
        head_wo, _ = _extract_annotations(head)
        name = None
        bases: list[str] = []
        in_bases = False
        angle = 0
        for t in head_wo:
            if t.kind == "punct":
                if t.text == "<":
                    angle += 1
                elif t.text == ">":
                    angle = max(0, angle - 1)
                elif t.text == ">>":
                    angle = max(0, angle - 2)
                elif t.text == ":" and angle == 0:
                    in_bases = True
                continue
            if t.kind != "id":
                continue
            if in_bases:
                # base names at angle depth 0; access specifiers and
                # `virtual` are noise, template args live inside angles.
                if angle == 0 and t.text not in ("public", "protected",
                                                 "private", "virtual"):
                    bases.append(t.text)
                continue
            if t.text in ("class", "struct", "union", "final", "alignas"):
                continue
            name = t.text
        if name is None:
            return
        cls = ClassInfo(name=name, file=self.rel, bases=tuple(bases),
                        line=head[0].line if head else self.toks[brace].line)
        self._scan_region(brace + 1, close - 1, cls=cls)
        self.model.add_class(cls)

    # -- statement classification within a region --------------------------

    def _handle_statement(self, stmt: list[Tok], cls: ClassInfo | None,
                          body) -> None:
        if not stmt:
            return
        first = stmt[0]
        if first.kind == "id" and first.text in ("using", "typedef", "friend",
                                                 "template"):
            if first.text == "using":
                ids = [t.text for t in stmt if t.kind == "id"]
                # `using Alias = std::function<...>`: remember the alias so
                # call sites through fields of this type are flagged as
                # indirect (unresolvable) rather than silently dropped.
                if len(ids) >= 3 and "function" in ids[2:]:
                    self.model.fn_aliases.add(ids[1])
            # templates: the repo's lock classes are untemplated; skip.
            if body is None:
                return
        clean, annots = _extract_annotations(stmt)
        parens = _paren_indices_at_angle0(clean)
        if parens:
            self._handle_function(stmt, clean, annots, parens, cls, body)
        elif cls is not None and body is None:
            self._handle_field(clean, annots, cls)

    def _handle_function(self, stmt, clean, annots, parens, cls, body):
        # function name = identifier immediately before the first angle-0 '('
        p = parens[0]
        if p == 0:
            return
        nm = clean[p - 1]
        if nm.kind != "id":
            return  # operator overloads etc.: not name-addressable, skip
        name = nm.text
        # owning class: 'Cls :: name (' in a .cpp, else the enclosing class
        owner = cls.name if cls is not None else None
        if p >= 2 and clean[p - 2].text == "~":
            # destructor: '~Cls()' in-class or 'Cls::~Cls()' out-of-line.
            # Named '~Cls' so it gets its own call-graph node instead of
            # merging into the constructor (in-class) or a free function
            # (out-of-line, where '::' sits at p-3, not p-2).
            name = "~" + name
            if p >= 4 and clean[p - 3].text == "::" \
                    and clean[p - 4].kind == "id":
                owner = clean[p - 4].text
        elif p >= 3 and clean[p - 2].text == "::" and clean[p - 3].kind == "id":
            owner = clean[p - 3].text
        sig = MethodSig(name=name, cls=owner or "")
        if "REQUIRES" in annots or "REQUIRES_SHARED" in annots:
            sig.requires = annots.get("REQUIRES", annots.get("REQUIRES_SHARED"))
            self.model.requires.setdefault(name, []).append(sig)
        if any(a in annots for a in ("EXCLUDES", "ACQUIRE", "ACQUIRE_SHARED")):
            sig.acquires = True
            qual = f"{owner}::{name}" if owner else name
            evidence = (f"{qual} is EXCLUDES/ACQUIRE-annotated "
                        f"({self.rel}:{nm.line})")
            self.model.locking.setdefault(name, evidence)
            arg = (annots.get("EXCLUDES") or annots.get("ACQUIRE")
                   or annots.get("ACQUIRE_SHARED") or "")
            self.model.decl_acquires.setdefault(qual, (arg, evidence))
        if cls is not None and name not in cls.methods:
            cls.methods[name] = sig
        if body is not None:
            lo, hi = body
            self.model.bodies.append(FuncBody(
                name=name, cls=owner, file=self.rel,
                toks=self.toks[lo:hi], line=nm.line, sig_toks=clean))

    def _handle_field(self, clean, annots, cls: ClassInfo) -> None:
        if not clean:
            return
        ids = [t for t in clean if t.kind == "id"]
        if not ids:
            return
        kw = {t.text for t in ids}
        if kw & {"using", "typedef", "friend", "static_assert", "enum"}:
            return
        # name: last id before '=' / '{' (default init), else last id.
        name_tok = None
        for t in clean:
            if t.kind == "punct" and t.text in ("=", "{"):
                break
            if t.kind == "id" and t.text not in ("const", "mutable", "static",
                                                 "constexpr", "volatile"):
                name_tok = t
        if name_tok is None:
            return
        type_ids = tuple(t.text for t in ids if t is not name_tok)
        angle = 0
        top_amp = False
        for t in clean:
            if t.kind != "punct":
                continue
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            elif t.text == ">>":
                angle = max(0, angle - 2)
            elif t.text == "&" and angle == 0:
                top_amp = True
        info = FieldInfo(
            name=name_tok.text, line=name_tok.line, file=self.rel,
            cls=cls.name,
            guarded_by=annots.get("GUARDED_BY", annots.get("PT_GUARDED_BY")),
            is_mutex="Mutex" in type_ids,
            is_condvar="CondVar" in type_ids,
            is_const="const" in kw or "constexpr" in kw,
            is_ref=top_amp,
            is_static="static" in kw,
            is_atomic="atomic" in type_ids,
            type_ids=type_ids,
        )
        cls.fields[info.name] = info


# --------------------------------------------------------------------------
# Pass 2: classify functions (locking / blocking)
# --------------------------------------------------------------------------

def _body_acquires(body: FuncBody) -> bool:
    toks = body.toks
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "MutexLock":
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if nxt is not None and (nxt.kind == "id" or nxt.text == "("):
                return True
    return False


def _body_blocks(body: FuncBody, model: Model) -> str | None:
    toks = body.toks
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        if t.text in SLEEP_NAMES and nxt == "(":
            return f"calls std::this_thread::{t.text}"
        if t.text in STREAM_TYPES:
            return f"constructs std::{t.text}"
        if t.text in FILE_IO_METHODS and nxt == "(" and i > 0 and \
                toks[i - 1].text in (".", "->"):
            recv = toks[i - 2].text if i >= 2 else "?"
            # only stream-shaped receivers: a field of fstream-ish type or
            # a field the model knows; plain containers also have read/write
            # lookalikes, so require the receiver be a known stream field.
            for f in model.field_index.get(recv, []):
                if any(ti in STREAM_TYPES for ti in f.type_ids):
                    return f"performs file I/O on {recv}"
    return None


def build_model(root: str, rel_roots: list[str],
                exclude: tuple[str, ...] = (),
                cache: SourceCache | None = None) -> Model:
    model = Model()
    cache = cache or SourceCache()
    abs_roots = [os.path.join(root, r) for r in rel_roots]
    for path in iter_source_files(abs_roots):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if rel in IMPL_ALLOWLIST:
            continue
        if any(rel == e or rel.startswith(e + "/") for e in exclude):
            continue
        _Parser(rel, cache.tokens(path), model).parse()
    for body in model.bodies:
        qual = f"{body.cls}::{body.name}" if body.cls else body.name
        if _body_acquires(body):
            model.locking.setdefault(
                body.name, f"{qual} constructs a MutexLock "
                           f"({body.file}:{body.line})")
        reason = _body_blocks(body, model)
        if reason is not None:
            model.blocking.setdefault(
                body.name, f"{qual} {reason} ({body.file}:{body.line})")
    return model


# --------------------------------------------------------------------------
# Pass 3: walk every body with the lock-scope tracker
# --------------------------------------------------------------------------

@dataclass
class _HeldLock:
    depth: int
    expr: str      # full mutex expression text, e.g. "st->mutex"
    last_id: str   # trailing identifier, e.g. "mutex"
    line: int
    lock_id: str = ""  # class-qualified identity, e.g. "ThreadPool::mutex_"


def resolve_lock_id(last_id: str, cls: ClassInfo | None, model: Model) -> str:
    """Class-qualified identity of a mutex expression's trailing identifier.

    Lock-order analysis works at *lock class* granularity (DESIGN.md): two
    instances of the same class share an identity. Resolution prefers the
    enclosing class's own field, then a unique mutex field anywhere in the
    tree; an unresolvable expression keeps a '?' owner so edges stay visible
    instead of silently vanishing."""
    if cls is not None and last_id in cls.fields and cls.fields[last_id].is_mutex:
        return f"{cls.name}::{last_id}"
    candidates = [f for f in model.field_index.get(last_id, []) if f.is_mutex]
    if len(candidates) == 1:
        return f"{candidates[0].cls}::{last_id}"
    return f"?::{last_id}"


def _receiver(toks: list[Tok], i: int) -> str | None:
    """Identifier receiver of the call whose callee id is at `i`
    (x.f / x->f); None for bare or non-identifier receivers."""
    if i >= 2 and toks[i - 1].text in (".", "->") and toks[i - 2].kind == "id":
        return toks[i - 2].text
    return None


def _qualifier(toks: list[Tok], i: int) -> str | None:
    if i >= 2 and toks[i - 1].text == "::" and toks[i - 2].kind == "id":
        return toks[i - 2].text
    return None


def _guard_exempt(recv: str | None, held: list[_HeldLock], cls: ClassInfo | None,
                  model: Model) -> bool:
    """True when `recv` is a field GUARDED_BY one of the held mutexes —
    the sanctioned 'operate on the data the lock guards' shape."""
    if recv is None:
        return False
    held_ids = {h.last_id for h in held}
    candidates: list[FieldInfo] = []
    if cls is not None and recv in cls.fields:
        candidates = [cls.fields[recv]]
    else:
        candidates = model.field_index.get(recv, [])
    return any(f.guarded_by and f.guarded_by.split(".")[-1] in held_ids
               for f in candidates)


def _analyze_body(body: FuncBody, model: Model, cg=None,
                  order=None) -> list[Finding]:
    """Walk one body with the lock-scope tracker.

    With `cg` (a call_graph.CallGraph) the checks become interprocedural:
    call sites under a held lock are resolved to qualified targets, the
    targets' *transitive* acquires/blocks attributes extend lock-held-call
    and lock-blocking to indirect violations (full call chain in the
    finding), and every held->acquired pair feeds `order` (a
    call_graph.LockOrderGraph) for deadlock-cycle detection."""
    findings: list[Finding] = []
    toks = body.toks
    cls = model.classes.get(body.cls) if body.cls else None
    held: list[_HeldLock] = []
    depth = 0
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                held = [h for h in held if h.depth <= depth]
            i += 1
            continue
        if t.kind != "id":
            i += 1
            continue

        # MutexLock declaration: `MutexLock name(expr);`
        if t.text == "MutexLock":
            j = i + 1
            if j < n and toks[j].kind == "id":
                j += 1
            if j < n and toks[j].text == "(":
                end = _match_paren(toks, j)
                expr_toks = toks[j + 1 : end - 1]
                expr = _expr_text(expr_toks)
                last_id = next((tt.text for tt in reversed(expr_toks)
                                if tt.kind == "id"), expr)
                lock_id = resolve_lock_id(last_id, cls, model)
                if held:
                    # Direct nested acquisition: the leaf-lock rule bans a
                    # second Mutex outright, whatever the order.
                    findings.append(Finding(
                        body.file, t.line, "lock-held-call",
                        f"MutexLock({expr}) constructed while already "
                        f"holding {', '.join(h.expr for h in held)} — "
                        "leaf-lock rule (DESIGN.md)"))
                    if order is not None:
                        for h in held:
                            order.add(h.lock_id, lock_id, body.file, t.line,
                                      via=(body.qual,))
                held.append(_HeldLock(depth=depth, expr=expr,
                                      last_id=last_id, line=t.line,
                                      lock_id=lock_id))
                i = end
                continue
            i += 1
            continue

        # call site: id '('
        nxt = toks[i + 1].text if i + 1 < n else ""
        if nxt != "(" or t.text in KEYWORDS or t.text in ANNOTATIONS:
            i += 1
            continue
        if not held:
            i += 1
            continue
        callee = t.text
        recv = _receiver(toks, i)
        qual = _qualifier(toks, i)
        end = _match_paren(toks, i + 1)
        args = toks[i + 2 : end - 1]

        # Interprocedural context: resolve the call to qualified targets and
        # record lock-order edges (held lock class -> every lock class the
        # target transitively acquires). Edges are harvested even for
        # guard-exempt or suppressed sites — they describe the order the
        # program *uses*, which is exactly what cycle detection needs.
        targets: list[str] = []
        if cg is not None:
            targets = cg.resolve_site(body, toks, i, callee, recv, qual)
            if order is not None and held:
                for tq in targets:
                    for lid in sorted(cg.trans_locks.get(tq, {})):
                        chain, _ev = cg.trans_locks[tq][lid]
                        for h in held:
                            order.add(h.lock_id, lid, body.file, t.line,
                                      via=(body.qual, tq) + chain)

        # CondVar::wait on a foreign mutex
        recv_fields = ([cls.fields[recv]] if cls and recv in (cls.fields or {})
                       else model.field_index.get(recv or "", []))
        if callee == "wait" and any(f.is_condvar for f in recv_fields):
            arg = _expr_text(args)
            if all(arg != h.expr for h in held):
                findings.append(Finding(
                    body.file, t.line, "lock-foreign-wait",
                    f"CondVar::wait({arg}) while holding "
                    f"{', '.join(h.expr for h in held)} — waiting is only "
                    "allowed on the held mutex itself"))
            i = end
            continue

        # direct blocking primitives
        if callee in SLEEP_NAMES:
            findings.append(Finding(
                body.file, t.line, "lock-blocking",
                f"sleep ({callee}) while holding "
                f"{', '.join(h.expr for h in held)}"))
            i = end
            continue
        if callee in JOIN_METHODS and recv is not None:
            findings.append(Finding(
                body.file, t.line, "lock-blocking",
                f"thread join on '{recv}' while holding "
                f"{', '.join(h.expr for h in held)}"))
            i = end
            continue
        if (callee in FILE_IO_METHODS and recv is not None
                and any(any(ti in STREAM_TYPES for ti in f.type_ids)
                        for f in recv_fields)
                and not _guard_exempt(recv, held, cls, model)):
            findings.append(Finding(
                body.file, t.line, "lock-blocking",
                f"file I/O ({recv}.{callee}) while holding "
                f"{', '.join(h.expr for h in held)} and '{recv}' is not "
                "guarded by the held mutex"))
            i = end
            continue
        if qual == "std" and callee in STREAM_TYPES:
            findings.append(Finding(
                body.file, t.line, "lock-blocking",
                f"std::{callee} constructed while holding "
                f"{', '.join(h.expr for h in held)}"))
            i = end
            continue

        # functions that sleep / do I/O in their own body (one level deep)
        if callee in model.blocking and not _guard_exempt(recv, held, cls,
                                                          model):
            findings.append(Finding(
                body.file, t.line, "lock-blocking",
                f"call to blocking function '{callee}' while holding "
                f"{', '.join(h.expr for h in held)}: "
                f"{model.blocking[callee]}"))
            i = end
            continue

        # REQUIRES-annotated callees: fine when the required mutex is held
        # and the call targets this class; anything else is a foreign-lock
        # call under our lock.
        if callee in model.requires:
            sigs = model.requires[callee]
            held_ids = {h.last_id for h in held}
            ok = any(
                (cls is not None and s.cls == cls.name and recv is None
                 and s.requires and s.requires.split(".")[-1] in held_ids)
                for s in sigs)
            if not ok and not _guard_exempt(recv, held, cls, model):
                findings.append(Finding(
                    body.file, t.line, "lock-held-call",
                    f"call to REQUIRES-annotated '{callee}' while holding "
                    f"{', '.join(h.expr for h in held)} — its mutex is not "
                    "the held one"))
            i = end
            continue

        # lock-acquiring callees
        if callee in model.locking and not _guard_exempt(recv, held, cls,
                                                         model):
            findings.append(Finding(
                body.file, t.line, "lock-held-call",
                f"call to lock-acquiring '{callee}' while holding "
                f"{', '.join(h.expr for h in held)} — leaf-lock rule "
                f"(DESIGN.md): {model.locking[callee]}"))
            i = end
            continue

        # Transitive attributes: none of the direct checks fired, but the
        # resolved target may sleep / do I/O / take a lock further down the
        # call graph. The finding carries the full witness chain.
        if targets and not _guard_exempt(recv, held, cls, model):
            fired = False
            for tq in targets:
                tb = cg.trans_block.get(tq)
                if tb is None:
                    continue
                chain, ev = tb
                route = (body.qual, tq) + chain
                findings.append(Finding(
                    body.file, t.line, "lock-blocking",
                    f"call chain {' -> '.join(route)} blocks while "
                    f"holding {', '.join(h.expr for h in held)}: {ev}",
                    chain=route))
                fired = True
                break
            if not fired:
                for tq in targets:
                    locks = cg.trans_locks.get(tq)
                    if not locks:
                        continue
                    lid = min(locks)
                    chain, ev = locks[lid]
                    route = (body.qual, tq) + chain
                    findings.append(Finding(
                        body.file, t.line, "lock-held-call",
                        f"call chain {' -> '.join(route)} acquires "
                        f"{lid} while holding "
                        f"{', '.join(h.expr for h in held)} — leaf-lock "
                        f"rule (DESIGN.md): {ev}",
                        chain=route))
                    fired = True
                    break
            if fired:
                i = end
                continue
        i += 1
    return findings


def check_unguarded_fields(model: Model) -> list[Finding]:
    lock_owning = {name for name, cls in model.classes.items() if cls.mutexes}
    findings: list[Finding] = []
    for name in sorted(lock_owning):
        cls = model.classes[name]
        for f in cls.fields.values():
            if (f.guarded_by or f.is_mutex or f.is_condvar or f.is_const
                    or f.is_ref or f.is_static or f.is_atomic):
                continue
            if any(ti in lock_owning for ti in f.type_ids):
                continue  # internally synchronized member
            findings.append(Finding(
                f.file, f.line, "lock-unguarded-field",
                f"field '{f.name}' of Mutex-owning class '{cls.name}' has "
                "no GUARDED_BY/PT_GUARDED_BY — annotate it, make it "
                "const/atomic, or suppress with a justification"))
    return findings


def check_lock_graph(model: Model, cg=None, order=None) -> list[Finding]:
    """Run the per-body lock checks. `cg`/`order` (built by call_graph.py)
    upgrade the pass from one-level-deep to fully interprocedural."""
    findings: list[Finding] = []
    for body in model.bodies:
        findings.extend(_analyze_body(body, model, cg, order))
    findings.extend(check_unguarded_fields(model))
    return findings
