"""Lifetime & capture-escape analysis for deferred execution.

The lock passes verify *synchronization*; this pass verifies *lifetimes* —
the other half of the concurrency contract now that lambdas routinely
outlive the stack frame that created them (ThreadPool workers, the epoll
NetServer's completion queue, detached std::thread loops). Four checks,
all scoped to function bodies under src/ (bench/examples/tests join their
threads locally and are policed by review, not this pass):

  escaping-ref-capture  a lambda reaching a *deferred-execution sink*
                        captures by reference, captures a raw pointer, or
                        captures `this` — state that can die before the
                        task runs.  Sinks are a registry (ThreadPool::
                        submit, CompletionQueue::push), `std::thread`
                        construction, and assignment into a std::function
                        -typed field; wrappers that forward a callable
                        parameter into a sink become sinks transitively
                        via the call graph.
  dangling-return       a function whose return type is a reference,
                        pointer, string_view, or span returns an owning
                        local or by-value owning parameter.
  use-after-move        a local (or exact member path) is std::move'd and
                        then read later in the same body, with no
                        intervening reassignment / clear() / reset() /
                        assign() / swap().
  view-field            a string_view/span member is initialized in a
                        constructor init-list from a by-value owning
                        parameter or an owning temporary.

The join-in-destructor exemption (the one sanctioned way to capture
`this` or a member by reference at a sink): the receiver is a field of
the enclosing class whose type owns threads (ThreadPool / std::thread)
and either (a) it is the *last-declared* field, so its destructor — which
joins — runs before any other member dies (AsyncPrefetcher's pattern), or
(b) the class destructor transitively reaches a join()/shutdown()/
wait_idle() call on that field through the call graph (NetServer's
dtor -> stop() -> loop_thread_.join() + pool_->shutdown()).  A sink that
is a method of the enclosing class itself (bare submit/push) is exempt
when the class's own destructor reaches a join-shaped call.  The
exemption NEVER covers references to locals or parameters — no join
protocol can extend a dead stack frame.

Documented approximations (DESIGN.md "Architecture analysis"):

  over-approx   * wrapper sink propagation ignores which argument the
                  callable lands in; any forward of a callable parameter
                  into a sink marks the wrapper.
                * use-after-move is branch-insensitive: a move in one
                  branch and a read in the other is still flagged.
                * `[=]` in a member function is treated as an implicit
                  `this` capture when the lambda body names a field.
  under-approx  * ThreadPool::parallel_for is NOT a sink: it blocks until
                  every chunk ran, so `[&]` row lambdas are safe by
                  construction.
                * callables escaping through containers or shared_ptr
                  factories (make_shared<State>(..., fn)) are not tracked.
                * use-after-move misses reads that precede the move
                  lexically but follow it dynamically (loops), and moves
                  through opaque call wrappers.
                * dangling-return only knows the owning types listed
                  below; a ref to a primitive local is not flagged.
                * a sink whose receiver is a *local* pool is exempt (its
                  destructor joins at end of scope).

Every finding accepts the standard `// analyze: allow(<check>): <why>`
suppression.  Extending the sink registry is one dict entry; extending
the owning/view type sets is one set entry.
"""

from __future__ import annotations

from cpptok import Tok
from include_graph import Finding
import lock_graph as lg
import call_graph as cgm

CHECK_ESCAPE = "escaping-ref-capture"
CHECK_RETURN = "dangling-return"
CHECK_MOVE = "use-after-move"
CHECK_VIEW = "view-field"

# Qualified callees whose callable argument runs after the calling frame
# returned. parallel_for is deliberately absent: it joins before returning.
DEFERRED_SINKS = {
    "ThreadPool::submit":
        "the task runs on a worker thread after the submitting frame "
        "returns",
    "CompletionQueue::push":
        "the completion crosses to another thread and outlives the "
        "pushing frame",
}

# Types that own their storage: a view/reference into one dies with it.
OWNING_TYPES = {
    "string", "vector", "deque", "array", "map", "set", "unordered_map",
    "unordered_set", "ostringstream", "stringstream",
}
VIEW_TYPES = {"string_view", "span"}
# Field types whose destructor joins the threads it owns.
THREAD_OWNER_TYPES = {"ThreadPool", "thread", "jthread"}
JOIN_CALLS = ("join", "shutdown", "wait_idle")
# Mutations that re-establish a moved-from object as readable.
_CLEARING_METHODS = {"clear", "reset", "assign", "swap"}

# Keyword-ish tokens after which a '[' opens a lambda, not a subscript.
_LAMBDA_PREV_KEYWORDS = {"return", "co_return", "co_yield", "else", "do"}


# --------------------------------------------------------------------------
# Token helpers
# --------------------------------------------------------------------------

def _skip_angles(toks: list[Tok], i: int) -> int:
    """toks[i] is '<'; return index just past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if toks[i].kind == "punct":
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return i  # not a template argument list after all
        i += 1
    return len(toks)


def _match_square(toks: list[Tok], i: int) -> int:
    """toks[i] is '['; return index of the matching ']'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if toks[i].kind == "punct":
            if t == "[":
                depth += 1
            elif t == "]":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return len(toks) - 1


def _split_top_commas(toks: list[Tok]) -> list[list[Tok]]:
    groups: list[list[Tok]] = [[]]
    depth = 0
    for t in toks:
        if t.kind == "punct":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                groups.append([])
                continue
        groups[-1].append(t)
    return [g for g in groups if g]


# --------------------------------------------------------------------------
# Lambda discovery + capture classification
# --------------------------------------------------------------------------

def find_lambdas(toks: list[Tok], lo: int = 0,
                 hi: int | None = None) -> list[dict]:
    """Every lambda introducer in toks[lo:hi): dicts with
    `intro` (index of '['), `close` (index of ']'), `captures`
    (comma-split token groups), and `body` ((lo, hi) token range of the
    lambda body, or None for a body-less parse)."""
    hi = len(toks) if hi is None else hi
    out: list[dict] = []
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind != "punct" or t.text != "[":
            i += 1
            continue
        prev = toks[i - 1] if i > 0 else None
        if prev is not None:
            # after a value-ish token this '[' is a subscript
            if prev.kind in ("num", "str", "char"):
                i += 1
                continue
            if prev.kind == "id" and prev.text not in _LAMBDA_PREV_KEYWORDS:
                i += 1
                continue
            if prev.kind == "punct" and prev.text in (")", "]"):
                i += 1
                continue
        close = _match_square(toks, i)
        j = close + 1
        # a lambda continues with ( params ), specifiers, -> ret, or '{'
        looks_like_lambda = (
            j < len(toks) and (
                toks[j].text in ("(", "{", "->")
                or (toks[j].kind == "id"
                    and toks[j].text in ("mutable", "constexpr", "noexcept"))
            ))
        if not looks_like_lambda:
            i = close + 1
            continue
        # locate the body brace
        k = j
        if k < len(toks) and toks[k].text == "(":
            k = lg._match_paren(toks, k)
        while k < len(toks) and toks[k].text != "{":
            if toks[k].text in (";", ")"):
                k = len(toks)
                break
            k += 1
        body = None
        if k < len(toks) and toks[k].text == "{":
            body = (k + 1, lg._match_brace(toks, k) - 1)
        out.append({
            "intro": i, "close": close,
            "captures": _split_top_commas(toks[i + 1:close]),
            "body": body,
        })
        i = close + 1
    return out


def classify_captures(groups: list[list[Tok]]) -> list[dict]:
    """Capture groups -> [{kind, name, line}]; kinds:
    default-ref `[&]`, default-copy `[=]`, this, ref `[&x]`,
    init-ref `[&x = e]`, init-this `[p = this]`, init-addr `[p = &e]`,
    value `[x]` (returned so the caller can test raw-pointer locals)."""
    out: list[dict] = []
    for g in groups:
        texts = [t.text for t in g]
        line = g[0].line
        if texts == ["&"]:
            out.append({"kind": "default-ref", "name": "&", "line": line})
        elif texts == ["="]:
            out.append({"kind": "default-copy", "name": "=", "line": line})
        elif texts == ["this"]:
            out.append({"kind": "this", "name": "this", "line": line})
        elif texts[:2] == ["*", "this"]:
            continue  # by-value copy of the object: safe
        elif "=" in texts:
            eq = texts.index("=")
            name = texts[eq - 1] if eq >= 1 else "?"
            rhs = texts[eq + 1:]
            if "&" in texts[:eq]:
                out.append({"kind": "init-ref", "name": name, "line": line})
            elif rhs == ["this"]:
                out.append({"kind": "init-this", "name": name, "line": line})
            elif rhs[:1] == ["&"]:
                out.append({"kind": "init-addr", "name": name, "line": line})
            # [x = std::move(y)], [x = y]: by-value, safe
        elif texts[0] == "&":
            name = next((t.text for t in g[1:] if t.kind == "id"), "?")
            out.append({"kind": "ref", "name": name, "line": line})
        else:
            name = next((t.text for t in g if t.kind == "id"), None)
            if name is not None:
                out.append({"kind": "value", "name": name, "line": line})
    return out


# --------------------------------------------------------------------------
# Parameter / local classification shared by the checks
# --------------------------------------------------------------------------

def _param_groups(body: lg.FuncBody) -> list[list[Tok]]:
    sig = body.sig_toks
    parens = lg._paren_indices_at_angle0(sig)
    if not parens:
        return []
    p = parens[0]
    end = lg._match_paren(sig, p)
    return _split_top_commas(sig[p + 1:end - 1])


def _group_has_top_ref_or_ptr(g: list[Tok]) -> bool:
    angle = 0
    for t in g:
        if t.kind != "punct":
            continue
        if t.text == "<":
            angle += 1
        elif t.text == ">":
            angle = max(0, angle - 1)
        elif t.text == ">>":
            angle = max(0, angle - 2)
        elif t.text in ("&", "*", "&&") and angle == 0:
            return True
    return False


def byvalue_owning_params(body: lg.FuncBody) -> dict[str, str]:
    """name -> type id for parameters passed by value whose type owns its
    storage (std::string s, std::vector<float> v, ...)."""
    out: dict[str, str] = {}
    for g in _param_groups(body):
        if _group_has_top_ref_or_ptr(g):
            continue
        ids = [t for t in g if t.kind == "id"]
        if len(ids) < 2:
            continue
        name = ids[-1].text
        type_ids = {t.text for t in ids[:-1]}
        owning = type_ids & OWNING_TYPES
        if owning and not (type_ids & VIEW_TYPES):
            out[name] = sorted(owning)[0]
    return out


def callable_params(model: lg.Model, body: lg.FuncBody) -> set[str]:
    """Parameter names whose type is std::function or a known alias."""
    fn_types = {"function"} | model.fn_aliases
    out: set[str] = set()
    for g in _param_groups(body):
        ids = [t for t in g if t.kind == "id"]
        if len(ids) < 2:
            continue
        if {t.text for t in ids[:-1]} & fn_types:
            out.add(ids[-1].text)
    return out


def raw_pointer_names(body: lg.FuncBody) -> set[str]:
    """Locals/params declared as `T* name` — heuristic: '*' whose next
    token is the declared name, in declaration position (after '(', ',',
    ';', '{', '}' or 'const' + a type id)."""
    out: set[str] = set()
    for toks in (body.sig_toks, body.toks):
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "punct" or t.text != "*":
                continue
            if i < 1 or i + 1 >= n:
                continue
            if toks[i - 1].kind != "id" or toks[i + 1].kind != "id":
                continue
            if toks[i - 1].text in lg.KEYWORDS:
                continue
            nxt2 = toks[i + 2].text if i + 2 < n else ""
            if nxt2 not in (",", ")", ";", "=", "{"):
                continue
            # declaration position: walk back over the type tokens
            k = i - 1
            while k >= 0 and (toks[k].kind == "id"
                              or toks[k].text in ("::", "<", ">", ">>",
                                                  "const")):
                k -= 1
            if k < 0 or (toks[k].kind == "punct"
                         and toks[k].text in ("(", ",", ";", "{", "}")):
                out.add(toks[i + 1].text)
    return out


def owning_locals(body: lg.FuncBody) -> dict[str, int]:
    """name -> line of by-value locals of owning type declared in the
    body (static/thread_local storage excluded: those outlive returns)."""
    out: dict[str, int] = {}
    toks = body.toks
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id" or t.text not in OWNING_TYPES:
            i += 1
            continue
        # storage class: scan back over std:: qualifiers and const
        k = i - 1
        while k >= 0 and (toks[k].text in ("::", "std", "const")):
            k -= 1
        if k >= 0 and toks[k].kind == "id" and toks[k].text in (
                "static", "thread_local"):
            i += 1
            continue
        j = i + 1
        if j < n and toks[j].text == "<":
            j = _skip_angles(toks, j)
        while j < n and toks[j].text == "const":
            j += 1
        if j < n and toks[j].kind == "punct" and toks[j].text in (
                "&", "&&", "*"):
            i = j + 1
            continue  # reference/pointer declaration: not owning-by-value
        if j < n and toks[j].kind == "id":
            nxt = toks[j + 1].text if j + 1 < n else ""
            if nxt in ("=", "{", "(", ";"):
                out.setdefault(toks[j].text, toks[j].line)
            i = j + 1
            continue
        i = j + 1
    return out


# --------------------------------------------------------------------------
# Sink registry + transitive propagation
# --------------------------------------------------------------------------

def propagate_sinks(model: lg.Model, cg: cgm.CallGraph) -> dict[str, str]:
    """DEFERRED_SINKS plus every wrapper that forwards a callable
    parameter into a known sink, to a fixpoint over the call graph."""
    sinks = dict(DEFERRED_SINKS)
    changed = True
    while changed:
        changed = False
        for qual, bodies in cg.nodes.items():
            if qual in sinks:
                continue
            for body in bodies:
                pnames = callable_params(model, body)
                if not pnames:
                    continue
                via = _forwards_callable_to_sink(cg, body, pnames, sinks)
                if via is not None:
                    sinks[qual] = (f"forwards its callable parameter into "
                                   f"deferred sink {via}")
                    changed = True
                    break
    return sinks


def _forwards_callable_to_sink(cg: cgm.CallGraph, body: lg.FuncBody,
                               pnames: set[str],
                               sinks: dict[str, str]) -> str | None:
    toks = body.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
            continue
        if t.text in lg.KEYWORDS:
            continue
        recv = lg._receiver(toks, i)
        qual = lg._qualifier(toks, i)
        targets = cg.resolve_site(body, toks, i, t.text, recv, qual)
        hit = next((tq for tq in targets if tq in sinks), None)
        if hit is None:
            continue
        end = lg._match_paren(toks, i + 1)
        if any(a.kind == "id" and a.text in pnames
               for a in toks[i + 2:end - 1]):
            return hit
    return None


# --------------------------------------------------------------------------
# Join-in-destructor exemption
# --------------------------------------------------------------------------

def _dtor_reachable_bodies(cg: cgm.CallGraph, cls_name: str):
    start = f"{cls_name}::~{cls_name}"
    if start not in cg.nodes:
        return
    seen = {start}
    queue = [start]
    while queue:
        q = queue.pop(0)
        for b in cg.nodes.get(q, ()):
            yield b
        for e in cg.edges.get(q, ()):
            if e.target not in seen and e.target in cg.nodes:
                seen.add(e.target)
                queue.append(e.target)


def _field_join_proven(model: lg.Model, cg: cgm.CallGraph,
                       cls: lg.ClassInfo, fname: str) -> bool:
    """True when field `fname` of `cls` provably joins its threads before
    sibling state dies: thread-owning type AND (declared last OR the
    destructor transitively join/shutdown/wait_idle's it)."""
    fld = cls.fields.get(fname)
    if fld is None:
        return False
    if not (set(fld.type_ids) & THREAD_OWNER_TYPES):
        return False
    names = list(cls.fields)
    if names and names[-1] == fname:
        return True
    for b in _dtor_reachable_bodies(cg, cls.name):
        toks = b.toks
        for k, t in enumerate(toks):
            if (t.kind == "id" and t.text == fname
                    and k + 3 < len(toks)
                    and toks[k + 1].text in (".", "->")
                    and toks[k + 2].text in JOIN_CALLS
                    and toks[k + 3].text == "("):
                return True
    return False


def _self_join_proven(cg: cgm.CallGraph, cls_name: str) -> bool:
    """For sinks that are methods of the enclosing class itself (a pool
    submitting to itself, a server pushing to its own queue): the class's
    destructor transitively reaches any join-shaped call."""
    for b in _dtor_reachable_bodies(cg, cls_name):
        toks = b.toks
        for k, t in enumerate(toks):
            if (t.kind == "id" and t.text in JOIN_CALLS
                    and k + 1 < len(toks) and toks[k + 1].text == "("):
                return True
    return False


# --------------------------------------------------------------------------
# escaping-ref-capture
# --------------------------------------------------------------------------

def _lambda_names_field(toks: list[Tok], body_range,
                        cls: lg.ClassInfo | None) -> bool:
    if cls is None or body_range is None:
        return False
    lo, hi = body_range
    fields = set(cls.fields)
    return any(t.kind == "id" and (t.text in fields or t.text == "this")
               for t in toks[lo:hi])


def _flag_captures(body: lg.FuncBody, model: lg.Model, toks: list[Tok],
                   lambdas: list[dict], sink_desc: str,
                   member_exempt: bool) -> list[Finding]:
    """Classify every lambda's captures against one sink.  `member_exempt`
    is the join-in-destructor verdict for the receiver: it excuses `this`
    and member-reference captures, never refs to locals/params."""
    findings: list[Finding] = []
    cls = model.classes.get(body.cls) if body.cls else None
    ptr_names = raw_pointer_names(body)
    field_names = set(cls.fields) if cls else set()
    for lam in lambdas:
        for cap in classify_captures(lam["captures"]):
            kind, name, line = cap["kind"], cap["name"], cap["line"]
            if kind in ("this", "init-this"):
                if member_exempt:
                    continue
                findings.append(Finding(
                    body.file, line, CHECK_ESCAPE,
                    f"lambda captures `this` and escapes into {sink_desc} "
                    "— the object can be destroyed before the task runs; "
                    "copy the needed state by value, or prove the "
                    "join-in-destructor pattern (thread owner declared "
                    "last, or joined in the destructor)"))
            elif kind == "default-ref":
                findings.append(Finding(
                    body.file, line, CHECK_ESCAPE,
                    f"lambda captures by reference (`[&]`) and escapes "
                    f"into {sink_desc} — every captured stack slot can "
                    "die before the task runs; capture explicitly by "
                    "value"))
            elif kind in ("ref", "init-ref"):
                if name in field_names and member_exempt:
                    continue  # member ref, lifetime tied to joined `this`
                what = (f"member '{name}'" if name in field_names
                        else f"local/parameter '{name}'")
                findings.append(Finding(
                    body.file, line, CHECK_ESCAPE,
                    f"lambda captures {what} by reference and escapes "
                    f"into {sink_desc} — the referent dies with the "
                    "submitting frame; capture by value"))
            elif kind == "init-addr":
                findings.append(Finding(
                    body.file, line, CHECK_ESCAPE,
                    f"lambda capture '{name}' stores the address of a "
                    f"stack object and escapes into {sink_desc}; copy "
                    "the value instead"))
            elif kind == "default-copy":
                if _lambda_names_field(toks, lam["body"], cls):
                    if member_exempt:
                        continue
                    findings.append(Finding(
                        body.file, line, CHECK_ESCAPE,
                        f"`[=]` in a member function implicitly captures "
                        f"`this` (the lambda names a field) and escapes "
                        f"into {sink_desc}; capture the needed members "
                        "by value explicitly"))
            elif kind == "value":
                if name in ptr_names:
                    findings.append(Finding(
                        body.file, line, CHECK_ESCAPE,
                        f"lambda captures raw pointer '{name}' by value "
                        f"and escapes into {sink_desc} — the pointee's "
                        "lifetime is unmanaged; pass owning state "
                        "(by value / shared_ptr)"))
    return findings


def _check_captures(body: lg.FuncBody, model: lg.Model, cg: cgm.CallGraph,
                    sinks: dict[str, str]) -> list[Finding]:
    findings: list[Finding] = []
    toks = body.toks
    n = len(toks)
    cls = model.classes.get(body.cls) if body.cls else None
    locals_map = cgm.local_types(cg, body)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue

        # std::thread construction: `std :: thread name? ( ... )` / `{...}`
        if (t.text == "thread" and i >= 2 and toks[i - 1].text == "::"
                and toks[i - 2].text == "std" and i + 1 < n):
            i = _handle_thread_ctor(body, model, cg, toks, i, findings)
            continue

        nxt = toks[i + 1].text if i + 1 < n else ""
        if nxt != "(" or t.text in lg.KEYWORDS:
            # std::function field assignment: `fld = [caps] ... ;`
            if (nxt == "=" and i + 2 < n and toks[i + 2].text == "["
                    and _is_fn_field_name(model, body, t.text)):
                end = _stmt_end(toks, i + 2)
                lambdas = find_lambdas(toks, i + 2, end)
                member_exempt = bool(cls) and t.text in cls.fields
                findings.extend(_flag_captures(
                    body, model, toks, lambdas,
                    f"std::function field '{t.text}' (outlives the "
                    "assigning frame)",
                    member_exempt=member_exempt))
                i = end
                continue
            i += 1
            continue

        recv = lg._receiver(toks, i)
        qual = lg._qualifier(toks, i)
        targets = cg.resolve_site(body, toks, i, t.text, recv, qual)
        hit = next((tq for tq in targets if tq in sinks), None)
        if hit is None:
            i += 1
            continue
        end = lg._match_paren(toks, i + 1)
        lambdas = find_lambdas(toks, i + 2, end - 1)
        if not lambdas:
            i = end
            continue
        member_exempt = _receiver_exempt(body, model, cg, cls, locals_map,
                                         recv, hit)
        findings.extend(_flag_captures(
            body, model, toks, lambdas,
            f"deferred sink {hit} ({sinks[hit]})", member_exempt))
        i = end
    return findings


def _receiver_exempt(body, model, cg, cls, locals_map, recv,
                     sink_qual) -> bool:
    if recv is None or recv == "this":
        # bare call: sink is (or is inherited by) the enclosing class
        return cls is not None and _self_join_proven(cg, cls.name)
    if cls is not None and recv in cls.fields:
        fld = cls.fields[recv]
        if set(fld.type_ids) & THREAD_OWNER_TYPES:
            return _field_join_proven(model, cg, cls, recv)
        # receiver owned by this object but not a thread owner (e.g. the
        # completion queue): the tasks' lifetime is governed by whatever
        # drains it — exempt only if the whole object provably joins.
        return _self_join_proven(cg, cls.name)
    if recv in locals_map:
        return True  # local pool: its destructor joins at end of scope
    return False


def _handle_thread_ctor(body, model, cg, toks, i, findings) -> int:
    n = len(toks)
    cls = model.classes.get(body.cls) if body.cls else None
    nxt = toks[i + 1]
    target = None        # field or local receiving the thread
    local_decl = None    # name of a local std::thread variable
    open_idx = None
    if nxt.text in ("(", "{"):
        # construction expression; assignment target is `name =` before std
        k = i - 3  # skip `:: std` backwards from `thread`
        if k >= 1 and toks[k].text == "=" and toks[k - 1].kind == "id":
            target = toks[k - 1].text
        open_idx = i + 1
    elif nxt.kind == "id" and i + 2 < n and toks[i + 2].text in ("(", "{"):
        local_decl = nxt.text
        open_idx = i + 2
    if open_idx is None:
        return i + 1
    end = (lg._match_paren(toks, open_idx) if toks[open_idx].text == "("
           else lg._match_brace(toks, open_idx))
    lambdas = find_lambdas(toks, open_idx + 1, end - 1)
    if not lambdas:
        return end
    if local_decl is not None:
        member_exempt = _local_thread_joined(toks, end, local_decl)
    elif target is not None and cls is not None and target in cls.fields:
        member_exempt = _field_join_proven(model, cg, cls, target)
    else:
        member_exempt = False
    where = (f"std::thread '{local_decl or target or '<temporary>'}'")
    findings.extend(_flag_captures(
        body, model, toks, lambdas,
        f"{where} (runs after the constructing frame unless joined)",
        member_exempt))
    return end


def _local_thread_joined(toks, start, name) -> bool:
    n = len(toks)
    for k in range(start, n - 3):
        if (toks[k].kind == "id" and toks[k].text == name
                and toks[k + 1].text == "."
                and toks[k + 2].text == "join"
                and toks[k + 3].text == "("):
            return True
    return False


def _is_fn_field_name(model: lg.Model, body: lg.FuncBody, name: str) -> bool:
    fn_types = {"function"} | model.fn_aliases
    cls = model.classes.get(body.cls) if body.cls else None
    fields = ([cls.fields[name]] if cls and name in cls.fields
              else model.field_index.get(name, []))
    return any(set(f.type_ids) & fn_types for f in fields)


def _stmt_end(toks, i) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if toks[i].kind == "punct":
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ";" and depth == 0:
                return i
        i += 1
    return n


# --------------------------------------------------------------------------
# dangling-return
# --------------------------------------------------------------------------

def _return_type_features(body: lg.FuncBody):
    """(is_ref, is_ptr, is_view) of the declared return type, or None for
    constructors/destructors/operators/unparseable signatures."""
    sig = body.sig_toks
    parens = lg._paren_indices_at_angle0(sig)
    if not parens or parens[0] == 0:
        return None
    p = parens[0]
    rt = list(sig[:p - 1])
    while rt and rt[-1].text == "~":
        rt.pop()
    while len(rt) >= 2 and rt[-1].text == "::" and rt[-2].kind == "id":
        rt = rt[:-2]
    ids = {t.text for t in rt if t.kind == "id"}
    if "operator" in ids:
        return None
    specifiers = {"inline", "static", "virtual", "constexpr", "explicit",
                  "friend", "const", "extern", "VIZ_API"}
    if not ids - specifiers:
        return None  # constructor / destructor / conversion
    is_ref = is_ptr = False
    angle = 0
    for t in rt:
        if t.kind != "punct":
            continue
        if t.text == "<":
            angle += 1
        elif t.text == ">":
            angle = max(0, angle - 1)
        elif t.text == ">>":
            angle = max(0, angle - 2)
        elif t.text == "&" and angle == 0:
            is_ref = True
        elif t.text == "*" and angle == 0:
            is_ptr = True
    is_view = bool(ids & VIEW_TYPES) and not is_ref and not is_ptr
    if not (is_ref or is_ptr or is_view):
        return None
    return is_ref, is_ptr, is_view


def _lambda_token_mask(toks: list[Tok]) -> list[bool]:
    """mask[i] == True for tokens inside some lambda body (their `return`
    belongs to the lambda, not the enclosing function)."""
    mask = [False] * len(toks)
    for lam in find_lambdas(toks):
        if lam["body"] is not None:
            lo, hi = lam["body"]
            for k in range(lo, hi):
                mask[k] = True
    return mask


def _check_dangling_return(body: lg.FuncBody) -> list[Finding]:
    feats = _return_type_features(body)
    if feats is None:
        return []
    is_ref, is_ptr, is_view = feats
    owners: dict[str, str] = {
        name: f"local '{name}' (line {line})"
        for name, line in owning_locals(body).items()}
    for name, ty in byvalue_owning_params(body).items():
        owners[name] = f"by-value parameter '{name}' ({ty})"
    if not owners:
        return []
    findings: list[Finding] = []
    toks = body.toks
    n = len(toks)
    mask = _lambda_token_mask(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id" or t.text != "return" or mask[i]:
            i += 1
            continue
        end = _stmt_end(toks, i + 1)
        expr = toks[i + 1:end]
        i = end + 1
        if not expr:
            continue
        kind_word = ("reference" if is_ref
                     else "pointer" if is_ptr else
                     "string_view/span")
        if is_ptr and expr[0].text == "&" and len(expr) >= 2 \
                and expr[1].kind == "id" and expr[1].text in owners:
            findings.append(Finding(
                body.file, expr[0].line, CHECK_RETURN,
                f"returning the address of {owners[expr[1].text]} — it is "
                "destroyed when the function returns"))
            continue
        first = next((e for e in expr
                      if e.kind == "id" and e.text not in ("std", "move")),
                     None)
        if first is None or first.text not in owners:
            continue
        if is_ref and not (len(expr) == 1
                           or (expr[0] is first and len(expr) > 1
                               and expr[1].text in (".", "->"))):
            continue
        findings.append(Finding(
            body.file, first.line, CHECK_RETURN,
            f"returning a {kind_word} tied to {owners[first.text]} — the "
            "storage is destroyed when the function returns; return by "
            "value or point the view at state that outlives the call"))
    return findings


# --------------------------------------------------------------------------
# use-after-move
# --------------------------------------------------------------------------

def _move_path(toks: list[Tok], lo: int, hi: int):
    """The exact id/./-> path inside std::move(...), or None when the
    argument is any more complex expression (calls, indexing, casts)."""
    parts: list[str] = []
    expect_id = True
    for t in toks[lo:hi]:
        if expect_id:
            if t.kind != "id":
                return None
            parts.append(t.text)
            expect_id = False
        else:
            if t.kind == "punct" and t.text in (".", "->"):
                expect_id = True
            else:
                return None
    if expect_id or not parts:
        return None
    return tuple(parts)


def _path_matches(toks: list[Tok], i: int, path: tuple) -> int | None:
    """If the token sequence at i spells `path` (anchored: the previous
    token is not a member/scope accessor), return the index just past the
    path, else None."""
    if i > 0 and toks[i - 1].kind == "punct" \
            and toks[i - 1].text in (".", "->", "::"):
        return None
    k = i
    n = len(toks)
    for step, part in enumerate(path):
        if k >= n or toks[k].kind != "id" or toks[k].text != part:
            return None
        k += 1
        if step + 1 < len(path):
            if k >= n or toks[k].text not in (".", "->"):
                return None
            k += 1
    return k


def _in_structured_binding(toks: list[Tok], i: int) -> bool:
    """True when toks[i] is a name introduced by `auto [a, b] = ...` /
    `for (const auto& [a, b] : ...)` — a fresh declaration, not a read."""
    k = i - 1
    while k >= 0 and (toks[k].kind == "id" or toks[k].text == ","):
        k -= 1
    if k < 0 or toks[k].text != "[":
        return False
    k -= 1
    while k >= 0 and toks[k].kind == "punct" and toks[k].text in ("&", "&&"):
        k -= 1
    return k >= 0 and toks[k].kind == "id" and toks[k].text == "auto"


def _check_use_after_move(body: lg.FuncBody) -> list[Finding]:
    findings: list[Finding] = []
    toks = body.toks
    n = len(toks)
    moved: dict[tuple, int] = {}  # path -> line of the move
    i = 0
    while i < n:
        t = toks[i]
        # `std :: move ( path )`
        if (t.kind == "id" and t.text == "std" and i + 3 < n
                and toks[i + 1].text == "::" and toks[i + 2].text == "move"
                and toks[i + 3].text == "("):
            end = lg._match_paren(toks, i + 3)
            path = _move_path(toks, i + 4, end - 1)
            if path is not None:
                if path in moved:
                    findings.append(Finding(
                        body.file, t.line, CHECK_MOVE,
                        f"'{'.'.join(path)}' moved again after the move on "
                        f"line {moved[path]} — the first move already "
                        "emptied it"))
                moved[path] = t.line
            i = end
            continue
        if t.kind == "id" and moved:
            for path in list(moved):
                if t.text != path[0]:
                    continue
                after = _path_matches(toks, i, path)
                if after is None:
                    continue
                nxt = toks[after].text if after < n else ""
                nxt2 = toks[after + 1].text if after + 1 < n else ""
                if nxt == "=":
                    del moved[path]  # reassigned: readable again
                elif nxt in (".", "->") and nxt2 in _CLEARING_METHODS:
                    del moved[path]
                elif (i >= 2 and toks[i - 1].text == "("
                        and toks[i - 2].text == "swap"):
                    del moved[path]
                elif _in_structured_binding(toks, i):
                    del moved[path]  # fresh name shadows the moved one
                else:
                    findings.append(Finding(
                        body.file, t.line, CHECK_MOVE,
                        f"'{'.'.join(path)}' read after being moved on "
                        f"line {moved[path]} — a moved-from object has an "
                        "unspecified value; reassign or clear() it first"))
                    del moved[path]  # report once per move
                i = after - 1
                break
        i += 1
    return findings


# --------------------------------------------------------------------------
# view-field
# --------------------------------------------------------------------------

def _ctor_init_items(body: lg.FuncBody):
    """(field_name, expr_toks) items of a constructor's init-list, parsed
    from sig_toks (everything before the body brace)."""
    sig = body.sig_toks
    parens = lg._paren_indices_at_angle0(sig)
    if not parens:
        return
    pe = lg._match_paren(sig, parens[0])
    i = pe
    n = len(sig)
    # skip noexcept(...) / specifiers to the init-list colon
    while i < n and not (sig[i].kind == "punct" and sig[i].text == ":"):
        if sig[i].text == "(":
            i = lg._match_paren(sig, i)
            continue
        i += 1
    i += 1
    while i < n:
        if sig[i].kind != "id":
            i += 1
            continue
        name = sig[i].text
        j = i + 1
        if j < n and sig[j].text == "<":
            j = _skip_angles(sig, j)
        if j >= n or sig[j].text not in ("(", "{"):
            i += 1
            continue
        end = (lg._match_paren(sig, j) if sig[j].text == "("
               else lg._match_brace(sig, j))
        yield name, sig[j + 1:end - 1], sig[i].line
        i = end


def _check_view_fields(model: lg.Model) -> list[Finding]:
    findings: list[Finding] = []
    for body in model.bodies:
        if not body.file.startswith("src/"):
            continue
        if not body.cls or body.name != body.cls:
            continue  # not a constructor
        cls = model.classes.get(body.cls)
        if cls is None:
            continue
        view_fields = {name for name, f in cls.fields.items()
                       if set(f.type_ids) & VIEW_TYPES}
        if not view_fields:
            continue
        owning_params = byvalue_owning_params(body)
        for name, expr, line in _ctor_init_items(body):
            if name not in view_fields:
                continue
            bound = next((t.text for t in expr
                          if t.kind == "id" and t.text in owning_params),
                         None)
            if bound is not None:
                findings.append(Finding(
                    body.file, line, CHECK_VIEW,
                    f"view field '{name}' is bound to by-value parameter "
                    f"'{bound}' — the parameter is destroyed when the "
                    "constructor returns; store an owning copy or take "
                    "the argument as a view"))
                continue
            makes_temp = any(t.kind == "id" and t.text in OWNING_TYPES
                             for t in expr)
            top_plus = any(
                t.kind == "punct" and t.text == "+"
                for k, t in enumerate(expr)
                if not _inside_nesting(expr, k))
            if makes_temp or top_plus:
                findings.append(Finding(
                    body.file, line, CHECK_VIEW,
                    f"view field '{name}' is initialized from a temporary "
                    "— the temporary dies at the end of the constructor's "
                    "init-list; store an owning field instead"))
    return findings


def _inside_nesting(toks: list[Tok], idx: int) -> bool:
    depth = 0
    for t in toks[:idx]:
        if t.kind == "punct":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
    return depth > 0


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def check_lifetime(model: lg.Model, cg: cgm.CallGraph) -> list[Finding]:
    """Run all four lifetime checks over src/ bodies."""
    findings: list[Finding] = []
    sinks = propagate_sinks(model, cg)
    for body in model.bodies:
        if not body.file.startswith("src/"):
            continue
        findings.extend(_check_captures(body, model, cg, sinks))
        findings.extend(_check_dangling_return(body))
        findings.extend(_check_use_after_move(body))
    findings.extend(_check_view_fields(model))
    return findings
