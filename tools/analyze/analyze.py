#!/usr/bin/env python3
"""Architecture analyzer driver: include layering, interprocedural lock
checks, lock-order deadlock detection, hot-path discipline, and
lifetime/capture-escape analysis.

Usage:
    tools/analyze/analyze.py [paths...] [--root DIR]
                             [--format text|json|sarif] [--sarif FILE]
                             [--jobs N]
                             [--dot FILE] [--json FILE]
                             [--call-dot FILE] [--call-json FILE]
                             [--lock-order-dot FILE] [--lock-order-json FILE]
                             [--hot-registry FILE] [--baseline FILE]

`paths` are tree roots relative to --root (default: src bench examples
tests — the one list both this tool and tools/lint.py scan, so a new
top-level tree cannot silently escape either pass). Findings print as
`path:line: [check] message` — the same shape as tools/lint.py — and the
exit code distinguishes outcomes so CI can react correctly:

    0   clean (or everything suppressed with a justification)
    1   unsuppressed findings
    2   tool error (bad invocation, missing tree, internal crash)

Suppressions are per-finding and carry a mandatory justification:

    // analyze: allow(<check>): <why this specific site is exempt>

on the finding line or a comment directly above it (the justification may
wrap onto further comment lines). An allow without a
justification is itself a finding (bad-suppression), and an allow that
matches nothing is one too (stale-suppression) — suppressions cannot rot
silently. There is no in-repo baseline; --baseline exists for downstream
forks and must stay empty here (CI runs without it).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import call_graph as cgm  # noqa: E402
import hot_path as hp  # noqa: E402
import include_graph as ig  # noqa: E402
import lifetime as lt  # noqa: E402
import lock_graph as lg  # noqa: E402
from cpptok import SourceCache, iter_source_files  # noqa: E402
from include_graph import Finding  # noqa: E402

DEFAULT_ROOTS = ["src", "bench", "examples", "tests"]
# The analyzer's own fixtures contain *seeded* violations; never scan them
# as part of the real tree.
DEFAULT_EXCLUDE = ("tests/tools",)

_ALLOW_RE = re.compile(r"//\s*analyze:\s*allow\(([a-z0-9_-]+)\)(:?\s*(.*))?$")


class ToolError(Exception):
    """Invocation/environment problem — exit 2, not a finding."""


def collect_suppressions(root: str, rel_roots: list[str],
                         exclude: tuple[str, ...],
                         cache: SourceCache | None = None):
    """Scan raw source lines for allow-comments. Returns (suppressions,
    findings) where findings are the malformed ones (bad-suppression)."""
    suppressions: list[dict] = []
    findings: list[Finding] = []
    cache = cache or SourceCache()
    abs_roots = [os.path.join(root, r) for r in rel_roots]
    for path in iter_source_files(abs_roots):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(rel == e or rel.startswith(e + "/") for e in exclude):
            continue
        lines = cache.lines(path)
        for lineno, text in enumerate(lines, 1):
            m = _ALLOW_RE.search(text)
            if not m:
                continue
            check = m.group(1)
            justification = (m.group(3) or "").strip()
            if not m.group(2) or not justification:
                findings.append(Finding(
                    rel, lineno, "bad-suppression",
                    f"allow({check}) without a justification — write "
                    f"'// analyze: allow({check}): <reason>'"))
                continue
            # The suppression covers its own line and the annotated site
            # below it; the justification may wrap onto further comment
            # lines, so skip past those to the first code line.
            covers = {lineno}
            j = lineno  # 0-based index of the next line
            while j < len(lines) and lines[j].lstrip().startswith("//"):
                j += 1
            covers.add(j + 1)
            suppressions.append({
                "path": rel, "line": lineno, "covers": covers,
                "check": check, "justification": justification,
                "used": False,
            })
    return suppressions, findings


def apply_suppressions(findings: list[Finding], suppressions: list[dict]):
    """A suppression covers same-check findings on its own line or the line
    directly below (comment-above-the-site is the usual style). Returns
    (kept, suppressed) — JSON output reports both, with state."""
    index: dict[tuple, list[dict]] = {}
    for s in suppressions:
        for covered in s["covers"]:
            index.setdefault((s["path"], covered, s["check"]), []).append(s)
    kept, suppressed = [], []
    for f in findings:
        matches = index.get((f.path, f.line, f.check))
        if matches:
            for s in matches:
                s["used"] = True
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def stale_suppressions(suppressions: list[dict]) -> list[Finding]:
    return [
        Finding(s["path"], s["line"], "stale-suppression",
                f"allow({s['check']}) matches no finding — remove it")
        for s in suppressions if not s["used"]
    ]


def load_baseline(path: str | None) -> set[tuple]:
    if not path:
        return set()
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        raise ToolError(f"cannot read baseline {path}: {e}") from e
    if not isinstance(entries, list):
        raise ToolError(f"baseline {path} must be a JSON list")
    return {(e["path"], e.get("line"), e["check"]) for e in entries}


def findings_json(findings: list[Finding], suppressed: list[Finding],
                  suppressions: list[dict], nfiles: int) -> str:
    """Stable machine-readable findings schema (--format json)."""
    def encode(f: Finding, state: str) -> dict:
        return {
            "check": f.check, "file": f.path, "line": f.line,
            "message": f.message, "chain": list(f.chain),
            "suppressed": state == "suppressed",
        }
    payload = {
        "version": 1,
        "findings": ([encode(f, "active") for f in findings]
                     + [encode(f, "suppressed") for f in suppressed]),
        "suppressions": [
            {"file": s["path"], "line": s["line"], "check": s["check"],
             "justification": s["justification"], "used": s["used"]}
            for s in suppressions
        ],
        "summary": {"files": nfiles, "active": len(findings),
                    "suppressed": len(suppressed)},
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# One-line rule metadata for SARIF consumers (code-scanning UI). Checks
# missing from this table still export — the id doubles as the text.
RULE_DESCRIPTIONS = {
    "include-layering": "Include points upward against the layer DAG",
    "include-unresolved": "Quote-include cannot be resolved",
    "include-cycle": "Include cycle between files",
    "lock-held-call": "Lock-acquiring call while a Mutex is held "
                      "(leaf-lock rule)",
    "lock-blocking": "Blocking work (I/O, sleep, join) under a Mutex",
    "lock-foreign-wait": "CondVar::wait on a mutex other than the held one",
    "lock-unguarded-field": "Field of a Mutex-owning class without "
                            "GUARDED_BY",
    "lock-order-cycle": "Potential deadlock: cycle in the lock-order graph",
    "hot-path-alloc": "Heap allocation on a registered hot path",
    "hot-path-io": "Console or file I/O on a registered hot path",
    "hot-path-throw": "throw on a registered hot path",
    "hot-path-block": "Blocking primitive on a registered hot path",
    "hot-path-missing-entry": "Hot-path registry entry matches no function",
    "escaping-ref-capture": "By-ref/this/raw-pointer capture escapes into "
                            "a deferred-execution sink",
    "dangling-return": "Reference/pointer/view returned to an owning "
                       "local or by-value parameter",
    "use-after-move": "Object read after being std::move'd",
    "view-field": "string_view/span member bound to a temporary in a "
                  "ctor init-list",
    "bad-suppression": "analyze: allow(...) without a justification",
    "stale-suppression": "analyze: allow(...) that matches no finding",
}


def sarif_json(findings: list[Finding], suppressed: list[Finding]) -> str:
    """SARIF 2.1.0 for github/codeql-action/upload-sarif: active findings
    at level error (CI gates on them), suppressed ones carry an inSource
    suppression so code scanning shows them as dismissed."""
    rule_ids = sorted({f.check for f in findings}
                      | {f.check for f in suppressed})
    rules = [
        {"id": rid,
         "shortDescription": {"text": RULE_DESCRIPTIONS.get(rid, rid)}}
        for rid in rule_ids
    ]

    def encode(f: Finding, is_suppressed: bool) -> dict:
        r = {
            "ruleId": f.check,
            "level": "warning" if is_suppressed else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, int(f.line or 1))},
                },
            }],
        }
        if f.chain:
            r["properties"] = {"chain": list(f.chain)}
        if is_suppressed:
            r["suppressions"] = [{"kind": "inSource"}]
        return r

    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "vizcache-analyze", "rules": rules}},
            "results": ([encode(f, False) for f in findings]
                        + [encode(f, True) for f in suppressed]),
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _prewarm(root: str, rel_roots: list[str], exclude: tuple[str, ...],
             cache: SourceCache) -> None:
    """Read + tokenize every in-scope file up front, on one thread.
    SourceCache is not synchronized; after this the concurrent passes only
    perform dict reads on it."""
    abs_roots = [os.path.join(root, r) for r in rel_roots]
    for path in iter_source_files(abs_roots):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(rel == e or rel.startswith(e + "/") for e in exclude):
            continue
        cache.tokens(path)
        cache.lines(path)


def run(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze.py",
        description="vizcache architecture analyzer (include layering + "
                    "interprocedural lock graph + lock order + hot paths)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="tree roots relative to --root "
                         f"(default: {' '.join(DEFAULT_ROOTS)})")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--format", choices=("text", "json", "sarif"),
                    default="text",
                    help="findings output format (default: text)")
    ap.add_argument("--sarif", dest="sarif_out",
                    help="additionally write findings as SARIF 2.1.0 to "
                         "FILE (CI uploads this to code scanning)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="run the independent analysis passes on N "
                         "threads over the shared SourceCache "
                         "(default: 1)")
    ap.add_argument("--dot", help="write the include graph as DOT")
    ap.add_argument("--json", dest="json_out",
                    help="write include graph + findings as JSON")
    ap.add_argument("--call-dot", help="write the call graph as DOT")
    ap.add_argument("--call-json", help="write the call graph as JSON")
    ap.add_argument("--lock-order-dot",
                    help="write the lock-order graph as DOT")
    ap.add_argument("--lock-order-json",
                    help="write lock-order edges + cycles as JSON")
    ap.add_argument("--hot-registry",
                    help="hot-path registry JSON (default: built-in "
                         "registry in hot_path.py)")
    ap.add_argument("--baseline",
                    help="JSON list of known findings to ignore "
                         "(kept empty in this repo)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    rel_roots = args.paths or DEFAULT_ROOTS
    for r in rel_roots:
        if not os.path.isdir(os.path.join(root, r)):
            raise ToolError(f"no such tree: {os.path.join(root, r)}")
    if args.jobs < 1:
        raise ToolError("--jobs must be >= 1")

    try:
        registry = hp.load_registry(args.hot_registry)
    except (OSError, ValueError) as e:
        raise ToolError(f"hot-path registry: {e}") from e
    anchor = (os.path.relpath(os.path.abspath(args.hot_registry),
                              root).replace(os.sep, "/")
              if args.hot_registry else "tools/analyze/hot_path.py")

    # Shared substrate, built once on one thread: file cache, class/body
    # model, call graph. The passes below only read these.
    cache = SourceCache()
    timings: list[tuple[str, float]] = []
    t0 = time.monotonic()
    _prewarm(root, rel_roots, DEFAULT_EXCLUDE, cache)
    model = lg.build_model(root, rel_roots, exclude=DEFAULT_EXCLUDE,
                           cache=cache)
    cg = cgm.build_call_graph(model)
    timings.append(("parse", time.monotonic() - t0))

    order = cgm.LockOrderGraph()
    boxes: dict[str, object] = {}

    def pass_include() -> list[Finding]:
        graph = ig.build_graph(root, rel_roots, exclude=DEFAULT_EXCLUDE,
                               cache=cache)
        boxes["graph"] = graph
        return ig.check_layering(graph) + ig.find_cycles(graph)

    def pass_locks() -> list[Finding]:
        # lock checks populate `order`; the cycle scan must follow them,
        # so the two stay one pass unit.
        out = lg.check_lock_graph(model, cg, order)
        lock_order_findings = cgm.check_lock_order(order)
        boxes["lock_order_findings"] = lock_order_findings
        return out + lock_order_findings

    def pass_hot() -> list[Finding]:
        return hp.check_hot_paths(model, cg, registry, anchor)

    def pass_lifetime() -> list[Finding]:
        return lt.check_lifetime(model, cg)

    def pass_suppress() -> list[Finding]:
        suppressions, supp_findings = collect_suppressions(
            root, rel_roots, DEFAULT_EXCLUDE, cache=cache)
        boxes["suppressions"] = suppressions
        return supp_findings

    passes = [("include", pass_include), ("locks", pass_locks),
              ("hot", pass_hot), ("lifetime", pass_lifetime),
              ("suppress", pass_suppress)]

    def timed(fn):
        start = time.monotonic()
        result = fn()
        return result, time.monotonic() - start

    results: dict[str, list[Finding]] = {}
    if args.jobs > 1:
        with ThreadPoolExecutor(max_workers=args.jobs) as ex:
            futures = [(name, ex.submit(timed, fn)) for name, fn in passes]
            for name, fut in futures:
                result, dt = fut.result()
                results[name] = result
                timings.append((name, dt))
    else:
        for name, fn in passes:
            result, dt = timed(fn)
            results[name] = result
            timings.append((name, dt))

    graph = boxes["graph"]
    lock_order_findings = boxes["lock_order_findings"]
    suppressions = boxes["suppressions"]
    findings = (results["include"] + results["locks"] + results["hot"]
                + results["lifetime"])
    findings, suppressed = apply_suppressions(findings, suppressions)
    findings += results["suppress"]
    findings += stale_suppressions(suppressions)

    baseline = load_baseline(args.baseline)
    findings = [
        f for f in findings
        if (f.path, f.line, f.check) not in baseline
        and (f.path, None, f.check) not in baseline
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    suppressed.sort(key=lambda f: (f.path, f.line, f.check))

    if args.dot:
        ig.write_dot(graph, args.dot)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            f.write(ig.graph_json(graph, findings))
    if args.call_dot:
        cgm.write_dot(cg, args.call_dot)
    if args.call_json:
        with open(args.call_json, "w", encoding="utf-8") as f:
            f.write(cgm.call_json(cg))
    if args.lock_order_dot:
        cgm.write_lock_order_dot(order, args.lock_order_dot)
    if args.lock_order_json:
        with open(args.lock_order_json, "w", encoding="utf-8") as f:
            f.write(cgm.lock_order_json(order, lock_order_findings))

    if args.sarif_out:
        with open(args.sarif_out, "w", encoding="utf-8") as f:
            f.write(sarif_json(findings, suppressed))

    nfiles = len(graph)
    if args.format == "json":
        sys.stdout.write(findings_json(findings, suppressed, suppressions,
                                       nfiles))
    elif args.format == "sarif":
        sys.stdout.write(sarif_json(findings, suppressed))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    if findings:
        print(f"analyze: {len(findings)} finding(s) across {nfiles} files",
              file=sys.stderr)
        return 1
    pass_times = " ".join(f"{name} {dt:.2f}s" for name, dt in timings)
    print(f"analyze: OK ({nfiles} files, {len(suppressions)} "
          f"suppression(s), {cache.reads} file reads; passes: "
          f"{pass_times})", file=sys.stderr)
    return 0


def main() -> None:
    try:
        sys.exit(run(sys.argv[1:]))
    except ToolError as e:
        print(f"analyze: error: {e}", file=sys.stderr)
        sys.exit(2)
    except Exception:  # noqa: BLE001 — crash => exit 2, distinct from 1
        import traceback
        traceback.print_exc()
        print("analyze: internal error (this is a bug in the analyzer, "
              "not a finding)", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
