#!/usr/bin/env python3
"""Architecture analyzer driver: include layering, interprocedural lock
checks, lock-order deadlock detection, and hot-path discipline.

Usage:
    tools/analyze/analyze.py [paths...] [--root DIR] [--format text|json]
                             [--dot FILE] [--json FILE]
                             [--call-dot FILE] [--call-json FILE]
                             [--lock-order-dot FILE] [--lock-order-json FILE]
                             [--hot-registry FILE] [--baseline FILE]

`paths` are tree roots relative to --root (default: src bench examples
tests — the one list both this tool and tools/lint.py scan, so a new
top-level tree cannot silently escape either pass). Findings print as
`path:line: [check] message` — the same shape as tools/lint.py — and the
exit code distinguishes outcomes so CI can react correctly:

    0   clean (or everything suppressed with a justification)
    1   unsuppressed findings
    2   tool error (bad invocation, missing tree, internal crash)

Suppressions are per-finding and carry a mandatory justification:

    // analyze: allow(<check>): <why this specific site is exempt>

on the finding line or a comment directly above it (the justification may
wrap onto further comment lines). An allow without a
justification is itself a finding (bad-suppression), and an allow that
matches nothing is one too (stale-suppression) — suppressions cannot rot
silently. There is no in-repo baseline; --baseline exists for downstream
forks and must stay empty here (CI runs without it).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import call_graph as cgm  # noqa: E402
import hot_path as hp  # noqa: E402
import include_graph as ig  # noqa: E402
import lock_graph as lg  # noqa: E402
from cpptok import SourceCache, iter_source_files  # noqa: E402
from include_graph import Finding  # noqa: E402

DEFAULT_ROOTS = ["src", "bench", "examples", "tests"]
# The analyzer's own fixtures contain *seeded* violations; never scan them
# as part of the real tree.
DEFAULT_EXCLUDE = ("tests/tools",)

_ALLOW_RE = re.compile(r"//\s*analyze:\s*allow\(([a-z0-9_-]+)\)(:?\s*(.*))?$")


class ToolError(Exception):
    """Invocation/environment problem — exit 2, not a finding."""


def collect_suppressions(root: str, rel_roots: list[str],
                         exclude: tuple[str, ...],
                         cache: SourceCache | None = None):
    """Scan raw source lines for allow-comments. Returns (suppressions,
    findings) where findings are the malformed ones (bad-suppression)."""
    suppressions: list[dict] = []
    findings: list[Finding] = []
    cache = cache or SourceCache()
    abs_roots = [os.path.join(root, r) for r in rel_roots]
    for path in iter_source_files(abs_roots):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(rel == e or rel.startswith(e + "/") for e in exclude):
            continue
        lines = cache.lines(path)
        for lineno, text in enumerate(lines, 1):
            m = _ALLOW_RE.search(text)
            if not m:
                continue
            check = m.group(1)
            justification = (m.group(3) or "").strip()
            if not m.group(2) or not justification:
                findings.append(Finding(
                    rel, lineno, "bad-suppression",
                    f"allow({check}) without a justification — write "
                    f"'// analyze: allow({check}): <reason>'"))
                continue
            # The suppression covers its own line and the annotated site
            # below it; the justification may wrap onto further comment
            # lines, so skip past those to the first code line.
            covers = {lineno}
            j = lineno  # 0-based index of the next line
            while j < len(lines) and lines[j].lstrip().startswith("//"):
                j += 1
            covers.add(j + 1)
            suppressions.append({
                "path": rel, "line": lineno, "covers": covers,
                "check": check, "justification": justification,
                "used": False,
            })
    return suppressions, findings


def apply_suppressions(findings: list[Finding], suppressions: list[dict]):
    """A suppression covers same-check findings on its own line or the line
    directly below (comment-above-the-site is the usual style). Returns
    (kept, suppressed) — JSON output reports both, with state."""
    index: dict[tuple, list[dict]] = {}
    for s in suppressions:
        for covered in s["covers"]:
            index.setdefault((s["path"], covered, s["check"]), []).append(s)
    kept, suppressed = [], []
    for f in findings:
        matches = index.get((f.path, f.line, f.check))
        if matches:
            for s in matches:
                s["used"] = True
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def stale_suppressions(suppressions: list[dict]) -> list[Finding]:
    return [
        Finding(s["path"], s["line"], "stale-suppression",
                f"allow({s['check']}) matches no finding — remove it")
        for s in suppressions if not s["used"]
    ]


def load_baseline(path: str | None) -> set[tuple]:
    if not path:
        return set()
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        raise ToolError(f"cannot read baseline {path}: {e}") from e
    if not isinstance(entries, list):
        raise ToolError(f"baseline {path} must be a JSON list")
    return {(e["path"], e.get("line"), e["check"]) for e in entries}


def findings_json(findings: list[Finding], suppressed: list[Finding],
                  suppressions: list[dict], nfiles: int) -> str:
    """Stable machine-readable findings schema (--format json)."""
    def encode(f: Finding, state: str) -> dict:
        return {
            "check": f.check, "file": f.path, "line": f.line,
            "message": f.message, "chain": list(f.chain),
            "suppressed": state == "suppressed",
        }
    payload = {
        "version": 1,
        "findings": ([encode(f, "active") for f in findings]
                     + [encode(f, "suppressed") for f in suppressed]),
        "suppressions": [
            {"file": s["path"], "line": s["line"], "check": s["check"],
             "justification": s["justification"], "used": s["used"]}
            for s in suppressions
        ],
        "summary": {"files": nfiles, "active": len(findings),
                    "suppressed": len(suppressed)},
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def run(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze.py",
        description="vizcache architecture analyzer (include layering + "
                    "interprocedural lock graph + lock order + hot paths)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="tree roots relative to --root "
                         f"(default: {' '.join(DEFAULT_ROOTS)})")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--format", choices=("text", "json"), default="text",
                    help="findings output format (default: text)")
    ap.add_argument("--dot", help="write the include graph as DOT")
    ap.add_argument("--json", dest="json_out",
                    help="write include graph + findings as JSON")
    ap.add_argument("--call-dot", help="write the call graph as DOT")
    ap.add_argument("--call-json", help="write the call graph as JSON")
    ap.add_argument("--lock-order-dot",
                    help="write the lock-order graph as DOT")
    ap.add_argument("--lock-order-json",
                    help="write lock-order edges + cycles as JSON")
    ap.add_argument("--hot-registry",
                    help="hot-path registry JSON (default: built-in "
                         "registry in hot_path.py)")
    ap.add_argument("--baseline",
                    help="JSON list of known findings to ignore "
                         "(kept empty in this repo)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    rel_roots = args.paths or DEFAULT_ROOTS
    for r in rel_roots:
        if not os.path.isdir(os.path.join(root, r)):
            raise ToolError(f"no such tree: {os.path.join(root, r)}")

    cache = SourceCache()
    graph = ig.build_graph(root, rel_roots, exclude=DEFAULT_EXCLUDE,
                           cache=cache)
    findings = ig.check_layering(graph)
    findings += ig.find_cycles(graph)

    model = lg.build_model(root, rel_roots, exclude=DEFAULT_EXCLUDE,
                           cache=cache)
    cg = cgm.build_call_graph(model)
    order = cgm.LockOrderGraph()
    findings += lg.check_lock_graph(model, cg, order)
    lock_order_findings = cgm.check_lock_order(order)
    findings += lock_order_findings

    try:
        registry = hp.load_registry(args.hot_registry)
    except (OSError, ValueError) as e:
        raise ToolError(f"hot-path registry: {e}") from e
    anchor = (os.path.relpath(os.path.abspath(args.hot_registry),
                              root).replace(os.sep, "/")
              if args.hot_registry else "tools/analyze/hot_path.py")
    findings += hp.check_hot_paths(model, cg, registry, anchor)

    suppressions, supp_findings = collect_suppressions(
        root, rel_roots, DEFAULT_EXCLUDE, cache=cache)
    findings, suppressed = apply_suppressions(findings, suppressions)
    findings += supp_findings
    findings += stale_suppressions(suppressions)

    baseline = load_baseline(args.baseline)
    findings = [
        f for f in findings
        if (f.path, f.line, f.check) not in baseline
        and (f.path, None, f.check) not in baseline
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    suppressed.sort(key=lambda f: (f.path, f.line, f.check))

    if args.dot:
        ig.write_dot(graph, args.dot)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            f.write(ig.graph_json(graph, findings))
    if args.call_dot:
        cgm.write_dot(cg, args.call_dot)
    if args.call_json:
        with open(args.call_json, "w", encoding="utf-8") as f:
            f.write(cgm.call_json(cg))
    if args.lock_order_dot:
        cgm.write_lock_order_dot(order, args.lock_order_dot)
    if args.lock_order_json:
        with open(args.lock_order_json, "w", encoding="utf-8") as f:
            f.write(cgm.lock_order_json(order, lock_order_findings))

    nfiles = len(graph)
    if args.format == "json":
        sys.stdout.write(findings_json(findings, suppressed, suppressions,
                                       nfiles))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    if findings:
        print(f"analyze: {len(findings)} finding(s) across {nfiles} files",
              file=sys.stderr)
        return 1
    print(f"analyze: OK ({nfiles} files, {len(suppressions)} "
          f"suppression(s), {cache.reads} file reads)", file=sys.stderr)
    return 0


def main() -> None:
    try:
        sys.exit(run(sys.argv[1:]))
    except ToolError as e:
        print(f"analyze: error: {e}", file=sys.stderr)
        sys.exit(2)
    except Exception:  # noqa: BLE001 — crash => exit 2, distinct from 1
        import traceback
        traceback.print_exc()
        print("analyze: internal error (this is a bug in the analyzer, "
              "not a finding)", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
