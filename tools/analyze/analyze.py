#!/usr/bin/env python3
"""Architecture analyzer driver: include-graph layering + lock-graph checks.

Usage:
    tools/analyze/analyze.py [paths...] [--root DIR]
                             [--dot FILE] [--json FILE] [--baseline FILE]

`paths` are tree roots relative to --root (default: src bench examples
tests). Findings print as `path:line: [check] message` — the same shape as
tools/lint.py — and the exit code distinguishes outcomes so CI can react
correctly:

    0   clean (or everything suppressed with a justification)
    1   unsuppressed findings
    2   tool error (bad invocation, missing tree, internal crash)

Suppressions are per-finding and carry a mandatory justification:

    // analyze: allow(<check>): <why this specific site is exempt>

on the finding line or a comment directly above it (the justification may
wrap onto further comment lines). An allow without a
justification is itself a finding (bad-suppression), and an allow that
matches nothing is one too (stale-suppression) — suppressions cannot rot
silently. There is no in-repo baseline; --baseline exists for downstream
forks and must stay empty here (CI runs without it).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import include_graph as ig  # noqa: E402
import lock_graph as lg  # noqa: E402
from cpptok import iter_source_files  # noqa: E402
from include_graph import Finding  # noqa: E402

DEFAULT_ROOTS = ["src", "bench", "examples", "tests"]
# The analyzer's own fixtures contain *seeded* violations; never scan them
# as part of the real tree.
DEFAULT_EXCLUDE = ("tests/tools",)

_ALLOW_RE = re.compile(r"//\s*analyze:\s*allow\(([a-z0-9_-]+)\)(:?\s*(.*))?$")


class ToolError(Exception):
    """Invocation/environment problem — exit 2, not a finding."""


def collect_suppressions(root: str, rel_roots: list[str],
                         exclude: tuple[str, ...]):
    """Scan raw source lines for allow-comments. Returns (suppressions,
    findings) where findings are the malformed ones (bad-suppression)."""
    suppressions: list[dict] = []
    findings: list[Finding] = []
    abs_roots = [os.path.join(root, r) for r in rel_roots]
    for path in iter_source_files(abs_roots):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(rel == e or rel.startswith(e + "/") for e in exclude):
            continue
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for lineno, text in enumerate(lines, 1):
            m = _ALLOW_RE.search(text)
            if not m:
                continue
            check = m.group(1)
            justification = (m.group(3) or "").strip()
            if not m.group(2) or not justification:
                findings.append(Finding(
                    rel, lineno, "bad-suppression",
                    f"allow({check}) without a justification — write "
                    f"'// analyze: allow({check}): <reason>'"))
                continue
            # The suppression covers its own line and the annotated site
            # below it; the justification may wrap onto further comment
            # lines, so skip past those to the first code line.
            covers = {lineno}
            j = lineno  # 0-based index of the next line
            while j < len(lines) and lines[j].lstrip().startswith("//"):
                j += 1
            covers.add(j + 1)
            suppressions.append({
                "path": rel, "line": lineno, "covers": covers,
                "check": check, "justification": justification,
                "used": False,
            })
    return suppressions, findings


def apply_suppressions(findings: list[Finding],
                       suppressions: list[dict]) -> list[Finding]:
    """A suppression covers same-check findings on its own line or the line
    directly below (comment-above-the-site is the usual style)."""
    index: dict[tuple, list[dict]] = {}
    for s in suppressions:
        for covered in s["covers"]:
            index.setdefault((s["path"], covered, s["check"]), []).append(s)
    kept = []
    for f in findings:
        matches = index.get((f.path, f.line, f.check))
        if matches:
            for s in matches:
                s["used"] = True
        else:
            kept.append(f)
    return kept


def stale_suppressions(suppressions: list[dict]) -> list[Finding]:
    return [
        Finding(s["path"], s["line"], "stale-suppression",
                f"allow({s['check']}) matches no finding — remove it")
        for s in suppressions if not s["used"]
    ]


def load_baseline(path: str | None) -> set[tuple]:
    if not path:
        return set()
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        raise ToolError(f"cannot read baseline {path}: {e}") from e
    if not isinstance(entries, list):
        raise ToolError(f"baseline {path} must be a JSON list")
    return {(e["path"], e.get("line"), e["check"]) for e in entries}


def run(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze.py",
        description="vizcache architecture analyzer "
                    "(include layering + lock graph)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="tree roots relative to --root "
                         f"(default: {' '.join(DEFAULT_ROOTS)})")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--dot", help="write the include graph as DOT")
    ap.add_argument("--json", dest="json_out",
                    help="write graph + findings as JSON")
    ap.add_argument("--baseline",
                    help="JSON list of known findings to ignore "
                         "(kept empty in this repo)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    rel_roots = args.paths or DEFAULT_ROOTS
    for r in rel_roots:
        if not os.path.isdir(os.path.join(root, r)):
            raise ToolError(f"no such tree: {os.path.join(root, r)}")

    graph = ig.build_graph(root, rel_roots, exclude=DEFAULT_EXCLUDE)
    findings = ig.check_layering(graph)
    findings += ig.find_cycles(graph)
    model = lg.build_model(root, rel_roots, exclude=DEFAULT_EXCLUDE)
    findings += lg.check_lock_graph(model)

    suppressions, supp_findings = collect_suppressions(
        root, rel_roots, DEFAULT_EXCLUDE)
    findings = apply_suppressions(findings, suppressions)
    findings += supp_findings
    findings += stale_suppressions(suppressions)

    baseline = load_baseline(args.baseline)
    findings = [
        f for f in findings
        if (f.path, f.line, f.check) not in baseline
        and (f.path, None, f.check) not in baseline
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.dot:
        ig.write_dot(graph, args.dot)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            f.write(ig.graph_json(graph, findings))

    for f in findings:
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    nfiles = len(graph)
    if findings:
        print(f"analyze: {len(findings)} finding(s) across {nfiles} files",
              file=sys.stderr)
        return 1
    print(f"analyze: OK ({nfiles} files, "
          f"{len(suppressions)} suppression(s))", file=sys.stderr)
    return 0


def main() -> None:
    try:
        sys.exit(run(sys.argv[1:]))
    except ToolError as e:
        print(f"analyze: error: {e}", file=sys.stderr)
        sys.exit(2)
    except Exception:  # noqa: BLE001 — crash => exit 2, distinct from 1
        import traceback
        traceback.print_exc()
        print("analyze: internal error (this is a bug in the analyzer, "
              "not a finding)", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
