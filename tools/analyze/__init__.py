"""vizcache static-analysis suite (see analyze.py for the driver)."""
