"""Include-graph extraction + layering enforcement.

The repo's dependency order (DESIGN.md §3) is a hard DAG:

    util -> geom -> volume -> storage -> render -> core -> service -> net

with the top-level trees (bench/, examples/, tests/) above every library
layer. A file may include its own layer and any layer *below* it; an
include that points upward is a layering violation, and any include cycle
(even within one layer) is a build-order landmine. Both are findings.

The full file-level graph is also exported as DOT + JSON so CI can archive
the architecture as an artifact per commit.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

from cpptok import SourceCache, iter_source_files

LAYERS = ["util", "geom", "volume", "storage", "render", "core", "service",
          "net"]
TOP_TREES = ("bench", "examples", "tests")
TOP_RANK = len(LAYERS)

_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


@dataclass
class FileNode:
    rel: str                      # repo-relative path, '/'-separated
    layer: str                    # one of LAYERS, a top tree, or "?"
    includes: list = field(default_factory=list)  # (target_rel, line)
    unresolved: list = field(default_factory=list)  # (raw_include, line)


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str
    # Interprocedural checks attach the witness call chain (entry -> ... ->
    # the function containing the violation) so the finding is actionable
    # without re-running the analysis by hand. Empty for local checks.
    chain: tuple = ()


def layer_of(rel: str) -> str:
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) > 1 and parts[1] in LAYERS:
        return parts[1]
    if parts[0] in TOP_TREES:
        return parts[0]
    return "?"


def rank_of(layer: str) -> int:
    if layer in LAYERS:
        return LAYERS.index(layer)
    if layer in TOP_TREES:
        return TOP_RANK
    return -1


def build_graph(root: str, rel_roots: list[str],
                exclude: tuple[str, ...] = (),
                cache: SourceCache | None = None) -> dict[str, FileNode]:
    """Scan `rel_roots` (relative to `root`) and build the quote-include
    graph. System includes (<...>) are outside the architecture and ignored.
    `exclude` prefixes (e.g. the analyzer's own test fixtures) are skipped."""
    graph: dict[str, FileNode] = {}
    cache = cache or SourceCache()
    abs_roots = [os.path.join(root, r) for r in rel_roots]
    for path in iter_source_files(abs_roots):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(rel == e or rel.startswith(e + "/") for e in exclude):
            continue
        node = FileNode(rel=rel, layer=layer_of(rel))
        for tok in cache.tokens(path):
            if tok.kind != "pp":
                continue
            m = _INCLUDE_RE.match(tok.text.strip())
            if not m:
                continue
            target = _resolve(root, rel, m.group(1))
            if target is None:
                node.unresolved.append((m.group(1), tok.line))
            else:
                node.includes.append((target, tok.line))
        graph[rel] = node
    return graph


def _resolve(root: str, includer_rel: str, inc: str) -> str | None:
    """Map a quote-include to a repo-relative path. Layer-qualified form
    ("util/log.hpp") resolves against src/ whether or not the file exists in
    the scanned set; otherwise the include is tried relative to the
    including file (the bench/common.hpp idiom)."""
    first = inc.split("/", 1)[0]
    if first in LAYERS:
        return "src/" + inc
    rel_to_file = os.path.normpath(
        os.path.join(os.path.dirname(includer_rel), inc)).replace(os.sep, "/")
    if os.path.isfile(os.path.join(root, rel_to_file)):
        return rel_to_file
    if os.path.isfile(os.path.join(root, "src", inc)):
        return ("src/" + inc).replace(os.sep, "/")
    return None


def check_layering(graph: dict[str, FileNode]) -> list[Finding]:
    findings: list[Finding] = []
    for node in graph.values():
        src_layer, src_rank = node.layer, rank_of(node.layer)
        for target, line in node.includes:
            tgt_layer = layer_of(target)
            tgt_rank = rank_of(tgt_layer)
            if tgt_rank < 0 or src_rank < 0:
                continue  # unknown tree: reported via include-unresolved
            if tgt_layer in TOP_TREES and tgt_layer != src_layer:
                findings.append(Finding(
                    node.rel, line, "include-layering",
                    f"{src_layer}/ must not include from {tgt_layer}/ "
                    f"({target}) — top-level trees are siloed"))
            elif tgt_rank > src_rank:
                findings.append(Finding(
                    node.rel, line, "include-layering",
                    f"layer '{src_layer}' includes upward into "
                    f"'{tgt_layer}' ({target}); allowed order is "
                    + " -> ".join(LAYERS)
                    + " with bench/examples/tests on top"))
        for raw, line in node.unresolved:
            findings.append(Finding(
                node.rel, line, "include-unresolved",
                f'cannot resolve #include "{raw}" — includes must be '
                "layer-qualified (\"util/log.hpp\") or relative to the "
                "including file"))
    return findings


def find_cycles(graph: dict[str, FileNode]) -> list[Finding]:
    """Tarjan SCC over the file graph; every SCC with more than one node
    (or a self-loop) is reported once, with the member files listed."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    adjacency = {
        rel: [t for t, _ in node.includes if t in graph]
        for rel, node in graph.items()
    }

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: the call stack of a deep include chain would
        # otherwise overflow Python's recursion limit.
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbors = adjacency[node]
            while pi < len(neighbors):
                w = neighbors[pi]
                pi += 1
                if w not in index:
                    work[-1] = (node, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[node])

    for v in sorted(adjacency):
        if v not in index:
            strongconnect(v)

    findings: list[Finding] = []
    for scc in sccs:
        self_loop = len(scc) == 1 and scc[0] in adjacency[scc[0]]
        if len(scc) < 2 and not self_loop:
            continue
        members = sorted(scc)
        anchor = members[0]
        line = next((ln for t, ln in graph[anchor].includes if t in scc), 1)
        findings.append(Finding(
            anchor, line, "include-cycle",
            "include cycle: " + " -> ".join(members + [members[0]])))
    return findings


def write_dot(graph: dict[str, FileNode], path: str) -> None:
    by_layer: dict[str, list[str]] = {}
    for node in graph.values():
        by_layer.setdefault(node.layer, []).append(node.rel)
    order = LAYERS + list(TOP_TREES) + ["?"]
    with open(path, "w", encoding="utf-8") as f:
        f.write("digraph includes {\n  rankdir=BT;\n  node [shape=box, "
                "fontsize=9];\n")
        for layer in order:
            if layer not in by_layer:
                continue
            f.write(f'  subgraph "cluster_{layer}" {{\n')
            f.write(f'    label="{layer}";\n')
            for rel in sorted(by_layer[layer]):
                f.write(f'    "{rel}";\n')
            f.write("  }\n")
        for rel in sorted(graph):
            for target, _ in graph[rel].includes:
                f.write(f'  "{rel}" -> "{target}";\n')
        f.write("}\n")


def graph_json(graph: dict[str, FileNode],
               findings: list[Finding]) -> str:
    payload = {
        "layers": LAYERS,
        "top_trees": list(TOP_TREES),
        "files": {
            rel: {
                "layer": node.layer,
                "includes": sorted({t for t, _ in node.includes}),
            }
            for rel, node in sorted(graph.items())
        },
        "violations": [
            {"path": f.path, "line": f.line, "check": f.check,
             "message": f.message}
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
