"""Shared C++ lexer for the vizcache analysis tools.

One tokenizer, three consumers (tools/lint.py, include_graph.py,
lock_graph.py), so every check sees the same view of the source: comments
gone, string/char literals reduced to opaque tokens, raw strings handled —
a `"delete"` inside a log message or an `R"(std::cout)"` test payload can
never trigger a lexical check again.

This is a *lexer*, not a parser: it guarantees token identity and line
numbers, nothing about grammar. The analyzers layer heuristic structure
(class bodies, function bodies, call sites) on top of the token stream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

# Token kinds:
#   id     identifier or keyword
#   num    numeric literal (pp-number: good enough to skip it atomically)
#   str    string literal (text is the OPENING QUOTE ONLY — payload dropped)
#   char   character literal (payload dropped)
#   punct  operator / punctuator
#   pp     whole preprocessor directive, backslash continuations joined
KINDS = ("id", "num", "str", "char", "punct", "pp")


@dataclass(frozen=True)
class Tok:
    kind: str
    text: str
    line: int  # 1-based line of the token's first character

    def __repr__(self) -> str:  # compact: Tok(id 'Mutex' @12)
        return f"Tok({self.kind} {self.text!r} @{self.line})"


_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# pp-number: consume digits, identifier chars, dots, and exponent signs.
_NUM_RE = re.compile(r"\.?[0-9](?:'?[0-9A-Za-z_.]|[eEpP][+-])*")
_RAW_PREFIX_RE = re.compile(r'(?:u8|u|U|L)?R"')
_STR_PREFIX_RE = re.compile(r'(?:u8|u|U|L)?"')
_CHAR_PREFIX_RE = re.compile(r"(?:u8|u|U|L)?'")

# Longest-match punctuator table (only multi-char ones need listing; any
# other single character falls through to a one-char punct token).
_PUNCTS = sorted(
    [
        "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
        "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
        "|=", "^=", ".*", "##",
    ],
    key=len,
    reverse=True,
)


def tokenize(text: str) -> list[Tok]:
    """Lex `text` into tokens. Never raises on malformed input: an
    unterminated comment/string simply consumes to end of file (mirroring
    how a compiler would error, without making the *linter* the thing that
    crashes)."""
    toks: list[Tok] = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def count_newlines(segment: str) -> int:
        return segment.count("\n")

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        # -- whitespace ----------------------------------------------------
        if c in " \t\r\v\f":
            i += 1
            continue
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue

        # -- comments ------------------------------------------------------
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                line += count_newlines(text[i:])
                i = n
            else:
                line += count_newlines(text[i : j + 2])
                i = j + 2
            continue

        # -- preprocessor directive ---------------------------------------
        if c == "#" and at_line_start:
            start_line = line
            parts: list[str] = []
            while i < n:
                j = text.find("\n", i)
                j = n if j == -1 else j
                segment = text[i:j]
                i = j + 1 if j < n else n
                if j < n:
                    line += 1
                if segment.endswith("\\"):
                    parts.append(segment[:-1])
                    continue
                parts.append(segment)
                break
            directive = " ".join(parts)
            # Strip a trailing // comment (block comments inside directives
            # are vanishingly rare in this tree; // is the common case).
            directive = re.sub(r"//.*$", "", directive).rstrip()
            toks.append(Tok("pp", directive, start_line))
            at_line_start = True
            continue

        at_line_start = False

        # -- raw strings (checked before plain strings!) -------------------
        m = _RAW_PREFIX_RE.match(text, i)
        if m:
            delim_end = text.find("(", m.end())
            if delim_end == -1:  # malformed; treat rest of file as string
                line += count_newlines(text[i:])
                toks.append(Tok("str", '"', line))
                i = n
                continue
            delim = text[m.end() : delim_end]
            closer = ")" + delim + '"'
            j = text.find(closer, delim_end + 1)
            end = n if j == -1 else j + len(closer)
            line_of = line
            line += count_newlines(text[i:end])
            toks.append(Tok("str", '"', line_of))
            i = end
            continue

        # -- string / char literals ---------------------------------------
        m = _STR_PREFIX_RE.match(text, i)
        if not m:
            m = _CHAR_PREFIX_RE.match(text, i)
        if m:
            quote = text[m.end() - 1]
            j = m.end()
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            line_of = line
            line += count_newlines(text[i : min(j + 1, n)])
            toks.append(Tok("str" if quote == '"' else "char", quote, line_of))
            i = min(j + 1, n)
            continue

        # -- identifiers / numbers ----------------------------------------
        m = _ID_RE.match(text, i)
        if m:
            toks.append(Tok("id", m.group(0), line))
            i = m.end()
            continue
        m = _NUM_RE.match(text, i)
        if m:
            toks.append(Tok("num", m.group(0), line))
            i = m.end()
            continue

        # -- punctuators ---------------------------------------------------
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Tok("punct", c, line))
            i += 1

    return toks


def scrub(text: str) -> str:
    """`text` with comments and string/char literal *contents* replaced by
    spaces, line structure preserved — the line-oriented fallback for tools
    that still want regexes over clean source (raw strings handled, unlike
    the ad-hoc stripper this replaces)."""
    out: list[str] = []
    i, n = 0, len(text)

    def blank(segment: str) -> str:
        return "".join(ch if ch == "\n" else " " for ch in segment)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(blank(text[i:j]))
            i = j
        elif _RAW_PREFIX_RE.match(text, i):
            m = _RAW_PREFIX_RE.match(text, i)
            delim_end = text.find("(", m.end())
            if delim_end == -1:
                out.append(blank(text[i:]))
                i = n
                continue
            delim = text[m.end() : delim_end]
            closer = ")" + delim + '"'
            j = text.find(closer, delim_end + 1)
            j = n if j == -1 else j + len(closer)
            out.append('"' + blank(text[i + 1 : j - 1]).replace('"', " ") + '"'
                       if j - i >= 2 else blank(text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + blank(text[i + 1 : j - 1]) +
                       (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceCache:
    """Memoized (text, tokens, lines) per file path.

    analyze.py runs four passes (include graph, lock graph, call graph,
    suppression scan) and tools/lint.py adds a fifth; each used to re-read
    and re-tokenize every file. One SourceCache shared across passes means
    each file is read and lexed exactly once per run.
    """

    def __init__(self):
        self._text: dict[str, str] = {}
        self._toks: dict[str, list[Tok]] = {}
        self._lines: dict[str, list[str]] = {}
        self.reads = 0       # actual file reads (cache misses)
        self.lookups = 0     # total text/tokens/lines queries

    def text(self, path: str) -> str:
        self.lookups += 1
        cached = self._text.get(path)
        if cached is None:
            with open(path, encoding="utf-8") as f:
                cached = f.read()
            self._text[path] = cached
            self.reads += 1
        return cached

    def tokens(self, path: str) -> list[Tok]:
        self.lookups += 1
        cached = self._toks.get(path)
        if cached is None:
            cached = tokenize(self.text(path))
            self._toks[path] = cached
        return cached

    def lines(self, path: str) -> list[str]:
        self.lookups += 1
        cached = self._lines.get(path)
        if cached is None:
            cached = self.text(path).splitlines()
            self._lines[path] = cached
        return cached


def iter_source_files(roots: Iterable[str], exts={".hpp", ".cpp"}):
    """Walk `roots` yielding source paths in deterministic order."""
    import os

    for root in roots:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.join(dirpath, name)
