"""Project-wide function call graph + transitive lock/blocking closure.

Built on the lock_graph Model (classes, fields, bodies) so the tree is
parsed exactly once. The graph covers function bodies under src/ — the
library layers whose locking and latency discipline the analyzer enforces;
bench/examples/tests call *into* src/ and their call sites still resolve
against this graph, but their own bodies are not nodes.

Construction rules (documented with their approximations in DESIGN.md):

  nodes        every function body under src/, named `Cls::method` for
               members (in-class or out-of-line `Cls::m()` definitions) and
               the bare name for free functions; overloads share one node
  direct       `f(...)` inside a member body resolves to the enclosing
               class (walking up base classes), else to a free function
               with a body; `Cls::f(...)` resolves against Cls
  members      `x.f(...)` / `x->f(...)` resolves the receiver's static
               type from the enclosing class's fields, then from a
               heuristic local/param type map (`KnownClass [&*] name`)
  virtual      a resolved target is over-approximated *by name*: every
               subclass of the target's class that declares or defines the
               method is also a target (dynamic dispatch can reach any
               override)
  indirect     calls through std::function fields (including `using X =
               std::function<...>` aliases) cannot be resolved statically;
               they are flagged as indirect sites in the JSON export, not
               silently dropped
  unresolved   a receiver whose type is not a project class (std::
               containers, iterators, `auto` locals) is treated as
               external — the documented under-approximation

On top of the graph, two transitive attributes are propagated caller-ward
to a fixpoint with witness chains:

  trans_locks  the set of lock classes (`Cls::mutex_`) a call may acquire,
               seeded from MutexLock constructions and EXCLUDES/ACQUIRE
               annotations
  trans_block  whether a call may sleep, wait on a CondVar, or perform
               file I/O

lock_graph._analyze_body consumes both to extend lock-held-call and
lock-blocking to indirect violations, and feeds every (held -> acquired)
pair into the LockOrderGraph here, where Tarjan SCC detection reports
potential static deadlocks (lock-order-cycle) with witness chains.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from cpptok import Tok
from include_graph import Finding, layer_of
import lock_graph as lg

# Callee names that are never project calls (keywords, casts, annotations
# are filtered by the shared sets in lock_graph).
_SKIP_CALLEES = lg.KEYWORDS | lg.ANNOTATIONS | {"MutexLock", "CondVar"}


@dataclass(frozen=True)
class CallEdge:
    target: str   # qualified callee
    line: int
    kind: str     # "member" | "qualified" | "bare" | "virtual"


class CallGraph:
    def __init__(self, model: lg.Model):
        self.model = model
        # qual -> list of bodies (overloads share the node)
        self.nodes: dict[str, list[lg.FuncBody]] = {}
        # caller qual -> [CallEdge]; deduped on (caller, target)
        self.edges: dict[str, list[CallEdge]] = {}
        # call sites through std::function fields: conservative flags
        self.indirect: list[dict] = []
        # (cls, method) pairs that exist as declaration or definition
        self.has_member: set[tuple[str, str]] = set()
        self.free_funcs: set[str] = set()
        self.subclasses: dict[str, set[str]] = {}
        # qual -> {lock_id: evidence}
        self.direct_locks: dict[str, dict[str, str]] = {}
        # qual -> evidence
        self.direct_block: dict[str, str] = {}
        # qual -> {lock_id: (chain, evidence)}; chain = tuple of quals from
        # the node toward the acquiring function (exclusive of the node)
        self.trans_locks: dict[str, dict[str, tuple[tuple, str]]] = {}
        # qual -> (chain, evidence)
        self.trans_block: dict[str, tuple[tuple, str]] = {}
        self._local_types: dict[int, dict[str, str]] = {}

    def resolve_site(self, body, toks, i, callee, recv, qual):
        return resolve_site(self, body, toks, i, callee, recv, qual)


# --------------------------------------------------------------------------
# Graph construction
# --------------------------------------------------------------------------

def build_call_graph(model: lg.Model) -> CallGraph:
    cg = CallGraph(model)
    _index_members(cg)
    _index_subclasses(cg)
    for qual, bodies in cg.nodes.items():
        for body in bodies:
            _harvest_edges(cg, qual, body)
    _seed_attributes(cg)
    _propagate(cg)
    return cg


def _index_members(cg: CallGraph) -> None:
    model = cg.model
    for cls in model.classes.values():
        for mname in cls.methods:
            cg.has_member.add((cls.name, mname))
    for body in model.bodies:
        if body.cls:
            cg.has_member.add((body.cls, body.name))
        if not body.file.startswith("src/"):
            continue
        cg.nodes.setdefault(body.qual, []).append(body)
        if not body.cls:
            cg.free_funcs.add(body.name)


def _index_subclasses(cg: CallGraph) -> None:
    children: dict[str, set[str]] = {}
    for cls in cg.model.classes.values():
        for base in cls.bases:
            children.setdefault(base, set()).add(cls.name)
    for root in children:
        seen: set[str] = set()
        frontier = [root]
        while frontier:
            c = frontier.pop()
            for sub in children.get(c, ()):
                if sub not in seen:
                    seen.add(sub)
                    frontier.append(sub)
        cg.subclasses[root] = seen


def _ancestors(cg: CallGraph, cls_name: str) -> list[str]:
    """cls_name followed by its known base classes, BFS order."""
    out, frontier = [], [cls_name]
    seen: set[str] = set()
    while frontier:
        c = frontier.pop(0)
        if c in seen or c not in cg.model.classes:
            if c not in seen and c == cls_name:
                out.append(c)  # keep the start even if undeclared
            seen.add(c)
            continue
        seen.add(c)
        out.append(c)
        frontier.extend(cg.model.classes[c].bases)
    return out


def local_types(cg: CallGraph, body: lg.FuncBody) -> dict[str, str]:
    """Heuristic name -> class map for a body's params and locals: the
    pattern `KnownClass [&*const]* name` in the signature or body."""
    cached = cg._local_types.get(id(body))
    if cached is not None:
        return cached
    types: dict[str, str] = {}
    classes = cg.model.classes
    for toks in (body.sig_toks, body.toks):
        i, n = 0, len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in classes:
                j = i + 1
                if j < n and toks[j].text == "<":  # skip template args
                    depth = 0
                    while j < n:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                        elif toks[j].text == ">>":
                            depth -= 2
                            if depth <= 0:
                                j += 1
                                break
                        j += 1
                while j < n and (toks[j].text in ("&", "*", "const")):
                    j += 1
                if j < n and toks[j].kind == "id":
                    types.setdefault(toks[j].text, t.text)
                i = j
                continue
            i += 1
    cg._local_types[id(body)] = types
    return types


def _expand(cg: CallGraph, cls_name: str, callee: str) -> list[str]:
    """Resolve `callee` against `cls_name`: the defining class (walking up
    bases) plus — the virtual over-approximation — every subclass that
    declares or defines a method of the same name."""
    definer = next((c for c in _ancestors(cg, cls_name)
                    if (c, callee) in cg.has_member), None)
    targets: list[str] = []
    if definer is not None:
        targets.append(f"{definer}::{callee}")
    for sub in sorted(cg.subclasses.get(definer or cls_name, ())):
        if (sub, callee) in cg.has_member:
            targets.append(f"{sub}::{callee}")
    return targets


def resolve_site(cg: CallGraph, body: lg.FuncBody, toks: list[Tok], i: int,
                 callee: str, recv: str | None,
                 qual: str | None) -> list[str]:
    """Qualified targets of the call whose callee id is at toks[i].
    Empty for external (std::), indirect, constructor, or unresolvable
    receivers."""
    model = cg.model
    if callee in _SKIP_CALLEES:
        return []
    if qual is not None:
        if qual in model.classes:
            return _expand(cg, qual, callee)
        return []  # std:: / foreign namespace
    if recv is not None:
        if recv == "this":
            rtypes = [body.cls] if body.cls else []
        else:
            rtypes = []
            cls = model.classes.get(body.cls) if body.cls else None
            fld = cls.fields.get(recv) if cls else None
            if fld is None:
                lt = local_types(cg, body).get(recv)
                if lt is not None:
                    rtypes = [lt]
                else:
                    candidates = model.field_index.get(recv, [])
                    # A field of exactly one project class: unambiguous even
                    # from a lambda or free helper.
                    if len(candidates) == 1:
                        fld = candidates[0]
            if fld is not None:
                rtypes = [ti for ti in fld.type_ids if ti in model.classes]
        out: list[str] = []
        for rt in rtypes:
            out.extend(_expand(cg, rt, callee))
        return sorted(set(out))
    # bare call: method of the enclosing class (or a base), else a free
    # function with a body; `Class(...)` constructions are untracked.
    if body.cls:
        definer = next((c for c in _ancestors(cg, body.cls)
                        if (c, callee) in cg.has_member), None)
        if definer is not None:
            return _expand(cg, definer, callee)
    if callee in cg.free_funcs:
        return [callee]
    return []


def _is_fn_field(cg: CallGraph, body: lg.FuncBody, name: str) -> bool:
    """True when `name` is a field whose type is std::function (or an
    alias of one) — a call through it is an indirect site."""
    fn_types = {"function"} | cg.model.fn_aliases
    cls = cg.model.classes.get(body.cls) if body.cls else None
    fields = ([cls.fields[name]] if cls and name in cls.fields
              else cg.model.field_index.get(name, []))
    return any(set(f.type_ids) & fn_types for f in fields)


def _harvest_edges(cg: CallGraph, qual: str, body: lg.FuncBody) -> None:
    toks = body.toks
    n = len(toks)
    seen_targets: set[str] = {e.target for e in cg.edges.get(qual, ())}
    edges = cg.edges.setdefault(qual, [])
    for i, t in enumerate(toks):
        if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
            continue
        callee = t.text
        if callee in _SKIP_CALLEES:
            continue
        recv = lg._receiver(toks, i)
        q = lg._qualifier(toks, i)
        if recv is None and q is None and _is_fn_field(cg, body, callee):
            cg.indirect.append({
                "caller": qual, "file": body.file, "line": t.line,
                "name": callee,
            })
            continue
        targets = resolve_site(cg, body, toks, i, callee, recv, q)
        kind = ("qualified" if q else "member" if recv else "bare")
        for target in targets:
            if target in seen_targets:
                continue
            seen_targets.add(target)
            edges.append(CallEdge(target=target, line=t.line,
                                  kind="virtual" if len(targets) > 1
                                  else kind))


# --------------------------------------------------------------------------
# Attributes + transitive closure
# --------------------------------------------------------------------------

def _seed_attributes(cg: CallGraph) -> None:
    model = cg.model
    for qual, bodies in cg.nodes.items():
        for body in bodies:
            cls = model.classes.get(body.cls) if body.cls else None
            toks = body.toks
            for i, t in enumerate(toks):
                if t.kind != "id" or t.text != "MutexLock":
                    continue
                j = i + 1
                if j < len(toks) and toks[j].kind == "id":
                    j += 1
                if j >= len(toks) or toks[j].text != "(":
                    continue
                end = lg._match_paren(toks, j)
                expr_toks = toks[j + 1 : end - 1]
                last_id = next((tt.text for tt in reversed(expr_toks)
                                if tt.kind == "id"), "")
                if not last_id:
                    continue
                lock_id = lg.resolve_lock_id(last_id, cls, model)
                cg.direct_locks.setdefault(qual, {}).setdefault(
                    lock_id, f"{qual} locks {lock_id} "
                             f"({body.file}:{t.line})")
            if qual not in cg.direct_block:
                reason = lg._body_blocks(body, model)
                if reason is None:
                    reason = _condvar_wait_reason(body, cls, model)
                if reason is not None:
                    cg.direct_block[qual] = (f"{qual} {reason} "
                                             f"({body.file}:{body.line})")
    # Annotated declarations (EXCLUDES/ACQUIRE) seed lock identities even
    # without a body in the scanned set.
    for qual, (arg, evidence) in model.decl_acquires.items():
        last_id = _last_id_of(arg)
        owner = qual.split("::")[0] if "::" in qual else None
        cls = model.classes.get(owner) if owner else None
        lock_id = (lg.resolve_lock_id(last_id, cls, model) if last_id
                   else f"{owner or '?'}::?")
        cg.direct_locks.setdefault(qual, {}).setdefault(lock_id, evidence)


def _last_id_of(expr: str) -> str:
    out = ""
    cur = ""
    for ch in expr:
        if ch.isalnum() or ch == "_":
            cur += ch
        else:
            if cur:
                out = cur
            cur = ""
    return cur or out


def _condvar_wait_reason(body: lg.FuncBody, cls, model: lg.Model):
    toks = body.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "wait":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        recv = lg._receiver(toks, i)
        if recv is None:
            continue
        fields = ([cls.fields[recv]] if cls and recv in cls.fields
                  else model.field_index.get(recv, []))
        if any(f.is_condvar for f in fields):
            return f"waits on CondVar {recv}"
    return None


def _propagate(cg: CallGraph) -> None:
    rev: dict[str, list[str]] = {}
    for caller, edges in cg.edges.items():
        for e in edges:
            rev.setdefault(e.target, []).append(caller)

    for qual, locks in cg.direct_locks.items():
        cg.trans_locks[qual] = {
            lid: ((), ev) for lid, ev in locks.items()
        }
    work = list(cg.trans_locks)
    while work:
        q = work.pop(0)
        entry = cg.trans_locks[q]
        for caller in rev.get(q, ()):
            slot = cg.trans_locks.setdefault(caller, {})
            updated = False
            for lid, (chain, ev) in entry.items():
                if lid not in slot:
                    slot[lid] = ((q,) + chain, ev)
                    updated = True
            if updated:
                work.append(caller)

    for qual, ev in cg.direct_block.items():
        cg.trans_block.setdefault(qual, ((), ev))
    work = list(cg.trans_block)
    while work:
        q = work.pop(0)
        chain, ev = cg.trans_block[q]
        for caller in rev.get(q, ()):
            if caller not in cg.trans_block:
                cg.trans_block[caller] = ((q,) + chain, ev)
                work.append(caller)


# --------------------------------------------------------------------------
# Lock-order graph + deadlock cycles
# --------------------------------------------------------------------------

class LockOrderGraph:
    """Ordered (held lock class -> acquired lock class) edges with one
    witness each: the file/line of the acquiring site and the call chain
    that reached it. Edges are collected even through guard-exempt or
    suppressed sites — the order exists at runtime either way."""

    def __init__(self):
        self.edges: dict[tuple[str, str], dict] = {}

    def add(self, held: str, acquired: str, file: str, line: int,
            via: tuple) -> None:
        key = (held, acquired)
        if key not in self.edges:
            self.edges[key] = {"file": file, "line": line,
                               "via": tuple(via)}


def check_lock_order(order: LockOrderGraph) -> list[Finding]:
    """Tarjan SCC over the lock-order graph; every SCC with >1 lock (or a
    self-loop: re-acquiring the same lock class) is a potential deadlock."""
    adjacency: dict[str, list[str]] = {}
    for (held, acquired) in order.edges:
        adjacency.setdefault(held, []).append(acquired)
        adjacency.setdefault(acquired, [])

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbors = adjacency[node]
            while pi < len(neighbors):
                w = neighbors[pi]
                pi += 1
                if w not in index:
                    work[-1] = (node, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[node])

    for v in sorted(adjacency):
        if v not in index:
            strongconnect(v)

    findings: list[Finding] = []
    for scc in sccs:
        members = sorted(scc)
        self_loop = (len(scc) == 1
                     and (scc[0], scc[0]) in order.edges)
        if len(scc) < 2 and not self_loop:
            continue
        cycle_edges = sorted(
            (key, w) for key, w in order.edges.items()
            if key[0] in scc and key[1] in scc)
        witnesses = "; ".join(
            f"{held} -> {acq} at {w['file']}:{w['line']} "
            f"(via {' -> '.join(w['via'])})"
            for (held, acq), w in cycle_edges)
        (held0, acq0), w0 = cycle_edges[0]
        findings.append(Finding(
            w0["file"], w0["line"], "lock-order-cycle",
            "potential deadlock: lock-order cycle "
            + " -> ".join(members + [members[0]])
            + f" — witnesses: {witnesses}",
            chain=w0["via"]))
    return findings


# --------------------------------------------------------------------------
# Exports
# --------------------------------------------------------------------------

def write_dot(cg: CallGraph, path: str) -> None:
    by_layer: dict[str, list[str]] = {}
    files = {qual: bodies[0].file for qual, bodies in cg.nodes.items()}
    for qual, file in files.items():
        by_layer.setdefault(layer_of(file), []).append(qual)
    with open(path, "w", encoding="utf-8") as f:
        f.write("digraph calls {\n  rankdir=LR;\n  node [shape=box, "
                "fontsize=9];\n")
        for layer in sorted(by_layer):
            f.write(f'  subgraph "cluster_{layer}" {{\n')
            f.write(f'    label="{layer}";\n')
            for qual in sorted(by_layer[layer]):
                f.write(f'    "{qual}";\n')
            f.write("  }\n")
        for caller in sorted(cg.edges):
            for e in sorted(cg.edges[caller],
                            key=lambda e: (e.target, e.line)):
                style = ' [style=dashed]' if e.kind == "virtual" else ""
                f.write(f'  "{caller}" -> "{e.target}"{style};\n')
        f.write("}\n")


def call_json(cg: CallGraph) -> str:
    payload = {
        "nodes": {
            qual: {
                "file": bodies[0].file,
                "line": bodies[0].line,
                "locks": sorted(cg.trans_locks.get(qual, {})),
                "blocks": cg.trans_block.get(qual, (None, None))[1],
            }
            for qual, bodies in sorted(cg.nodes.items())
        },
        "edges": [
            {"from": caller, "to": e.target, "line": e.line,
             "kind": e.kind}
            for caller in sorted(cg.edges)
            for e in sorted(cg.edges[caller],
                            key=lambda e: (e.target, e.line))
        ],
        "indirect_sites": sorted(
            cg.indirect, key=lambda s: (s["file"], s["line"], s["name"])),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_lock_order_dot(order: LockOrderGraph, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("digraph lock_order {\n  node [shape=box, fontsize=10];\n")
        locks = sorted({l for key in order.edges for l in key})
        for lock in locks:
            f.write(f'  "{lock}";\n')
        for (held, acquired), w in sorted(order.edges.items()):
            f.write(f'  "{held}" -> "{acquired}" '
                    f'[label="{w["file"]}:{w["line"]}", fontsize=8];\n')
        f.write("}\n")


def lock_order_json(order: LockOrderGraph,
                    findings: list[Finding]) -> str:
    payload = {
        "edges": [
            {"held": held, "acquired": acquired, "file": w["file"],
             "line": w["line"], "via": list(w["via"])}
            for (held, acquired), w in sorted(order.edges.items())
        ],
        "cycles": [
            {"path": f.path, "line": f.line, "message": f.message}
            for f in findings if f.check == "lock-order-cycle"
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
