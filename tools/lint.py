#!/usr/bin/env python3
"""vizcache repository lint: invariants clang-tidy cannot express.

Checks (over the same trees the architecture analyzer scans — src/ bench/
examples/ tests/ — minus the analyzer's seeded fixture trees):

  pragma-once    every header's first directive is `#pragma once`
  console-io     std::cout / std::cerr / printf confined to src/util/log.*
                 (report printing goes through Log::write_stdout). bench/ and
                 examples/ are command-line reports whose stdout IS the
                 product, so the check is waived there — the other checks
                 still apply when those trees are linted.
  naked-new      no `new` / `delete` expressions — ownership is RAII-only
                 (std::make_shared / std::make_unique / containers)
  raw-sync       no raw std::mutex / lock_guard / unique_lock / scoped_lock /
                 condition_variable outside src/util/annotated_mutex.hpp —
                 every acquisition must go through the capability-annotated
                 wrapper so clang -Wthread-safety sees it
  self-contained every header compiles standalone (needs a C++ compiler;
                 enabled by --headers, on by default in CI's tidy job)

The lexical checks run on the token stream from tools/analyze/cpptok.py
(shared with the architecture analyzer), so comments, string literals, and
raw strings can never trigger them — a `"delete"` inside a log message or
an `R"(std::cout)"` payload is invisible here.

Exit status 0 when clean, 1 when any check fails, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "analyze"))

from cpptok import iter_source_files, tokenize  # noqa: E402
# Scanned trees are shared with the analyzer so the two tools can never
# drift apart on what counts as "the repo".
from analyze import DEFAULT_EXCLUDE, DEFAULT_ROOTS  # noqa: E402

CONSOLE_IO_ALLOWLIST = {"src/util/log.cpp", "src/util/log.hpp"}
# Whole trees where printing to stdout is the point (reports, demos).
CONSOLE_IO_ALLOWED_DIRS = ("bench" + os.sep, "examples" + os.sep)
RAW_SYNC_ALLOWLIST = {"src/util/annotated_mutex.hpp"}

CONSOLE_STREAMS = {"cout", "cerr"}
RAW_SYNC_TYPES = {
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex",
    "lock_guard", "unique_lock", "scoped_lock",
    "condition_variable", "condition_variable_any",
}
_PRAGMA_ONCE_RE = re.compile(r"#\s*pragma\s+once\s*$")


class Linter:
    def __init__(self):
        self.failures = []

    def fail(self, path: str, line: int, check: str, message: str):
        rel = os.path.relpath(path, REPO_ROOT)
        self.failures.append(f"{rel}:{line}: [{check}] {message}")

    # -- token checks --------------------------------------------------------

    def check_pragma_once(self, path: str, toks):
        if not path.endswith(".hpp"):
            return
        first = next(iter(toks), None)
        if first is None:
            self.fail(path, 1, "pragma-once", "empty header")
            return
        if first.kind != "pp" or not _PRAGMA_ONCE_RE.match(first.text.strip()):
            self.fail(path, first.line, "pragma-once",
                      "first directive of a header must be `#pragma once`")

    def check_console_io(self, path: str, toks):
        rel = os.path.relpath(path, REPO_ROOT)
        if rel in CONSOLE_IO_ALLOWLIST or rel.startswith(CONSOLE_IO_ALLOWED_DIRS):
            return
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if (t.text in CONSOLE_STREAMS and i >= 2
                    and toks[i - 1].text == "::" and toks[i - 2].text == "std"):
                self.fail(path, t.line, "console-io",
                          f"`std::{t.text}` outside util/log — route output "
                          "through Log::write/Log::write_stdout")
            elif t.text == "fprintf" and nxt == "(":
                self.fail(path, t.line, "console-io",
                          "`fprintf` outside util/log — route output "
                          "through Log::write/Log::write_stdout")
            elif (t.text == "printf" and nxt == "("
                  and (i == 0 or toks[i - 1].text != "::")):
                self.fail(path, t.line, "console-io",
                          "`printf` outside util/log — route output "
                          "through Log::write/Log::write_stdout")

    def check_naked_new(self, path: str, toks):
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text == "new":
                self.fail(path, t.line, "naked-new",
                          "`new` expression — use std::make_unique/make_shared "
                          "or a container")
            elif t.text == "delete" and not (i and toks[i - 1].text == "="):
                # `= delete`d special members are fine; anything else is an
                # ownership hole.
                self.fail(path, t.line, "naked-new",
                          "`delete` expression — ownership must be RAII")

    def check_raw_sync(self, path: str, toks):
        if os.path.relpath(path, REPO_ROOT) in RAW_SYNC_ALLOWLIST:
            return
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text in RAW_SYNC_TYPES and i >= 2
                    and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                self.fail(path, t.line, "raw-sync",
                          f"`std::{t.text}` — use vizcache::Mutex/MutexLock/"
                          "CondVar from util/annotated_mutex.hpp so "
                          "-Wthread-safety checks the acquisition")

    # -- compile check -------------------------------------------------------

    def check_self_contained(self, headers, compiler: str, std: str):
        include_dir = os.path.join(REPO_ROOT, "src")
        with tempfile.TemporaryDirectory(prefix="vizcache-lint-") as tmp:
            probe = os.path.join(tmp, "probe.cpp")
            for header in headers:
                rel = os.path.relpath(header, include_dir)
                with open(probe, "w", encoding="utf-8") as f:
                    f.write(f'#include "{rel}"\n')
                    # Including twice also proves the include guard works.
                    f.write(f'#include "{rel}"\n')
                cmd = [compiler, f"-std={std}", "-fsyntax-only",
                       "-I", include_dir, probe]
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    first_error = next(
                        (l for l in proc.stderr.splitlines() if "error" in l),
                        proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "compile failed")
                    self.fail(header, 1, "self-contained",
                              f"header does not compile standalone: {first_error}")


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="directories to lint "
                             f"(default: {' '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--headers", action="store_true",
                        help="also compile every header standalone (-fsyntax-only)")
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                        help="compiler for --headers (default: $CXX or c++)")
    parser.add_argument("--std", default="c++20", help="language standard for --headers")
    args = parser.parse_args(argv)

    roots = [os.path.join(REPO_ROOT, p) for p in (args.paths or DEFAULT_ROOTS)]
    for root in roots:
        if not os.path.isdir(root):
            print(f"lint: no such directory: {root}", file=sys.stderr)
            return 2
    excluded = tuple(os.path.join(REPO_ROOT, e) + os.sep
                     for e in DEFAULT_EXCLUDE)

    linter = Linter()
    headers = []
    for path in iter_source_files(roots, {".hpp", ".cpp"}):
        if path.startswith(excluded):
            continue  # analyzer fixtures carry seeded violations
        with open(path, encoding="utf-8") as f:
            text = f.read()
        toks = tokenize(text)
        linter.check_pragma_once(path, toks)
        linter.check_console_io(path, toks)
        linter.check_naked_new(path, toks)
        linter.check_raw_sync(path, toks)
        if path.endswith(".hpp"):
            headers.append(path)

    if args.headers:
        linter.check_self_contained(headers, args.compiler, args.std)

    if linter.failures:
        for failure in linter.failures:
            print(failure)
        print(f"lint: {len(linter.failures)} failure(s)", file=sys.stderr)
        return 1
    n_headers = f", {len(headers)} headers compiled standalone" if args.headers else ""
    print(f"lint: clean ({len(roots)} tree(s){n_headers})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
