#!/usr/bin/env python3
"""vizcache repository lint: invariants clang-tidy cannot express.

Checks (over src/ by default):

  pragma-once    every header's first directive is `#pragma once`
  console-io     std::cout / std::cerr / printf confined to src/util/log.*
                 (report printing goes through Log::write_stdout). bench/ and
                 examples/ are command-line reports whose stdout IS the
                 product, so the check is waived there — the other checks
                 still apply when those trees are linted.
  naked-new      no `new` / `delete` expressions — ownership is RAII-only
                 (std::make_shared / std::make_unique / containers)
  raw-sync       no raw std::mutex / lock_guard / unique_lock / scoped_lock /
                 condition_variable outside src/util/annotated_mutex.hpp —
                 every acquisition must go through the capability-annotated
                 wrapper so clang -Wthread-safety sees it
  self-contained every header compiles standalone (needs a C++ compiler;
                 enabled by --headers, on by default in CI's tidy job)

Exit status 0 when clean, 1 when any check fails, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CONSOLE_IO_ALLOWLIST = {"src/util/log.cpp", "src/util/log.hpp"}
# Whole trees where printing to stdout is the point (reports, demos).
CONSOLE_IO_ALLOWED_DIRS = ("bench" + os.sep, "examples" + os.sep)
RAW_SYNC_ALLOWLIST = {"src/util/annotated_mutex.hpp"}

CONSOLE_IO_RE = re.compile(r"std::cout|std::cerr|\bfprintf\s*\(|(?<![\w:])printf\s*\(")
RAW_SYNC_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b"
    r"|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
    r"|std::condition_variable(?:_any)?\b"
)
NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
DELETED_FN_RE = re.compile(r"=\s*delete\b")  # deleted special members are fine


def strip_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literals with spaces, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(roots, exts):
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.join(dirpath, name)


class Linter:
    def __init__(self):
        self.failures = []

    def fail(self, path: str, line: int, check: str, message: str):
        rel = os.path.relpath(path, REPO_ROOT)
        self.failures.append(f"{rel}:{line}: [{check}] {message}")

    # -- textual checks ------------------------------------------------------

    def check_pragma_once(self, path: str, text: str):
        if not path.endswith(".hpp"):
            return
        for lineno, line in enumerate(strip_comments_and_strings(text).splitlines(), 1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped != "#pragma once":
                self.fail(path, lineno, "pragma-once",
                          "first directive of a header must be `#pragma once`")
            return
        self.fail(path, 1, "pragma-once", "empty header")

    def check_console_io(self, path: str, code: str):
        rel = os.path.relpath(path, REPO_ROOT)
        if rel in CONSOLE_IO_ALLOWLIST or rel.startswith(CONSOLE_IO_ALLOWED_DIRS):
            return
        for lineno, line in enumerate(code.splitlines(), 1):
            m = CONSOLE_IO_RE.search(line)
            if m:
                self.fail(path, lineno, "console-io",
                          f"`{m.group(0).strip()}` outside util/log — route output "
                          "through Log::write/Log::write_stdout")

    def check_naked_new(self, path: str, code: str):
        for lineno, line in enumerate(code.splitlines(), 1):
            scrubbed = DELETED_FN_RE.sub("", line)
            if NEW_RE.search(scrubbed):
                self.fail(path, lineno, "naked-new",
                          "`new` expression — use std::make_unique/make_shared "
                          "or a container")
            if DELETE_RE.search(scrubbed):
                self.fail(path, lineno, "naked-new",
                          "`delete` expression — ownership must be RAII")

    def check_raw_sync(self, path: str, code: str):
        if os.path.relpath(path, REPO_ROOT) in RAW_SYNC_ALLOWLIST:
            return
        for lineno, line in enumerate(code.splitlines(), 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                self.fail(path, lineno, "raw-sync",
                          f"`{m.group(0)}` — use vizcache::Mutex/MutexLock/CondVar "
                          "from util/annotated_mutex.hpp so -Wthread-safety "
                          "checks the acquisition")

    # -- compile check -------------------------------------------------------

    def check_self_contained(self, headers, compiler: str, std: str):
        include_dir = os.path.join(REPO_ROOT, "src")
        with tempfile.TemporaryDirectory(prefix="vizcache-lint-") as tmp:
            probe = os.path.join(tmp, "probe.cpp")
            for header in headers:
                rel = os.path.relpath(header, include_dir)
                with open(probe, "w", encoding="utf-8") as f:
                    f.write(f'#include "{rel}"\n')
                    # Including twice also proves the include guard works.
                    f.write(f'#include "{rel}"\n')
                cmd = [compiler, f"-std={std}", "-fsyntax-only",
                       "-I", include_dir, probe]
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    first_error = next(
                        (l for l in proc.stderr.splitlines() if "error" in l),
                        proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "compile failed")
                    self.fail(header, 1, "self-contained",
                              f"header does not compile standalone: {first_error}")


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="directories to lint (default: src/)")
    parser.add_argument("--headers", action="store_true",
                        help="also compile every header standalone (-fsyntax-only)")
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                        help="compiler for --headers (default: $CXX or c++)")
    parser.add_argument("--std", default="c++20", help="language standard for --headers")
    args = parser.parse_args(argv)

    roots = [os.path.join(REPO_ROOT, p) for p in (args.paths or ["src"])]
    for root in roots:
        if not os.path.isdir(root):
            print(f"lint: no such directory: {root}", file=sys.stderr)
            return 2

    linter = Linter()
    headers = []
    for path in iter_source_files(roots, {".hpp", ".cpp"}):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        code = strip_comments_and_strings(text)
        linter.check_pragma_once(path, text)
        linter.check_console_io(path, code)
        linter.check_naked_new(path, code)
        linter.check_raw_sync(path, code)
        if path.endswith(".hpp"):
            headers.append(path)

    if args.headers:
        linter.check_self_contained(headers, args.compiler, args.std)

    if linter.failures:
        for failure in linter.failures:
            print(failure)
        print(f"lint: {len(linter.failures)} failure(s)", file=sys.stderr)
        return 1
    n_headers = f", {len(headers)} headers compiled standalone" if args.headers else ""
    print(f"lint: clean ({len(roots)} tree(s){n_headers})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
