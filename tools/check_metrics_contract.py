#!/usr/bin/env python3
"""Metrics contract: registered instrument names vs. snapshot assertions.

check_metrics_snapshot.py asserts that benchmark snapshots contain a
fixed set of instrument names. Nothing used to tie those strings to the
names the C++ actually registers — rename a counter on one side and the
snapshot check silently stops covering it. This tool closes the loop by
extracting every `counter("...")` / `gauge("...")` / `histogram("...")`
registration literal from src/ and diffing it against the union of the
name lists check_metrics_snapshot.py asserts across all modes (default,
--app-aware, --service, --net). Drift in either direction fails:

  direction 1  an asserted name with no matching registration in src/ —
               the snapshot check would always fail (or the name was
               renamed in C++ only)
  direction 2  a registered full-literal name that no snapshot mode
               asserts and that is not in KNOWN_UNASSERTED below — new
               instruments must either join a snapshot contract or be
               explicitly recorded as unasserted, so coverage cannot rot

Component-prefixed registrations (`registry->counter(prefix + ".hits")`)
are matched by suffix for direction 1; they are exempt from direction 2
because the set of prefixes is a runtime property (each BlockCache level,
each MemoryHierarchy instance names its own). That is the documented
under-approximation: a composed name can only drift via its suffix.

Exit status: 0 in sync, 1 drift, 2 tool error (missing tree, bad flags).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_metrics_snapshot as snap  # noqa: E402

# Registered in src/ but deliberately not asserted by any snapshot mode.
# Every entry needs a reason — this list is the contract's escape hatch
# and is itself checked for staleness (direction 3).
KNOWN_UNASSERTED = {
    "pipeline.workers":
        "configuration echo (worker count), not a behavior signal",
    "pipeline.lookup_seconds":
        "sub-phase timing; the asserted io/render/total gauges cover the "
        "latency contract",
    "pipeline.prefetch_seconds":
        "sub-phase timing, same reason as pipeline.lookup_seconds",
    "pipeline.fetch_speedup":
        "derived convenience ratio of asserted gauges",
    "service.preload.blocks":
        "preload is an optional warm-start; bench runs assert the "
        "prefetch/demand split instead",
    "service.preload.scanned":
        "same preload warm-start accounting as service.preload.blocks",
}

_KINDS = ("counter", "gauge", "histogram")
# `kind ( "name" ` — \s* crosses newlines (multi-line registration calls).
_FULL_RE = re.compile(
    r'\b(counter|gauge|histogram)\s*\(\s*"([^"]+)"')
# `kind ( prefix + ".suffix"` — component-prefixed registration.
_COMPOSED_RE = re.compile(
    r'\b(counter|gauge|histogram)\s*\(\s*[A-Za-z_][A-Za-z0-9_]*\s*'
    r'\+\s*"(\.[^"]+)"')


def _strip_comments(text: str) -> str:
    """Remove //... and /*...*/ (newlines kept) but PRESERVE string
    literal contents — the names live inside the strings, so cpptok's
    payload-dropping tokenizer and scrub() are both unusable here."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                break
            out.append("".join(ch for ch in text[i:j + 2] if ch == "\n"))
            i = j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def extract_registrations(src_root: str):
    """(full, suffixes): full[kind][name] -> [file:line, ...];
    suffixes[kind] -> set of composed '.suffix' strings."""
    full: dict[str, dict[str, list[str]]] = {k: {} for k in _KINDS}
    suffixes: dict[str, set[str]] = {k: set() for k in _KINDS}
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for name in sorted(filenames):
            if os.path.splitext(name)[1] not in (".hpp", ".cpp"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                text = _strip_comments(f.read())
            for m in _FULL_RE.finditer(text):
                line = text.count("\n", 0, m.start()) + 1
                full[m.group(1)].setdefault(m.group(2), []).append(
                    f"{path}:{line}")
            for m in _COMPOSED_RE.finditer(text):
                suffixes[m.group(1)].add(m.group(2))
    return full, suffixes


def asserted_names() -> dict[str, set[str]]:
    """Union of the names check_metrics_snapshot.py asserts, per kind,
    across every mode."""
    return {
        "counter": set(
            snap.REQUIRED_COUNTERS + snap.APP_AWARE_NONZERO_COUNTERS
            + snap.SERVICE_REQUIRED_COUNTERS + snap.SERVICE_NONZERO_COUNTERS
            + snap.NET_REQUIRED_COUNTERS + snap.NET_NONZERO_COUNTERS),
        "gauge": set(
            snap.REQUIRED_GAUGES + snap.SERVICE_REQUIRED_GAUGES
            + snap.NET_ZERO_GAUGES),
        "histogram": set(
            snap.REQUIRED_HISTOGRAMS + snap.SERVICE_REQUIRED_HISTOGRAMS),
    }


def check(src_root: str) -> list[str]:
    full, suffixes = extract_registrations(src_root)
    asserted = asserted_names()
    problems: list[str] = []

    # direction 1: every asserted name must have a registration
    for kind in _KINDS:
        for name in sorted(asserted[kind]):
            if name in full[kind]:
                continue
            if any(name.endswith(s) for s in suffixes[kind]):
                continue
            problems.append(
                f"{kind} '{name}' is asserted by check_metrics_snapshot.py "
                f"but never registered under {src_root}/ — renamed or "
                "removed in C++ without updating the snapshot contract")

    # direction 2: every registered full literal must be asserted (or
    # recorded in KNOWN_UNASSERTED with a reason)
    for kind in _KINDS:
        for name, locs in sorted(full[kind].items()):
            if name in asserted[kind] or name in KNOWN_UNASSERTED:
                continue
            problems.append(
                f"{kind} '{name}' is registered ({locs[0]}) but not "
                "asserted by any check_metrics_snapshot.py mode — add it "
                "to a snapshot list or to KNOWN_UNASSERTED in "
                "check_metrics_contract.py with a reason")

    # direction 3: KNOWN_UNASSERTED may not rot either
    all_registered = {n for kind in _KINDS for n in full[kind]}
    all_asserted = {n for kind in _KINDS for n in asserted[kind]}
    for name in sorted(KNOWN_UNASSERTED):
        if name not in all_registered:
            problems.append(
                f"KNOWN_UNASSERTED entry '{name}' matches no registration "
                f"under {src_root}/ — remove the stale entry")
        elif name in all_asserted:
            problems.append(
                f"KNOWN_UNASSERTED entry '{name}' is now asserted by "
                "check_metrics_snapshot.py — remove the redundant entry")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))),
        help="repository root (default: the checkout this tool lives in)")
    parser.add_argument(
        "--src", default="src",
        help="source subtree to scan for registrations (default: src)")
    args = parser.parse_args(argv)

    src_root = os.path.join(args.root, args.src)
    if not os.path.isdir(src_root):
        print(f"check_metrics_contract: error: no such tree: {src_root}",
              file=sys.stderr)
        return 2

    problems = check(src_root)
    for p in problems:
        print(f"check_metrics_contract: {p}", file=sys.stderr)
    if not problems:
        nfull = sum(
            len(v) for v in extract_registrations(src_root)[0].values())
        print(f"check_metrics_contract: ok ({nfull} registered names in "
              "sync with the snapshot contract)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
