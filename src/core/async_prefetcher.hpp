#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/thread_pool.hpp"
#include "volume/block_store.hpp"

namespace vizcache {

/// Real-thread prefetch engine used by the example applications: overlaps
/// block loading (from any BlockStore, e.g. disk bricks) with rendering on
/// the main thread — the live counterpart of the simulated overlap model in
/// VizPipeline. Payloads are cached in memory until evicted.
class AsyncPrefetcher {
 public:
  using Payload = std::shared_ptr<const std::vector<float>>;

  /// `threads`: number of background loader threads.
  AsyncPrefetcher(const BlockStore& store, usize threads = 2);
  ~AsyncPrefetcher();

  /// Queue background loads for blocks not yet cached or in flight.
  void request(std::span<const BlockId> blocks, usize var = 0,
               usize timestep = 0);

  /// Payload if already cached, nullptr otherwise (never blocks).
  Payload get_if_ready(BlockId id) const;

  /// Payload, loading synchronously on miss (counts a demand miss).
  Payload get_blocking(BlockId id, usize var = 0, usize timestep = 0);

  /// Wait for all queued prefetches to land.
  void drain();

  /// Drop all cached payloads except `keep`.
  void evict_except(const std::unordered_set<BlockId>& keep);

  usize cached_blocks() const;

  struct Stats {
    u64 demand_hits = 0;    ///< get_blocking served from cache
    u64 demand_misses = 0;  ///< get_blocking had to load synchronously
    u64 prefetched = 0;     ///< background loads completed
    u64 failures = 0;       ///< background loads that threw (I/O errors)
  };
  Stats stats() const;

 private:
  void store_payload(BlockId id, std::vector<float> payload, bool prefetch);
  void note_failure(BlockId id);

  const BlockStore& store_;
  ThreadPool pool_;
  mutable std::mutex mutex_;
  std::unordered_map<BlockId, Payload> cache_;
  std::unordered_set<BlockId> in_flight_;
  Stats stats_;
};

}  // namespace vizcache
