#include "core/workbench.hpp"

#include "storage/policy_belady.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace vizcache {

Workbench::Workbench(const WorkbenchSpec& spec) : spec_(spec) {
  pool_ = std::make_unique<ThreadPool>();  // hardware concurrency
  SyntheticVolume volume = make_dataset(spec_.dataset, spec_.scale);
  BlockGrid grid =
      BlockGrid::with_target_block_count(volume.desc.dims, spec_.target_blocks);
  store_ = std::make_unique<SyntheticBlockStore>(std::move(volume),
                                                 grid.block_dims());
  switch (spec_.importance_metric) {
    case WorkbenchSpec::ImportanceMetric::kEntropy:
      importance_ = std::make_unique<ImportanceTable>(ImportanceTable::build(
          *store_, spec_.entropy_bins, 0, 0, pool_.get()));
      break;
    case WorkbenchSpec::ImportanceMetric::kGradient:
      importance_ = std::make_unique<ImportanceTable>(
          ImportanceTable::build_gradient(*store_, 0, 0, pool_.get()));
      break;
    case WorkbenchSpec::ImportanceMetric::kRandom:
      importance_ = std::make_unique<ImportanceTable>(
          ImportanceTable::build_random(grid.block_count()));
      break;
  }
  metadata_ = std::make_unique<BlockMetadataTable>(
      BlockMetadataTable::build(*store_, 1));
  sigma_bits_ = importance_->threshold_for_fraction(spec_.sigma_fraction);
  if (!spec_.max_blocks_per_entry) {
    // Paper Section IV-B: ideally predicted + current visible blocks just
    // fill fast memory; trim each entry to the DRAM capacity in blocks.
    double dram_fraction = spec_.cache_ratio * spec_.cache_ratio;
    auto cap = static_cast<usize>(
        dram_fraction * static_cast<double>(grid.block_count()));
    spec_.max_blocks_per_entry = std::max<usize>(1, cap);
  }
  rebuild_table(spec_.omega, spec_.fixed_radius);
}

u64 Workbench::dataset_bytes() const {
  u64 total = 0;
  const BlockGrid& g = store_->grid();
  for (BlockId id = 0; id < g.block_count(); ++id) total += g.block_bytes(id);
  return total;
}

void Workbench::rebuild_table(const OmegaSamplingSpec& omega,
                              std::optional<double> fixed_radius) {
  spec_.omega = omega;
  spec_.fixed_radius = fixed_radius;
  VisibilityTableSpec ts;
  ts.omega = omega;
  ts.vicinal_samples = spec_.vicinal_samples;
  ts.view_angle_deg = spec_.view_angle_deg;
  // Eq. 6's "fast:slow" ratio is read as the fraction of the dataset the
  // fastest tier holds (DRAM = cache_ratio^2 of the dataset in the paper's
  // two-cache testbed) — that is the capacity the aggregated frustum must
  // fit into.
  ts.radius_model = {spec_.view_angle_deg,
                     spec_.cache_ratio * spec_.cache_ratio, 1e-3};
  ts.fixed_radius = fixed_radius;
  ts.path_step_deg = spec_.path_step_deg;
  ts.max_blocks_per_entry = spec_.max_blocks_per_entry;
  table_ = std::make_unique<VisibilityTable>(
      VisibilityTable::build(store_->grid(), ts, importance_.get(),
                             pool_.get()));
  VIZ_LOG_DEBUG << "T_visible rebuilt: " << table_->entry_count()
                << " entries, mean " << table_->mean_entry_size()
                << " blocks/entry";
}

void Workbench::set_cache_ratio(double ratio) {
  VIZ_REQUIRE(ratio > 0.0 && ratio <= 1.0, "cache ratio in (0,1]");
  spec_.cache_ratio = ratio;
  // The radius model depends on the ratio: rebuild unless a fixed radius
  // overrides it anyway.
  rebuild_table(spec_.omega, spec_.fixed_radius);
}

void Workbench::set_path_step_deg(double degrees) {
  VIZ_REQUIRE(degrees >= 0.0, "path step must be non-negative");
  spec_.path_step_deg = degrees;
  rebuild_table(spec_.omega, spec_.fixed_radius);
}

MemoryHierarchy Workbench::make_hierarchy(PolicyKind policy) const {
  const BlockGrid* g = &store_->grid();
  return MemoryHierarchy::paper_testbed(
      dataset_bytes(), spec_.cache_ratio, policy,
      [g](BlockId id) { return g->block_bytes(id); });
}

RunResult Workbench::run_baseline(PolicyKind policy, const CameraPath& path,
                                  const QuerySchedule* schedule) const {
  PipelineConfig cfg;
  cfg.app_aware = false;
  cfg.policy = policy;
  cfg.render_model = spec_.render_model;
  cfg.lookup_cost = spec_.lookup_cost;
  VizPipeline pipeline(store_->grid(), make_hierarchy(policy), cfg, nullptr,
                       nullptr, metadata_.get());
  return pipeline.run(path, schedule);
}

RunResult Workbench::run_app_aware(const CameraPath& path,
                                   const QuerySchedule* schedule) const {
  PipelineConfig cfg;
  cfg.app_aware = true;
  cfg.policy = PolicyKind::kLru;  // Algorithm 1's protected-LRU core
  cfg.sigma_bits = sigma_bits_;
  cfg.render_model = spec_.render_model;
  cfg.lookup_cost = spec_.lookup_cost;
  VizPipeline pipeline(store_->grid(), make_hierarchy(cfg.policy), cfg,
                       table_.get(), importance_.get(), metadata_.get());
  return pipeline.run(path, schedule);
}

RunResult Workbench::run_belady(const CameraPath& path) const {
  // Pass 1: record the demand trace (identical for every non-prefetching
  // policy since demand accesses are the exact visible sets).
  RunResult lru = run_baseline(PolicyKind::kLru, path);
  std::vector<BlockId> trace = lru.trace.id_sequence();

  PipelineConfig cfg;
  cfg.app_aware = false;
  cfg.policy = PolicyKind::kBelady;
  cfg.render_model = spec_.render_model;
  cfg.lookup_cost = spec_.lookup_cost;
  MemoryHierarchy hierarchy = make_hierarchy(PolicyKind::kBelady);
  for (usize level = 0; level < hierarchy.level_count(); ++level) {
    auto* oracle =
        dynamic_cast<BeladyOracle*>(&hierarchy.cache(level).policy());
    VIZ_CHECK(oracle != nullptr, "belady hierarchy without oracle policy");
    // Both levels see the same demand order; the SSD level only consults its
    // subsequence of it, which preserves relative future distances.
    oracle->set_trace(trace);
  }
  VizPipeline pipeline(store_->grid(), std::move(hierarchy), cfg);
  return pipeline.run(path);
}

}  // namespace vizcache
