#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/importance.hpp"
#include "core/visibility.hpp"
#include "geom/radius_model.hpp"
#include "geom/sampling.hpp"
#include "util/thread_pool.hpp"

namespace vizcache {

/// Parameters of T_visible construction (paper Step 1, Section IV-B).
struct VisibilityTableSpec {
  OmegaSamplingSpec omega;         ///< camera-position sampling lattice
  usize vicinal_samples = 12;      ///< points v' per vicinal ball phi
  double view_angle_deg = 30.0;    ///< frustum apex angle theta
  RadiusModel radius_model;        ///< per-distance optimal radius (Eq. 6)
  std::optional<double> fixed_radius;  ///< override r (Fig. 11 comparisons)
  /// Expected view-direction change per path step, degrees. The vicinal
  /// radius is floored by the resulting chord length so phi(v, r) contains
  /// the *next* camera position (Section IV-B requirement). 0 disables.
  double path_step_deg = 0.0;
  u64 seed = 99;                   ///< vicinal point sampling seed
  /// When set (with an importance table), each entry keeps only its
  /// `max_blocks_per_entry` highest-entropy blocks — the paper's remedy for
  /// over-prediction with large vicinal radii (Section IV-C).
  std::optional<usize> max_blocks_per_entry;
};

/// Cost model of one runtime table lookup. The paper's Fig. 7b shows I/O
/// time rising again for very large tables because the nearest-sample query
/// scans more entries; we model the scan linearly.
struct LookupCostModel {
  SimSeconds base_s = 2e-6;
  SimSeconds per_entry_s = 40e-9;

  SimSeconds query_time(usize entries) const {
    return base_s + per_entry_s * static_cast<double>(entries);
  }
};

/// T_visible: for every sampled camera position v in Omega, the union of
/// visible-block sets over the vicinal ball phi(v, r) (key <l, d>, value
/// S_v). Dataset-independent — depends only on the block grid geometry and
/// view parameters — unless entries are importance-trimmed.
///
/// Thread-safety: immutable after build()/load(), so all const queries are
/// safe from any thread. The parallel build writes each entries_[i] from
/// exactly one pool task (disjoint elements, sized before fan-out), which is
/// race-free by construction — the TSan preset exercises this path.
class VisibilityTable {
 public:
  /// Build by exhaustive cone-testing. `importance` is only required when
  /// spec.max_blocks_per_entry is set. Pass a ThreadPool to parallelize
  /// across sampling positions.
  static VisibilityTable build(const BlockGrid& grid,
                               const VisibilityTableSpec& spec,
                               const ImportanceTable* importance = nullptr,
                               ThreadPool* pool = nullptr);

  /// Predicted visible set for an arbitrary camera position: the entry of
  /// the nearest sampled position (O(1) lattice lookup).
  const std::vector<BlockId>& query(const Vec3& camera_position) const;

  /// Index of the nearest sample (exposed for tests / diagnostics).
  usize nearest_index(const Vec3& camera_position) const;

  usize entry_count() const { return entries_.size(); }
  const std::vector<BlockId>& entry(usize index) const;
  const Vec3& sample_position(usize index) const;

  /// Mean / max blocks per entry (prediction size diagnostics).
  double mean_entry_size() const;
  usize max_entry_size() const;

  const VisibilityTableSpec& spec() const { return spec_; }

  /// Simulated cost of one runtime lookup under `model`.
  SimSeconds lookup_time(const LookupCostModel& model) const {
    return model.query_time(entries_.size());
  }

  /// Binary serialization (the table is one-time pre-processing).
  void save(const std::string& path) const;
  static VisibilityTable load(const std::string& path);

 private:
  VisibilityTableSpec spec_;
  std::vector<Vec3> positions_;              ///< sampled camera positions
  std::vector<std::vector<BlockId>> entries_;  ///< S_v per sample
};

}  // namespace vizcache
