#include "core/lod_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"

namespace vizcache {

usize LodSelector::level_for(double dist) const {
  VIZ_REQUIRE(base_distance > 0.0, "base distance must be positive");
  if (dist <= base_distance) return 0;
  auto level = static_cast<usize>(std::floor(std::log2(dist / base_distance)));
  return std::min(level, max_level);
}

LodPipeline::LodPipeline(const MipPyramid& pyramid, LodSelector selector,
                         PolicyKind policy, double cache_ratio,
                         RenderTimeModel render_model)
    : pyramid_(pyramid),
      selector_(selector),
      render_model_(render_model),
      fine_bounds_(pyramid.grid(0)),
      hierarchy_(MemoryHierarchy::paper_testbed(
          pyramid.level_bytes(0), cache_ratio, policy,
          [p = &pyramid_](BlockId key) { return p->key_bytes(key); })) {
  VIZ_REQUIRE(selector.max_level < pyramid.level_count(),
              "selector max level exceeds the pyramid");
}

LodRunResult LodPipeline::run(const CameraPath& path) {
  VIZ_REQUIRE(!path.empty(), "empty camera path");
  hierarchy_.reset();

  LodRunResult result;
  result.steps.reserve(path.size());
  const BlockGrid& fine = pyramid_.grid(0);
  double fidelity_sum = 0.0;
  u64 fidelity_blocks = 0;

  for (usize i = 0; i < path.size(); ++i) {
    const u64 step = i + 1;
    StepResult sr;
    sr.step = step;

    std::vector<BlockId> visible = fine_bounds_.visible_blocks(path[i]);
    sr.visible_blocks = visible.size();

    // Map each visible fine block to its LOD-selected coarse block; several
    // fine blocks collapse onto one coarse block, which is where the I/O
    // saving comes from.
    std::unordered_set<BlockId> keys;
    for (BlockId id : visible) {
      Vec3 center = fine.block_bounds(id).center();
      double dist = (center - path[i].position()).norm();
      usize level = selector_.level_for(dist);
      fidelity_sum += std::pow(0.125, static_cast<double>(level));
      ++fidelity_blocks;

      BlockId coarse = pyramid_.grid(level).block_at_normalized(center);
      VIZ_CHECK(coarse != kInvalidBlock, "block center left the volume");
      keys.insert(pyramid_.pack_key(level, coarse));
    }

    // Deterministic fetch order.
    std::vector<BlockId> ordered(keys.begin(), keys.end());
    std::sort(ordered.begin(), ordered.end());
    for (BlockId key : ordered) {
      if (!hierarchy_.resident_fast(key)) {
        ++sr.fast_misses;
        result.bytes_fetched += pyramid_.key_bytes(key);
      }
      sr.io_time += hierarchy_.fetch(key, step);
    }

    sr.render_time = render_model_.frame_time(ordered.size());
    sr.total_time = sr.io_time + sr.render_time;
    result.steps.push_back(sr);
  }

  result.fast_miss_rate = hierarchy_.stats().fast_miss_rate();
  for (const StepResult& s : result.steps) {
    result.io_time += s.io_time;
    result.render_time += s.render_time;
    result.total_time += s.total_time;
  }
  result.mean_fidelity =
      fidelity_blocks ? fidelity_sum / static_cast<double>(fidelity_blocks)
                      : 1.0;
  return result;
}

}  // namespace vizcache
