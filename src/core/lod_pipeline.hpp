#pragma once

#include "core/pipeline.hpp"
#include "core/visibility.hpp"
#include "volume/mipmap.hpp"

namespace vizcache {

/// Level-of-detail selection by camera distance: a block at distance `dist`
/// from the camera renders from pyramid level
///   l = clamp(floor(log2(dist / base_distance)), 0, max_level)
/// so regions beyond base_distance use progressively coarser data — the
/// standard view-dependent strategy (paper Section III-B: "for a data
/// region far from the camera, only its coarser representation needs to be
/// loaded and rendered").
struct LodSelector {
  double base_distance = 2.0;
  usize max_level = 3;

  usize level_for(double dist) const;
};

/// Per-run results of the LOD baseline.
struct LodRunResult {
  std::vector<StepResult> steps;
  double fast_miss_rate = 0.0;
  SimSeconds io_time = 0.0;
  SimSeconds render_time = 0.0;
  SimSeconds total_time = 0.0;
  u64 bytes_fetched = 0;      ///< demand bytes served below the fast level
  /// Mean fraction of full resolution rendered, weighted per fine block:
  /// level l contributes (1/8)^l. 1.0 = everything at full res.
  double mean_fidelity = 1.0;
};

/// The conventional view-dependent baseline: multi-resolution data + LRU
/// (no prediction, no importance, no prefetch). Every step maps the
/// visible full-resolution blocks to their distance-selected pyramid level,
/// fetches the corresponding coarse blocks through the hierarchy, and
/// renders. It trades fidelity for I/O — which is exactly what
/// data-dependent operations cannot tolerate (the paper's motivation for
/// an application-aware policy that stages full-resolution blocks instead).
class LodPipeline {
 public:
  LodPipeline(const MipPyramid& pyramid, LodSelector selector,
              PolicyKind policy, double cache_ratio,
              RenderTimeModel render_model = gpu_render_model());

  LodRunResult run(const CameraPath& path);

 private:
  const MipPyramid& pyramid_;
  LodSelector selector_;
  RenderTimeModel render_model_;
  BlockBoundsIndex fine_bounds_;
  MemoryHierarchy hierarchy_;
};

}  // namespace vizcache
