#include "core/query.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace vizcache {

RegionQuery::RegionQuery(std::vector<RangeClause> clauses)
    : clauses_(std::move(clauses)) {
  for (const RangeClause& c : clauses_) {
    VIZ_REQUIRE(c.lo <= c.hi, "inverted range clause");
  }
}

RegionQuery RegionQuery::iso_surface(usize var, float value, float eps) {
  VIZ_REQUIRE(eps >= 0.0f, "negative iso epsilon");
  return RegionQuery({{var, value - eps, value + eps}});
}

RegionQuery RegionQuery::range(usize var, float lo, float hi) {
  return RegionQuery({{var, lo, hi}});
}

RegionQuery& RegionQuery::and_range(usize var, float lo, float hi) {
  VIZ_REQUIRE(lo <= hi, "inverted range clause");
  clauses_.push_back({var, lo, hi});
  return *this;
}

bool RegionQuery::may_match(const BlockMetadataTable& metadata,
                            BlockId id) const {
  for (const RangeClause& c : clauses_) {
    if (!metadata.intersects_range(id, c.var, c.lo, c.hi)) return false;
  }
  return true;
}

std::vector<BlockId> RegionQuery::candidate_blocks(
    const BlockMetadataTable& metadata) const {
  std::vector<BlockId> out;
  for (BlockId id = 0; id < metadata.block_count(); ++id) {
    if (may_match(metadata, id)) out.push_back(id);
  }
  return out;
}

std::string RegionQuery::to_string() const {
  if (clauses_.empty()) return "match-all";
  std::ostringstream os;
  for (usize i = 0; i < clauses_.size(); ++i) {
    if (i) os << " AND ";
    os << "v" << clauses_[i].var << " in [" << clauses_[i].lo << ", "
       << clauses_[i].hi << "]";
  }
  return os.str();
}

std::vector<RegionQuery> queries_from_transfer_function(
    const TransferFunction& tf, usize var, float opacity_threshold) {
  VIZ_REQUIRE(opacity_threshold >= 0.0f, "negative opacity threshold");
  const auto& pts = tf.points();
  VIZ_CHECK(!pts.empty(), "empty transfer function");

  // Build the piecewise-linear opacity graph over [0, 1], including the
  // clamped flats before the first and after the last control point.
  std::vector<std::pair<float, float>> graph;  // (value, alpha)
  graph.emplace_back(0.0f, pts.front().color.a);
  for (const auto& p : pts) {
    float v = std::clamp(p.value, 0.0f, 1.0f);
    graph.emplace_back(v, p.color.a);
  }
  graph.emplace_back(1.0f, pts.back().color.a);

  // Exact intervals where alpha(v) > threshold.
  std::vector<std::pair<float, float>> intervals;
  auto add = [&](float lo, float hi) {
    if (hi < lo) std::swap(lo, hi);
    if (!intervals.empty() && lo <= intervals.back().second + 1e-7f) {
      intervals.back().second = std::max(intervals.back().second, hi);
    } else {
      intervals.emplace_back(lo, hi);
    }
  };
  const float thr = opacity_threshold;
  for (usize i = 1; i < graph.size(); ++i) {
    auto [v0, a0] = graph[i - 1];
    auto [v1, a1] = graph[i];
    if (v1 < v0) std::swap(v0, v1), std::swap(a0, a1);
    bool above0 = a0 > thr;
    bool above1 = a1 > thr;
    if (!above0 && !above1) continue;
    if (above0 && above1) {
      add(v0, v1);
      continue;
    }
    // One crossing inside the segment.
    float t = (thr - a0) / (a1 - a0);
    float vc = v0 + t * (v1 - v0);
    if (above0) {
      add(v0, vc);
    } else {
      add(vc, v1);
    }
  }

  std::vector<RegionQuery> out;
  out.reserve(intervals.size());
  for (auto [lo, hi] : intervals) {
    out.push_back(RegionQuery::range(var, lo, hi));
  }
  return out;
}

bool tf_may_need_block(const std::vector<RegionQuery>& tf_queries,
                       const BlockMetadataTable& metadata, BlockId id) {
  for (const RegionQuery& q : tf_queries) {
    if (q.may_match(metadata, id)) return true;
  }
  return false;
}

std::vector<BlockId> query_visible_blocks(const Camera& camera,
                                          const BlockBoundsIndex& bounds,
                                          const BlockMetadataTable& metadata,
                                          const RegionQuery& query) {
  VIZ_REQUIRE(metadata.block_count() == bounds.block_count(),
              "metadata/grid block count mismatch");
  ConeFrustum frustum(camera);
  std::vector<BlockId> out;
  for (BlockId id = 0; id < bounds.block_count(); ++id) {
    if (!query.may_match(metadata, id)) continue;
    if (frustum.intersects_block(bounds.bounds(id))) out.push_back(id);
  }
  return out;
}

QuerySchedule::QuerySchedule(std::vector<QueryChange> changes)
    : changes_(std::move(changes)) {
  std::stable_sort(changes_.begin(), changes_.end(),
                   [](const QueryChange& a, const QueryChange& b) {
                     return a.step < b.step;
                   });
}

const RegionQuery& QuerySchedule::active_at(usize step) const {
  const RegionQuery* active = &match_all_;
  for (const QueryChange& c : changes_) {
    if (c.step > step) break;
    active = &c.query;
  }
  return *active;
}

}  // namespace vizcache
