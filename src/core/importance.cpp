#include "core/importance.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/histogram.hpp"

namespace vizcache {

ImportanceTable ImportanceTable::build(const BlockStore& store, usize bins,
                                       usize var, usize timestep,
                                       ThreadPool* pool) {
  const usize n = store.grid().block_count();
  VIZ_REQUIRE(n > 0, "empty block grid");

  // Pass 1: global value range so entropies are comparable across blocks.
  // Per-block extrema land in preallocated slots; the min/max reduction is
  // serial, so the result is order-independent and deterministic.
  std::vector<float> block_lo(n, std::numeric_limits<float>::infinity());
  std::vector<float> block_hi(n, -std::numeric_limits<float>::infinity());
  parallel_for(pool, 0, n, 1, [&](usize id_lo, usize id_hi) {
    for (usize id = id_lo; id < id_hi; ++id) {
      std::vector<float> payload =
          store.read_block(static_cast<BlockId>(id), var, timestep);
      for (float v : payload) {
        block_lo[id] = std::min(block_lo[id], v);
        block_hi[id] = std::max(block_hi[id], v);
      }
    }
  });
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (usize id = 0; id < n; ++id) {
    lo = std::min(lo, block_lo[id]);
    hi = std::max(hi, block_hi[id]);
  }
  if (!(lo < hi)) hi = lo + 1.0f;  // constant dataset

  // Pass 2: per-block entropy (each block writes only its own slot).
  ImportanceTable table;
  table.entropy_bits_.resize(n);
  parallel_for(pool, 0, n, 1, [&](usize id_lo, usize id_hi) {
    for (usize id = id_lo; id < id_hi; ++id) {
      std::vector<float> payload =
          store.read_block(static_cast<BlockId>(id), var, timestep);
      Histogram h(bins, static_cast<double>(lo), static_cast<double>(hi));
      h.add(std::span<const float>(payload));
      table.entropy_bits_[id] = h.entropy_bits();
    }
  });
  table.build_ranking();
  return table;
}

ImportanceTable ImportanceTable::build_gradient(const BlockStore& store,
                                                usize var, usize timestep,
                                                ThreadPool* pool) {
  const BlockGrid& grid = store.grid();
  const usize n = grid.block_count();
  VIZ_REQUIRE(n > 0, "empty block grid");

  ImportanceTable table;
  table.entropy_bits_.resize(n);
  auto score_block = [&](BlockId id) {
    std::vector<float> payload = store.read_block(id, var, timestep);
    Dims3 e = grid.block_voxel_extent(id);
    auto at = [&](usize x, usize y, usize z) {
      return static_cast<double>(payload[(z * e.y + y) * e.x + x]);
    };
    double sum = 0.0;
    u64 samples = 0;
    for (usize z = 0; z < e.z; ++z) {
      for (usize y = 0; y < e.y; ++y) {
        for (usize x = 0; x < e.x; ++x) {
          // One-sided differences at brick faces, central inside.
          double gx = e.x > 1 ? (at(std::min(x + 1, e.x - 1), y, z) -
                                 at(x > 0 ? x - 1 : 0, y, z))
                              : 0.0;
          double gy = e.y > 1 ? (at(x, std::min(y + 1, e.y - 1), z) -
                                 at(x, y > 0 ? y - 1 : 0, z))
                              : 0.0;
          double gz = e.z > 1 ? (at(x, y, std::min(z + 1, e.z - 1)) -
                                 at(x, y, z > 0 ? z - 1 : 0))
                              : 0.0;
          sum += std::sqrt(gx * gx + gy * gy + gz * gz);
          ++samples;
        }
      }
    }
    table.entropy_bits_[id] =
        samples ? sum / static_cast<double>(samples) : 0.0;
  };
  parallel_for(pool, 0, n, 1, [&](usize id_lo, usize id_hi) {
    for (usize id = id_lo; id < id_hi; ++id) {
      score_block(static_cast<BlockId>(id));
    }
  });
  table.build_ranking();
  return table;
}

ImportanceTable ImportanceTable::build_random(usize block_count, u64 seed) {
  VIZ_REQUIRE(block_count > 0, "empty block grid");
  ImportanceTable table;
  table.entropy_bits_.resize(block_count);
  u64 state = seed;
  for (usize i = 0; i < block_count; ++i) {
    // SplitMix64 step inline: self-contained and deterministic.
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    table.entropy_bits_[i] =
        static_cast<double>(z >> 11) * 0x1.0p-53 * 0.99 + 0.005;
  }
  table.build_ranking();
  return table;
}

ImportanceTable ImportanceTable::from_scores(std::vector<double> scores) {
  VIZ_REQUIRE(!scores.empty(), "empty score table");
  ImportanceTable table;
  table.entropy_bits_ = std::move(scores);
  table.build_ranking();
  return table;
}

void ImportanceTable::build_ranking() {
  ranked_.resize(entropy_bits_.size());
  std::iota(ranked_.begin(), ranked_.end(), 0);
  std::stable_sort(ranked_.begin(), ranked_.end(),
                   [this](BlockId a, BlockId b) {
                     if (entropy_bits_[a] != entropy_bits_[b])
                       return entropy_bits_[a] > entropy_bits_[b];
                     return a < b;
                   });
}

double ImportanceTable::entropy(BlockId id) const {
  VIZ_REQUIRE(id < entropy_bits_.size(), "block id out of range");
  return entropy_bits_[id];
}

std::vector<BlockId> ImportanceTable::top_k(usize k) const {
  k = std::min(k, ranked_.size());
  return {ranked_.begin(), ranked_.begin() + static_cast<std::ptrdiff_t>(k)};
}

std::vector<BlockId> ImportanceTable::above_threshold(double sigma_bits) const {
  std::vector<BlockId> out;
  for (BlockId id : ranked_) {
    if (entropy_bits_[id] > sigma_bits) {
      out.push_back(id);
    } else {
      break;  // ranked descending
    }
  }
  return out;
}

double ImportanceTable::threshold_for_fraction(double fraction) const {
  VIZ_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction out of [0,1]");
  if (ranked_.empty()) return -1.0;
  if (fraction <= 0.0) return entropy_bits_[ranked_.front()];  // nothing above
  if (fraction >= 1.0) return -1.0;                            // everything above
  auto cutoff = static_cast<usize>(fraction * static_cast<double>(ranked_.size()));
  cutoff = std::min(cutoff, ranked_.size() - 1);
  // Sigma just below the cutoff block's entropy keeps ~fraction blocks above.
  return entropy_bits_[ranked_[cutoff]];
}

double ImportanceTable::min_entropy() const {
  return ranked_.empty() ? 0.0 : entropy_bits_[ranked_.back()];
}

double ImportanceTable::max_entropy() const {
  return ranked_.empty() ? 0.0 : entropy_bits_[ranked_.front()];
}

double ImportanceTable::mean_entropy() const {
  if (entropy_bits_.empty()) return 0.0;
  double sum = 0.0;
  for (double e : entropy_bits_) sum += e;
  return sum / static_cast<double>(entropy_bits_.size());
}

void ImportanceTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open importance table for writing: " + path);
  u64 n = entropy_bits_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(entropy_bits_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  if (!out) throw IoError("importance table write failed: " + path);
}

SamplingMask make_sampling_mask(const ImportanceTable& table,
                                double sigma_bits, u8 coarse_stride) {
  VIZ_REQUIRE(
      coarse_stride == 1 || coarse_stride == 2 || coarse_stride == 4,
      "adaptive sampling stride must be 1, 2, or 4");
  SamplingMask mask;
  mask.stride.resize(table.block_count());
  for (usize id = 0; id < mask.stride.size(); ++id) {
    mask.stride[id] =
        table.entropy(static_cast<BlockId>(id)) > sigma_bits ? u8{1}
                                                             : coarse_stride;
  }
  return mask;
}

ImportanceTable ImportanceTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open importance table: " + path);
  u64 n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  ImportanceTable table;
  table.entropy_bits_.resize(n);
  in.read(reinterpret_cast<char*>(table.entropy_bits_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw IoError("importance table read failed: " + path);
  table.build_ranking();
  return table;
}

}  // namespace vizcache
