#include "core/partitioner.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace vizcache {

Partition::Partition(std::vector<u32> owner, usize worker_count)
    : owner_(std::move(owner)), workers_(worker_count) {
  VIZ_REQUIRE(workers_ >= 1, "need at least one worker");
  for (u32 w : owner_) {
    VIZ_REQUIRE(w < workers_, "owner index out of range");
  }
}

u32 Partition::owner(BlockId id) const {
  VIZ_REQUIRE(id < owner_.size(), "block id out of range");
  return owner_[id];
}

std::vector<BlockId> Partition::blocks_of(u32 worker) const {
  VIZ_REQUIRE(worker < workers_, "worker index out of range");
  std::vector<BlockId> out;
  for (BlockId id = 0; id < owner_.size(); ++id) {
    if (owner_[id] == worker) out.push_back(id);
  }
  return out;
}

std::vector<double> Partition::worker_loads(
    const std::vector<double>& weight) const {
  VIZ_REQUIRE(weight.size() == owner_.size(), "weight arity mismatch");
  std::vector<double> loads(workers_, 0.0);
  for (BlockId id = 0; id < owner_.size(); ++id) {
    loads[owner_[id]] += weight[id];
  }
  return loads;
}

double Partition::imbalance(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double sum = std::accumulate(loads.begin(), loads.end(), 0.0);
  double mean = sum / static_cast<double>(loads.size());
  if (mean <= 0.0) return 1.0;
  return *std::max_element(loads.begin(), loads.end()) / mean;
}

Partition partition_round_robin(const BlockGrid& grid, usize workers) {
  VIZ_REQUIRE(workers >= 1, "need at least one worker");
  std::vector<u32> owner(grid.block_count());
  for (BlockId id = 0; id < owner.size(); ++id) {
    owner[id] = static_cast<u32>(id % workers);
  }
  return Partition(std::move(owner), workers);
}

Partition partition_spatial_slabs(const BlockGrid& grid, usize workers) {
  VIZ_REQUIRE(workers >= 1, "need at least one worker");
  const Dims3& g = grid.grid_dims();
  // Slab along the axis with the most blocks for the finest granularity.
  usize axis = 2;
  if (g.x >= g.y && g.x >= g.z) {
    axis = 0;
  } else if (g.y >= g.x && g.y >= g.z) {
    axis = 1;
  }
  usize extent = axis == 0 ? g.x : axis == 1 ? g.y : g.z;
  std::vector<u32> owner(grid.block_count());
  for (BlockId id = 0; id < owner.size(); ++id) {
    BlockCoord c = grid.coord_of(id);
    usize pos = axis == 0 ? c.bx : axis == 1 ? c.by : c.bz;
    owner[id] = static_cast<u32>(std::min(workers - 1, pos * workers / extent));
  }
  return Partition(std::move(owner), workers);
}

Partition partition_importance_balanced(const BlockGrid& grid,
                                        const ImportanceTable& importance,
                                        usize workers) {
  VIZ_REQUIRE(workers >= 1, "need at least one worker");
  VIZ_REQUIRE(importance.block_count() == grid.block_count(),
              "importance table size mismatch");
  std::vector<u32> owner(grid.block_count(), 0);
  std::vector<double> load(workers, 0.0);
  // Every block carries a uniform base weight in addition to its entropy so
  // the greedy balances block *counts* as well — otherwise all the
  // zero-entropy ambient blocks would pile onto whichever worker trails
  // after the high-entropy phase.
  const double base =
      std::max(1e-9, importance.mean_entropy() * 0.5);
  // ranked() is already descending by entropy: classic LPT greedy.
  for (BlockId id : importance.ranked()) {
    u32 lightest = 0;
    for (u32 w = 1; w < workers; ++w) {
      if (load[w] < load[lightest]) lightest = w;
    }
    owner[id] = lightest;
    load[lightest] += importance.entropy(id) + base;
  }
  return Partition(std::move(owner), workers);
}

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRoundRobin: return "round-robin";
    case PartitionStrategy::kSpatialSlabs: return "spatial-slabs";
    case PartitionStrategy::kImportance: return "importance-balanced";
  }
  throw InvalidArgument("unknown partition strategy");
}

Partition make_partition(PartitionStrategy s, const BlockGrid& grid,
                         const ImportanceTable& importance, usize workers) {
  switch (s) {
    case PartitionStrategy::kRoundRobin:
      return partition_round_robin(grid, workers);
    case PartitionStrategy::kSpatialSlabs:
      return partition_spatial_slabs(grid, workers);
    case PartitionStrategy::kImportance:
      return partition_importance_balanced(grid, importance, workers);
  }
  throw InvalidArgument("unknown partition strategy");
}

}  // namespace vizcache
