#pragma once

#include <string>
#include <vector>

#include "core/importance.hpp"
#include "volume/block_grid.hpp"

namespace vizcache {

/// Assignment of every block to one of `worker_count` parallel workers
/// (render/fetch nodes). This implements the paper's future-work direction:
/// "study data partitioning and distribution schemes by leveraging data
/// importance information" for parallel data fetching and rendering.
class Partition {
 public:
  Partition() = default;
  /// `owner[id]` is the worker of block id; values must be < worker_count.
  Partition(std::vector<u32> owner, usize worker_count);

  usize worker_count() const { return workers_; }
  usize block_count() const { return owner_.size(); }
  u32 owner(BlockId id) const;

  /// Blocks owned by one worker, ascending.
  std::vector<BlockId> blocks_of(u32 worker) const;

  /// Per-worker total of a per-block weight (e.g. entropy); used to score
  /// balance.
  std::vector<double> worker_loads(const std::vector<double>& weight) const;

  /// max(load) / mean(load); 1.0 is perfect balance. Zero-mean loads give 1.
  static double imbalance(const std::vector<double>& loads);

 private:
  std::vector<u32> owner_;
  usize workers_ = 0;
};

/// Blocks dealt to workers in id order — ignores both space and importance.
Partition partition_round_robin(const BlockGrid& grid, usize workers);

/// Contiguous slabs along the volume's longest axis — the classic spatial
/// decomposition for parallel rendering (good locality, importance-blind).
Partition partition_spatial_slabs(const BlockGrid& grid, usize workers);

/// Greedy longest-processing-time balance over per-block entropy: blocks in
/// descending importance order each go to the currently lightest worker —
/// every worker receives an equal share of the *interesting* data, so
/// parallel fetch/render load stays balanced even when a view concentrates
/// on the high-entropy region.
Partition partition_importance_balanced(const BlockGrid& grid,
                                        const ImportanceTable& importance,
                                        usize workers);

/// Names for reporting.
enum class PartitionStrategy { kRoundRobin, kSpatialSlabs, kImportance };
const char* partition_strategy_name(PartitionStrategy s);
Partition make_partition(PartitionStrategy s, const BlockGrid& grid,
                         const ImportanceTable& importance, usize workers);

}  // namespace vizcache
