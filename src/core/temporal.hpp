#pragma once

#include "core/importance.hpp"
#include "core/pipeline.hpp"
#include "core/visibility_table.hpp"
#include "geom/path.hpp"
#include "storage/hierarchy.hpp"

namespace vizcache {

/// Cache key for a (block, timestep) pair of a time-varying dataset. The
/// paper's climate set is time-varying (Table I): during playback the same
/// spatial block at different timesteps holds different data and must be
/// staged separately.
struct TimeBlockKey {
  /// Dense key: id + timestep * block_count. Requires the product to fit
  /// BlockId (checked by the pipeline constructor).
  static BlockId pack(BlockId id, usize timestep, usize block_count) {
    return static_cast<BlockId>(id + timestep * block_count);
  }
  static BlockId spatial(BlockId key, usize block_count) {
    return key % static_cast<BlockId>(block_count);
  }
  static usize timestep(BlockId key, usize block_count) {
    return key / block_count;
  }
};

/// How simulation time advances while the user explores.
struct PlaybackSpec {
  usize timesteps = 4;          ///< timesteps of the dataset
  usize steps_per_timestep = 8; ///< camera-path steps per simulation step
  bool loop = false;            ///< wrap around at the end vs clamp
};

/// Configuration of a time-varying run.
struct TemporalConfig {
  bool app_aware = false;
  PolicyKind policy = PolicyKind::kLru;
  double sigma_bits = 0.0;
  bool preload_important = true;
  /// Also prefetch the current view's blocks *at the next timestep* during
  /// rendering — the temporal extension of the paper's prefetch (its
  /// future-work direction for time-varying exploration).
  bool temporal_prefetch = true;
  RenderTimeModel render_model = gpu_render_model();
  LookupCostModel lookup_cost;
};

/// Pipeline for time-varying datasets: the working set of a path step is
/// the spatially visible blocks at the playback timestep, keyed per
/// (block, timestep). Prediction reuses the dataset-independent T_visible
/// (visibility does not depend on t), while importance uses per-timestep
/// entropy tables.
class TemporalPipeline {
 public:
  /// `importance_per_step` must have exactly `playback.timesteps` entries
  /// when app_aware (per-timestep T_important); may be empty otherwise.
  TemporalPipeline(const BlockGrid& grid, MemoryHierarchy hierarchy,
                   TemporalConfig config, PlaybackSpec playback,
                   const VisibilityTable* table = nullptr,
                   const std::vector<ImportanceTable>* importance_per_step =
                       nullptr);

  RunResult run(const CameraPath& path);

  /// Timestep active at a 0-based path index.
  usize timestep_at(usize path_index) const;

 private:
  StepResult run_step(const Camera& camera, u64 step, usize timestep,
                      TraceRecorder& trace);

  const BlockGrid& grid_;
  MemoryHierarchy hierarchy_;
  TemporalConfig config_;
  PlaybackSpec playback_;
  const VisibilityTable* table_;
  const std::vector<ImportanceTable>* importance_;
  BlockBoundsIndex bounds_;
};

/// Hierarchy sized for a time-varying dataset: capacity ratios are applied
/// to the bytes of ALL timesteps (the backing store holds every step).
MemoryHierarchy make_temporal_hierarchy(const BlockGrid& grid,
                                        usize timesteps, double cache_ratio,
                                        PolicyKind policy);

}  // namespace vizcache
