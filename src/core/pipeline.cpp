#include "core/pipeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

VizPipeline::VizPipeline(const BlockGrid& grid, MemoryHierarchy hierarchy,
                         PipelineConfig config, const VisibilityTable* table,
                         const ImportanceTable* importance,
                         const BlockMetadataTable* metadata)
    : grid_(grid),
      hierarchy_(std::move(hierarchy)),
      config_(config),
      table_(table),
      importance_(importance),
      metadata_(metadata),
      bounds_(grid),
      metrics_(std::make_unique<MetricsRegistry>()) {
  hierarchy_.bind_metrics(metrics_.get());
  if (config_.app_aware) {
    VIZ_REQUIRE(table_ != nullptr, "app-aware pipeline needs T_visible");
    VIZ_REQUIRE(importance_ != nullptr, "app-aware pipeline needs T_important");
  }
}

RunResult VizPipeline::run(const CameraPath& path,
                           const QuerySchedule* schedule) {
  VIZ_REQUIRE(!path.empty(), "empty camera path");
  VIZ_REQUIRE(schedule == nullptr || metadata_ != nullptr,
              "query schedules require a block metadata table");
  hierarchy_.reset();
  metrics_->reset();

  // Algorithm 1 lines 1-7: initialization and importance preloading. Blocks
  // with entropy above sigma enter fast memory (capacity permitting), most
  // important first. Preloading is pre-processing: no time is charged.
  if (config_.app_aware && config_.preload_important) {
    const u64 capacity = hierarchy_.cache(0).capacity_bytes();
    u64 budget = capacity;
    for (BlockId id : importance_->ranked()) {
      if (importance_->entropy(id) <= config_.sigma_bits) break;
      const u64 bytes = grid_.block_bytes(id);
      // A block too large for the remaining budget does not end the preload:
      // a smaller, less important block may still fit (the parallel pipeline
      // always skipped instead of stopping; keep the two in lockstep).
      if (bytes > budget) continue;  // fill fast memory, never thrash it
      hierarchy_.preload(id);
      budget -= bytes;
    }
  }

  RunResult result;
  result.steps.reserve(path.size());
  MetricHistogram& step_hist = metrics_->histogram(
      "pipeline.step.total_seconds", latency_seconds_bounds());
  SimSeconds clock = 0.0;
  // Steps are 1-based so preloaded blocks (step 0) are evictable at step 1.
  for (usize i = 0; i < path.size(); ++i) {
    const RegionQuery* query =
        schedule ? &schedule->active_at(i) : nullptr;
    const StepResult sr = run_step(path[i], i + 1, query, result.trace);
    result.steps.push_back(sr);
    step_hist.observe(sr.total_time);

    // Timeline spans of this step on the run's simulated clock. Demand
    // fetches come first; the render starts once they land; the app-aware
    // lookup + prefetch pass runs concurrently with the render (Algorithm 1
    // line 22) and lands on the overlap lane.
    const SimSeconds render_start = clock + sr.io_time;
    result.timeline.record({StepEvent::Kind::kFetch, sr.step, 0, clock,
                            render_start, sr.visible_blocks});
    result.timeline.record({StepEvent::Kind::kRender, sr.step, 0, render_start,
                            render_start + sr.render_time, 0});
    if (config_.app_aware) {
      const SimSeconds lookup_end = render_start + sr.lookup_time;
      result.timeline.record(
          {StepEvent::Kind::kLookup, sr.step, 0, render_start, lookup_end, 0});
      if (sr.prefetched > 0 || sr.prefetch_time > 0.0) {
        result.timeline.record({StepEvent::Kind::kPrefetch, sr.step, 0,
                                lookup_end, lookup_end + sr.prefetch_time,
                                sr.prefetched});
      }
    }
    clock += sr.total_time;
  }

  result.hierarchy = hierarchy_.stats();
  result.fast_miss_rate = result.hierarchy.fast_miss_rate();
  result.total_miss_rate = result.hierarchy.total_miss_rate();
  for (const StepResult& s : result.steps) {
    result.io_time += s.io_time;
    result.lookup_time += s.lookup_time;
    result.prefetch_time += s.prefetch_time;
    result.render_time += s.render_time;
    result.total_time += s.total_time;
  }
  metrics_->counter("pipeline.steps").inc(path.size());
  metrics_->gauge("pipeline.io_seconds").set(result.io_time);
  metrics_->gauge("pipeline.lookup_seconds").set(result.lookup_time);
  metrics_->gauge("pipeline.prefetch_seconds").set(result.prefetch_time);
  metrics_->gauge("pipeline.render_seconds").set(result.render_time);
  metrics_->gauge("pipeline.total_seconds").set(result.total_time);
  metrics_->gauge("pipeline.fast_miss_rate").set(result.fast_miss_rate);
  result.metrics = metrics_->snapshot();
  return result;
}

StepResult VizPipeline::run_step(const Camera& camera, u64 step,
                                 const RegionQuery* query,
                                 TraceRecorder& trace) {
  StepResult sr;
  sr.step = step;

  // Algorithm 1 lines 9-13: the exact visible set of this view point. A
  // data-dependent query narrows it to blocks that may contain matching
  // values (min/max metadata culling).
  std::vector<BlockId> visible =
      query ? query_visible_blocks(camera, bounds_, *metadata_, *query)
            : bounds_.visible_blocks(camera);
  sr.visible_blocks = visible.size();

  // Lines 14-19: stage every visible block into fast memory; replacement is
  // the hierarchy's policy with per-step protection (time[victim] < i).
  for (BlockId id : visible) {
    trace.record(step, id);
    if (!hierarchy_.resident_fast(id)) ++sr.fast_misses;
    sr.io_time += hierarchy_.fetch(id, step);
  }

  // Line 21: render the visible blocks.
  sr.render_time = config_.render_model.frame_time(visible.size());

  if (config_.app_aware) {
    // Line 22: during rendering, look up T_visible at the nearest sampled
    // view point and prefetch the predicted blocks whose entropy exceeds
    // sigma. Prefetch time overlaps rendering.
    sr.lookup_time = table_->lookup_time(config_.lookup_cost);
    const std::vector<BlockId>& predicted = table_->query(camera.position());

    // Paper Section IV-B "ideal case": predicted + current visible blocks
    // together fill fast memory. Budget prefetching to the DRAM space not
    // occupied by this step's visible set, most important blocks first, so
    // over-prediction cannot thrash the working set.
    u64 visible_bytes = 0;
    for (BlockId id : visible) visible_bytes += grid_.block_bytes(id);
    const u64 capacity = hierarchy_.cache(0).capacity_bytes();
    u64 budget = capacity > visible_bytes ? capacity - visible_bytes : 0;

    std::vector<BlockId> candidates;
    candidates.reserve(predicted.size());
    for (BlockId id : predicted) {
      if (importance_->entropy(id) <= config_.sigma_bits) continue;
      // Under an active query, blocks that cannot contain matching values
      // are not worth prefetching either.
      if (query && !query->may_match(*metadata_, id)) continue;
      if (hierarchy_.resident_fast(id)) continue;
      candidates.push_back(id);
    }
    std::sort(candidates.begin(), candidates.end(), [this](BlockId a, BlockId b) {
      return importance_->entropy(a) > importance_->entropy(b);
    });
    for (BlockId id : candidates) {
      const u64 bytes = grid_.block_bytes(id);
      if (bytes > budget) break;
      budget -= bytes;
      sr.prefetch_time += hierarchy_.prefetch(id, step);
      ++sr.prefetched;
    }
    sr.total_time =
        sr.io_time + std::max(sr.render_time, sr.lookup_time + sr.prefetch_time);
  } else {
    // Baselines cannot overlap: I/O is idle during rendering (Section IV-D).
    sr.total_time = sr.io_time + sr.render_time;
  }
  return sr;
}

}  // namespace vizcache
