#include "core/parallel_pipeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

ParallelPipeline::ParallelPipeline(const BlockGrid& grid, Partition partition,
                                   PipelineConfig config, double cache_ratio,
                                   const VisibilityTable* table,
                                   const ImportanceTable* importance)
    : grid_(grid),
      partition_(std::move(partition)),
      config_(config),
      importance_(importance),
      table_(table),
      bounds_(grid) {
  VIZ_REQUIRE(partition_.block_count() == grid.block_count(),
              "partition/grid block count mismatch");
  if (config_.app_aware) {
    VIZ_REQUIRE(table_ != nullptr && importance_ != nullptr,
                "app-aware parallel pipeline needs both tables");
  }
  // Each worker owns 1/N of the dataset and 1/N of every cache level.
  u64 dataset_bytes = 0;
  for (BlockId id = 0; id < grid.block_count(); ++id) {
    dataset_bytes += grid.block_bytes(id);
  }
  const usize n = partition_.worker_count();
  hierarchies_.reserve(n);
  for (usize w = 0; w < n; ++w) {
    hierarchies_.push_back(MemoryHierarchy::paper_testbed(
        std::max<u64>(1, dataset_bytes / n), cache_ratio, config_.policy,
        [g = &grid_](BlockId id) { return g->block_bytes(id); }));
  }
  metrics_ = std::make_unique<MetricsRegistry>();
  // Same prefix for every worker: the registry's find-or-create semantics
  // make the shared instruments whole-run aggregates across workers.
  for (MemoryHierarchy& h : hierarchies_) h.bind_metrics(metrics_.get());
}

MemoryHierarchy& ParallelPipeline::worker_hierarchy(usize w) {
  VIZ_REQUIRE(w < hierarchies_.size(), "worker index out of range");
  return hierarchies_[w];
}

ParallelRunResult ParallelPipeline::run(const CameraPath& path) {
  VIZ_REQUIRE(!path.empty(), "empty camera path");
  const usize n = partition_.worker_count();
  for (MemoryHierarchy& h : hierarchies_) h.reset();
  metrics_->reset();

  ParallelRunResult result;
  result.workers.assign(n, {});
  result.steps.reserve(path.size());
  MetricHistogram& step_hist = metrics_->histogram(
      "pipeline.step.total_seconds", latency_seconds_bounds());
  SimSeconds clock = 0.0;

  // Preload: each worker stages its own most-important blocks.
  if (config_.app_aware && config_.preload_important) {
    std::vector<u64> budget(n);
    for (usize w = 0; w < n; ++w) {
      budget[w] = hierarchies_[w].cache(0).capacity_bytes();
    }
    for (BlockId id : importance_->ranked()) {
      if (importance_->entropy(id) <= config_.sigma_bits) break;
      u32 w = partition_.owner(id);
      const u64 bytes = grid_.block_bytes(id);
      if (bytes > budget[w]) continue;
      hierarchies_[w].preload(id);
      budget[w] -= bytes;
    }
  }

  SimSeconds summed_io_work = 0.0;  // for fetch_speedup

  for (usize i = 0; i < path.size(); ++i) {
    const u64 step = i + 1;
    StepResult sr;
    sr.step = step;

    std::vector<BlockId> visible = bounds_.visible_blocks(path[i]);
    sr.visible_blocks = visible.size();

    // Demand fetch: each worker pulls its share concurrently.
    std::vector<SimSeconds> worker_io(n, 0.0);
    std::vector<usize> worker_blocks(n, 0);
    for (BlockId id : visible) {
      u32 w = partition_.owner(id);
      if (!hierarchies_[w].resident_fast(id)) ++sr.fast_misses;
      SimSeconds t = hierarchies_[w].fetch(id, step);
      worker_io[w] += t;
      ++worker_blocks[w];
      result.workers[w].entropy_load +=
          importance_ ? importance_->entropy(id) : 0.0;
    }
    for (usize w = 0; w < n; ++w) {
      result.workers[w].io_time += worker_io[w];
      result.workers[w].blocks_fetched += worker_blocks[w];
      summed_io_work += worker_io[w];
    }
    sr.io_time = *std::max_element(worker_io.begin(), worker_io.end());

    // Rendering is parallel too: the frame takes as long as the worker with
    // the largest visible share (plus compositing ~ the base cost).
    usize max_share = *std::max_element(worker_blocks.begin(), worker_blocks.end());
    sr.render_time = config_.render_model.frame_time(max_share);

    // Timeline: each worker fetches its share from `clock`, then all join at
    // the fetch barrier (the step's I/O makespan) and render concurrently.
    const SimSeconds render_start = clock + sr.io_time;
    for (usize w = 0; w < n; ++w) {
      if (worker_blocks[w] > 0) {
        result.timeline.record({StepEvent::Kind::kFetch, step,
                                static_cast<u32>(w), clock,
                                clock + worker_io[w], worker_blocks[w]});
      }
      result.timeline.record(
          {StepEvent::Kind::kRender, step, static_cast<u32>(w), render_start,
           render_start + config_.render_model.frame_time(worker_blocks[w]),
           0});
    }

    if (config_.app_aware) {
      sr.lookup_time = table_->lookup_time(config_.lookup_cost);
      const std::vector<BlockId>& predicted = table_->query(path[i].position());

      std::vector<SimSeconds> worker_pf(n, 0.0);
      std::vector<usize> worker_pf_blocks(n, 0);
      std::vector<u64> budget(n);
      for (usize w = 0; w < n; ++w) {
        u64 cap = hierarchies_[w].cache(0).capacity_bytes();
        u64 used = 0;
        for (BlockId id : visible) {
          if (partition_.owner(id) == w) used += grid_.block_bytes(id);
        }
        budget[w] = cap > used ? cap - used : 0;
      }
      std::vector<BlockId> candidates;
      for (BlockId id : predicted) {
        if (importance_->entropy(id) <= config_.sigma_bits) continue;
        if (hierarchies_[partition_.owner(id)].resident_fast(id)) continue;
        candidates.push_back(id);
      }
      std::sort(candidates.begin(), candidates.end(),
                [this](BlockId a, BlockId b) {
                  return importance_->entropy(a) > importance_->entropy(b);
                });
      for (BlockId id : candidates) {
        u32 w = partition_.owner(id);
        const u64 bytes = grid_.block_bytes(id);
        if (bytes > budget[w]) continue;  // this worker is full; others may fit
        budget[w] -= bytes;
        SimSeconds t = hierarchies_[w].prefetch(id, step);
        worker_pf[w] += t;
        ++worker_pf_blocks[w];
        result.workers[w].prefetch_time += t;
        ++sr.prefetched;
      }
      sr.prefetch_time = *std::max_element(worker_pf.begin(), worker_pf.end());
      sr.total_time = sr.io_time +
                      std::max(sr.render_time, sr.lookup_time + sr.prefetch_time);

      // Timeline: the shared T_visible lookup runs once (worker 0's overlap
      // lane), then each worker prefetches its share during the render.
      result.timeline.record({StepEvent::Kind::kLookup, step, 0, render_start,
                              render_start + sr.lookup_time, 0});
      const SimSeconds prefetch_start = render_start + sr.lookup_time;
      for (usize w = 0; w < n; ++w) {
        if (worker_pf_blocks[w] == 0) continue;
        result.timeline.record({StepEvent::Kind::kPrefetch, step,
                                static_cast<u32>(w), prefetch_start,
                                prefetch_start + worker_pf[w],
                                worker_pf_blocks[w]});
      }
    } else {
      sr.total_time = sr.io_time + sr.render_time;
    }

    step_hist.observe(sr.total_time);
    clock += sr.total_time;
    result.steps.push_back(sr);
  }

  u64 lookups = 0, misses = 0;
  for (const MemoryHierarchy& h : hierarchies_) {
    lookups += h.stats().level[0].lookups();
    misses += h.stats().level[0].misses;
  }
  result.fast_miss_rate =
      lookups ? static_cast<double>(misses) / static_cast<double>(lookups) : 0.0;
  for (const StepResult& s : result.steps) {
    result.io_time += s.io_time;
    result.prefetch_time += s.prefetch_time;
    result.render_time += s.render_time;
    result.total_time += s.total_time;
  }
  result.fetch_speedup =
      result.io_time > 0.0 ? summed_io_work / result.io_time : 1.0;
  metrics_->counter("pipeline.steps").inc(path.size());
  metrics_->counter("pipeline.workers").inc(n);
  metrics_->gauge("pipeline.io_seconds").set(result.io_time);
  metrics_->gauge("pipeline.prefetch_seconds").set(result.prefetch_time);
  metrics_->gauge("pipeline.render_seconds").set(result.render_time);
  metrics_->gauge("pipeline.total_seconds").set(result.total_time);
  metrics_->gauge("pipeline.fast_miss_rate").set(result.fast_miss_rate);
  metrics_->gauge("pipeline.fetch_speedup").set(result.fetch_speedup);
  result.metrics = metrics_->snapshot();
  return result;
}

}  // namespace vizcache
