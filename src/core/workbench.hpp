#pragma once

#include <memory>
#include <optional>

#include "core/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "volume/datasets.hpp"

namespace vizcache {

/// Everything needed to set up one experiment configuration. Shared by the
/// bench binaries and example apps so every figure builds its world the
/// same way.
struct WorkbenchSpec {
  DatasetId dataset = DatasetId::kBall3d;
  double scale = 0.125;            ///< per-axis resolution vs Table I
  usize target_blocks = 2048;      ///< block-grid granularity
  double view_angle_deg = 10.0;
  double cache_ratio = 0.5;        ///< fast:slow cache size ratio (paper V-A)

  OmegaSamplingSpec omega{18, 36, 5, 2.5, 3.5};  ///< T_visible lattice
  usize vicinal_samples = 8;
  std::optional<double> fixed_radius;            ///< override Eq. 6
  /// Expected per-step view change of the paths this workbench will run
  /// (floors the vicinal radius; see VisibilityTableSpec::path_step_deg).
  double path_step_deg = 0.0;
  /// Importance trim of each T_visible entry (paper Section IV-C). Defaults
  /// to the DRAM capacity in blocks so predicted+current sets fit fast
  /// memory — the paper's "ideal case".
  std::optional<usize> max_blocks_per_entry;

  /// Fraction of blocks whose entropy should exceed sigma (drives both
  /// preloading and prefetch filtering). 0.75 keeps everything but the
  /// flattest ambient quarter of the volume prefetchable.
  double sigma_fraction = 0.75;

  usize entropy_bins = 128;

  /// Block-importance metric (paper uses Shannon entropy; gradient and
  /// random are ablation alternatives).
  enum class ImportanceMetric { kEntropy, kGradient, kRandom };
  ImportanceMetric importance_metric = ImportanceMetric::kEntropy;

  RenderTimeModel render_model = gpu_render_model();
  LookupCostModel lookup_cost;
};

/// Owns the dataset, block grid, importance table, and visibility table for
/// one configuration, and runs baseline / app-aware / oracle pipelines over
/// camera paths with cold caches per run.
class Workbench {
 public:
  explicit Workbench(const WorkbenchSpec& spec);

  const WorkbenchSpec& spec() const { return spec_; }
  const BlockGrid& grid() const { return store_->grid(); }
  const BlockStore& store() const { return *store_; }
  const ImportanceTable& importance() const { return *importance_; }
  const VisibilityTable& table() const { return *table_; }
  const BlockMetadataTable& metadata() const { return *metadata_; }
  double sigma_bits() const { return sigma_bits_; }
  u64 dataset_bytes() const;

  /// Rebuild T_visible with a different lattice / radius (Fig. 7 / Fig. 11
  /// sweeps) without re-reading the dataset.
  void rebuild_table(const OmegaSamplingSpec& omega,
                     std::optional<double> fixed_radius);

  /// Change the fast:slow cache ratio for subsequent runs (Fig. 13b).
  void set_cache_ratio(double ratio);

  /// Adapt the vicinal-radius floor to a new expected path step and rebuild
  /// T_visible (Fig. 9/12/13 sweeps over degree changes).
  void set_path_step_deg(double degrees);

  /// One conventional-policy run (paper baselines: kFifo, kLru). With a
  /// schedule, the run is query-driven (data-dependent operations).
  RunResult run_baseline(PolicyKind policy, const CameraPath& path,
                         const QuerySchedule* schedule = nullptr) const;

  /// One application-aware run ("OPT" in the paper's figures).
  RunResult run_app_aware(const CameraPath& path,
                          const QuerySchedule* schedule = nullptr) const;

  /// Offline-optimal upper bound: records the demand trace with an LRU run,
  /// then replays it under Belady's MIN at every level.
  RunResult run_belady(const CameraPath& path) const;

 private:
  MemoryHierarchy make_hierarchy(PolicyKind policy) const;

  WorkbenchSpec spec_;
  /// Worker pool for table construction (importance + visibility chunk their
  /// block/entry loops over it). Declared first so it outlives every user.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BlockStore> store_;
  std::unique_ptr<ImportanceTable> importance_;
  std::unique_ptr<VisibilityTable> table_;
  std::unique_ptr<BlockMetadataTable> metadata_;
  double sigma_bits_ = 0.0;
};

}  // namespace vizcache
