#pragma once

#include "core/partitioner.hpp"
#include "core/pipeline.hpp"

namespace vizcache {

/// Per-worker aggregate of a parallel run.
struct WorkerStats {
  u64 blocks_fetched = 0;
  SimSeconds io_time = 0.0;
  SimSeconds prefetch_time = 0.0;
  double entropy_load = 0.0;  ///< summed entropy of demand-fetched blocks
};

/// Whole-run result of a parallel exploration.
struct ParallelRunResult {
  std::vector<StepResult> steps;
  std::vector<WorkerStats> workers;
  StepTimeline timeline;          ///< per-worker spans on the simulated clock
  MetricsSnapshot metrics;        ///< registry snapshot taken at run end
  double fast_miss_rate = 0.0;
  SimSeconds io_time = 0.0;       ///< sum over steps of per-step makespans
  SimSeconds prefetch_time = 0.0; ///< idem for prefetch makespans
  SimSeconds render_time = 0.0;
  SimSeconds total_time = 0.0;

  /// Ratio of the summed single-worker work to the makespan-time — the
  /// effective parallel speedup achieved by the partitioning.
  double fetch_speedup = 1.0;
};

/// Parallel fetch/render simulation (the paper's future work, Section VI):
/// N workers each own a partition of the blocks, hold their own slice of
/// the memory hierarchy (capacity split evenly), and fetch/render their
/// share of every view concurrently. A step's I/O time is the *makespan* —
/// the slowest worker — so balance of the per-view working set across
/// workers is what determines parallel efficiency.
///
/// Thread-safety: run() is a deterministic discrete-event simulation driven
/// from the calling thread; per-worker state (hierarchies_) is sharded by
/// worker index so a future real-thread execution of the fetch loop needs no
/// locking beyond a join barrier per step. Concurrent run() calls on one
/// instance are not supported (hierarchies_ is reset per run).
class ParallelPipeline {
 public:
  /// The app-aware variant needs `table` + `importance` (as VizPipeline).
  ParallelPipeline(const BlockGrid& grid, Partition partition,
                   PipelineConfig config, double cache_ratio,
                   const VisibilityTable* table = nullptr,
                   const ImportanceTable* importance = nullptr);

  ParallelRunResult run(const CameraPath& path);

  usize worker_count() const { return partition_.worker_count(); }

  /// Worker `w`'s slice of the hierarchy (tests inspect per-worker caches).
  MemoryHierarchy& worker_hierarchy(usize w);

  /// The pipeline's metric registry. Every worker hierarchy binds to it
  /// under the same prefix, so counters aggregate across workers; reset at
  /// the start of every run(); ParallelRunResult::metrics is its end-of-run
  /// snapshot.
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  const BlockGrid& grid_;
  Partition partition_;
  PipelineConfig config_;
  const ImportanceTable* importance_;
  const VisibilityTable* table_;
  BlockBoundsIndex bounds_;
  std::vector<MemoryHierarchy> hierarchies_;  ///< one per worker
  /// Heap-owned for movability (see VizPipeline::metrics_).
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace vizcache
