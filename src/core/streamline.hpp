#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "geom/vec3.hpp"
#include "storage/hierarchy.hpp"
#include "volume/block_grid.hpp"

namespace vizcache {

/// Velocity sampler in the normalized [-1,1]^3 frame; nullopt outside the
/// data (tracing stops there).
using VectorSampler = std::function<std::optional<Vec3>(const Vec3&)>;

/// RK4 streamline integration parameters.
struct StreamlineSpec {
  double step = 0.01;        ///< integration step h
  usize max_steps = 2000;    ///< hard cap per line
  double min_speed = 1e-4;   ///< stop in stagnant flow
};

/// One traced streamline.
struct Streamline {
  std::vector<Vec3> points;     ///< includes the seed
  bool left_volume = false;     ///< terminated by exiting [-1,1]^3
  bool stagnated = false;       ///< terminated by |v| < min_speed
};

/// Classic fourth-order Runge-Kutta advection from `seed`.
Streamline trace_streamline(const Vec3& seed, const VectorSampler& velocity,
                            const StreamlineSpec& spec);

/// The out-of-core access pattern of a streamline: the sequence of blocks
/// the trajectory passes through, consecutive duplicates collapsed (paper
/// Section II: Ueng et al. load octree cells on demand along the line).
std::vector<BlockId> streamline_block_accesses(const Streamline& line,
                                               const BlockGrid& grid);

/// Statistics of replaying a batch of streamlines through a hierarchy:
/// every line is one "interaction step" (its blocks are protected together,
/// like a visible set).
struct StreamlineWorkloadResult {
  usize lines = 0;
  usize total_accesses = 0;       ///< block touches across all lines
  usize unique_blocks = 0;
  double fast_miss_rate = 0.0;
  SimSeconds io_time = 0.0;
};

StreamlineWorkloadResult run_streamline_workload(
    const BlockGrid& grid, MemoryHierarchy& hierarchy,
    const std::vector<Vec3>& seeds, const VectorSampler& velocity,
    const StreamlineSpec& spec);

}  // namespace vizcache
