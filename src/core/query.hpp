#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/visibility.hpp"
#include "render/transfer_function.hpp"
#include "volume/block_metadata.hpp"

namespace vizcache {

/// A value-range predicate on one variable: "variable `var` has values in
/// [lo, hi] somewhere in the block". An iso-surface at value v is the band
/// [v-eps, v+eps]; a transfer function that maps [lo, hi] to non-zero
/// opacity is the same predicate (paper Section III-A: data-dependent
/// operations driven by transfer functions and query-based visualization).
struct RangeClause {
  usize var = 0;
  float lo = 0.0f;
  float hi = 1.0f;
};

/// Conjunction of range clauses over possibly different variables — the
/// paper's "combination of numerous queries based on possibly complex
/// functions of the primary variables" (e.g. smoke-contaminated AND
/// high-wind regions of the climate data). An empty query matches every
/// block.
class RegionQuery {
 public:
  RegionQuery() = default;
  explicit RegionQuery(std::vector<RangeClause> clauses);

  /// Convenience: iso-surface band query on one variable.
  static RegionQuery iso_surface(usize var, float value, float eps = 0.02f);

  /// Convenience: single range clause.
  static RegionQuery range(usize var, float lo, float hi);

  /// AND another clause onto this query.
  RegionQuery& and_range(usize var, float lo, float hi);

  const std::vector<RangeClause>& clauses() const { return clauses_; }
  bool empty() const { return clauses_.empty(); }

  /// Conservative block test via min/max metadata: true when the block MAY
  /// contain matching voxels (never false negatives).
  bool may_match(const BlockMetadataTable& metadata, BlockId id) const;

  /// All blocks that may match, ascending.
  std::vector<BlockId> candidate_blocks(const BlockMetadataTable& metadata) const;

  std::string to_string() const;

 private:
  std::vector<RangeClause> clauses_;
};

/// Invert a piecewise-linear transfer function into a block query: the
/// union of value intervals where opacity exceeds `opacity_threshold`,
/// returned as one enclosing range clause per contiguous interval on
/// variable `var`. Blocks outside every interval cannot contribute a
/// visible sample, so they need not be staged. (The paper notes transfer
/// functions are "typically a priori unknown and not easily invertible" —
/// for the piecewise-linear TFs actually used in practice this inversion is
/// exact.) Since RegionQuery is a conjunction, the union is returned as a
/// list of queries — a block is needed if ANY of them may match.
std::vector<RegionQuery> queries_from_transfer_function(
    const TransferFunction& tf, usize var = 0,
    float opacity_threshold = 0.0f);

/// Convenience over queries_from_transfer_function: does any interval of
/// the inverted TF possibly match the block?
bool tf_may_need_block(const std::vector<RegionQuery>& tf_queries,
                       const BlockMetadataTable& metadata, BlockId id);

/// The working set of a data-dependent operation at a view: blocks both
/// inside the view cone AND passing the query's metadata test. This is the
/// set Algorithm 1 must stage at full resolution — multi-resolution
/// fallbacks would corrupt the query result (paper Section III-B).
std::vector<BlockId> query_visible_blocks(const Camera& camera,
                                          const BlockBoundsIndex& bounds,
                                          const BlockMetadataTable& metadata,
                                          const RegionQuery& query);

/// A change of query at a given path step — models the user retuning the
/// transfer function / query mid-exploration ("possibly dynamically changed
/// transfer functions", Section IV-A Step 3).
struct QueryChange {
  usize step = 0;  ///< 0-based path index at which the query becomes active
  RegionQuery query;
};

/// Time-ordered schedule of query changes over a camera path.
class QuerySchedule {
 public:
  QuerySchedule() = default;
  /// `changes` need not be sorted; they are ordered by step. The schedule
  /// implicitly starts with an empty (match-all) query at step 0 unless a
  /// change for step 0 is given.
  explicit QuerySchedule(std::vector<QueryChange> changes);

  /// The query active at a path step.
  const RegionQuery& active_at(usize step) const;

  usize change_count() const { return changes_.size(); }

 private:
  std::vector<QueryChange> changes_;
  RegionQuery match_all_;
};

}  // namespace vizcache
