#pragma once

#include <string>
#include <vector>

#include "render/sampling_mask.hpp"
#include "util/thread_pool.hpp"
#include "volume/block_store.hpp"

namespace vizcache {

/// T_important (paper Section IV-C): per-block Shannon entropy over a
/// binning of the dataset's global value range, plus the descending-entropy
/// ranking used for preloading and prediction trimming. High-entropy blocks
/// carry the scientifically interesting structure; near-constant ambient
/// blocks score ~0.
class ImportanceTable {
 public:
  /// Scan every block of (var, timestep) once: first pass finds the global
  /// value range, second computes per-block histogram entropies with `bins`
  /// equal bins over that range. Both passes chunk across `pool` when one is
  /// given (per-block partial results, serial reduction — the table is
  /// identical regardless of pool size); `store.read_block` must then be
  /// const-thread-safe, which every BlockStore in the repo is.
  static ImportanceTable build(const BlockStore& store, usize bins = 256,
                               usize var = 0, usize timestep = 0,
                               ThreadPool* pool = nullptr);

  /// Alternative metric: mean gradient magnitude per block (central
  /// differences inside the brick). High-gradient blocks carry surfaces and
  /// fronts; used by the importance-metric ablation to probe the paper's
  /// choice of Shannon entropy. Scores land in the same table type so every
  /// consumer (preload, trimming, prefetch filter) works unchanged.
  /// Chunks across `pool` like build().
  static ImportanceTable build_gradient(const BlockStore& store,
                                        usize var = 0, usize timestep = 0,
                                        ThreadPool* pool = nullptr);

  /// Degenerate baseline: a deterministic pseudo-random ranking (scores in
  /// (0, 1)). Importance-blind control for ablations.
  static ImportanceTable build_random(usize block_count, u64 seed = 1);

  /// Table with explicitly given per-block scores (scores[id] = entropy of
  /// block id, in bits). For tests and ablations that need a handcrafted
  /// ranking without scanning a dataset.
  static ImportanceTable from_scores(std::vector<double> scores);

  usize block_count() const { return entropy_bits_.size(); }

  /// Entropy of one block in bits.
  double entropy(BlockId id) const;

  /// Block ids sorted by descending entropy (ties by ascending id).
  const std::vector<BlockId>& ranked() const { return ranked_; }

  /// The `k` highest-entropy blocks.
  std::vector<BlockId> top_k(usize k) const;

  /// All blocks with entropy strictly above `sigma_bits`.
  std::vector<BlockId> above_threshold(double sigma_bits) const;

  /// Threshold sigma such that about `fraction` of blocks lie above it
  /// (fraction in [0, 1]; 0 keeps everything with sigma = -inf sentinel -1).
  double threshold_for_fraction(double fraction) const;

  double min_entropy() const;
  double max_entropy() const;
  double mean_entropy() const;

  /// Binary serialization for reuse across runs (the paper computes the
  /// table once as pre-processing).
  void save(const std::string& path) const;
  static ImportanceTable load(const std::string& path);

 private:
  std::vector<double> entropy_bits_;
  std::vector<BlockId> ranked_;

  void build_ranking();
};

/// Importance-masked adaptive sampling wiring: blocks whose entropy exceeds
/// `sigma_bits` keep the full sampling rate (stride 1), everything else is
/// integrated at `coarse_stride` (2 or 4 — the packet ray-caster's exact
/// opacity-rescale strides; 1 yields a no-op mask). Pair with
/// `table.threshold_for_fraction(f)` to keep the top f of blocks at full
/// rate. Consumed by `raycast_packet` (render/raycaster.hpp).
SamplingMask make_sampling_mask(const ImportanceTable& table,
                                double sigma_bits, u8 coarse_stride = 4);

}  // namespace vizcache
