#pragma once

#include <vector>

#include "geom/camera.hpp"
#include "geom/frustum.hpp"
#include "volume/block_grid.hpp"
#include "volume/octree.hpp"

namespace vizcache {

/// Precomputed block bounds for fast repeated visibility sweeps over the
/// same grid (table construction tests every block against thousands of
/// sampled frustums). Internally backed by a min/max octree so narrow
/// frustums prune whole subtrees; results are bit-identical to the
/// exhaustive per-block scan (see BlockOctree tests).
class BlockBoundsIndex {
 public:
  explicit BlockBoundsIndex(const BlockGrid& grid);

  const AABB& bounds(BlockId id) const { return bounds_[id]; }
  usize block_count() const { return bounds_.size(); }

  /// Exact visible set of one camera: all blocks whose AABB intersects the
  /// view cone (paper Eq. 1 test). Ids in ascending order.
  std::vector<BlockId> visible_blocks(const Camera& camera) const;

  /// Append to an existing boolean mask (used for vicinal-union building:
  /// cheaper than set operations).
  void mark_visible(const Camera& camera, std::vector<u8>& mask) const;

 private:
  std::vector<AABB> bounds_;
  BlockOctree octree_;
};

/// Convenience one-shot wrapper.
std::vector<BlockId> compute_visible_blocks(const Camera& camera,
                                            const BlockGrid& grid);

}  // namespace vizcache
