#include "core/temporal.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

TemporalPipeline::TemporalPipeline(
    const BlockGrid& grid, MemoryHierarchy hierarchy, TemporalConfig config,
    PlaybackSpec playback, const VisibilityTable* table,
    const std::vector<ImportanceTable>* importance_per_step)
    : grid_(grid),
      hierarchy_(std::move(hierarchy)),
      config_(config),
      playback_(playback),
      table_(table),
      importance_(importance_per_step),
      bounds_(grid) {
  VIZ_REQUIRE(playback_.timesteps >= 1, "need at least one timestep");
  VIZ_REQUIRE(playback_.steps_per_timestep >= 1,
              "steps_per_timestep must be >= 1");
  // The packed key space must fit the BlockId type.
  VIZ_REQUIRE(static_cast<u64>(grid.block_count()) * playback_.timesteps <
                  static_cast<u64>(kInvalidBlock),
              "block x timestep key space overflows BlockId");
  if (config_.app_aware) {
    VIZ_REQUIRE(table_ != nullptr, "app-aware temporal pipeline needs T_visible");
    VIZ_REQUIRE(importance_ != nullptr &&
                    importance_->size() == playback_.timesteps,
                "app-aware temporal pipeline needs one importance table per "
                "timestep");
  }
}

usize TemporalPipeline::timestep_at(usize path_index) const {
  usize t = path_index / playback_.steps_per_timestep;
  if (playback_.loop) return t % playback_.timesteps;
  return std::min(t, playback_.timesteps - 1);
}

RunResult TemporalPipeline::run(const CameraPath& path) {
  VIZ_REQUIRE(!path.empty(), "empty camera path");
  hierarchy_.reset();

  // Preload: the most important blocks of the FIRST timestep (playback
  // starts there).
  if (config_.app_aware && config_.preload_important) {
    const u64 capacity = hierarchy_.cache(0).capacity_bytes();
    u64 budget = capacity;
    const ImportanceTable& imp0 = (*importance_)[0];
    for (BlockId id : imp0.ranked()) {
      if (imp0.entropy(id) <= config_.sigma_bits) break;
      const u64 bytes = grid_.block_bytes(id);
      if (bytes > budget) break;
      hierarchy_.preload(TimeBlockKey::pack(id, 0, grid_.block_count()));
      budget -= bytes;
    }
  }

  RunResult result;
  result.steps.reserve(path.size());
  for (usize i = 0; i < path.size(); ++i) {
    result.steps.push_back(
        run_step(path[i], i + 1, timestep_at(i), result.trace));
  }

  result.hierarchy = hierarchy_.stats();
  result.fast_miss_rate = result.hierarchy.fast_miss_rate();
  result.total_miss_rate = result.hierarchy.total_miss_rate();
  for (const StepResult& s : result.steps) {
    result.io_time += s.io_time;
    result.lookup_time += s.lookup_time;
    result.prefetch_time += s.prefetch_time;
    result.render_time += s.render_time;
    result.total_time += s.total_time;
  }
  return result;
}

StepResult TemporalPipeline::run_step(const Camera& camera, u64 step,
                                      usize timestep, TraceRecorder& trace) {
  StepResult sr;
  sr.step = step;
  const usize nblocks = grid_.block_count();

  std::vector<BlockId> visible = bounds_.visible_blocks(camera);
  sr.visible_blocks = visible.size();

  u64 visible_bytes = 0;
  for (BlockId id : visible) {
    BlockId key = TimeBlockKey::pack(id, timestep, nblocks);
    trace.record(step, key);
    if (!hierarchy_.resident_fast(key)) ++sr.fast_misses;
    sr.io_time += hierarchy_.fetch(key, step);
    visible_bytes += grid_.block_bytes(id);
  }

  sr.render_time = config_.render_model.frame_time(visible.size());

  if (config_.app_aware) {
    sr.lookup_time = table_->lookup_time(config_.lookup_cost);
    const ImportanceTable& imp = (*importance_)[timestep];

    const u64 capacity = hierarchy_.cache(0).capacity_bytes();
    u64 budget = capacity > visible_bytes ? capacity - visible_bytes : 0;

    // Spatial prediction at the current timestep (paper Algorithm 1).
    std::vector<BlockId> candidates;
    for (BlockId id : table_->query(camera.position())) {
      if (imp.entropy(id) <= config_.sigma_bits) continue;
      BlockId key = TimeBlockKey::pack(id, timestep, nblocks);
      if (hierarchy_.resident_fast(key)) continue;
      candidates.push_back(id);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&imp](BlockId a, BlockId b) {
                return imp.entropy(a) > imp.entropy(b);
              });

    // Temporal prediction: the playback clock is deterministic, so the
    // current view's blocks at the NEXT timestep are near-certain future
    // requests. They are queued after the spatial candidates.
    std::vector<BlockId> temporal;
    usize next_t = timestep + 1;
    if (playback_.loop) next_t %= playback_.timesteps;
    bool time_advances =
        config_.temporal_prefetch && next_t != timestep &&
        next_t < playback_.timesteps;
    if (time_advances) {
      const ImportanceTable& imp_next = (*importance_)[next_t];
      for (BlockId id : visible) {
        if (imp_next.entropy(id) <= config_.sigma_bits) continue;
        BlockId key = TimeBlockKey::pack(id, next_t, nblocks);
        if (!hierarchy_.resident_fast(key)) temporal.push_back(id);
      }
    }

    auto prefetch_keys = [&](const std::vector<BlockId>& ids, usize t) {
      for (BlockId id : ids) {
        const u64 bytes = grid_.block_bytes(id);
        if (bytes > budget) return;
        budget -= bytes;
        sr.prefetch_time +=
            hierarchy_.prefetch(TimeBlockKey::pack(id, t, nblocks), step);
        ++sr.prefetched;
      }
    };
    prefetch_keys(candidates, timestep);
    if (time_advances) prefetch_keys(temporal, next_t);

    sr.total_time =
        sr.io_time + std::max(sr.render_time, sr.lookup_time + sr.prefetch_time);
  } else {
    sr.total_time = sr.io_time + sr.render_time;
  }
  return sr;
}

MemoryHierarchy make_temporal_hierarchy(const BlockGrid& grid,
                                        usize timesteps, double cache_ratio,
                                        PolicyKind policy) {
  u64 step_bytes = 0;
  for (BlockId id = 0; id < grid.block_count(); ++id) {
    step_bytes += grid.block_bytes(id);
  }
  const usize nblocks = grid.block_count();
  return MemoryHierarchy::paper_testbed(
      step_bytes * timesteps, cache_ratio, policy,
      [&grid, nblocks](BlockId key) {
        return grid.block_bytes(TimeBlockKey::spatial(key, nblocks));
      });
}

}  // namespace vizcache
