#include "core/visibility_table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "geom/camera.hpp"
#include "util/error.hpp"

namespace vizcache {

VisibilityTable VisibilityTable::build(const BlockGrid& grid,
                                       const VisibilityTableSpec& spec,
                                       const ImportanceTable* importance,
                                       ThreadPool* pool) {
  VIZ_REQUIRE(!spec.max_blocks_per_entry || importance,
              "entry trimming requires an importance table");
  VIZ_REQUIRE(spec.vicinal_samples >= 1, "need at least one vicinal sample");

  VisibilityTable table;
  table.spec_ = spec;
  table.positions_ = sample_omega_positions(spec.omega);
  table.entries_.resize(table.positions_.size());

  BlockBoundsIndex bounds(grid);

  auto build_entry = [&](usize index) {
    const Vec3& v = table.positions_[index];
    double d = v.norm();
    double r;
    if (spec.fixed_radius) {
      r = *spec.fixed_radius;
    } else {
      // Chord length of one path step at this view distance.
      double step_len =
          2.0 * d * std::sin(deg_to_rad(spec.path_step_deg) * 0.5);
      r = spec.radius_model.radius_with_step_floor(d, step_len);
    }
    // Deterministic per-entry stream: independent of build order/threading.
    Rng rng(spec.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    std::vector<Vec3> points =
        sample_vicinal_ball(v, r, spec.vicinal_samples, rng);

    std::vector<u8> mask(grid.block_count(), 0);
    for (const Vec3& p : points) {
      bounds.mark_visible(Camera(p, spec.view_angle_deg), mask);
    }
    std::vector<BlockId>& entry = table.entries_[index];
    for (BlockId id = 0; id < mask.size(); ++id) {
      if (mask[id]) entry.push_back(id);
    }
    if (spec.max_blocks_per_entry && entry.size() > *spec.max_blocks_per_entry) {
      // Keep the most important blocks only (Section IV-C refinement).
      std::stable_sort(entry.begin(), entry.end(),
                       [&](BlockId a, BlockId b) {
                         return importance->entropy(a) > importance->entropy(b);
                       });
      entry.resize(*spec.max_blocks_per_entry);
      std::sort(entry.begin(), entry.end());
    }
  };

  // Entries are independent and deterministic (per-entry RNG stream), so the
  // chunked loop gives the same table regardless of pool size.
  parallel_for(pool, 0, table.positions_.size(), 1, [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) build_entry(i);
  });
  return table;
}

usize VisibilityTable::nearest_index(const Vec3& camera_position) const {
  return nearest_omega_index(spec_.omega, camera_position);
}

const std::vector<BlockId>& VisibilityTable::query(
    const Vec3& camera_position) const {
  return entries_[nearest_index(camera_position)];
}

const std::vector<BlockId>& VisibilityTable::entry(usize index) const {
  VIZ_REQUIRE(index < entries_.size(), "entry index out of range");
  return entries_[index];
}

const Vec3& VisibilityTable::sample_position(usize index) const {
  VIZ_REQUIRE(index < positions_.size(), "sample index out of range");
  return positions_[index];
}

double VisibilityTable::mean_entry_size() const {
  if (entries_.empty()) return 0.0;
  u64 total = 0;
  for (const auto& e : entries_) total += e.size();
  return static_cast<double>(total) / static_cast<double>(entries_.size());
}

usize VisibilityTable::max_entry_size() const {
  usize m = 0;
  for (const auto& e : entries_) m = std::max(m, e.size());
  return m;
}

void VisibilityTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open visibility table for writing: " + path);
  // Header: the lattice spec (required to reconstruct the O(1) lookup) and
  // the view angle.
  u64 lattice[3] = {spec_.omega.theta_steps, spec_.omega.phi_steps,
                    spec_.omega.distance_steps};
  out.write(reinterpret_cast<const char*>(lattice), sizeof(lattice));
  double scal[4] = {spec_.omega.distance_min, spec_.omega.distance_max,
                    spec_.view_angle_deg,
                    static_cast<double>(spec_.vicinal_samples)};
  out.write(reinterpret_cast<const char*>(scal), sizeof(scal));
  u64 n = entries_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (usize i = 0; i < entries_.size(); ++i) {
    const Vec3& p = positions_[i];
    out.write(reinterpret_cast<const char*>(&p), sizeof(p));
    u64 m = entries_[i].size();
    out.write(reinterpret_cast<const char*>(&m), sizeof(m));
    out.write(reinterpret_cast<const char*>(entries_[i].data()),
              static_cast<std::streamsize>(m * sizeof(BlockId)));
  }
  if (!out) throw IoError("visibility table write failed: " + path);
}

VisibilityTable VisibilityTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open visibility table: " + path);
  VisibilityTable table;
  u64 lattice[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(lattice), sizeof(lattice));
  double scal[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(scal), sizeof(scal));
  table.spec_.omega.theta_steps = lattice[0];
  table.spec_.omega.phi_steps = lattice[1];
  table.spec_.omega.distance_steps = lattice[2];
  table.spec_.omega.distance_min = scal[0];
  table.spec_.omega.distance_max = scal[1];
  table.spec_.view_angle_deg = scal[2];
  table.spec_.vicinal_samples = static_cast<usize>(scal[3]);
  u64 n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  table.positions_.resize(n);
  table.entries_.resize(n);
  for (usize i = 0; i < n; ++i) {
    in.read(reinterpret_cast<char*>(&table.positions_[i]),
            sizeof(table.positions_[i]));
    u64 m = 0;
    in.read(reinterpret_cast<char*>(&m), sizeof(m));
    table.entries_[i].resize(m);
    in.read(reinterpret_cast<char*>(table.entries_[i].data()),
            static_cast<std::streamsize>(m * sizeof(BlockId)));
  }
  if (!in) throw IoError("visibility table read failed: " + path);
  return table;
}

}  // namespace vizcache
