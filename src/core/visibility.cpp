#include "core/visibility.hpp"

#include "util/error.hpp"

namespace vizcache {

BlockBoundsIndex::BlockBoundsIndex(const BlockGrid& grid)
    : octree_(BlockOctree::build(grid)) {
  bounds_.reserve(grid.block_count());
  for (BlockId id = 0; id < grid.block_count(); ++id) {
    bounds_.push_back(grid.block_bounds(id));
  }
}

std::vector<BlockId> BlockBoundsIndex::visible_blocks(
    const Camera& camera) const {
  // Hierarchical cull; exact leaf test inside — identical output to the
  // exhaustive scan over bounds_.
  return octree_.query_frustum(ConeFrustum(camera));
}

void BlockBoundsIndex::mark_visible(const Camera& camera,
                                    std::vector<u8>& mask) const {
  VIZ_REQUIRE(mask.size() == bounds_.size(), "mask size mismatch");
  for (BlockId id : octree_.query_frustum(ConeFrustum(camera))) {
    mask[id] = 1;
  }
}

std::vector<BlockId> compute_visible_blocks(const Camera& camera,
                                            const BlockGrid& grid) {
  return BlockBoundsIndex(grid).visible_blocks(camera);
}

}  // namespace vizcache
