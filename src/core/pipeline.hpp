#pragma once

#include <optional>
#include <vector>

#include "core/importance.hpp"
#include "core/query.hpp"
#include "core/visibility.hpp"
#include "core/visibility_table.hpp"
#include "geom/path.hpp"
#include "render/render_model.hpp"
#include "storage/hierarchy.hpp"
#include "storage/trace.hpp"
#include "util/metrics.hpp"
#include "util/step_timeline.hpp"

namespace vizcache {

/// Per-step timing/counters of a pipeline run.
struct StepResult {
  u64 step = 0;
  usize visible_blocks = 0;
  usize fast_misses = 0;        ///< visible blocks not already in fast memory
  usize prefetched = 0;         ///< blocks moved by this step's prefetch pass
  SimSeconds io_time = 0.0;     ///< demand fetch time
  SimSeconds lookup_time = 0.0; ///< T_visible nearest-sample query time
  SimSeconds prefetch_time = 0.0;
  SimSeconds render_time = 0.0;
  /// Step wall time. Baselines: io + render. App-aware: io + max(render,
  /// lookup + prefetch) — prefetching overlaps rendering (paper Section V-D).
  SimSeconds total_time = 0.0;
};

/// Whole-run aggregate.
struct RunResult {
  std::vector<StepResult> steps;
  HierarchyStats hierarchy;
  TraceRecorder trace;          ///< demand accesses, for Belady replays
  StepTimeline timeline;        ///< per-step spans on the simulated clock
  MetricsSnapshot metrics;      ///< registry snapshot taken at run end

  double fast_miss_rate = 0.0;  ///< DRAM-level miss fraction
  double total_miss_rate = 0.0; ///< paper's multi-level miss rate
  SimSeconds io_time = 0.0;
  SimSeconds lookup_time = 0.0;
  SimSeconds prefetch_time = 0.0;
  SimSeconds render_time = 0.0;
  SimSeconds total_time = 0.0;

  /// The paper's Fig. 7b metric: demand I/O plus table-lookup overhead.
  SimSeconds io_plus_lookup() const { return io_time + lookup_time; }
};

/// Configuration of one visualization run over a camera path.
struct PipelineConfig {
  /// When set, runs the application-aware pipeline (paper Algorithm 1):
  /// preload by importance, demand-fetch with protected LRU, prefetch the
  /// predicted next-view blocks (entropy > sigma) overlapped with rendering.
  bool app_aware = false;

  /// Replacement policy of every hierarchy level. Baselines: kFifo / kLru /
  /// any zoo member. The app-aware mode uses kLru (Algorithm 1's
  /// lowest-time-value replacement is exactly LRU + per-step protection).
  PolicyKind policy = PolicyKind::kLru;

  /// Entropy threshold sigma (bits). Blocks must exceed it to be preloaded
  /// (line 7) or prefetched (line 22). Ignored for baselines.
  double sigma_bits = 0.0;

  /// Preload important blocks before the walk (line 7). App-aware only.
  bool preload_important = true;

  RenderTimeModel render_model = gpu_render_model();
  LookupCostModel lookup_cost;
};

/// Executes camera-path runs against a block grid and a memory hierarchy.
/// The pipeline is purely simulation-driven (it never touches payload
/// bytes), which keeps the full Fig. 7/9/11/12/13 sweeps fast and exactly
/// deterministic; the example apps exercise the same logic against real
/// file I/O and the real ray-caster.
class VizPipeline {
 public:
  /// `table`/`importance` may be null for baseline runs. `metadata` enables
  /// query-driven runs (data-dependent operations).
  VizPipeline(const BlockGrid& grid, MemoryHierarchy hierarchy,
              PipelineConfig config, const VisibilityTable* table = nullptr,
              const ImportanceTable* importance = nullptr,
              const BlockMetadataTable* metadata = nullptr);

  /// Run a full camera path from a cold (or preloaded) hierarchy. With a
  /// query `schedule` (requires metadata), each step's working set is the
  /// view-visible blocks that also pass the step's active query — the
  /// paper's dynamically-changed transfer function / query workload.
  RunResult run(const CameraPath& path, const QuerySchedule* schedule = nullptr);

  MemoryHierarchy& hierarchy() { return hierarchy_; }

  /// The pipeline's metric registry (hierarchy + cache + pipeline
  /// instruments). Reset at the start of every run(); RunResult::metrics is
  /// its end-of-run snapshot. Exposed so harnesses can add their own
  /// instruments to the same snapshot.
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  StepResult run_step(const Camera& camera, u64 step, const RegionQuery* query,
                      TraceRecorder& trace);

  const BlockGrid& grid_;
  MemoryHierarchy hierarchy_;
  PipelineConfig config_;
  const VisibilityTable* table_;
  const ImportanceTable* importance_;
  const BlockMetadataTable* metadata_;
  BlockBoundsIndex bounds_;
  /// Heap-owned so the pipeline stays movable (MetricsRegistry holds a
  /// Mutex); instrument pointers bound into hierarchy_ stay valid across
  /// moves because the registry owns its instruments by unique_ptr.
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace vizcache
