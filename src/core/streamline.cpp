#include "core/streamline.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace vizcache {

namespace {

bool inside_volume(const Vec3& p) {
  return p.x >= -1.0 && p.x <= 1.0 && p.y >= -1.0 && p.y <= 1.0 &&
         p.z >= -1.0 && p.z <= 1.0;
}

}  // namespace

Streamline trace_streamline(const Vec3& seed, const VectorSampler& velocity,
                            const StreamlineSpec& spec) {
  VIZ_REQUIRE(spec.step > 0.0, "integration step must be positive");
  VIZ_REQUIRE(spec.max_steps >= 1, "need at least one step");

  Streamline line;
  line.points.push_back(seed);
  if (!inside_volume(seed)) {
    line.left_volume = true;
    return line;
  }

  Vec3 p = seed;
  for (usize i = 0; i < spec.max_steps; ++i) {
    auto sample = [&](const Vec3& q) -> std::optional<Vec3> {
      if (!inside_volume(q)) return std::nullopt;
      return velocity(q);
    };
    auto k1 = sample(p);
    if (!k1) {
      line.left_volume = true;
      break;
    }
    if (k1->norm() < spec.min_speed) {
      line.stagnated = true;
      break;
    }
    const double h = spec.step;
    auto k2 = sample(p + *k1 * (h / 2.0));
    auto k3 = k2 ? sample(p + *k2 * (h / 2.0)) : std::nullopt;
    auto k4 = k3 ? sample(p + *k3 * h) : std::nullopt;
    if (!k2 || !k3 || !k4) {
      // A midpoint left the volume: advance with what we have and stop.
      p += *k1 * h;
      line.points.push_back(p);
      line.left_volume = true;
      break;
    }
    p += (*k1 + *k2 * 2.0 + *k3 * 2.0 + *k4) * (h / 6.0);
    line.points.push_back(p);
    if (!inside_volume(p)) {
      line.left_volume = true;
      break;
    }
  }
  return line;
}

std::vector<BlockId> streamline_block_accesses(const Streamline& line,
                                               const BlockGrid& grid) {
  std::vector<BlockId> out;
  for (const Vec3& p : line.points) {
    BlockId id = grid.block_at_normalized(p);
    if (id == kInvalidBlock) continue;
    if (out.empty() || out.back() != id) out.push_back(id);
  }
  return out;
}

StreamlineWorkloadResult run_streamline_workload(
    const BlockGrid& grid, MemoryHierarchy& hierarchy,
    const std::vector<Vec3>& seeds, const VectorSampler& velocity,
    const StreamlineSpec& spec) {
  StreamlineWorkloadResult result;
  std::unordered_set<BlockId> unique;
  u64 step = 0;
  for (const Vec3& seed : seeds) {
    ++step;  // each streamline is one interaction step (its blocks protect
             // each other like a visible set)
    Streamline line = trace_streamline(seed, velocity, spec);
    for (BlockId id : streamline_block_accesses(line, grid)) {
      result.io_time += hierarchy.fetch(id, step);
      ++result.total_accesses;
      unique.insert(id);
    }
    ++result.lines;
  }
  result.unique_blocks = unique.size();
  result.fast_miss_rate = hierarchy.stats().fast_miss_rate();
  return result;
}

}  // namespace vizcache
