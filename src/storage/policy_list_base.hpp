#pragma once

#include <list>
#include <unordered_map>

#include "storage/policy.hpp"
#include "util/error.hpp"

namespace vizcache {

/// Shared machinery for queue-ordered policies (FIFO / LRU / MRU): a doubly
/// linked list of resident blocks plus an index. Subclasses decide whether
/// accesses reorder (LRU/MRU) and which end victims come from.
class ListOrderedPolicy : public ReplacementPolicy {
 public:
  void on_insert(BlockId id) override {
    VIZ_CHECK(!index_.count(id), "duplicate insert into policy");
    // analyze: allow(hot-path-alloc): one list node per resident block,
    // bounded by the cache capacity — accesses reorder via splice, so
    // insertion is the only allocating operation.
    order_.push_front(id);  // front = most recently inserted/used
    index_[id] = order_.begin();
  }

  void on_evict(BlockId id) override {
    auto it = index_.find(id);
    VIZ_CHECK(it != index_.end(), "evicting unknown block");
    order_.erase(it->second);
    index_.erase(it);
  }

  void reset() override {
    order_.clear();
    index_.clear();
  }

 protected:
  /// Move an accessed block to the front (recency order).
  void move_to_front(BlockId id) {
    auto it = index_.find(id);
    VIZ_CHECK(it != index_.end(), "access to unknown block");
    order_.splice(order_.begin(), order_, it->second);
  }

  /// First evictable block scanning from the back (oldest).
  BlockId victim_from_back(const EvictablePredicate& evictable) const {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (evictable(*it)) return *it;
    }
    return kInvalidBlock;
  }

  /// First evictable block scanning from the front (newest).
  BlockId victim_from_front(const EvictablePredicate& evictable) const {
    for (BlockId id : order_) {
      if (evictable(id)) return id;
    }
    return kInvalidBlock;
  }

  std::list<BlockId> order_;
  std::unordered_map<BlockId, std::list<BlockId>::iterator> index_;
};

}  // namespace vizcache
