#include "storage/policy_list_base.hpp"

namespace vizcache {

namespace {

/// Most-Recently-Used: evicts the hottest block. Pathological for most
/// workloads but optimal for cyclic scans larger than the cache; included as
/// an ablation baseline.
class MruPolicy final : public ListOrderedPolicy {
 public:
  void on_access(BlockId id) override { move_to_front(id); }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    return victim_from_front(evictable);
  }

  std::string name() const override { return "MRU"; }
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_mru_policy() {
  return std::make_unique<MruPolicy>();
}

}  // namespace vizcache
