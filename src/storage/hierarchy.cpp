#include "storage/hierarchy.hpp"

#include "util/error.hpp"

namespace vizcache {

double HierarchyStats::fast_miss_rate() const {
  if (level.empty()) return 0.0;
  return level.front().miss_rate();
}

double HierarchyStats::total_miss_rate() const {
  u64 lookups = 0, misses = 0;
  for (const CacheStats& s : level) {
    lookups += s.lookups();
    misses += s.misses;
  }
  return lookups ? static_cast<double>(misses) / static_cast<double>(lookups)
                 : 0.0;
}

MemoryHierarchy::MemoryHierarchy(std::vector<LevelSpec> specs,
                                 DeviceModel backing, SizeFn block_size)
    : backing_(std::move(backing)), block_size_(std::move(block_size)) {
  VIZ_REQUIRE(!specs.empty(), "hierarchy needs at least one cache level");
  VIZ_REQUIRE(block_size_ != nullptr, "hierarchy needs a block size function");
  levels_.reserve(specs.size());
  for (LevelSpec& spec : specs) {
    // Policies that track queue capacities are sized in nominal blocks.
    usize cap_blocks = static_cast<usize>(
        spec.capacity_bytes / std::max<u64>(1, block_size_(0)));
    levels_.push_back({spec.name, spec.device,
                       std::make_unique<BlockCache>(
                           spec.capacity_bytes,
                           make_policy(spec.policy, std::max<usize>(1, cap_blocks)),
                           block_size_)});
  }
  stats_.level.resize(levels_.size());
}

MemoryHierarchy MemoryHierarchy::paper_testbed(u64 dataset_bytes,
                                               double cache_ratio,
                                               PolicyKind policy,
                                               SizeFn block_size) {
  VIZ_REQUIRE(cache_ratio > 0.0 && cache_ratio <= 1.0,
              "cache ratio must be in (0, 1]");
  VIZ_REQUIRE(dataset_bytes > 0, "empty dataset");
  u64 ssd_bytes = static_cast<u64>(static_cast<double>(dataset_bytes) * cache_ratio);
  u64 dram_bytes = static_cast<u64>(static_cast<double>(ssd_bytes) * cache_ratio);
  std::vector<LevelSpec> specs{
      {"DRAM", dram_device(), std::max<u64>(1, dram_bytes), policy},
      {"SSD", ssd_device(), std::max<u64>(1, ssd_bytes), policy},
  };
  return MemoryHierarchy(std::move(specs), hdd_device(), std::move(block_size));
}

void MemoryHierarchy::bind_metrics(MetricsRegistry* registry,
                                   const std::string& prefix) {
  if (registry == nullptr) {
    metrics_ = {};
    for (auto& l : levels_) l.cache->bind_metrics(nullptr, "");
    return;
  }
  metrics_.demand_requests = &registry->counter(prefix + ".demand.requests");
  metrics_.prefetch_requests =
      &registry->counter(prefix + ".prefetch.requests");
  metrics_.demand_backing_reads =
      &registry->counter(prefix + ".demand.backing_reads");
  metrics_.demand_backing_bytes =
      &registry->counter(prefix + ".demand.backing_bytes");
  metrics_.prefetch_backing_reads =
      &registry->counter(prefix + ".prefetch.backing_reads");
  metrics_.prefetch_backing_bytes =
      &registry->counter(prefix + ".prefetch.backing_bytes");
  metrics_.demand_io_seconds = &registry->gauge(prefix + ".demand.io_seconds");
  metrics_.prefetch_io_seconds =
      &registry->gauge(prefix + ".prefetch.io_seconds");
  metrics_.demand_latency = &registry->histogram(
      prefix + ".demand.latency_seconds", latency_seconds_bounds());
  metrics_.prefetch_latency = &registry->histogram(
      prefix + ".prefetch.latency_seconds", latency_seconds_bounds());
  for (auto& l : levels_) {
    std::string name;
    name.reserve(l.name.size());
    for (char c : l.name) {
      name += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    }
    l.cache->bind_metrics(registry, "cache." + name);
  }
}

const std::string& MemoryHierarchy::level_name(usize level) const {
  VIZ_REQUIRE(level < levels_.size(), "level out of range");
  return levels_[level].name;
}

BlockCache& MemoryHierarchy::cache(usize level) {
  VIZ_REQUIRE(level < levels_.size(), "level out of range");
  return *levels_[level].cache;
}

const BlockCache& MemoryHierarchy::cache(usize level) const {
  VIZ_REQUIRE(level < levels_.size(), "level out of range");
  return *levels_[level].cache;
}

SimSeconds MemoryHierarchy::fetch_internal(BlockId id, u64 step, bool demand,
                                           u64 protect_floor) {
  const u64 bytes = block_size_(id);
  // Find the fastest level already holding the block. The probe doubles as
  // the access touch (one hash lookup instead of contains() + touch()); the
  // serving level is always touched on this path, so fusing is safe.
  usize found = levels_.size();  // == backing store
  for (usize i = 0; i < levels_.size(); ++i) {
    if (levels_[i].cache->touch_if_resident(id, step)) {
      found = i;
      break;
    }
  }

  // Demand accounting: a lookup happens at every level down to (and
  // including) the one that serves the read.
  if (demand) {
    for (usize i = 0; i < levels_.size(); ++i) {
      if (i < found) {
        levels_[i].cache->note_miss();
      } else if (i == found) {
        levels_[i].cache->note_hit();
        break;
      }
    }
  }
  // The backing device does the read either way — a prefetch miss moves the
  // same bytes over the same bus as a demand miss. Only the attribution
  // differs, so the read is counted under the cause that triggered it.
  if (found == levels_.size()) {
    if (demand) {
      ++stats_.demand_backing_reads;
      stats_.demand_backing_bytes += bytes;
      if (metrics_.demand_backing_reads) {
        metrics_.demand_backing_reads->inc();
        metrics_.demand_backing_bytes->inc(bytes);
      }
    } else {
      ++stats_.prefetch_backing_reads;
      stats_.prefetch_backing_bytes += bytes;
      if (metrics_.prefetch_backing_reads) {
        metrics_.prefetch_backing_reads->inc();
        metrics_.prefetch_backing_bytes->inc(bytes);
      }
    }
  }

  SimSeconds cost;
  if (found == levels_.size()) {
    cost = backing_.transfer_time(bytes);
  } else if (found == 0) {
    // Already fastest-resident (and touched by the probe above); cost is the
    // fast device's access time (negligible but nonzero).
    return demand ? levels_[0].device.transfer_time(bytes) : 0.0;
  } else {
    cost = levels_[found].device.transfer_time(bytes);
  }

  // Promote into all faster levels (staged placement HDD -> SSD -> DRAM).
  for (usize i = found; i-- > 0;) {
    levels_[i].cache->insert(id, step, protect_floor);
  }
  return cost;
}

SimSeconds MemoryHierarchy::fetch(BlockId id, u64 step, u64 protect_floor) {
  ++stats_.demand_requests;
  SimSeconds t = fetch_internal(id, step, /*demand=*/true, protect_floor);
  stats_.demand_io_time += t;
  if (metrics_.demand_requests) {
    metrics_.demand_requests->inc();
    metrics_.demand_io_seconds->add(t);
    metrics_.demand_latency->observe(t);
  }
  sync_level_stats();
  return t;
}

SimSeconds MemoryHierarchy::prefetch(BlockId id, u64 step, u64 protect_floor) {
  // A prefetch of a fastest-resident block must still refresh its protection
  // timestamp: the predictor just said the block matters for step `step`, so
  // leaving last_use at an older step would let the very next demand insert
  // evict it. touch_if_resident fuses the residency probe and the refresh
  // into one hash lookup.
  if (levels_.front().cache->touch_if_resident(id, step)) return 0.0;
  ++stats_.prefetch_requests;
  SimSeconds t = fetch_internal(id, step, /*demand=*/false, protect_floor);
  stats_.prefetch_time += t;
  if (metrics_.prefetch_requests) {
    metrics_.prefetch_requests->inc();
    metrics_.prefetch_io_seconds->add(t);
    metrics_.prefetch_latency->observe(t);
  }
  sync_level_stats();
  return t;
}

void MemoryHierarchy::preload(BlockId id) {
  for (usize i = levels_.size(); i-- > 0;) {
    levels_[i].cache->insert(id, 0);
  }
  sync_level_stats();
}

void MemoryHierarchy::sync_level_stats() {
  for (usize i = 0; i < levels_.size(); ++i) {
    stats_.level[i] = levels_[i].cache->stats();
  }
}

void MemoryHierarchy::reset_stats() {
  stats_ = {};
  stats_.level.resize(levels_.size());
  for (auto& l : levels_) l.cache->reset_stats();
}

void MemoryHierarchy::reset() {
  for (auto& l : levels_) {
    l.cache->clear();
    l.cache->policy().reset();
  }
  reset_stats();
}

}  // namespace vizcache
