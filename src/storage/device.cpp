#include "storage/device.hpp"

namespace vizcache {

DeviceModel dram_device() {
  return {"DRAM", 100e-9, 10.0e9};
}

DeviceModel ssd_device() {
  return {"SSD", 100e-6, 500.0e6};
}

DeviceModel hdd_device() {
  return {"HDD", 8e-3, 150.0e6};
}

DeviceModel nvme_device() {
  return {"NVMe", 20e-6, 3.0e9};
}

}  // namespace vizcache
