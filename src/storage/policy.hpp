#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "util/types.hpp"

namespace vizcache {

/// Predicate deciding whether a resident block may be evicted right now.
/// The application-aware pipeline protects blocks used at the current path
/// step (Algorithm 1 line 16: the victim's last-use time must be < i).
using EvictablePredicate = std::function<bool(BlockId)>;

/// Replacement-policy strategy interface. A BlockCache keeps one policy in
/// sync with its resident set via on_insert/on_access/on_evict and asks
/// choose_victim() when it must free space. Policies are deterministic.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A new block became resident.
  virtual void on_insert(BlockId id) = 0;
  /// A resident block was accessed (hit).
  virtual void on_access(BlockId id) = 0;
  /// A block was removed from the cache.
  virtual void on_evict(BlockId id) = 0;

  /// Pick a victim among resident blocks satisfying `evictable`; returns
  /// kInvalidBlock when no resident block is evictable.
  virtual BlockId choose_victim(const EvictablePredicate& evictable) = 0;

  /// Forget all state.
  virtual void reset() = 0;

  virtual std::string name() const = 0;
};

/// The policy zoo. kFifo / kLru are the paper's baselines; the rest are
/// extension baselines for the ablation benches (ARC is the related-work
/// policy of Megiddo & Modha; kBelady is the offline optimal upper bound).
enum class PolicyKind {
  kFifo,
  kLru,
  kMru,
  kClock,
  kLfu,
  kArc,
  kTwoQ,
  kBelady,
};

const char* policy_kind_name(PolicyKind kind);

/// Parse "fifo" / "lru" / ... ; throws InvalidArgument on junk.
PolicyKind parse_policy_kind(const std::string& text);

/// Create a policy. `capacity_blocks` sizes the internal queues of ARC/2Q
/// (ignored by the others). Belady policies must be fed the future access
/// trace via BeladyOracle::set_trace before use (see policy_belady.hpp).
std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind,
                                               usize capacity_blocks);

}  // namespace vizcache
