#include "storage/block_cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

BlockCache::BlockCache(u64 capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy,
                       SizeFn size_fn)
    : capacity_bytes_(capacity_bytes),
      policy_(std::move(policy)),
      size_fn_(std::move(size_fn)) {
  VIZ_REQUIRE(capacity_bytes_ > 0, "cache capacity must be positive");
  VIZ_REQUIRE(policy_ != nullptr, "cache needs a replacement policy");
  VIZ_REQUIRE(size_fn_ != nullptr, "cache needs a block size function");
}

void BlockCache::bind_metrics(MetricsRegistry* registry,
                              const std::string& prefix) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.hits = &registry->counter(prefix + ".hits");
  metrics_.misses = &registry->counter(prefix + ".misses");
  metrics_.insertions = &registry->counter(prefix + ".insertions");
  metrics_.evictions = &registry->counter(prefix + ".evictions");
  metrics_.bypasses = &registry->counter(prefix + ".bypasses");
}

void BlockCache::touch_at(LastUseMap::iterator it, u64 step) {
  it->second = step;
  policy_->on_access(it->first);
}

void BlockCache::touch(BlockId id, u64 step) {
  auto it = last_use_.find(id);
  VIZ_REQUIRE(it != last_use_.end(), "touch on non-resident block");
  touch_at(it, step);
}

bool BlockCache::touch_if_resident(BlockId id, u64 step) {
  auto it = last_use_.find(id);
  if (it == last_use_.end()) return false;
  touch_at(it, step);
  return true;
}

BlockCache::InsertResult BlockCache::insert(BlockId id, u64 step) {
  return insert(id, step, step);
}

BlockCache::InsertResult BlockCache::insert(BlockId id, u64 step,
                                            u64 protect_floor) {
  VIZ_REQUIRE(protect_floor <= step,
              "protect_floor must not exceed the access step");
  InsertResult result;
  if (auto it = last_use_.find(id); it != last_use_.end()) {
    touch_at(it, step);
    return result;
  }
  const u64 bytes = size_fn_(id);
  if (bytes > capacity_bytes_) {
    ++stats_.bypasses;
    if (metrics_.bypasses) metrics_.bypasses->inc();
    result.bypassed = true;
    return result;
  }
  // Per-step protection (Algorithm 1 line 16): only blocks whose last use
  // precedes the protection floor may be replaced (floor == step for the
  // single-consumer pipelines). Victims are selected first and evicted only
  // once the insert is guaranteed to succeed, so a bypassed insert leaves
  // the cache untouched (atomicity).
  // Selection order kept for determinism. The scratch is a member so its
  // capacity survives across inserts: after warm-up, victim selection runs
  // allocation-free however many victims a large insert displaces.
  std::vector<BlockId>& chosen = victim_scratch_;
  chosen.clear();
  EvictablePredicate evictable = [this, protect_floor, &chosen](BlockId candidate) {
    if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
      return false;
    }
    auto it = last_use_.find(candidate);
    return it != last_use_.end() && it->second < protect_floor;
  };
  u64 freed = 0;
  while (occupancy_bytes_ - freed + bytes > capacity_bytes_) {
    BlockId victim = policy_->choose_victim(evictable);
    if (victim == kInvalidBlock) {
      ++stats_.bypasses;
      if (metrics_.bypasses) metrics_.bypasses->inc();
      result.bypassed = true;
      return result;
    }
    VIZ_CHECK(last_use_.count(victim), "policy chose a non-resident victim");
    // analyze: allow(hot-path-alloc): appends into the hoisted member
    // scratch, whose capacity persists across inserts — steady state is
    // allocation-free.
    chosen.push_back(victim);
    freed += size_fn_(victim);
  }
  result.evicted.reserve(chosen.size());
  for (BlockId victim : chosen) {
    occupancy_bytes_ -= size_fn_(victim);
    last_use_.erase(victim);
    policy_->on_evict(victim);
    ++stats_.evictions;
    if (metrics_.evictions) metrics_.evictions->inc();
    // analyze: allow(hot-path-alloc): appends within the capacity reserved
    // right-sized above; one batch per capacity miss, dwarfed by the block
    // read that triggered it.
    result.evicted.push_back(victim);
  }
  // analyze: allow(hot-path-alloc): one hash node per newly resident block,
  // bounded by the cache capacity — residency metadata is the product.
  last_use_.try_emplace(id, step);  // single hash: the find above proved absence
  occupancy_bytes_ += bytes;
  policy_->on_insert(id);
  ++stats_.insertions;
  if (metrics_.insertions) metrics_.insertions->inc();
  result.inserted = true;
  return result;
}

bool BlockCache::erase(BlockId id) {
  auto it = last_use_.find(id);
  if (it == last_use_.end()) return false;
  occupancy_bytes_ -= size_fn_(id);
  last_use_.erase(it);
  policy_->on_evict(id);
  ++stats_.evictions;
  if (metrics_.evictions) metrics_.evictions->inc();
  return true;
}

u64 BlockCache::last_use(BlockId id) const {
  auto it = last_use_.find(id);
  VIZ_REQUIRE(it != last_use_.end(), "last_use of non-resident block");
  return it->second;
}

std::vector<BlockId> BlockCache::resident_blocks() const {
  std::vector<BlockId> out;
  out.reserve(last_use_.size());
  for (const auto& [id, _] : last_use_) out.push_back(id);
  return out;
}

void BlockCache::clear() {
  for (const auto& [id, _] : last_use_) policy_->on_evict(id);
  last_use_.clear();
  occupancy_bytes_ = 0;
}

}  // namespace vizcache
