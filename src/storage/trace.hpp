#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// One recorded block access.
struct Access {
  u64 step = 0;     ///< camera-path step index
  BlockId id = 0;
};

/// Records the demand-access sequence of a pipeline run. Used to (a) feed
/// the Belady oracle for the offline-optimal ablation, (b) replay identical
/// workloads across policies, and (c) assert determinism in tests.
class TraceRecorder {
 public:
  void record(u64 step, BlockId id) { accesses_.push_back({step, id}); }

  const std::vector<Access>& accesses() const { return accesses_; }
  usize size() const { return accesses_.size(); }
  void clear() { accesses_.clear(); }

  /// Just the block-id sequence (Belady input).
  std::vector<BlockId> id_sequence() const;

  /// Number of distinct blocks touched.
  usize unique_blocks() const;

  /// Serialize as "step,id" lines; throws IoError on failure.
  void save(const std::string& path) const;
  static TraceRecorder load(const std::string& path);

 private:
  std::vector<Access> accesses_;
};

}  // namespace vizcache
