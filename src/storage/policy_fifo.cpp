#include "storage/policy_list_base.hpp"

namespace vizcache {

namespace {

/// First-In-First-Out: victims in insertion order; accesses don't reorder.
/// One of the two baselines the paper compares against.
class FifoPolicy final : public ListOrderedPolicy {
 public:
  // FIFO ignores hits for ordering, but still validates residency.
  void on_access(BlockId id) override {
    VIZ_CHECK(index_.count(id), "access to unknown block in FIFO");
  }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    return victim_from_back(evictable);
  }

  std::string name() const override { return "FIFO"; }
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_fifo_policy() {
  return std::make_unique<FifoPolicy>();
}

}  // namespace vizcache
