#include "storage/policy_belady.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace vizcache {

struct BeladyOracle::Impl {
  std::vector<BlockId> trace;
  /// Ascending positions of each block in the trace.
  std::unordered_map<BlockId, std::vector<usize>> positions;
  std::unordered_set<BlockId> resident;
  usize cursor = 0;

  /// Position of the next use of `id` strictly after the cursor;
  /// trace.size() when never used again.
  usize next_use(BlockId id) const {
    auto it = positions.find(id);
    if (it == positions.end()) return trace.size();
    const auto& pos = it->second;
    auto p = std::lower_bound(pos.begin(), pos.end(), cursor);
    return p == pos.end() ? trace.size() : *p;
  }

  void advance(BlockId id) {
    // The host must drive accesses in trace order; tolerate slight drift by
    // resyncing the cursor to just past this block's nearest occurrence.
    usize nu = next_use(id);
    cursor = nu < trace.size() ? nu + 1 : cursor + 1;
  }
};

BeladyOracle::BeladyOracle() : impl_(std::make_unique<Impl>()) {}
BeladyOracle::~BeladyOracle() = default;

void BeladyOracle::set_trace(std::vector<BlockId> trace) {
  impl_->trace = std::move(trace);
  impl_->positions.clear();
  for (usize i = 0; i < impl_->trace.size(); ++i) {
    impl_->positions[impl_->trace[i]].push_back(i);
  }
  impl_->cursor = 0;
  impl_->resident.clear();
}

void BeladyOracle::on_insert(BlockId id) {
  VIZ_CHECK(impl_->resident.insert(id).second, "duplicate insert into BELADY");
  impl_->advance(id);
}

void BeladyOracle::on_access(BlockId id) {
  VIZ_CHECK(impl_->resident.count(id), "access to unknown block in BELADY");
  impl_->advance(id);
}

void BeladyOracle::on_evict(BlockId id) {
  VIZ_CHECK(impl_->resident.erase(id) == 1,
            "evicting unknown block from BELADY");
}

BlockId BeladyOracle::choose_victim(const EvictablePredicate& evictable) {
  BlockId best = kInvalidBlock;
  usize best_next = 0;
  for (BlockId id : impl_->resident) {
    if (!evictable(id)) continue;
    usize nu = impl_->next_use(id);
    if (best == kInvalidBlock || nu > best_next ||
        (nu == best_next && id < best)) {
      best = id;
      best_next = nu;
    }
  }
  return best;
}

void BeladyOracle::reset() {
  impl_->resident.clear();
  impl_->cursor = 0;
}

usize BeladyOracle::cursor() const { return impl_->cursor; }

}  // namespace vizcache
