#include "storage/trace.hpp"

#include <fstream>
#include <unordered_set>

#include "util/error.hpp"

namespace vizcache {

std::vector<BlockId> TraceRecorder::id_sequence() const {
  std::vector<BlockId> out;
  out.reserve(accesses_.size());
  for (const Access& a : accesses_) out.push_back(a.id);
  return out;
}

usize TraceRecorder::unique_blocks() const {
  std::unordered_set<BlockId> set;
  for (const Access& a : accesses_) set.insert(a.id);
  return set.size();
}

void TraceRecorder::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open trace for writing: " + path);
  for (const Access& a : accesses_) {
    out << a.step << ',' << a.id << '\n';
  }
  if (!out) throw IoError("trace write failed: " + path);
}

TraceRecorder TraceRecorder::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open trace: " + path);
  TraceRecorder rec;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto comma = line.find(',');
    VIZ_CHECK(comma != std::string::npos, "malformed trace line: " + line);
    rec.record(std::stoull(line.substr(0, comma)),
               static_cast<BlockId>(std::stoul(line.substr(comma + 1))));
  }
  return rec;
}

}  // namespace vizcache
