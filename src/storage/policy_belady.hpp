#pragma once

#include <memory>
#include <vector>

#include "storage/policy.hpp"

namespace vizcache {

/// Belady's offline-optimal replacement (MIN): evicts the resident block
/// whose next use lies farthest in the future. Requires the full future
/// access sequence, so it is usable only as an oracle upper bound in the
/// ablation benches — feed it the demand-access trace of a recorded run
/// before replaying the same run.
class BeladyOracle final : public ReplacementPolicy {
 public:
  BeladyOracle();
  ~BeladyOracle() override;

  /// The exact sequence of demand accesses (hits and misses alike) the host
  /// cache will issue. Resets the playback cursor.
  void set_trace(std::vector<BlockId> trace);

  void on_insert(BlockId id) override;
  void on_access(BlockId id) override;
  void on_evict(BlockId id) override;
  BlockId choose_victim(const EvictablePredicate& evictable) override;
  void reset() override;
  std::string name() const override { return "BELADY"; }

  /// Playback position (accesses consumed so far) — exposed for tests.
  usize cursor() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vizcache
