#pragma once

#include <string>

#include "util/types.hpp"

namespace vizcache {

/// Latency/bandwidth model of one storage device. All experiment timing is
/// simulated through these models so results are deterministic and
/// machine-independent; parameters default to public spec-sheet values for
/// the paper's testbed classes (DDR3 DRAM, SATA SSD, 7200rpm HDD).
struct DeviceModel {
  std::string name;
  SimSeconds latency_s = 0.0;     ///< per-request fixed cost (seek/issue)
  double bandwidth_bps = 1.0;     ///< sustained bytes per second

  /// Simulated time to read `bytes` in one request.
  SimSeconds transfer_time(u64 bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }
};

/// ~DDR3-1600 main memory.
DeviceModel dram_device();
/// ~SATA3 consumer SSD (the paper's 512 GB SSD).
DeviceModel ssd_device();
/// ~7200 rpm HDD (the paper's 3 TB HDD).
DeviceModel hdd_device();
/// ~PCIe3 NVMe drive (extension experiments).
DeviceModel nvme_device();

}  // namespace vizcache
