#include <list>
#include <unordered_map>

#include "storage/policy.hpp"
#include "util/error.hpp"

namespace vizcache {

namespace {

/// Adaptive Replacement Cache (Megiddo & Modha, FAST'03) — the related-work
/// policy the paper cites. T1 holds blocks seen once, T2 blocks seen twice+;
/// ghost lists B1/B2 steer the adaptation target p. The original algorithm
/// performs its REPLACE inside the request path; here the host cache drives
/// eviction, so choose_victim() applies the same T1-vs-T2 balance rule and
/// on_evict() files the victim into the matching ghost list.
class ArcPolicy final : public ReplacementPolicy {
 public:
  explicit ArcPolicy(usize capacity) : capacity_(capacity ? capacity : 1) {}

  void on_insert(BlockId id) override {
    VIZ_CHECK(!where_.count(id), "duplicate insert into ARC");
    if (ghost_b1_.erase_if_present(id)) {
      // Hit in B1: recency working set is larger than p allows — grow p.
      usize delta = std::max<usize>(1, ghost_b2_.size() /
                                           std::max<usize>(1, ghost_b1_.size()));
      p_ = std::min(capacity_, p_ + delta);
      push_front(t2_, id, Where::kT2);
    } else if (ghost_b2_.erase_if_present(id)) {
      // Hit in B2: frequency set needs more room — shrink p.
      usize delta = std::max<usize>(1, ghost_b1_.size() /
                                           std::max<usize>(1, ghost_b2_.size()));
      p_ = p_ > delta ? p_ - delta : 0;
      push_front(t2_, id, Where::kT2);
    } else {
      push_front(t1_, id, Where::kT1);
    }
  }

  void on_access(BlockId id) override {
    auto it = where_.find(id);
    VIZ_CHECK(it != where_.end(), "access to unknown block in ARC");
    // Any resident hit promotes to the frequent list T2.
    auto& from = it->second.where == Where::kT1 ? t1_ : t2_;
    from.erase(it->second.pos);
    push_front_existing(it->second, id);
  }

  void on_evict(BlockId id) override {
    auto it = where_.find(id);
    VIZ_CHECK(it != where_.end(), "evicting unknown block from ARC");
    if (it->second.where == Where::kT1) {
      t1_.erase(it->second.pos);
      ghost_b1_.push(id, capacity_);
    } else {
      t2_.erase(it->second.pos);
      ghost_b2_.push(id, capacity_);
    }
    where_.erase(it);
  }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    // ARC balance: evict from T1 while it exceeds the target p, else T2.
    bool prefer_t1 = !t1_.empty() && (t1_.size() > p_ || t2_.empty());
    BlockId v = prefer_t1 ? victim_from(t1_, evictable) : victim_from(t2_, evictable);
    if (v != kInvalidBlock) return v;
    // Preferred list fully protected: try the other one.
    return prefer_t1 ? victim_from(t2_, evictable) : victim_from(t1_, evictable);
  }

  void reset() override {
    t1_.clear();
    t2_.clear();
    where_.clear();
    ghost_b1_.clear();
    ghost_b2_.clear();
    p_ = 0;
  }

  std::string name() const override { return "ARC"; }

  usize target_p() const { return p_; }  // exposed for tests

 private:
  enum class Where { kT1, kT2 };
  struct Slot {
    Where where;
    std::list<BlockId>::iterator pos;
  };

  /// Bounded FIFO set of ghost ids.
  class GhostList {
   public:
    void push(BlockId id, usize cap) {
      // analyze: allow(hot-path-alloc): one list node per ghost entry,
      // bounded by cap — the O(1)-splice list design ARC requires.
      order_.push_front(id);
      index_[id] = order_.begin();
      while (order_.size() > cap) {
        index_.erase(order_.back());
        order_.pop_back();
      }
    }
    bool erase_if_present(BlockId id) {
      auto it = index_.find(id);
      if (it == index_.end()) return false;
      order_.erase(it->second);
      index_.erase(it);
      return true;
    }
    usize size() const { return order_.size(); }
    void clear() {
      order_.clear();
      index_.clear();
    }

   private:
    std::list<BlockId> order_;
    std::unordered_map<BlockId, std::list<BlockId>::iterator> index_;
  };

  void push_front(std::list<BlockId>& lst, BlockId id, Where where) {
    // analyze: allow(hot-path-alloc): one list node per resident block,
    // bounded by the cache capacity — the O(1)-splice list design.
    lst.push_front(id);
    where_[id] = {where, lst.begin()};
  }

  void push_front_existing(Slot& slot, BlockId id) {
    // analyze: allow(hot-path-alloc): one list node per T1->T2 promotion,
    // bounded by the cache capacity — the O(1)-splice list design.
    t2_.push_front(id);
    slot.where = Where::kT2;
    slot.pos = t2_.begin();
  }

  BlockId victim_from(std::list<BlockId>& lst,
                      const EvictablePredicate& evictable) const {
    for (auto it = lst.rbegin(); it != lst.rend(); ++it) {
      if (evictable(*it)) return *it;
    }
    return kInvalidBlock;
  }

  usize capacity_;
  usize p_ = 0;  // adaptation target for |T1|
  std::list<BlockId> t1_;
  std::list<BlockId> t2_;
  std::unordered_map<BlockId, Slot> where_;
  GhostList ghost_b1_;
  GhostList ghost_b2_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_arc_policy(usize capacity_blocks) {
  return std::make_unique<ArcPolicy>(capacity_blocks);
}

}  // namespace vizcache
