#include "storage/policy_list_base.hpp"

namespace vizcache {

namespace {

/// Least-Recently-Used: victims from the cold end of the recency list.
/// The second paper baseline, and the replacement core the application-aware
/// pipeline builds on (Algorithm 1 replaces "the block with the lowest value
/// in time", i.e. LRU with per-step protection).
class LruPolicy final : public ListOrderedPolicy {
 public:
  void on_access(BlockId id) override { move_to_front(id); }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    return victim_from_back(evictable);
  }

  std::string name() const override { return "LRU"; }
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_lru_policy() {
  return std::make_unique<LruPolicy>();
}

}  // namespace vizcache
