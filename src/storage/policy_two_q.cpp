#include <list>
#include <unordered_map>

#include "storage/policy.hpp"
#include "util/error.hpp"

namespace vizcache {

namespace {

/// 2Q (Johnson & Shasha, VLDB'94), simplified full version: new blocks enter
/// the FIFO probation queue A1in; blocks re-fetched after falling out of
/// A1in (tracked by the ghost queue A1out) enter the protected LRU queue Am.
/// Kin = capacity/4, Kout = capacity/2 per the original recommendations.
class TwoQPolicy final : public ReplacementPolicy {
 public:
  explicit TwoQPolicy(usize capacity)
      : kin_(std::max<usize>(1, capacity / 4)),
        kout_(std::max<usize>(1, capacity / 2)) {}

  void on_insert(BlockId id) override {
    VIZ_CHECK(!where_.count(id), "duplicate insert into 2Q");
    if (ghost_.count(id)) {
      ghost_erase(id);
      push_front(am_, id, Where::kAm);
    } else {
      push_front(a1in_, id, Where::kA1in);
    }
  }

  void on_access(BlockId id) override {
    auto it = where_.find(id);
    VIZ_CHECK(it != where_.end(), "access to unknown block in 2Q");
    // 2Q: hits in Am refresh recency; hits in A1in deliberately do nothing
    // (correlated references shouldn't promote).
    if (it->second.where == Where::kAm) {
      am_.splice(am_.begin(), am_, it->second.pos);
      it->second.pos = am_.begin();
    }
  }

  void on_evict(BlockId id) override {
    auto it = where_.find(id);
    VIZ_CHECK(it != where_.end(), "evicting unknown block from 2Q");
    if (it->second.where == Where::kA1in) {
      a1in_.erase(it->second.pos);
      ghost_push(id);
    } else {
      am_.erase(it->second.pos);
    }
    where_.erase(it);
  }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    bool prefer_a1in = a1in_.size() > kin_ || am_.empty();
    BlockId v = prefer_a1in ? victim_from(a1in_, evictable)
                            : victim_from(am_, evictable);
    if (v != kInvalidBlock) return v;
    return prefer_a1in ? victim_from(am_, evictable)
                       : victim_from(a1in_, evictable);
  }

  void reset() override {
    a1in_.clear();
    am_.clear();
    where_.clear();
    ghost_order_.clear();
    ghost_.clear();
  }

  std::string name() const override { return "2Q"; }

 private:
  enum class Where { kA1in, kAm };
  struct Slot {
    Where where;
    std::list<BlockId>::iterator pos;
  };

  void push_front(std::list<BlockId>& lst, BlockId id, Where where) {
    // analyze: allow(hot-path-alloc): one list node per resident block,
    // bounded by the cache capacity — the O(1)-splice list design.
    lst.push_front(id);
    where_[id] = {where, lst.begin()};
  }

  BlockId victim_from(std::list<BlockId>& lst,
                      const EvictablePredicate& evictable) const {
    for (auto it = lst.rbegin(); it != lst.rend(); ++it) {
      if (evictable(*it)) return *it;
    }
    return kInvalidBlock;
  }

  void ghost_push(BlockId id) {
    // analyze: allow(hot-path-alloc): one list node per ghost entry,
    // bounded by kout_ — the O(1)-splice list design 2Q requires.
    ghost_order_.push_front(id);
    ghost_[id] = ghost_order_.begin();
    while (ghost_order_.size() > kout_) {
      ghost_.erase(ghost_order_.back());
      ghost_order_.pop_back();
    }
  }

  void ghost_erase(BlockId id) {
    auto it = ghost_.find(id);
    if (it == ghost_.end()) return;
    ghost_order_.erase(it->second);
    ghost_.erase(it);
  }

  usize kin_;
  usize kout_;
  std::list<BlockId> a1in_;
  std::list<BlockId> am_;
  std::unordered_map<BlockId, Slot> where_;
  std::list<BlockId> ghost_order_;
  std::unordered_map<BlockId, std::list<BlockId>::iterator> ghost_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_two_q_policy(usize capacity_blocks) {
  return std::make_unique<TwoQPolicy>(capacity_blocks);
}

}  // namespace vizcache
