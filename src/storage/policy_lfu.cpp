#include <unordered_map>

#include "storage/policy.hpp"
#include "util/error.hpp"

namespace vizcache {

namespace {

/// Least-Frequently-Used with LRU tie-breaking. Frequency counts persist
/// only while a block is resident (no ghost history), which is the classic
/// in-cache LFU variant.
class LfuPolicy final : public ReplacementPolicy {
 public:
  void on_insert(BlockId id) override {
    VIZ_CHECK(!entries_.count(id), "duplicate insert into LFU");
    entries_[id] = {1, ++tick_};
  }

  void on_access(BlockId id) override {
    auto it = entries_.find(id);
    VIZ_CHECK(it != entries_.end(), "access to unknown block in LFU");
    ++it->second.frequency;
    it->second.last_tick = ++tick_;
  }

  void on_evict(BlockId id) override {
    VIZ_CHECK(entries_.erase(id) == 1, "evicting unknown block from LFU");
  }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    BlockId best = kInvalidBlock;
    u64 best_freq = 0;
    u64 best_tick = 0;
    for (const auto& [id, e] : entries_) {
      if (!evictable(id)) continue;
      bool better = best == kInvalidBlock || e.frequency < best_freq ||
                    (e.frequency == best_freq && e.last_tick < best_tick);
      if (better) {
        best = id;
        best_freq = e.frequency;
        best_tick = e.last_tick;
      }
    }
    return best;
  }

  void reset() override {
    entries_.clear();
    tick_ = 0;
  }

  std::string name() const override { return "LFU"; }

 private:
  struct Entry {
    u64 frequency;
    u64 last_tick;
  };

  std::unordered_map<BlockId, Entry> entries_;
  u64 tick_ = 0;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_lfu_policy() {
  return std::make_unique<LfuPolicy>();
}

}  // namespace vizcache
