#include <algorithm>

#include "storage/policy.hpp"
#include "storage/policy_belady.hpp"
#include "util/error.hpp"

namespace vizcache {

// Out-of-line factories defined by the individual policy TUs.
std::unique_ptr<ReplacementPolicy> make_fifo_policy();
std::unique_ptr<ReplacementPolicy> make_lru_policy();
std::unique_ptr<ReplacementPolicy> make_mru_policy();
std::unique_ptr<ReplacementPolicy> make_clock_policy();
std::unique_ptr<ReplacementPolicy> make_lfu_policy();
std::unique_ptr<ReplacementPolicy> make_arc_policy(usize capacity_blocks);
std::unique_ptr<ReplacementPolicy> make_two_q_policy(usize capacity_blocks);

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kMru: return "MRU";
    case PolicyKind::kClock: return "CLOCK";
    case PolicyKind::kLfu: return "LFU";
    case PolicyKind::kArc: return "ARC";
    case PolicyKind::kTwoQ: return "2Q";
    case PolicyKind::kBelady: return "BELADY";
  }
  throw InvalidArgument("unknown policy kind");
}

PolicyKind parse_policy_kind(const std::string& text) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "fifo") return PolicyKind::kFifo;
  if (t == "lru") return PolicyKind::kLru;
  if (t == "mru") return PolicyKind::kMru;
  if (t == "clock") return PolicyKind::kClock;
  if (t == "lfu") return PolicyKind::kLfu;
  if (t == "arc") return PolicyKind::kArc;
  if (t == "2q" || t == "twoq") return PolicyKind::kTwoQ;
  if (t == "belady" || t == "min" || t == "opt-oracle") return PolicyKind::kBelady;
  throw InvalidArgument("unknown policy name: " + text);
}

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind,
                                               usize capacity_blocks) {
  switch (kind) {
    case PolicyKind::kFifo: return make_fifo_policy();
    case PolicyKind::kLru: return make_lru_policy();
    case PolicyKind::kMru: return make_mru_policy();
    case PolicyKind::kClock: return make_clock_policy();
    case PolicyKind::kLfu: return make_lfu_policy();
    case PolicyKind::kArc: return make_arc_policy(capacity_blocks);
    case PolicyKind::kTwoQ: return make_two_q_policy(capacity_blocks);
    case PolicyKind::kBelady: return std::make_unique<BeladyOracle>();
  }
  throw InvalidArgument("unknown policy kind");
}

}  // namespace vizcache
