#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/block_cache.hpp"
#include "storage/device.hpp"
#include "storage/policy.hpp"
#include "util/metrics.hpp"

namespace vizcache {

/// Specification of one caching level of the hierarchy (fastest first).
struct LevelSpec {
  std::string name;          ///< e.g. "DRAM", "SSD"
  DeviceModel device;        ///< timing of reads served by this level
  u64 capacity_bytes = 0;    ///< cache capacity at this level
  PolicyKind policy = PolicyKind::kLru;
};

/// Aggregate timing/counter results of a hierarchy run.
struct HierarchyStats {
  std::vector<CacheStats> level;      ///< per caching level
  u64 demand_backing_reads = 0;       ///< backing reads caused by demand fetches
  u64 demand_backing_bytes = 0;
  u64 prefetch_backing_reads = 0;     ///< backing reads caused by prefetches
  u64 prefetch_backing_bytes = 0;
  SimSeconds demand_io_time = 0.0;    ///< simulated time of demand fetches
  SimSeconds prefetch_time = 0.0;     ///< simulated time of prefetch fetches
  u64 demand_requests = 0;
  u64 prefetch_requests = 0;

  /// All reads served by the backing device, regardless of cause.
  u64 backing_reads() const {
    return demand_backing_reads + prefetch_backing_reads;
  }
  u64 backing_bytes() const {
    return demand_backing_bytes + prefetch_backing_bytes;
  }

  /// Fastest-level (DRAM) miss fraction over demand requests.
  double fast_miss_rate() const;
  /// Paper's "total miss rate across DRAM, SSD and HDD": misses summed over
  /// all cache levels divided by lookups summed over all cache levels
  /// (a request only reaches level k+1 after missing level k).
  double total_miss_rate() const;
};

/// Multi-level memory-hierarchy simulator (paper Section V-A: DRAM cache
/// over SSD cache over HDD backing store, cache ratio 0.5 per level).
///
/// Semantics:
/// - Data is read-only; every block permanently lives on the backing device.
/// - fetch(): demand read of a block at a path step. Served by the fastest
///   level holding it; the block is then promoted into every faster level
///   (staged HDD -> SSD -> DRAM). Simulated cost is the serving device's
///   transfer time.
/// - prefetch(): same movement, but accounted to prefetch_time so the
///   pipeline can overlap it with rendering.
/// - preload(): initial placement (Step 2 pre-processing) — no time charged.
class MemoryHierarchy {
 public:
  using SizeFn = std::function<u64(BlockId)>;

  MemoryHierarchy(std::vector<LevelSpec> levels, DeviceModel backing,
                  SizeFn block_size);

  /// Convenience: the paper's testbed — DRAM and SSD caches sized as
  /// `ratio` and `ratio`^2... i.e. SSD holds `ratio` * dataset bytes and
  /// DRAM holds `ratio` * SSD bytes, over an HDD backing store.
  static MemoryHierarchy paper_testbed(u64 dataset_bytes, double cache_ratio,
                                       PolicyKind policy, SizeFn block_size);

  usize level_count() const { return levels_.size(); }
  const std::string& level_name(usize level) const;
  BlockCache& cache(usize level);
  const BlockCache& cache(usize level) const;

  /// Demand fetch; returns simulated time.
  SimSeconds fetch(BlockId id, u64 step) { return fetch(id, step, step); }

  /// fetch() with a decoupled eviction-protection floor (see
  /// BlockCache::insert(id, step, protect_floor)): promotion inserts touch
  /// the block at `step` but may only evict victims last used before
  /// `protect_floor`. The shared multi-session hierarchy passes the minimum
  /// epoch of all in-progress session steps.
  SimSeconds fetch(BlockId id, u64 step, u64 protect_floor);

  /// Prefetch into the fastest level; returns simulated time (0 when the
  /// block is already fastest-resident).
  SimSeconds prefetch(BlockId id, u64 step) { return prefetch(id, step, step); }

  /// prefetch() with a decoupled eviction-protection floor (see fetch()).
  SimSeconds prefetch(BlockId id, u64 step, u64 protect_floor);

  /// Pre-processing placement into the fastest level (and the levels below
  /// it) without charging simulated time or demand/prefetch counters.
  void preload(BlockId id);

  bool resident_fast(BlockId id) const { return levels_.front().cache->contains(id); }

  const HierarchyStats& stats() const { return stats_; }
  void reset_stats();

  /// Mirror every future stats increment into `registry`: hierarchy-level
  /// instruments under `<prefix>.{demand,prefetch}.*` and each cache level's
  /// counters under `cache.<lowercased level name>.*` (e.g. `cache.dram.hits`).
  /// Call once before use; pass nullptr to detach. The registry must outlive
  /// the hierarchy.
  void bind_metrics(MetricsRegistry* registry,
                    const std::string& prefix = "hierarchy");

  /// Drop all cached blocks and stats (fresh run).
  void reset();

 private:
  struct Level {
    std::string name;
    DeviceModel device;
    std::unique_ptr<BlockCache> cache;
  };

  /// Core movement shared by fetch/prefetch: returns the serving time and
  /// promotes the block into levels [0, found_level).
  SimSeconds fetch_internal(BlockId id, u64 step, bool demand,
                            u64 protect_floor);

  /// Mirror per-cache counters into stats_.level.
  void sync_level_stats();

  /// Registry instruments mirroring stats_; all null until bind_metrics.
  struct BoundMetrics {
    MetricCounter* demand_requests = nullptr;
    MetricCounter* prefetch_requests = nullptr;
    MetricCounter* demand_backing_reads = nullptr;
    MetricCounter* demand_backing_bytes = nullptr;
    MetricCounter* prefetch_backing_reads = nullptr;
    MetricCounter* prefetch_backing_bytes = nullptr;
    MetricGauge* demand_io_seconds = nullptr;
    MetricGauge* prefetch_io_seconds = nullptr;
    MetricHistogram* demand_latency = nullptr;
    MetricHistogram* prefetch_latency = nullptr;
  };

  std::vector<Level> levels_;
  DeviceModel backing_;
  SizeFn block_size_;
  HierarchyStats stats_;
  BoundMetrics metrics_;
};

}  // namespace vizcache
