#include <list>
#include <unordered_map>

#include "storage/policy.hpp"
#include "util/error.hpp"

namespace vizcache {

namespace {

/// CLOCK (second-chance): a circular list with reference bits. The hand
/// clears reference bits as it sweeps and evicts the first unreferenced,
/// evictable block. Classic low-overhead LRU approximation.
class ClockPolicy final : public ReplacementPolicy {
 public:
  void on_insert(BlockId id) override {
    VIZ_CHECK(!index_.count(id), "duplicate insert into CLOCK");
    // Insert just behind the hand so new pages get a full sweep of grace.
    auto pos = hand_valid_ ? hand_ : ring_.begin();
    auto it = ring_.insert(pos, Entry{id, true});
    index_[id] = it;
    if (!hand_valid_) {
      hand_ = it;
      hand_valid_ = true;
    }
  }

  void on_access(BlockId id) override {
    auto it = index_.find(id);
    VIZ_CHECK(it != index_.end(), "access to unknown block in CLOCK");
    it->second->referenced = true;
  }

  void on_evict(BlockId id) override {
    auto it = index_.find(id);
    VIZ_CHECK(it != index_.end(), "evicting unknown block from CLOCK");
    if (hand_valid_ && hand_ == it->second) advance_hand();
    ring_.erase(it->second);
    index_.erase(it);
    if (ring_.empty()) hand_valid_ = false;
  }

  BlockId choose_victim(const EvictablePredicate& evictable) override {
    if (ring_.empty()) return kInvalidBlock;
    // Bounded sweep: two full revolutions guarantee every referenced bit has
    // been cleared once; afterwards any remaining candidates are protected.
    usize budget = ring_.size() * 2;
    while (budget-- > 0) {
      Entry& e = *hand_;
      if (!evictable(e.id)) {
        advance_hand();
        continue;
      }
      if (e.referenced) {
        e.referenced = false;
        advance_hand();
        continue;
      }
      return e.id;
    }
    // Everything evictable is referenced-and-protected cycling; fall back to
    // the first evictable entry.
    for (const Entry& e : ring_) {
      if (evictable(e.id)) return e.id;
    }
    return kInvalidBlock;
  }

  void reset() override {
    ring_.clear();
    index_.clear();
    hand_valid_ = false;
  }

  std::string name() const override { return "CLOCK"; }

 private:
  struct Entry {
    BlockId id;
    bool referenced;
  };

  void advance_hand() {
    VIZ_CHECK(!ring_.empty(), "advancing hand on empty ring");
    ++hand_;
    if (hand_ == ring_.end()) hand_ = ring_.begin();
  }

  std::list<Entry> ring_;
  std::unordered_map<BlockId, std::list<Entry>::iterator> index_;
  std::list<Entry>::iterator hand_;
  bool hand_valid_ = false;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_clock_policy() {
  return std::make_unique<ClockPolicy>();
}

}  // namespace vizcache
