#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/policy.hpp"
#include "util/metrics.hpp"
#include "util/types.hpp"

namespace vizcache {

/// Counters of one cache level.
struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;        ///< demand lookups that were not resident
  u64 insertions = 0;
  u64 evictions = 0;
  u64 bypasses = 0;      ///< inserts refused because every victim was protected

  u64 lookups() const { return hits + misses; }
  double miss_rate() const {
    return lookups() ? static_cast<double>(misses) / static_cast<double>(lookups())
                     : 0.0;
  }
};

/// One cache level: a byte-capacity container of block payloads, keyed by
/// BlockId, with a pluggable replacement policy and the paper's per-step
/// protection rule (Algorithm 1: a victim's last-use step must be strictly
/// below the current step).
///
/// Thread-safety: thread-compatible, not thread-safe — the hierarchy
/// simulator mutates caches from one thread at a time (ParallelPipeline
/// gives each simulated worker its own hierarchy slice precisely so no
/// cross-thread sharing exists). Wrap in an externally annotated Mutex
/// (util/annotated_mutex.hpp) before sharing across real threads.
class BlockCache {
 public:
  using SizeFn = std::function<u64(BlockId)>;

  /// `capacity_bytes` > 0; `size_fn` gives each block's payload size.
  BlockCache(u64 capacity_bytes, std::unique_ptr<ReplacementPolicy> policy,
             SizeFn size_fn);

  bool contains(BlockId id) const { return last_use_.count(id) > 0; }

  /// Record a demand access to a resident block at path step `step`:
  /// refreshes the protection timestamp and informs the policy. The caller
  /// must have checked contains().
  void touch(BlockId id, u64 step);

  /// contains() + touch() fused into one hash lookup: refreshes `id` when
  /// resident and reports whether it was. The residency probe of the
  /// hierarchy's fetch path uses this so a hit costs one lookup, not two.
  bool touch_if_resident(BlockId id, u64 step);

  /// Outcome of an insert attempt.
  struct InsertResult {
    bool inserted = false;
    bool bypassed = false;               ///< no evictable victim existed
    std::vector<BlockId> evicted;        ///< victims removed to make room
  };

  /// Make `id` resident at step `step`, evicting protected-aware victims as
  /// needed. Inserting a resident block degenerates to touch(). A block
  /// larger than the whole cache, or an insert with every victim protected,
  /// is bypassed (the read still happened; the block just isn't kept).
  InsertResult insert(BlockId id, u64 step);

  /// insert() with the protection threshold decoupled from the access
  /// timestamp: the inserted block's last_use becomes `step`, but a victim is
  /// evictable only when its last_use < `protect_floor` (<= step). The
  /// single-consumer pipelines use floor == step (Algorithm 1's rule); the
  /// shared multi-session hierarchy passes the minimum epoch of all
  /// in-progress session steps, so no session's eviction scan can victimize a
  /// block another session used during a step that has not finished yet.
  InsertResult insert(BlockId id, u64 step, u64 protect_floor);

  /// Remove a specific block (used by invalidation tests).
  bool erase(BlockId id);

  /// Last-use step of a resident block (the paper's time[] array).
  u64 last_use(BlockId id) const;

  u64 capacity_bytes() const { return capacity_bytes_; }
  u64 occupancy_bytes() const { return occupancy_bytes_; }
  usize resident_count() const { return last_use_.size(); }
  std::vector<BlockId> resident_blocks() const;

  const CacheStats& stats() const { return stats_; }
  void note_miss() {
    ++stats_.misses;
    if (metrics_.misses) metrics_.misses->inc();
  }
  void note_hit() {
    ++stats_.hits;
    if (metrics_.hits) metrics_.hits->inc();
  }
  void reset_stats() { stats_ = {}; }

  /// Mirror every future stats increment into `registry` under
  /// `<prefix>.{hits,misses,insertions,evictions,bypasses}` (e.g. prefix
  /// "cache.dram"). Call once before use; pass nullptr to detach. The
  /// registry must outlive the cache (instrument references are cached).
  void bind_metrics(MetricsRegistry* registry, const std::string& prefix);

  ReplacementPolicy& policy() { return *policy_; }

  /// Drop everything (stats preserved).
  void clear();

 private:
  using LastUseMap = std::unordered_map<BlockId, u64>;

  /// Shared tail of touch()/insert()-on-resident: refresh the timestamp via
  /// an iterator already in hand, so the map is hashed exactly once per
  /// lookup instead of once for contains() and again for the update.
  void touch_at(LastUseMap::iterator it, u64 step);

  /// Registry instruments mirroring stats_; all null until bind_metrics.
  struct BoundMetrics {
    MetricCounter* hits = nullptr;
    MetricCounter* misses = nullptr;
    MetricCounter* insertions = nullptr;
    MetricCounter* evictions = nullptr;
    MetricCounter* bypasses = nullptr;
  };

  u64 capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  SizeFn size_fn_;
  LastUseMap last_use_;
  u64 occupancy_bytes_ = 0;
  CacheStats stats_;
  BoundMetrics metrics_;
  /// Victim-selection scratch reused across insert() calls: cleared, never
  /// shrunk, so the steady state selects victims without touching the
  /// allocator (the cache is thread-compatible, see class comment, so one
  /// scratch suffices).
  std::vector<BlockId> victim_scratch_;
};

}  // namespace vizcache
