#include "service/block_service.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace vizcache {

BlockService::BlockService(const BlockGrid& grid, MemoryHierarchy hierarchy,
                           ServiceConfig config, const VisibilityTable* table,
                           const ImportanceTable* importance)
    : grid_(grid),
      config_(config),
      table_(table),
      importance_(importance),
      bounds_(grid),
      shared_(std::move(hierarchy), config.leader_pace_seconds) {
  if (config_.app_aware) {
    VIZ_REQUIRE(table_ != nullptr, "app-aware service needs T_visible");
    VIZ_REQUIRE(importance_ != nullptr, "app-aware service needs T_important");
  }
  shared_.bind_metrics(&metrics_, "service.hierarchy");
  ins_.opened = &metrics_.counter("service.sessions.opened");
  ins_.closed = &metrics_.counter("service.sessions.closed");
  ins_.rejected = &metrics_.counter("service.sessions.rejected");
  ins_.active = &metrics_.gauge("service.sessions.active");
  ins_.steps = &metrics_.counter("service.steps");
  ins_.demand_requests = &metrics_.counter("service.demand.requests");
  ins_.coalesced_hits = &metrics_.counter("service.demand.coalesced_hits");
  ins_.fast_misses = &metrics_.counter("service.demand.fast_misses");
  ins_.prefetched = &metrics_.counter("service.prefetch.blocks");
  ins_.prefetch_shed = &metrics_.counter("service.prefetch.shed");
  ins_.prefetch_suppressed = &metrics_.counter("service.prefetch.suppressed");
  ins_.step_seconds = &metrics_.histogram("service.step.sim_seconds",
                                          latency_seconds_bounds());

  // Service-wide analogue of Algorithm 1 line 7: warm the SHARED fast level
  // once, most important blocks first, before any session arrives.
  if (config_.app_aware && config_.preload_important) {
    MetricCounter& scanned = metrics_.counter("service.preload.scanned");
    MetricCounter& preloaded = metrics_.counter("service.preload.blocks");
    const std::vector<BlockId>& ranked = importance_->ranked();
    // Suffix minima of the ranked blocks' sizes: once the budget drops below
    // the smallest block still ahead, no candidate can fit and the scan must
    // stop instead of walking the rest of the ranking doing entropy lookups.
    std::vector<u64> min_bytes_ahead(ranked.size() + 1,
                                     std::numeric_limits<u64>::max());
    for (usize i = ranked.size(); i-- > 0;) {
      min_bytes_ahead[i] =
          std::min(min_bytes_ahead[i + 1], grid_.block_bytes(ranked[i]));
    }
    u64 budget = shared_.fast_capacity_bytes();
    for (usize i = 0; i < ranked.size(); ++i) {
      if (budget < min_bytes_ahead[i]) break;  // nothing ahead can fit
      scanned.inc();
      const BlockId id = ranked[i];
      if (importance_->entropy(id) <= config_.sigma_bits) break;
      const u64 bytes = grid_.block_bytes(id);
      if (bytes > budget) continue;  // a smaller block may still fit
      shared_.preload(id);
      preloaded.inc();
      budget -= bytes;
    }
  }
}

std::optional<SessionId> BlockService::open_session() {
  MutexLock lock(mutex_);
  if (sessions_.size() >= config_.max_sessions) {
    ins_.rejected->inc();
    return std::nullopt;
  }
  // After next_session_ (u32) wraps, the next candidate id can belong to a
  // still-open long-lived session; aliasing it would hand two viewers one
  // SessionState. Skip live ids — the map holds at most max_sessions
  // entries, so this terminates long before the counter laps itself.
  SessionId id = next_session_++;
  while (sessions_.find(id) != sessions_.end()) id = next_session_++;
  SessionState state;
  state.summary.id = id;
  const bool inserted = sessions_.emplace(id, state).second;
  VIZ_CHECK(inserted, "open_session raced an id it just probed as free");
  ins_.opened->inc();
  ins_.active->set(static_cast<double>(sessions_.size()));
  return id;
}

void BlockService::set_next_session_id(SessionId next) {
  MutexLock lock(mutex_);
  next_session_ = next;
}

BlockService::BlockFetch BlockService::fetch_block(SessionId session,
                                                   BlockId id) {
  VIZ_REQUIRE(id < grid_.block_count(), "fetch_block: block id out of range");
  {
    MutexLock lock(mutex_);
    VIZ_REQUIRE(sessions_.find(session) != sessions_.end(),
                "fetch_block on a closed or unknown session");
  }
  // Epoch-bracketed exactly like a step so the shared eviction protection
  // covers the read; no service lock is held across the hierarchy call.
  const u64 epoch = shared_.begin_step();
  BlockFetch result;
  result.fetch = shared_.fetch(id, epoch);
  result.bytes = grid_.block_bytes(id);
  shared_.end_step(epoch);

  ins_.demand_requests->inc();
  if (result.fetch.coalesced) ins_.coalesced_hits->inc();
  if (!result.fetch.fast_hit) ins_.fast_misses->inc();
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(session);
    VIZ_REQUIRE(it != sessions_.end(), "session closed during fetch_block");
    SessionSummary& sum = it->second.summary;
    sum.demand_requests += 1;
    if (result.fetch.coalesced) sum.coalesced_hits += 1;
    if (!result.fetch.fast_hit) sum.fast_misses += 1;
  }
  return result;
}

SessionStepResult BlockService::step(SessionId session, const Camera& camera) {
  SessionStepResult sr;
  u64 prefetch_share = std::numeric_limits<u64>::max();
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(session);
    VIZ_REQUIRE(it != sessions_.end(), "step on a closed or unknown session");
    sr.step = ++it->second.summary.steps;
    // Fairness: the aggregate prefetch budget is split evenly over the
    // sessions active RIGHT NOW, so one session's appetite cannot consume
    // another's share. Recomputed every step as sessions come and go.
    if (config_.aggregate_prefetch_budget_bytes > 0) {
      prefetch_share = config_.aggregate_prefetch_budget_bytes /
                       std::max<usize>(usize{1}, sessions_.size());
    }
  }

  // From here to the final bookkeeping block the service holds NO lock of
  // its own — every shared_ call manages the hierarchy leaf lock internally,
  // and the coalescer may block this thread while other sessions proceed.
  const u64 epoch = shared_.begin_step();

  const std::vector<BlockId> visible = bounds_.visible_blocks(camera);
  sr.visible_blocks = visible.size();
  for (BlockId id : visible) {
    const SharedHierarchy::FetchResult fr = shared_.fetch(id, epoch);
    sr.io_time += fr.seconds;
    if (fr.coalesced) ++sr.coalesced_hits;
    if (!fr.fast_hit) ++sr.fast_misses;
  }

  sr.render_time = config_.render_model.frame_time(visible.size());

  if (config_.app_aware) {
    sr.lookup_time = table_->lookup_time(config_.lookup_cost);
    const std::vector<BlockId>& predicted = table_->query(camera.position());

    u64 visible_bytes = 0;
    for (BlockId id : visible) visible_bytes += grid_.block_bytes(id);
    const u64 capacity = shared_.fast_capacity_bytes();
    u64 dram_budget = capacity > visible_bytes ? capacity - visible_bytes : 0;

    std::vector<BlockId> candidates;
    candidates.reserve(predicted.size());
    for (BlockId id : predicted) {
      if (importance_->entropy(id) <= config_.sigma_bits) continue;
      if (shared_.resident_fast(id)) continue;
      // analyze: allow(hot-path-alloc): per-step buffer, pre-reserved to the
      // prediction size the line above; it must stay local — step() runs
      // concurrently across sessions in this deliberately-unlocked region,
      // so a hoisted member scratch would race.
      candidates.push_back(id);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](BlockId a, BlockId b) {
                return importance_->entropy(a) > importance_->entropy(b);
              });
    for (BlockId id : candidates) {
      const u64 bytes = grid_.block_bytes(id);
      // DRAM-budget exhaustion ends the pass (Algorithm 1's rule)...
      if (bytes > dram_budget) break;
      // ...but blowing the session's fair share only sheds THIS block: a
      // smaller candidate may still fit the share, and demand fetches are
      // untouched either way.
      if (bytes > prefetch_share) {
        ++sr.prefetch_shed;
        continue;
      }
      const SharedHierarchy::PrefetchResult pr = shared_.prefetch(id, epoch);
      if (pr.suppressed) {
        ++sr.prefetch_suppressed;
        continue;  // in flight elsewhere: budget not consumed
      }
      dram_budget -= bytes;
      prefetch_share -= bytes;
      sr.prefetch_time += pr.seconds;
      ++sr.prefetched;
    }
    sr.total_time =
        sr.io_time + std::max(sr.render_time, sr.lookup_time + sr.prefetch_time);
  } else {
    sr.total_time = sr.io_time + sr.render_time;
  }

  shared_.end_step(epoch);

  ins_.steps->inc();
  ins_.demand_requests->inc(sr.visible_blocks);
  ins_.coalesced_hits->inc(sr.coalesced_hits);
  ins_.fast_misses->inc(sr.fast_misses);
  ins_.prefetched->inc(sr.prefetched);
  ins_.prefetch_shed->inc(sr.prefetch_shed);
  ins_.prefetch_suppressed->inc(sr.prefetch_suppressed);
  ins_.step_seconds->observe(sr.total_time);

  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(session);
    VIZ_REQUIRE(it != sessions_.end(), "session closed during its own step");
    SessionState& state = it->second;
    SessionSummary& sum = state.summary;
    sum.demand_requests += sr.visible_blocks;
    sum.fast_misses += sr.fast_misses;
    sum.coalesced_hits += sr.coalesced_hits;
    sum.prefetched += sr.prefetched;
    sum.prefetch_shed += sr.prefetch_shed;
    sum.prefetch_suppressed += sr.prefetch_suppressed;
    sum.sim_time += sr.total_time;

    // Per-session timeline lane (worker == SessionId) on the session's own
    // simulated clock, mirroring VizPipeline::run's span layout.
    const u32 lane = static_cast<u32>(session);
    const SimSeconds render_start = state.clock + sr.io_time;
    timeline_.record({StepEvent::Kind::kFetch, sr.step, lane, state.clock,
                      render_start, sr.visible_blocks});
    timeline_.record({StepEvent::Kind::kRender, sr.step, lane, render_start,
                      render_start + sr.render_time, 0});
    if (config_.app_aware) {
      const SimSeconds lookup_end = render_start + sr.lookup_time;
      timeline_.record({StepEvent::Kind::kLookup, sr.step, lane, render_start,
                        lookup_end, 0});
      if (sr.prefetched > 0 || sr.prefetch_time > 0.0) {
        timeline_.record({StepEvent::Kind::kPrefetch, sr.step, lane, lookup_end,
                          lookup_end + sr.prefetch_time, sr.prefetched});
      }
    }
    state.clock += sr.total_time;
  }
  return sr;
}

SessionSummary BlockService::close_session(SessionId session) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session);
  VIZ_REQUIRE(it != sessions_.end(), "close of a closed or unknown session");
  const SessionSummary summary = it->second.summary;
  sessions_.erase(it);
  ins_.closed->inc();
  ins_.active->set(static_cast<double>(sessions_.size()));
  return summary;
}

usize BlockService::active_sessions() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

StepTimeline BlockService::timeline() const {
  MutexLock lock(mutex_);
  return timeline_;
}

}  // namespace vizcache
