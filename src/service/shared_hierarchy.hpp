#pragma once

#include <set>
#include <string>

#include "service/request_coalescer.hpp"
#include "storage/hierarchy.hpp"
#include "util/annotated_mutex.hpp"

namespace vizcache {

/// Lock-disciplined façade putting ONE MemoryHierarchy behind real-thread
/// sessions. The hierarchy itself stays "thread-compatible, not thread-safe"
/// (block_cache.hpp); every touch of it here happens under mutex_, a leaf
/// lock per DESIGN.md — no code path holds it while sleeping, waiting, or
/// calling into the coalescer.
///
/// Two concerns are layered on top of the raw hierarchy:
///
/// *Per-session step protection.* The single-consumer pipelines protect a
/// step's working set by passing the step number as both timestamp and
/// eviction floor (Algorithm 1 line 16). With N sessions interleaving their
/// steps, session-local step numbers are incomparable, so sessions instead
/// draw *epochs* from one shared monotonic counter: begin_step() registers an
/// epoch in a multiset of in-progress steps, and every insert uses
/// protect_floor = min(active epochs). A block touched by ANY unfinished step
/// therefore has last_use >= floor and cannot be victimized until that step
/// ends — session A's eviction scan never steals what session B used this
/// step.
///
/// *Request coalescing.* A fast-level miss claims the block in the
/// RequestCoalescer before touching the slow path; concurrent sessions
/// demanding the same block block on the coalescer's CondVar (outside
/// mutex_), then re-probe — by then the leader's promotion has made the block
/// a fast hit, so K overlapping demands cost one backing read.
class SharedHierarchy {
 public:
  /// `leader_pace_seconds` holds a leader's in-flight marker open for a real
  /// wall-clock beat (sleeping outside every lock) before it performs the
  /// simulated read. The hierarchy's own time is simulated — a "read" under
  /// the lock is instantaneous on the wall clock — so without pacing the
  /// coalescing window is nearly unobservable. Benchmarks and demos set a
  /// couple of milliseconds to make coalesced reads measurable; tests that
  /// don't care leave it 0.
  explicit SharedHierarchy(MemoryHierarchy hierarchy,
                           double leader_pace_seconds = 0.0);

  /// Register the start of a session step; returns the step's epoch, which
  /// the session passes to fetch/prefetch until it calls end_step(epoch).
  /// Blocks the step touches are eviction-protected until then.
  u64 begin_step() EXCLUDES(mutex_);
  void end_step(u64 epoch) EXCLUDES(mutex_);

  struct FetchResult {
    SimSeconds seconds = 0.0;  ///< simulated serving time
    bool fast_hit = false;     ///< served by the fastest (DRAM) level
    bool coalesced = false;    ///< fast hit produced by waiting on another
                               ///< session's in-flight read (never set when
                               ///< this fetch paid its own backing read)
  };

  struct PrefetchResult {
    SimSeconds seconds = 0.0;
    bool performed = false;    ///< the hierarchy actually ran the prefetch
    bool suppressed = false;   ///< dropped: the block is already in flight
  };

  /// Demand-fetch `id` for the step with epoch `epoch`. Never performs a
  /// duplicate backing read: a miss while another session reads the same
  /// block waits for that read, and is reported as coalesced iff the wait
  /// is what served it (the post-wait probe hit fast memory).
  FetchResult fetch(BlockId id, u64 epoch) EXCLUDES(mutex_);

  /// Prefetch `id`. Prefetches never wait: if the block is claimed by
  /// another reader the request is suppressed (the data is on its way
  /// regardless — charging a second read would be the duplicate the
  /// coalescer exists to prevent).
  PrefetchResult prefetch(BlockId id, u64 epoch) EXCLUDES(mutex_);

  /// Pre-processing placement (no simulated time, no counters).
  void preload(BlockId id) EXCLUDES(mutex_);

  bool resident_fast(BlockId id) const EXCLUDES(mutex_);

  /// Capacity of the fastest (DRAM) level; immutable after construction, so
  /// readable without the lock.
  u64 fast_capacity_bytes() const { return fast_capacity_bytes_; }

  /// Snapshot of the shared hierarchy's counters (copied under the lock).
  HierarchyStats stats() const EXCLUDES(mutex_);
  void reset_stats() EXCLUDES(mutex_);

  /// Bind the wrapped hierarchy's instruments (see
  /// MemoryHierarchy::bind_metrics) and the coalescer's under
  /// `<prefix>.coalescer.*`. Setup-phase only: call before any other thread
  /// touches this object. The instruments live inside the guarded
  /// hierarchy, but registering them means calling into the registry's own
  /// internal lock — taking mutex_ across those calls would nest two
  /// mutexes, the exact shape the leaf-lock rule forbids.
  void bind_metrics(MetricsRegistry* registry,
                    const std::string& prefix = "service.hierarchy")
      EXCLUDES(mutex_);

  RequestCoalescer& coalescer() { return coalescer_; }
  const RequestCoalescer& coalescer() const { return coalescer_; }

 private:
  /// min(active epochs), clamped to `epoch` so a step that outlives its
  /// neighbours still satisfies BlockCache's floor <= step precondition.
  u64 protect_floor_locked(u64 epoch) const REQUIRES(mutex_);

  /// Wall-clock sleep of leader_pace_seconds_; called with no lock held.
  void pace() const EXCLUDES(mutex_);

  mutable Mutex mutex_;
  // Both read-only after construction, hence lock-free readable. Declared
  // before hier_ so fast_capacity_bytes_ can be read from the constructor
  // parameter before it is moved from.
  const double leader_pace_seconds_;
  const u64 fast_capacity_bytes_;
  MemoryHierarchy hier_ GUARDED_BY(mutex_);
  u64 next_epoch_ GUARDED_BY(mutex_) = 0;
  std::multiset<u64> active_epochs_ GUARDED_BY(mutex_);
  RequestCoalescer coalescer_;
};

}  // namespace vizcache
