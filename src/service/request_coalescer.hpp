#pragma once

#include <string>
#include <unordered_set>

#include "util/annotated_mutex.hpp"
#include "util/metrics.hpp"
#include "util/types.hpp"

namespace vizcache {

/// In-flight read table: the single deduplication point for every real-thread
/// block reader in the repo. When K threads demand the same block, exactly
/// one (the *leader*, the thread whose try_claim() returned true) performs
/// the backing read; the others either skip the duplicate read
/// (AsyncPrefetcher::request) or block on wait() until the leader's
/// complete() lands (SharedHierarchy::fetch — a *coalesced* read).
///
/// This generalizes the in-flight-marker logic that used to live inside
/// AsyncPrefetcher::get_blocking/request: ownership semantics are identical
/// (a claim is held by exactly one reader; only that reader releases it), and
/// the CondVar adds the blocking-waiter capability the multi-session block
/// service needs.
///
/// Thread-safety: every method may be called from any thread. mutex_ is a
/// leaf lock (never held while calling out; wait() releases it inside the
/// CondVar, which is the standard exception). The caller must never hold one
/// of its own locks across wait() — that would make the caller's lock
/// non-leaf and deadlock-prone (see DESIGN.md, "Locking discipline").
class RequestCoalescer {
 public:
  /// Try to become the leader for `id`. Returns true when the caller now
  /// owns the in-flight marker and MUST eventually call complete(id) —
  /// including on a failed read, else the block wedges un-claimable.
  /// Returns false when another reader holds it (duplicate suppressed).
  bool try_claim(BlockId id) EXCLUDES(mutex_);

  /// Release the marker of `id` and wake all waiters. Idempotent: completing
  /// a block that is not in flight is a no-op (e.g. a failure path running
  /// after the marker was already released).
  void complete(BlockId id) EXCLUDES(mutex_);

  /// Block until no read of `id` is in flight. Returns true when the call
  /// actually slept (a coalesced wait), false when the block was not in
  /// flight to begin with. Spurious-wakeup safe (predicate loop).
  bool wait(BlockId id) EXCLUDES(mutex_);

  bool in_flight(BlockId id) const EXCLUDES(mutex_);
  usize in_flight_count() const EXCLUDES(mutex_);

  struct Stats {
    u64 claims = 0;           ///< try_claim calls that became leader
    u64 suppressed = 0;       ///< try_claim calls that found a read in flight
    u64 completions = 0;      ///< markers released (non-no-op complete calls)
    u64 coalesced_waits = 0;  ///< wait() calls that actually blocked
  };
  Stats stats() const EXCLUDES(mutex_);

  /// Mirror every future stats increment into `registry` under
  /// `<prefix>.{claims,suppressed,completions,coalesced_waits}`. Call once
  /// before concurrent use (pointers are read without mutex_; the counters
  /// themselves are atomic); pass nullptr to detach. The registry must
  /// outlive the coalescer.
  void bind_metrics(MetricsRegistry* registry,
                    const std::string& prefix = "coalescer");

 private:
  /// Registry instruments mirroring stats_; all null until bind_metrics.
  struct BoundMetrics {
    MetricCounter* claims = nullptr;
    MetricCounter* suppressed = nullptr;
    MetricCounter* completions = nullptr;
    MetricCounter* coalesced_waits = nullptr;
  };

  mutable Mutex mutex_;
  CondVar cv_;
  std::unordered_set<BlockId> in_flight_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
  // analyze: allow(lock-unguarded-field): pointers set once in bind_metrics
  // during single-threaded setup; the counters they point at are atomic.
  BoundMetrics metrics_;
};

}  // namespace vizcache
