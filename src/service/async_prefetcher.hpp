#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "service/request_coalescer.hpp"
#include "util/annotated_mutex.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "volume/block_store.hpp"

namespace vizcache {

/// Real-thread prefetch engine used by the example applications: overlaps
/// block loading (from any BlockStore, e.g. disk bricks) with rendering on
/// the main thread — the live counterpart of the simulated overlap model in
/// VizPipeline. Payloads are cached in memory until evicted.
///
/// Thread-safety: every public method may be called from any thread. mutex_
/// is a leaf lock: it is never held across a BlockStore read, across a
/// ThreadPool call (submit/wait_idle take the pool's own lock — holding both
/// would create a lock-order edge; see DESIGN.md, "Locking discipline"), or
/// across a RequestCoalescer call (the coalescer's mutex is its own leaf).
/// BlockStore::read_block must itself be const-thread-safe, which all
/// in-repo stores are.
///
/// Read deduplication lives in the shared RequestCoalescer (one claim per
/// block in flight, owned by whoever claimed it). Demand reads deliberately
/// do NOT wait on a racing background read — an example app's render thread
/// must not block on a loader-pool read of unknowable age — so a demand read
/// racing a prefetch of the same block performs its own read and keeps the
/// incumbent payload (the multi-session service makes the opposite choice;
/// see SharedHierarchy::fetch).
class AsyncPrefetcher {
 public:
  using Payload = std::shared_ptr<const std::vector<float>>;

  /// `threads`: number of background loader threads.
  AsyncPrefetcher(const BlockStore& store, usize threads = 2);
  ~AsyncPrefetcher();

  /// Queue background loads for blocks not yet cached or in flight.
  void request(std::span<const BlockId> blocks, usize var = 0,
               usize timestep = 0) EXCLUDES(mutex_);

  /// Payload if already cached, nullptr otherwise (never blocks).
  Payload get_if_ready(BlockId id) const EXCLUDES(mutex_);

  /// Payload, loading synchronously on miss (counts a demand miss).
  Payload get_blocking(BlockId id, usize var = 0, usize timestep = 0)
      EXCLUDES(mutex_);

  /// Wait for all queued prefetches to land.
  void drain();

  /// Drop all cached payloads except `keep`.
  void evict_except(const std::unordered_set<BlockId>& keep) EXCLUDES(mutex_);

  usize cached_blocks() const EXCLUDES(mutex_);

  struct Stats {
    u64 demand_hits = 0;    ///< get_blocking served from cache
    u64 demand_misses = 0;  ///< get_blocking had to load synchronously
    u64 prefetched = 0;     ///< background loads completed
    u64 failures = 0;       ///< background loads that threw (I/O errors)
  };
  Stats stats() const EXCLUDES(mutex_);

  /// Mirror every future stats increment into `registry` under
  /// `<prefix>.{demand_hits,demand_misses,prefetched,failures}`. Call once
  /// before any loads are issued (the pointers are read without mutex_; the
  /// counters themselves are atomic); pass nullptr to detach. The registry
  /// must outlive the prefetcher.
  void bind_metrics(MetricsRegistry* registry,
                    const std::string& prefix = "prefetcher");

 private:
  void store_payload(BlockId id, std::vector<float> payload, bool prefetch)
      EXCLUDES(mutex_);
  void note_failure(BlockId id) EXCLUDES(mutex_);

  /// Registry instruments mirroring stats_; all null until bind_metrics.
  /// Written only by bind_metrics before concurrent use — see its contract.
  struct BoundMetrics {
    MetricCounter* demand_hits = nullptr;
    MetricCounter* demand_misses = nullptr;
    MetricCounter* prefetched = nullptr;
    MetricCounter* failures = nullptr;
  };

  const BlockStore& store_;
  mutable Mutex mutex_;
  std::unordered_map<BlockId, Payload> cache_ GUARDED_BY(mutex_);
  /// In-flight read table (self-synchronized; never touched under mutex_).
  RequestCoalescer coalescer_;
  Stats stats_ GUARDED_BY(mutex_);
  // analyze: allow(lock-unguarded-field): pointers set once in bind_metrics
  // before workers are submitted; the counters they point at are atomic.
  BoundMetrics metrics_;
  /// Declared last on purpose: the pool is destroyed (and its workers
  /// joined) before any state its tasks touch, so a forgotten drain can
  /// never become a use-after-free of cache_/mutex_.
  ThreadPool pool_;
};

}  // namespace vizcache
