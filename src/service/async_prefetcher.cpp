#include "service/async_prefetcher.hpp"

namespace vizcache {

AsyncPrefetcher::AsyncPrefetcher(const BlockStore& store, usize threads)
    : store_(store), pool_(threads) {}

AsyncPrefetcher::~AsyncPrefetcher() { pool_.wait_idle(); }

void AsyncPrefetcher::request(std::span<const BlockId> blocks, usize var,
                              usize timestep) {
  std::vector<BlockId> candidates;
  {
    MutexLock lock(mutex_);
    for (BlockId id : blocks) {
      if (cache_.count(id)) continue;
      candidates.push_back(id);
    }
  }
  // Claim and submit outside the critical section: try_claim takes the
  // coalescer's lock and submit() the pool's, and mutex_ must stay a leaf.
  // A candidate whose claim fails is already being read (by another
  // request() or a demand read) — the duplicate is suppressed.
  for (BlockId id : candidates) {
    if (!coalescer_.try_claim(id)) continue;
    // The cached check above is a snapshot: a read of this block may have
    // completed between it and the claim (store_payload publishes to the
    // cache BEFORE releasing the claim, so a successful claim means any
    // finished read is already visible here). Re-probe, or duplicate ids in
    // one batch would each re-read the block once the previous read lands.
    bool already_cached = false;
    {
      MutexLock lock(mutex_);
      already_cached = cache_.count(id) != 0;
    }
    if (already_cached) {
      coalescer_.complete(id);  // we own this claim; nothing was read
      continue;
    }
    pool_.submit([this, id, var, timestep] {
      // A failed background load must not wedge the block in the in-flight
      // table: record the failure and let a later demand read retry (and
      // surface the error synchronously if it persists).
      try {
        std::vector<float> payload = store_.read_block(id, var, timestep);
        store_payload(id, std::move(payload), /*prefetch=*/true);
      } catch (const std::exception&) {
        note_failure(id);
      }
    });
  }
}

AsyncPrefetcher::Payload AsyncPrefetcher::get_if_ready(BlockId id) const {
  MutexLock lock(mutex_);
  auto it = cache_.find(id);
  return it == cache_.end() ? nullptr : it->second;
}

AsyncPrefetcher::Payload AsyncPrefetcher::get_blocking(BlockId id, usize var,
                                                       usize timestep) {
  {
    MutexLock lock(mutex_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      ++stats_.demand_hits;
      if (metrics_.demand_hits) metrics_.demand_hits->inc();
      return it->second;
    }
    ++stats_.demand_misses;
    if (metrics_.demand_misses) metrics_.demand_misses->inc();
  }
  // Claim the block for the duration of the synchronous read so a concurrent
  // request() cannot launch a duplicate background read. The claim is owned:
  // if a background load already holds it, leave it alone — store_payload /
  // note_failure release it, not us, so a racing prefetch's bookkeeping
  // can't be clobbered from this path. Either way the demand read proceeds
  // (see the class comment: render threads never wait on loader threads).
  const bool claimed_here = coalescer_.try_claim(id);
  // Synchronous demand load, outside every lock (reads can take
  // milliseconds).
  Payload payload;
  try {
    // analyze: allow(hot-path-alloc): the payload allocation IS the demand
    // read's product, and the millisecond-scale device read it wraps
    // dominates it by orders of magnitude.
    payload = std::make_shared<const std::vector<float>>(
        store_.read_block(id, var, timestep));
  } catch (...) {
    // Release our claim on failure, else the block is wedged un-loadable.
    if (claimed_here) coalescer_.complete(id);
    // analyze: allow(hot-path-throw): rethrow after releasing the claim —
    // a store failure must keep propagating to the caller.
    throw;
  }
  Payload resident;
  {
    MutexLock lock(mutex_);
    // A racing prefetch of the same block may have landed first; keep the
    // incumbent. Never re-look-up after unlocking: a concurrent evict_except
    // could empty the cache between insert and return (a race the stress
    // suite caught as an unordered_map::at throw).
    // analyze: allow(hot-path-alloc): one map node per newly resident
    // block, bounded by evict_except — residency bookkeeping on the miss
    // path, not per-access work.
    auto [it, inserted] = cache_.emplace(id, std::move(payload));
    resident = it->second;
  }
  // Release only after the payload is visible in the cache, so anyone whose
  // claim was suppressed by ours finds the block on their next probe.
  if (claimed_here) coalescer_.complete(id);
  return resident;
}

void AsyncPrefetcher::drain() { pool_.wait_idle(); }

void AsyncPrefetcher::evict_except(const std::unordered_set<BlockId>& keep) {
  MutexLock lock(mutex_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (keep.contains(it->first)) {
      ++it;
    } else {
      it = cache_.erase(it);
    }
  }
}

usize AsyncPrefetcher::cached_blocks() const {
  MutexLock lock(mutex_);
  return cache_.size();
}

AsyncPrefetcher::Stats AsyncPrefetcher::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void AsyncPrefetcher::bind_metrics(MetricsRegistry* registry,
                                   const std::string& prefix) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.demand_hits = &registry->counter(prefix + ".demand_hits");
  metrics_.demand_misses = &registry->counter(prefix + ".demand_misses");
  metrics_.prefetched = &registry->counter(prefix + ".prefetched");
  metrics_.failures = &registry->counter(prefix + ".failures");
}

void AsyncPrefetcher::note_failure(BlockId id) {
  {
    MutexLock lock(mutex_);
    ++stats_.failures;
    if (metrics_.failures) metrics_.failures->inc();
  }
  coalescer_.complete(id);
}

void AsyncPrefetcher::store_payload(BlockId id, std::vector<float> payload,
                                    bool prefetch) {
  {
    MutexLock lock(mutex_);
    if (!cache_.count(id)) {
      cache_[id] =
          std::make_shared<const std::vector<float>>(std::move(payload));
    }
    if (prefetch) {
      ++stats_.prefetched;
      if (metrics_.prefetched) metrics_.prefetched->inc();
    }
  }
  coalescer_.complete(id);
}

}  // namespace vizcache
