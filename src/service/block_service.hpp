#pragma once

#include <optional>
#include <unordered_map>

#include "core/importance.hpp"
#include "core/visibility.hpp"
#include "core/visibility_table.hpp"
#include "render/render_model.hpp"
#include "service/shared_hierarchy.hpp"
#include "util/metrics.hpp"
#include "util/step_timeline.hpp"

namespace vizcache {

/// Identifies one open session; also its StepTimeline lane (StepEvent::worker).
using SessionId = u32;

/// Service-wide knobs.
struct ServiceConfig {
  /// Admission control, part 1: open_session() beyond this cap is rejected
  /// (returns nullopt) instead of degrading every admitted session.
  usize max_sessions = 8;

  /// Admission control, part 2: aggregate prefetch budget per step, in
  /// bytes, split evenly across the sessions active at that moment (the
  /// fairness policy — every session gets capacity/N, so a prefetch-hungry
  /// session cannot starve the others). Prefetch beyond a session's share is
  /// shed; demand fetches are NEVER shed. 0 means unbounded.
  u64 aggregate_prefetch_budget_bytes = 0;

  /// Run sessions application-aware (Algorithm 1: T_visible prediction +
  /// entropy-filtered prefetch overlapped with render). When false, sessions
  /// are demand-only baselines.
  bool app_aware = true;

  /// Preload important blocks (entropy > sigma, best first) into the shared
  /// fast level at construction — the service-wide analogue of Algorithm 1
  /// line 7, done once because the cache is shared.
  bool preload_important = false;

  double sigma_bits = 0.0;          ///< entropy threshold for preload/prefetch
  RenderTimeModel render_model = gpu_render_model();
  LookupCostModel lookup_cost;

  /// Wall-clock pacing of coalescer leaders (see SharedHierarchy).
  double leader_pace_seconds = 0.0;
};

/// One session step's outcome (the service-side mirror of StepResult).
struct SessionStepResult {
  u64 step = 0;                  ///< session-local ordinal, 1-based
  usize visible_blocks = 0;
  usize fast_misses = 0;         ///< demand fetches that missed fast memory
  usize coalesced_hits = 0;      ///< demand fetches served by waiting on
                                 ///< another session's in-flight read
  usize prefetched = 0;
  usize prefetch_shed = 0;       ///< dropped by the admission controller
  usize prefetch_suppressed = 0; ///< dropped: block already in flight
  SimSeconds io_time = 0.0;
  SimSeconds lookup_time = 0.0;
  SimSeconds prefetch_time = 0.0;
  SimSeconds render_time = 0.0;
  SimSeconds total_time = 0.0;   ///< io + max(render, lookup + prefetch)
};

/// Whole-of-life aggregate returned by close_session().
struct SessionSummary {
  SessionId id = 0;
  u64 steps = 0;
  u64 demand_requests = 0;
  u64 fast_misses = 0;
  u64 coalesced_hits = 0;
  u64 prefetched = 0;
  u64 prefetch_shed = 0;
  u64 prefetch_suppressed = 0;
  SimSeconds sim_time = 0.0;     ///< sum of the session's step total times
};

/// Multi-session block service: N concurrent viewers, ONE shared
/// MemoryHierarchy. Each step runs the paper's per-step logic (demand-fetch
/// the visible set, render, predict + prefetch) against the SharedHierarchy,
/// which adds cross-session eviction protection and read coalescing.
///
/// Thread-safety: open_session/step/close_session may be called from any
/// thread. mutex_ guards only the service's own bookkeeping (session map,
/// timeline) and is a leaf lock: it is NEVER held across a SharedHierarchy
/// call, so the two leaf locks are acquired strictly sequentially — the
/// DESIGN.md no-nesting rule holds through the whole stack. The one rule the
/// CALLER must keep: don't close a session while one of its steps is still
/// executing on another thread (sessions are single-viewer by nature).
class BlockService {
 public:
  /// `grid`, `table` and `importance` must outlive the service. table /
  /// importance may be null only when config.app_aware is false.
  BlockService(const BlockGrid& grid, MemoryHierarchy hierarchy,
               ServiceConfig config, const VisibilityTable* table = nullptr,
               const ImportanceTable* importance = nullptr);

  /// Admit a session, or reject (nullopt) when max_sessions are open. Never
  /// hands out an id that is still open, even after the u32 counter wraps.
  std::optional<SessionId> open_session() EXCLUDES(mutex_);

  /// Test hook: reposition the id cursor (e.g. next to the u32 wrap) so the
  /// wraparound path is exercisable without 2^32 opens.
  void set_next_session_id(SessionId next) EXCLUDES(mutex_);

  /// One demand fetch outside a step — the network front-end's FETCH verb.
  struct BlockFetch {
    SharedHierarchy::FetchResult fetch;
    u64 bytes = 0;             ///< the block's payload size
  };

  /// Demand-fetch a single block for `session`, epoch-bracketed like a step
  /// and counted into the session summary. Thread-safe across sessions.
  BlockFetch fetch_block(SessionId session, BlockId id) EXCLUDES(mutex_);

  /// Serve one step of `session` at `camera`. Thread-safe across sessions.
  SessionStepResult step(SessionId session, const Camera& camera)
      EXCLUDES(mutex_);

  /// Retire a session and return its life aggregate.
  SessionSummary close_session(SessionId session) EXCLUDES(mutex_);

  usize active_sessions() const EXCLUDES(mutex_);

  SharedHierarchy& hierarchy() { return shared_; }
  const SharedHierarchy& hierarchy() const { return shared_; }
  const BlockGrid& grid() const { return grid_; }

  /// The service's registry: service.* instruments plus the shared
  /// hierarchy's and coalescer's (bound at construction).
  MetricsRegistry& metrics() { return metrics_; }

  /// Copy of the per-session-lane timeline (StepEvent::worker == SessionId).
  StepTimeline timeline() const EXCLUDES(mutex_);

 private:
  struct SessionState {
    SessionSummary summary;    ///< running aggregate, id pre-filled
    SimSeconds clock = 0.0;    ///< session-local simulated clock
  };

  /// Registry instruments cached at construction (all owned by metrics_).
  struct Instruments {
    MetricCounter* opened = nullptr;
    MetricCounter* closed = nullptr;
    MetricCounter* rejected = nullptr;
    MetricGauge* active = nullptr;
    MetricCounter* steps = nullptr;
    MetricCounter* demand_requests = nullptr;
    MetricCounter* coalesced_hits = nullptr;
    MetricCounter* fast_misses = nullptr;
    MetricCounter* prefetched = nullptr;
    MetricCounter* prefetch_shed = nullptr;
    MetricCounter* prefetch_suppressed = nullptr;
    MetricHistogram* step_seconds = nullptr;
  };

  const BlockGrid& grid_;
  const ServiceConfig config_;
  const VisibilityTable* const table_;
  const ImportanceTable* const importance_;
  const BlockBoundsIndex bounds_;
  MetricsRegistry metrics_;
  SharedHierarchy shared_;

  mutable Mutex mutex_;
  std::unordered_map<SessionId, SessionState> sessions_ GUARDED_BY(mutex_);
  SessionId next_session_ GUARDED_BY(mutex_) = 1;
  StepTimeline timeline_ GUARDED_BY(mutex_);
  // analyze: allow(lock-unguarded-field): pointers set once in the
  // constructor, before any session thread exists; counters are atomic.
  Instruments ins_;
};

}  // namespace vizcache
