#include "service/request_coalescer.hpp"

namespace vizcache {

bool RequestCoalescer::try_claim(BlockId id) {
  MutexLock lock(mutex_);
  if (!in_flight_.insert(id).second) {
    ++stats_.suppressed;
    if (metrics_.suppressed) metrics_.suppressed->inc();
    return false;
  }
  ++stats_.claims;
  if (metrics_.claims) metrics_.claims->inc();
  return true;
}

void RequestCoalescer::complete(BlockId id) {
  {
    MutexLock lock(mutex_);
    if (in_flight_.erase(id) == 0) return;
    ++stats_.completions;
    if (metrics_.completions) metrics_.completions->inc();
  }
  // Notify outside the lock so woken waiters don't immediately block on it.
  cv_.notify_all();
}

bool RequestCoalescer::wait(BlockId id) {
  MutexLock lock(mutex_);
  if (in_flight_.count(id) == 0) return false;
  ++stats_.coalesced_waits;
  if (metrics_.coalesced_waits) metrics_.coalesced_waits->inc();
  // analyze: allow(hot-path-block): coalescing IS the wait — the follower
  // parks until the leader's in-flight read lands instead of issuing a
  // duplicate device read (the paper's shared-read optimization).
  while (in_flight_.count(id) != 0) cv_.wait(mutex_);
  return true;
}

bool RequestCoalescer::in_flight(BlockId id) const {
  MutexLock lock(mutex_);
  return in_flight_.count(id) != 0;
}

usize RequestCoalescer::in_flight_count() const {
  MutexLock lock(mutex_);
  return in_flight_.size();
}

RequestCoalescer::Stats RequestCoalescer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void RequestCoalescer::bind_metrics(MetricsRegistry* registry,
                                    const std::string& prefix) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.claims = &registry->counter(prefix + ".claims");
  metrics_.suppressed = &registry->counter(prefix + ".suppressed");
  metrics_.completions = &registry->counter(prefix + ".completions");
  metrics_.coalesced_waits = &registry->counter(prefix + ".coalesced_waits");
}

}  // namespace vizcache
