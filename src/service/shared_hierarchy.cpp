#include "service/shared_hierarchy.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace vizcache {

SharedHierarchy::SharedHierarchy(MemoryHierarchy hierarchy,
                                 double leader_pace_seconds)
    : leader_pace_seconds_(leader_pace_seconds),
      fast_capacity_bytes_(hierarchy.cache(0).capacity_bytes()),
      hier_(std::move(hierarchy)) {
  VIZ_REQUIRE(leader_pace_seconds_ >= 0.0, "pace must be non-negative");
}

u64 SharedHierarchy::begin_step() {
  MutexLock lock(mutex_);
  const u64 epoch = ++next_epoch_;
  active_epochs_.insert(epoch);
  return epoch;
}

void SharedHierarchy::end_step(u64 epoch) {
  MutexLock lock(mutex_);
  auto it = active_epochs_.find(epoch);
  VIZ_REQUIRE(it != active_epochs_.end(), "end_step of an unregistered epoch");
  active_epochs_.erase(it);  // erase one instance, not every equal key
}

u64 SharedHierarchy::protect_floor_locked(u64 epoch) const {
  if (active_epochs_.empty()) return epoch;
  return std::min(epoch, *active_epochs_.begin());
}

void SharedHierarchy::pace() const {
  if (leader_pace_seconds_ <= 0.0) return;
  // analyze: allow(hot-path-block): deliberate wall-clock throttle of
  // coalescer leaders (ServiceConfig.leader_pace_seconds); off by default,
  // and only ever reached by the session that already owns the slow read.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(leader_pace_seconds_));
}

SharedHierarchy::FetchResult SharedHierarchy::fetch(BlockId id, u64 epoch) {
  FetchResult result;
  bool waited = false;
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (hier_.resident_fast(id)) {
        result.seconds = hier_.fetch(id, epoch, protect_floor_locked(epoch));
        result.fast_hit = true;
        // A coalesced hit is only the case where waiting on another
        // session's read is what made this probe fast. A waiter whose
        // leader landed nothing (block evicted again before the re-probe)
        // pays its own slow read below and must NOT count as coalesced.
        result.coalesced = waited;
        return result;
      }
    }
    // Fast-level miss. Claim the slow read, or wait for whoever holds it.
    if (coalescer_.try_claim(id)) {
      pace();  // keep the in-flight window open on the wall clock
      {
        MutexLock lock(mutex_);
        result.seconds = hier_.fetch(id, epoch, protect_floor_locked(epoch));
      }
      coalescer_.complete(id);
      return result;
    }
    // Another session's read is in flight: wait (outside mutex_, on the
    // coalescer's own leaf lock) and re-probe. Usually the leader's
    // promotion makes the next probe a fast hit; if the block was already
    // evicted again, the loop claims it afresh.
    if (coalescer_.wait(id)) waited = true;
  }
}

SharedHierarchy::PrefetchResult SharedHierarchy::prefetch(BlockId id,
                                                          u64 epoch) {
  PrefetchResult result;
  {
    MutexLock lock(mutex_);
    if (hier_.resident_fast(id)) {
      // Already fastest-resident: the hierarchy charges the request and
      // refreshes the block's protection timestamp at zero simulated cost.
      result.seconds = hier_.prefetch(id, epoch, protect_floor_locked(epoch));
      result.performed = true;
      return result;
    }
  }
  if (!coalescer_.try_claim(id)) {
    result.suppressed = true;
    return result;
  }
  pace();
  {
    MutexLock lock(mutex_);
    result.seconds = hier_.prefetch(id, epoch, protect_floor_locked(epoch));
  }
  coalescer_.complete(id);
  result.performed = true;
  return result;
}

void SharedHierarchy::preload(BlockId id) {
  MutexLock lock(mutex_);
  hier_.preload(id);
}

bool SharedHierarchy::resident_fast(BlockId id) const {
  MutexLock lock(mutex_);
  return hier_.resident_fast(id);
}

HierarchyStats SharedHierarchy::stats() const {
  MutexLock lock(mutex_);
  return hier_.stats();
}

void SharedHierarchy::reset_stats() {
  MutexLock lock(mutex_);
  hier_.reset_stats();
}

// Setup-phase: runs before the object is shared (BlockService constructor),
// so hier_ is touched without mutex_. Holding mutex_ here would span the
// registry's internal lock for every counter/gauge/histogram registration —
// a nested-lock path the leaf-lock rule (DESIGN.md) forbids.
void SharedHierarchy::bind_metrics(MetricsRegistry* registry,
                                   const std::string& prefix)
    NO_THREAD_SAFETY_ANALYSIS {
  hier_.bind_metrics(registry, prefix);
  coalescer_.bind_metrics(registry, prefix + ".coalescer");
}

}  // namespace vizcache
