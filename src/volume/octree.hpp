#pragma once

#include <atomic>
#include <vector>

#include "geom/frustum.hpp"
#include "volume/block_grid.hpp"
#include "volume/block_metadata.hpp"

namespace vizcache {

/// Min/max octree over a block grid — the hierarchical index of the
/// out-of-core literature the paper builds on (Ueng et al.'s octree
/// partition, Sutton & Hansen's branch-on-need T-BON, Section II). Interior
/// nodes carry the bounding box, a bounding sphere for conservative view
/// culling, and the min/max value interval of their subtree, so both
/// view-dependent (frustum) and data-dependent (value range) queries prune
/// whole subtrees instead of scanning every block.
///
/// Thread-safety: const-thread-safe. The tree is immutable after build(), so
/// any number of threads may query concurrently; the only mutable member is
/// the atomic last_visits_ diagnostics counter. Mutation (move-assign) needs
/// external synchronization against concurrent queries.
class BlockOctree {
 public:
  /// Build over `grid`; `metadata` (optional) supplies per-block min/max of
  /// variable `var` for range queries. Branch-on-need: child octants that
  /// contain no blocks are not allocated.
  static BlockOctree build(const BlockGrid& grid,
                           const BlockMetadataTable* metadata = nullptr,
                           usize var = 0);

  BlockOctree() = default;
  // Moves must be spelled out because of the atomic diagnostics counter.
  BlockOctree(BlockOctree&& o) noexcept
      : nodes_(std::move(o.nodes_)),
        has_values_(o.has_values_),
        leaves_(o.leaves_),
        height_(o.height_),
        last_visits_(o.last_visits_.load()) {}
  BlockOctree& operator=(BlockOctree&& o) noexcept {
    nodes_ = std::move(o.nodes_);
    has_values_ = o.has_values_;
    leaves_ = o.leaves_;
    height_ = o.height_;
    last_visits_.store(o.last_visits_.load());
    return *this;
  }

  usize node_count() const { return nodes_.size(); }
  usize leaf_count() const { return leaves_; }
  usize height() const { return height_; }

  /// Blocks whose AABB intersects the view cone; identical result to the
  /// exhaustive per-block scan (BlockBoundsIndex::visible_blocks), ids
  /// ascending.
  std::vector<BlockId> query_frustum(const ConeFrustum& frustum) const;

  /// Blocks intersecting the cone whose value interval intersects
  /// [lo, hi]. Requires metadata at build time.
  std::vector<BlockId> query_frustum_range(const ConeFrustum& frustum,
                                           float lo, float hi) const;

  /// Blocks whose value interval intersects [lo, hi] (no view test).
  std::vector<BlockId> query_range(float lo, float hi) const;

  /// Number of node visits of the last query (diagnostics: shows the
  /// pruning factor vs block_count scans). Atomic so concurrent queries on
  /// a shared tree stay race-free; concurrent callers see a mixed count.
  usize last_visits() const { return last_visits_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    AABB bounds;
    Vec3 sphere_center;
    double sphere_radius = 0.0;
    float min_value = 0.0f;
    float max_value = 0.0f;
    i64 children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    BlockId block = kInvalidBlock;  ///< leaf payload
    bool leaf = false;
  };

  i64 build_node(const BlockGrid& grid, const BlockMetadataTable* metadata,
                 usize var, usize x0, usize y0, usize z0, usize x1, usize y1,
                 usize z1, usize depth);

  template <typename NodeFilter, typename LeafFilter>
  void traverse(i64 node, const NodeFilter& node_ok, const LeafFilter& leaf_ok,
                std::vector<BlockId>& out, usize& visits) const;

  std::vector<Node> nodes_;
  bool has_values_ = false;
  usize leaves_ = 0;
  usize height_ = 0;
  mutable std::atomic<usize> last_visits_{0};
};

}  // namespace vizcache
