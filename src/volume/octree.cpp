#include "volume/octree.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace vizcache {

BlockOctree BlockOctree::build(const BlockGrid& grid,
                               const BlockMetadataTable* metadata, usize var) {
  if (metadata) {
    VIZ_REQUIRE(metadata->block_count() == grid.block_count(),
                "metadata/grid block count mismatch");
    VIZ_REQUIRE(var < metadata->variable_count(), "variable out of range");
  }
  BlockOctree tree;
  tree.has_values_ = metadata != nullptr;
  const Dims3& g = grid.grid_dims();
  tree.nodes_.reserve(grid.block_count() * 2);
  tree.build_node(grid, metadata, var, 0, 0, 0, g.x, g.y, g.z, 1);
  return tree;
}

i64 BlockOctree::build_node(const BlockGrid& grid,
                            const BlockMetadataTable* metadata, usize var,
                            usize x0, usize y0, usize z0, usize x1, usize y1,
                            usize z1, usize depth) {
  if (x0 >= x1 || y0 >= y1 || z0 >= z1) return -1;  // empty octant
  height_ = std::max(height_, depth);

  const i64 index = static_cast<i64>(nodes_.size());
  nodes_.emplace_back();

  if (x1 - x0 == 1 && y1 - y0 == 1 && z1 - z0 == 1) {
    Node& leaf = nodes_.back();
    leaf.leaf = true;
    leaf.block = grid.id_of({x0, y0, z0});
    leaf.bounds = grid.block_bounds(leaf.block);
    leaf.sphere_center = leaf.bounds.center();
    leaf.sphere_radius = leaf.bounds.diagonal() * 0.5;
    if (metadata) {
      const auto& e = metadata->entry(leaf.block, var);
      leaf.min_value = e.min;
      leaf.max_value = e.max;
    }
    ++leaves_;
    return index;
  }

  // Split each axis at its midpoint (branch-on-need: degenerate halves
  // simply produce no child).
  usize xm = x0 + std::max<usize>(1, (x1 - x0) / 2);
  usize ym = y0 + std::max<usize>(1, (y1 - y0) / 2);
  usize zm = z0 + std::max<usize>(1, (z1 - z0) / 2);
  if (x1 - x0 == 1) xm = x1;
  if (y1 - y0 == 1) ym = y1;
  if (z1 - z0 == 1) zm = z1;

  const usize xs[3] = {x0, xm, x1};
  const usize ys[3] = {y0, ym, y1};
  const usize zs[3] = {z0, zm, z1};

  AABB bounds;
  bool first = true;
  float mn = std::numeric_limits<float>::infinity();
  float mx = -std::numeric_limits<float>::infinity();
  usize child_slot = 0;
  for (usize cz = 0; cz < 2; ++cz) {
    for (usize cy = 0; cy < 2; ++cy) {
      for (usize cx = 0; cx < 2; ++cx) {
        i64 child = build_node(grid, metadata, var, xs[cx], ys[cy], zs[cz],
                               xs[cx + 1], ys[cy + 1], zs[cz + 1], depth + 1);
        nodes_[static_cast<usize>(index)].children[child_slot++] = child;
        if (child >= 0) {
          const Node& c = nodes_[static_cast<usize>(child)];
          bounds = first ? c.bounds : bounds.united(c.bounds);
          first = false;
          mn = std::min(mn, c.min_value);
          mx = std::max(mx, c.max_value);
        }
      }
    }
  }
  VIZ_CHECK(!first, "interior octree node without children");

  Node& node = nodes_[static_cast<usize>(index)];
  node.bounds = bounds;
  node.sphere_center = bounds.center();
  node.sphere_radius = bounds.diagonal() * 0.5;
  node.min_value = mn;
  node.max_value = mx;
  return index;
}

template <typename NodeFilter, typename LeafFilter>
void BlockOctree::traverse(i64 node, const NodeFilter& node_ok,
                           const LeafFilter& leaf_ok,
                           std::vector<BlockId>& out, usize& visits) const {
  if (node < 0) return;
  ++visits;
  const Node& n = nodes_[static_cast<usize>(node)];
  if (!node_ok(n)) return;
  if (n.leaf) {
    // analyze: allow(hot-path-alloc): the frustum collector grows once per
    // visible leaf per frame (not per pixel); the caller owns sizing and
    // amortization of the returned set.
    if (leaf_ok(n)) out.push_back(n.block);
    return;
  }
  for (i64 child : n.children) {
    traverse(child, node_ok, leaf_ok, out, visits);
  }
}

std::vector<BlockId> BlockOctree::query_frustum(
    const ConeFrustum& frustum) const {
  std::vector<BlockId> out;
  if (nodes_.empty()) return out;
  auto node_ok = [&](const Node& n) {
    // Conservative sphere cull for interior pruning.
    return frustum.may_intersect_sphere(n.sphere_center, n.sphere_radius);
  };
  auto leaf_ok = [&](const Node& n) {
    // Exact per-block test so results match the exhaustive scan.
    return frustum.intersects_block(n.bounds);
  };
  usize visits = 0;
  traverse(0, node_ok, leaf_ok, out, visits);
  last_visits_.store(visits, std::memory_order_relaxed);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> BlockOctree::query_frustum_range(
    const ConeFrustum& frustum, float lo, float hi) const {
  VIZ_REQUIRE(has_values_, "octree built without metadata");
  VIZ_REQUIRE(lo <= hi, "inverted value range");
  std::vector<BlockId> out;
  if (nodes_.empty()) return out;
  auto node_ok = [&](const Node& n) {
    if (n.min_value > hi || n.max_value < lo) return false;
    return frustum.may_intersect_sphere(n.sphere_center, n.sphere_radius);
  };
  auto leaf_ok = [&](const Node& n) { return frustum.intersects_block(n.bounds); };
  usize visits = 0;
  traverse(0, node_ok, leaf_ok, out, visits);
  last_visits_.store(visits, std::memory_order_relaxed);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> BlockOctree::query_range(float lo, float hi) const {
  VIZ_REQUIRE(has_values_, "octree built without metadata");
  VIZ_REQUIRE(lo <= hi, "inverted value range");
  std::vector<BlockId> out;
  if (nodes_.empty()) return out;
  auto node_ok = [&](const Node& n) {
    return n.min_value <= hi && n.max_value >= lo;
  };
  auto leaf_ok = [&](const Node&) { return true; };
  usize visits = 0;
  traverse(0, node_ok, leaf_ok, out, visits);
  last_visits_.store(visits, std::memory_order_relaxed);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vizcache
