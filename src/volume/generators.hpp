#pragma once

#include <functional>
#include <memory>

#include "geom/vec3.hpp"
#include "volume/field.hpp"
#include "volume/volume_desc.hpp"

namespace vizcache {

/// Analytic voxel function: value of `var` at `timestep` at a position in the
/// normalized [-1, 1]^3 frame. All synthetic datasets are defined this way so
/// blocks can be materialized lazily without holding the full volume.
using VoxelFunction =
    std::function<float(const Vec3& pos, usize var, usize timestep)>;

/// A procedurally-defined dataset: metadata plus the voxel function.
struct SyntheticVolume {
  VolumeDesc desc;
  VoxelFunction fn;
};

/// `3d_ball` (Table I): a 3D ball with continuous intensity changes inside —
/// a smooth radial falloff modulated by concentric shells.
SyntheticVolume make_ball_volume(Dims3 dims, u64 seed = 7);

/// Combustion-like scalar field standing in for `lifted_mix_frac` /
/// `lifted_rr`: a lifted-jet mixture-fraction sheet (sigmoid across a
/// sheared jet boundary) with downstream-growing turbulence. Ambient regions
/// are near-constant (low entropy); the flame sheet has steep gradients
/// (high entropy) — the structure Observation 2 exploits.
SyntheticVolume make_flame_volume(const std::string& name, Dims3 dims,
                                  u64 seed = 11);

/// Climate-like multivariate, time-varying dataset standing in for the
/// paper's `climate` set: variable 0 ~ water-vapor mixing ratio (QVAPOR),
/// variable 1 ~ wind magnitude around a moving typhoon vortex, variable 2 ~
/// smoke/PM10 plume, variable 3 ~ temperature; further variables are
/// correlated mixtures of these plus noise, mirroring the 151-variable
/// correlation analytics of Fig. 3.
SyntheticVolume make_climate_volume(Dims3 dims, usize variables,
                                    usize timesteps, u64 seed = 13);

/// Plain fBm turbulence (uniformly high entropy everywhere) — adversarial
/// input for the importance heuristic, used in ablations.
SyntheticVolume make_turbulence_volume(Dims3 dims, u64 seed = 17);

/// Synthetic 3-component flow field (variables 0/1/2 = u/v/w): a vertical
/// vortex column plus an axial jet and mild turbulence — the velocity data
/// for the out-of-core streamline workload (paper Section II, Ueng et al.).
/// Velocities vanish smoothly toward the volume boundary so streamlines
/// terminate cleanly.
SyntheticVolume make_flow_volume(Dims3 dims, u64 seed = 29);

/// Materialize one variable/timestep of a synthetic volume as a dense field.
Field3D rasterize(const SyntheticVolume& vol, usize var = 0, usize timestep = 0);

}  // namespace vizcache
