#include "volume/mipmap.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

Field3D downsample_field(const Field3D& src) {
  const Dims3& d = src.dims();
  Dims3 out_dims{std::max<usize>(1, (d.x + 1) / 2),
                 std::max<usize>(1, (d.y + 1) / 2),
                 std::max<usize>(1, (d.z + 1) / 2)};
  Field3D out(out_dims);
  for (usize z = 0; z < out_dims.z; ++z) {
    for (usize y = 0; y < out_dims.y; ++y) {
      for (usize x = 0; x < out_dims.x; ++x) {
        double sum = 0.0;
        usize count = 0;
        for (usize dz = 0; dz < 2; ++dz) {
          usize sz = z * 2 + dz;
          if (sz >= d.z) continue;
          for (usize dy = 0; dy < 2; ++dy) {
            usize sy = y * 2 + dy;
            if (sy >= d.y) continue;
            for (usize dx = 0; dx < 2; ++dx) {
              usize sx = x * 2 + dx;
              if (sx >= d.x) continue;
              sum += static_cast<double>(src.at(sx, sy, sz));
              ++count;
            }
          }
        }
        out.at(x, y, z) = static_cast<float>(sum / static_cast<double>(count));
      }
    }
  }
  return out;
}

MipPyramid MipPyramid::build(Field3D level0, Dims3 block_dims, usize levels) {
  VIZ_REQUIRE(levels >= 1, "pyramid needs at least one level");
  MipPyramid p;
  p.fields_.push_back(std::move(level0));
  while (p.fields_.size() < levels) {
    const Dims3& d = p.fields_.back().dims();
    if (d.x == 1 && d.y == 1 && d.z == 1) break;
    p.fields_.push_back(downsample_field(p.fields_.back()));
  }
  BlockId offset = 0;
  for (const Field3D& f : p.fields_) {
    // Clip block dims to the level extents (coarse levels may be smaller
    // than one nominal block).
    Dims3 bd{std::min(block_dims.x, f.dims().x),
             std::min(block_dims.y, f.dims().y),
             std::min(block_dims.z, f.dims().z)};
    p.stores_.push_back(std::make_unique<MemoryBlockStore>(f, bd));
    p.offsets_.push_back(offset);
    offset += static_cast<BlockId>(p.stores_.back()->grid().block_count());
  }
  p.offsets_.push_back(offset);  // sentinel: total key count
  return p;
}

const Field3D& MipPyramid::field(usize level) const {
  VIZ_REQUIRE(level < fields_.size(), "level out of range");
  return fields_[level];
}

const BlockGrid& MipPyramid::grid(usize level) const {
  VIZ_REQUIRE(level < stores_.size(), "level out of range");
  return stores_[level]->grid();
}

const BlockStore& MipPyramid::store(usize level) const {
  VIZ_REQUIRE(level < stores_.size(), "level out of range");
  return *stores_[level];
}

u64 MipPyramid::level_bytes(usize level) const {
  return field(level).voxels() * 4;
}

u64 MipPyramid::total_bytes() const {
  u64 total = 0;
  for (usize l = 0; l < level_count(); ++l) total += level_bytes(l);
  return total;
}

BlockId MipPyramid::key_offset(usize level) const {
  VIZ_REQUIRE(level < level_count(), "level out of range");
  return offsets_[level];
}

BlockId MipPyramid::pack_key(usize level, BlockId id) const {
  VIZ_REQUIRE(id < grid(level).block_count(), "block id out of range");
  return offsets_[level] + id;
}

usize MipPyramid::level_of_key(BlockId key) const {
  VIZ_REQUIRE(key < offsets_.back(), "key out of range");
  usize level = 0;
  while (key >= offsets_[level + 1]) ++level;
  return level;
}

BlockId MipPyramid::id_of_key(BlockId key) const {
  return key - offsets_[level_of_key(key)];
}

usize MipPyramid::total_keys() const { return offsets_.back(); }

u64 MipPyramid::key_bytes(BlockId key) const {
  usize level = level_of_key(key);
  return grid(level).block_bytes(key - offsets_[level]);
}

}  // namespace vizcache
