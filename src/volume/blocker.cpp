#include "volume/blocker.hpp"

#include "util/error.hpp"

namespace vizcache {

std::vector<float> extract_block(const Field3D& field, const BlockGrid& grid,
                                 BlockId id) {
  VIZ_REQUIRE(field.dims() == grid.volume_dims(), "field/grid dims mismatch");
  Dims3 o = grid.block_voxel_origin(id);
  Dims3 e = grid.block_voxel_extent(id);
  std::vector<float> out;
  out.reserve(e.voxels());
  for (usize z = 0; z < e.z; ++z)
    for (usize y = 0; y < e.y; ++y)
      for (usize x = 0; x < e.x; ++x)
        out.push_back(field.at(o.x + x, o.y + y, o.z + z));
  return out;
}

void insert_block(Field3D& field, const BlockGrid& grid, BlockId id,
                  const std::vector<float>& payload) {
  VIZ_REQUIRE(field.dims() == grid.volume_dims(), "field/grid dims mismatch");
  Dims3 o = grid.block_voxel_origin(id);
  Dims3 e = grid.block_voxel_extent(id);
  VIZ_REQUIRE(payload.size() == e.voxels(), "payload size mismatch");
  usize i = 0;
  for (usize z = 0; z < e.z; ++z)
    for (usize y = 0; y < e.y; ++y)
      for (usize x = 0; x < e.x; ++x)
        field.at(o.x + x, o.y + y, o.z + z) = payload[i++];
}

}  // namespace vizcache
