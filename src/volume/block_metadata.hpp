#pragma once

#include <string>
#include <vector>

#include "volume/block_store.hpp"

namespace vizcache {

/// Per-block, per-variable summary statistics (min/max/mean). This is the
/// classic min-max block-culling index used by query-based visualization:
/// an iso-surface at value v, or a range query [lo, hi], can only pass
/// through blocks whose value interval intersects it, so all other blocks
/// can be skipped without reading them (paper Section III-A's
/// data-dependent operations, Fig. 1 d/e).
class BlockMetadataTable {
 public:
  struct Entry {
    float min = 0.0f;
    float max = 0.0f;
    float mean = 0.0f;
  };

  /// Scan every block of every requested variable once at `timestep`.
  /// `variables` == 0 means all variables of the store.
  static BlockMetadataTable build(const BlockStore& store, usize variables = 0,
                                  usize timestep = 0);

  usize block_count() const { return blocks_; }
  usize variable_count() const { return variables_; }

  const Entry& entry(BlockId id, usize var = 0) const;

  /// Does the block's value interval for `var` intersect [lo, hi]?
  bool intersects_range(BlockId id, usize var, float lo, float hi) const;

  /// All blocks whose interval for `var` intersects [lo, hi], ascending.
  std::vector<BlockId> blocks_in_range(usize var, float lo, float hi) const;

  /// Global value range of a variable across all blocks.
  std::pair<float, float> variable_range(usize var) const;

  /// Binary serialization (pre-processing artifact, like the two tables).
  void save(const std::string& path) const;
  static BlockMetadataTable load(const std::string& path);

 private:
  usize blocks_ = 0;
  usize variables_ = 0;
  std::vector<Entry> entries_;  ///< var-major: entries_[var * blocks_ + id]
};

}  // namespace vizcache
