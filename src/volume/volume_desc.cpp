#include "volume/volume_desc.hpp"

#include <algorithm>
#include <sstream>

namespace vizcache {

usize Dims3::max_axis() const { return std::max({x, y, z}); }

std::string Dims3::to_string() const {
  std::ostringstream os;
  os << x << "x" << y << "x" << z;
  return os.str();
}

u64 VolumeDesc::total_bytes() const {
  return static_cast<u64>(dims.voxels()) * variables * timesteps *
         bytes_per_value;
}

u64 VolumeDesc::field_bytes() const {
  return static_cast<u64>(dims.voxels()) * bytes_per_value;
}

}  // namespace vizcache
