#include "volume/block_store.hpp"

#include "util/error.hpp"
#include "volume/blocker.hpp"

namespace vizcache {

MemoryBlockStore::MemoryBlockStore(const Field3D& field, Dims3 block_dims,
                                   VolumeDesc desc)
    : grid_(field.dims(), block_dims), desc_(std::move(desc)) {
  if (desc_.dims.voxels() == 0) {
    desc_.name = desc_.name.empty() ? "in-memory" : desc_.name;
    desc_.dims = field.dims();
    desc_.variables = 1;
    desc_.timesteps = 1;
  }
  blocks_.reserve(grid_.block_count());
  for (BlockId id = 0; id < grid_.block_count(); ++id) {
    blocks_.push_back(extract_block(field, grid_, id));
  }
}

std::vector<float> MemoryBlockStore::read_block(BlockId id, usize var,
                                                usize timestep) const {
  VIZ_REQUIRE(id < grid_.block_count(), "block id out of range");
  VIZ_REQUIRE(var == 0 && timestep == 0,
              "MemoryBlockStore holds a single variable/timestep");
  return blocks_[id];
}

SyntheticBlockStore::SyntheticBlockStore(SyntheticVolume volume,
                                         Dims3 block_dims)
    : volume_(std::move(volume)), grid_(volume_.desc.dims, block_dims) {}

std::vector<float> SyntheticBlockStore::read_block(BlockId id, usize var,
                                                   usize timestep) const {
  VIZ_REQUIRE(id < grid_.block_count(), "block id out of range");
  VIZ_REQUIRE(var < volume_.desc.variables, "variable out of range");
  VIZ_REQUIRE(timestep < volume_.desc.timesteps, "timestep out of range");
  Dims3 o = grid_.block_voxel_origin(id);
  Dims3 e = grid_.block_voxel_extent(id);
  const Dims3& vd = grid_.volume_dims();
  auto norm = [](usize i, usize total) {
    return total == 1 ? 0.0
                      : -1.0 + 2.0 * static_cast<double>(i) /
                                   static_cast<double>(total - 1);
  };
  std::vector<float> out;
  out.reserve(e.voxels());
  for (usize z = 0; z < e.z; ++z) {
    double nz = norm(o.z + z, vd.z);
    for (usize y = 0; y < e.y; ++y) {
      double ny = norm(o.y + y, vd.y);
      for (usize x = 0; x < e.x; ++x) {
        // analyze: allow(hot-path-alloc): constructs the returned payload
        // within the capacity reserved right-sized above — the synthetic
        // store's stand-in for a device read.
        out.push_back(volume_.fn({norm(o.x + x, vd.x), ny, nz}, var, timestep));
      }
    }
  }
  return out;
}

}  // namespace vizcache
