#include "volume/block_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vizcache {

namespace {
usize ceil_div(usize a, usize b) { return (a + b - 1) / b; }
}

BlockGrid::BlockGrid(Dims3 volume_dims, Dims3 block_dims)
    : volume_dims_(volume_dims), block_dims_(block_dims) {
  VIZ_REQUIRE(volume_dims.voxels() > 0, "empty volume");
  VIZ_REQUIRE(block_dims.x > 0 && block_dims.y > 0 && block_dims.z > 0,
              "empty block dims");
  grid_dims_ = {ceil_div(volume_dims.x, block_dims.x),
                ceil_div(volume_dims.y, block_dims.y),
                ceil_div(volume_dims.z, block_dims.z)};
}

BlockGrid BlockGrid::with_target_block_count(Dims3 volume_dims,
                                             usize target_blocks) {
  VIZ_REQUIRE(target_blocks >= 1, "target block count must be >=1");
  // Split each axis proportionally to its length so blocks are near-cubical:
  // n_axis ~ cbrt(target) * axis / cbrt(volume).
  double cbrt_t = std::cbrt(static_cast<double>(target_blocks));
  double cbrt_v = std::cbrt(static_cast<double>(volume_dims.voxels()));
  auto splits = [&](usize axis) {
    double n = cbrt_t * static_cast<double>(axis) / cbrt_v;
    return std::max<usize>(1, static_cast<usize>(std::llround(n)));
  };
  usize nx = std::min(splits(volume_dims.x), volume_dims.x);
  usize ny = std::min(splits(volume_dims.y), volume_dims.y);
  usize nz = std::min(splits(volume_dims.z), volume_dims.z);
  Dims3 block{ceil_div(volume_dims.x, nx), ceil_div(volume_dims.y, ny),
              ceil_div(volume_dims.z, nz)};
  return BlockGrid(volume_dims, block);
}

BlockCoord BlockGrid::coord_of(BlockId id) const {
  VIZ_REQUIRE(id < block_count(), "block id out of range");
  usize per_slab = grid_dims_.x * grid_dims_.y;
  return {id % grid_dims_.x, (id / grid_dims_.x) % grid_dims_.y,
          id / per_slab};
}

BlockId BlockGrid::id_of(const BlockCoord& c) const {
  VIZ_REQUIRE(c.bx < grid_dims_.x && c.by < grid_dims_.y && c.bz < grid_dims_.z,
              "block coord out of range");
  return static_cast<BlockId>((c.bz * grid_dims_.y + c.by) * grid_dims_.x +
                              c.bx);
}

Dims3 BlockGrid::block_voxel_origin(BlockId id) const {
  BlockCoord c = coord_of(id);
  return {c.bx * block_dims_.x, c.by * block_dims_.y, c.bz * block_dims_.z};
}

Dims3 BlockGrid::block_voxel_extent(BlockId id) const {
  Dims3 o = block_voxel_origin(id);
  return {std::min(block_dims_.x, volume_dims_.x - o.x),
          std::min(block_dims_.y, volume_dims_.y - o.y),
          std::min(block_dims_.z, volume_dims_.z - o.z)};
}

usize BlockGrid::block_voxels(BlockId id) const {
  return block_voxel_extent(id).voxels();
}

AABB BlockGrid::block_bounds(BlockId id) const {
  Dims3 o = block_voxel_origin(id);
  Dims3 e = block_voxel_extent(id);
  auto norm = [](usize v, usize total) {
    return -1.0 + 2.0 * static_cast<double>(v) / static_cast<double>(total);
  };
  Vec3 lo{norm(o.x, volume_dims_.x), norm(o.y, volume_dims_.y),
          norm(o.z, volume_dims_.z)};
  Vec3 hi{norm(o.x + e.x, volume_dims_.x), norm(o.y + e.y, volume_dims_.y),
          norm(o.z + e.z, volume_dims_.z)};
  return {lo, hi};
}

BlockId BlockGrid::block_at_normalized(const Vec3& p) const {
  if (p.x < -1.0 || p.x > 1.0 || p.y < -1.0 || p.y > 1.0 || p.z < -1.0 ||
      p.z > 1.0) {
    return kInvalidBlock;
  }
  auto voxel = [](double np, usize total) {
    auto v = static_cast<i64>((np + 1.0) * 0.5 * static_cast<double>(total));
    return static_cast<usize>(std::clamp<i64>(v, 0, static_cast<i64>(total) - 1));
  };
  usize vx = voxel(p.x, volume_dims_.x);
  usize vy = voxel(p.y, volume_dims_.y);
  usize vz = voxel(p.z, volume_dims_.z);
  return id_of({vx / block_dims_.x, vy / block_dims_.y, vz / block_dims_.z});
}

std::vector<BlockId> BlockGrid::all_blocks() const {
  std::vector<BlockId> out(block_count());
  for (usize i = 0; i < out.size(); ++i) out[i] = static_cast<BlockId>(i);
  return out;
}

}  // namespace vizcache
