#include "volume/noise.hpp"

#include <cmath>

namespace vizcache {

namespace {
inline double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }
}  // namespace

double ValueNoise::lattice(i64 x, i64 y, i64 z) const {
  // Mix coordinates and seed through a SplitMix64-style finalizer.
  u64 h = seed_;
  h ^= static_cast<u64>(x) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<u64>(y) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= static_cast<u64>(z) * 0x165667b19e3779f9ULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double ValueNoise::noise(double x, double y, double z) const {
  double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  i64 ix = static_cast<i64>(fx), iy = static_cast<i64>(fy),
      iz = static_cast<i64>(fz);
  double tx = smoothstep(x - fx), ty = smoothstep(y - fy), tz = smoothstep(z - fz);

  double c000 = lattice(ix, iy, iz), c100 = lattice(ix + 1, iy, iz);
  double c010 = lattice(ix, iy + 1, iz), c110 = lattice(ix + 1, iy + 1, iz);
  double c001 = lattice(ix, iy, iz + 1), c101 = lattice(ix + 1, iy, iz + 1);
  double c011 = lattice(ix, iy + 1, iz + 1), c111 = lattice(ix + 1, iy + 1, iz + 1);

  double c00 = lerp(c000, c100, tx), c10 = lerp(c010, c110, tx);
  double c01 = lerp(c001, c101, tx), c11 = lerp(c011, c111, tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

double ValueNoise::fbm(double x, double y, double z, int octaves,
                       double persistence) const {
  double sum = 0.0, amp = 1.0, freq = 1.0, norm = 0.0;
  for (int i = 0; i < octaves; ++i) {
    sum += amp * noise(x * freq, y * freq, z * freq);
    norm += amp;
    amp *= persistence;
    freq *= 2.0;
  }
  return norm > 0.0 ? sum / norm : 0.0;
}

}  // namespace vizcache
