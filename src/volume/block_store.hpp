#pragma once

#include <memory>
#include <vector>

#include "volume/block_grid.hpp"
#include "volume/generators.hpp"

namespace vizcache {

/// Source of block payloads. This is the "slowest level" backing store the
/// memory-hierarchy simulator fetches from; implementations may hold data in
/// memory, generate it analytically on demand, or read bricks from disk.
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual const BlockGrid& grid() const = 0;
  virtual const VolumeDesc& desc() const = 0;

  /// Payload of a block for (var, timestep); length == grid().block_voxels(id).
  virtual std::vector<float> read_block(BlockId id, usize var = 0,
                                        usize timestep = 0) const = 0;

  /// Bytes of a block payload.
  u64 block_bytes(BlockId id) const { return grid().block_bytes(id); }
};

/// Block store over a dense in-memory field (one variable, one timestep).
/// Blocks are pre-extracted at construction so reads are pure copies.
class MemoryBlockStore final : public BlockStore {
 public:
  MemoryBlockStore(const Field3D& field, Dims3 block_dims,
                   VolumeDesc desc = {});

  const BlockGrid& grid() const override { return grid_; }
  const VolumeDesc& desc() const override { return desc_; }
  std::vector<float> read_block(BlockId id, usize var,
                                usize timestep) const override;

 private:
  BlockGrid grid_;
  VolumeDesc desc_;
  std::vector<std::vector<float>> blocks_;
};

/// Block store that evaluates a SyntheticVolume's voxel function lazily —
/// supports the paper's full-resolution datasets (e.g. 1024^3 3d_ball)
/// without materializing them. Reads are deterministic.
class SyntheticBlockStore final : public BlockStore {
 public:
  SyntheticBlockStore(SyntheticVolume volume, Dims3 block_dims);

  const BlockGrid& grid() const override { return grid_; }
  const VolumeDesc& desc() const override { return volume_.desc; }
  std::vector<float> read_block(BlockId id, usize var,
                                usize timestep) const override;

 private:
  SyntheticVolume volume_;
  BlockGrid grid_;
};

}  // namespace vizcache
