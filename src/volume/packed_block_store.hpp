#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/annotated_mutex.hpp"
#include "volume/block_store.hpp"

namespace vizcache {

/// Block store backed by a single packed file: a fixed header, an offset
/// index, then all brick payloads back to back. Closer to production
/// storage than one-file-per-brick (constant open cost, sequential layout,
/// one seek per brick read) — the layout Pascucci & Frank-style global
/// indexing assumes (paper Section II).
///
/// File layout (little-endian):
///   magic "VZPK" | u64 dims[3] | u64 variables | u64 timesteps |
///   u64 block_dims[3] | u64 entry_count | u64 offsets[entry_count+1] |
///   payload bytes...
/// Entry order: (timestep, variable, block) row-major.
class PackedFileBlockStore final : public BlockStore {
 public:
  /// Open an existing packed store.
  explicit PackedFileBlockStore(const std::string& path);

  /// Write `volume` into a packed file at `path`; returns the opened store.
  static PackedFileBlockStore write_store(const std::string& path,
                                          const SyntheticVolume& volume,
                                          Dims3 block_dims);

  const BlockGrid& grid() const override { return grid_; }
  const VolumeDesc& desc() const override { return desc_; }
  std::vector<float> read_block(BlockId id, usize var,
                                usize timestep) const override;

  const std::string& path() const { return path_; }
  u64 file_bytes() const;

 private:
  /// Everything the header + offset index determine, parsed with a local
  /// stream so the members it feeds can be const.
  struct ParsedHeader {
    VolumeDesc desc;
    BlockGrid grid;
    std::vector<u64> offsets;
    u64 payload_start = 0;
  };
  static ParsedHeader parse_header(const std::string& path);

  PackedFileBlockStore(const std::string& path, ParsedHeader header);

  usize entry_index(BlockId id, usize var, usize timestep) const;

  // All metadata is immutable once the file is parsed; only the stream
  // position mutates, and that under io_mutex_.
  const std::string path_;
  const VolumeDesc desc_;
  const BlockGrid grid_;
  const std::vector<u64> offsets_;
  const u64 payload_start_;  ///< file offset of the first payload byte
  mutable Mutex io_mutex_;  ///< one seek+read at a time (leaf lock)
  mutable std::ifstream file_ GUARDED_BY(io_mutex_);
};

}  // namespace vizcache
