#pragma once

#include <memory>
#include <vector>

#include "volume/block_store.hpp"
#include "volume/field.hpp"

namespace vizcache {

/// Downsample a field by 2x per axis with box (average) filtering. Odd
/// extents round up; boundary cells average the available voxels.
Field3D downsample_field(const Field3D& src);

/// Multi-resolution pyramid of one scalar volume: level 0 is full
/// resolution, each further level halves every axis. This is the
/// "multi-resolution representation" of the view-dependent out-of-core
/// algorithms the paper contrasts against (Sections II / III-B): far-away
/// regions can be rendered from coarse levels at a fraction of the I/O, at
/// the cost of full-resolution fidelity.
class MipPyramid {
 public:
  /// Build from a full-resolution field. `levels` >= 1 (level 0 only);
  /// levels stop early when an axis reaches 1 voxel. All levels are blocked
  /// with the same `block_dims` (coarser levels therefore have fewer
  /// blocks).
  static MipPyramid build(Field3D level0, Dims3 block_dims, usize levels);

  usize level_count() const { return fields_.size(); }

  const Field3D& field(usize level) const;
  const BlockGrid& grid(usize level) const;
  const BlockStore& store(usize level) const;

  /// Bytes of one level's full payload.
  u64 level_bytes(usize level) const;
  /// Bytes across all levels (the classic ~1.14x overhead for 2x pyramids).
  u64 total_bytes() const;

  /// Dense cross-level key for hierarchy caching: keys of level l occupy
  /// [offset(l), offset(l) + grid(l).block_count()).
  BlockId key_offset(usize level) const;
  BlockId pack_key(usize level, BlockId id) const;
  usize level_of_key(BlockId key) const;
  BlockId id_of_key(BlockId key) const;
  /// Total key space across levels.
  usize total_keys() const;
  /// Payload bytes of a packed key.
  u64 key_bytes(BlockId key) const;

 private:
  std::vector<Field3D> fields_;
  std::vector<std::unique_ptr<MemoryBlockStore>> stores_;
  std::vector<BlockId> offsets_;
};

}  // namespace vizcache
