#pragma once

#include "util/types.hpp"

namespace vizcache {

/// Deterministic lattice value-noise used by the synthetic dataset
/// generators. Smooth, seeded, and cheap enough to evaluate per voxel on
/// demand (the SyntheticBlockStore materializes blocks lazily from it).
class ValueNoise {
 public:
  explicit ValueNoise(u64 seed = 1234) : seed_(seed) {}

  /// Smooth noise in [0, 1] at a continuous 3D position.
  double noise(double x, double y, double z) const;

  /// Fractional Brownian motion: `octaves` layers of noise with lacunarity 2
  /// and the given persistence (gain). Output approximately in [0, 1].
  double fbm(double x, double y, double z, int octaves = 4,
             double persistence = 0.5) const;

 private:
  /// Hash of an integer lattice point to [0, 1].
  double lattice(i64 x, i64 y, i64 z) const;

  u64 seed_;
};

}  // namespace vizcache
