#pragma once

#include <vector>

#include "geom/frustum.hpp"
#include "volume/block_grid.hpp"
#include "volume/block_metadata.hpp"

namespace vizcache {

/// Temporal Branch-On-Need Octree (T-BON, Sutton & Hansen — paper Section
/// II): one octree *topology* shared by every timestep of a time-varying
/// dataset, with per-timestep min/max value payloads. The structure is
/// built once; switching timesteps swaps only the value arrays, which is
/// the T-BON insight — the tree shape never changes, so time-varying
/// iso-surface/range extraction reuses the spatial index across all steps.
class TemporalOctree {
 public:
  /// Build the topology over `grid` and fill per-timestep min/max of
  /// variable `var` from `store` (timesteps read: store.desc().timesteps).
  static TemporalOctree build(const BlockGrid& grid, const BlockStore& store,
                              usize var = 0);

  usize node_count() const { return nodes_.size(); }
  usize leaf_count() const { return leaves_; }
  usize timestep_count() const { return values_.size(); }

  /// Blocks whose value interval at `timestep` intersects [lo, hi].
  std::vector<BlockId> query_range(usize timestep, float lo, float hi) const;

  /// Range query restricted to the view cone.
  std::vector<BlockId> query_frustum_range(usize timestep,
                                           const ConeFrustum& frustum,
                                           float lo, float hi) const;

  /// Bytes of one timestep's value payload (what T-BON loads on demand per
  /// step) vs the shared topology bytes (loaded once).
  u64 value_bytes_per_timestep() const;
  u64 topology_bytes() const;

 private:
  struct Node {
    AABB bounds;
    Vec3 sphere_center;
    double sphere_radius = 0.0;
    i64 children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    BlockId block = kInvalidBlock;
    bool leaf = false;
  };
  struct MinMax {
    float min = 0.0f;
    float max = 0.0f;
  };

  i64 build_node(const BlockGrid& grid, usize x0, usize y0, usize z0,
                 usize x1, usize y1, usize z1);

  void fill_values(const BlockMetadataTable& metadata, usize var,
                   std::vector<MinMax>& out) const;

  template <typename NodeFilter>
  void traverse(i64 node, const std::vector<MinMax>& values, float lo,
                float hi, const NodeFilter& extra,
                std::vector<BlockId>& out) const;

  std::vector<Node> nodes_;
  std::vector<std::vector<MinMax>> values_;  ///< [timestep][node]
  usize leaves_ = 0;
};

}  // namespace vizcache
