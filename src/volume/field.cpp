#include "volume/field.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vizcache {

Field3D::Field3D(Dims3 dims, float fill) : dims_(dims) {
  VIZ_REQUIRE(dims.voxels() > 0, "field with zero voxels");
  data_.assign(dims.voxels(), fill);
}

float& Field3D::at(usize x, usize y, usize z) {
  return data_[index(x, y, z)];
}

float Field3D::at(usize x, usize y, usize z) const {
  return data_[index(x, y, z)];
}

float Field3D::sample(double fx, double fy, double fz) const {
  auto clampf = [](double v, double hi) {
    return std::clamp(v, 0.0, hi);
  };
  fx = clampf(fx, static_cast<double>(dims_.x - 1));
  fy = clampf(fy, static_cast<double>(dims_.y - 1));
  fz = clampf(fz, static_cast<double>(dims_.z - 1));
  usize x0 = static_cast<usize>(fx), y0 = static_cast<usize>(fy),
        z0 = static_cast<usize>(fz);
  usize x1 = std::min(x0 + 1, dims_.x - 1);
  usize y1 = std::min(y0 + 1, dims_.y - 1);
  usize z1 = std::min(z0 + 1, dims_.z - 1);
  double tx = fx - static_cast<double>(x0);
  double ty = fy - static_cast<double>(y0);
  double tz = fz - static_cast<double>(z0);

  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  double c00 = lerp(at(x0, y0, z0), at(x1, y0, z0), tx);
  double c10 = lerp(at(x0, y1, z0), at(x1, y1, z0), tx);
  double c01 = lerp(at(x0, y0, z1), at(x1, y0, z1), tx);
  double c11 = lerp(at(x0, y1, z1), at(x1, y1, z1), tx);
  double c0 = lerp(c00, c10, ty);
  double c1 = lerp(c01, c11, ty);
  return static_cast<float>(lerp(c0, c1, tz));
}

float Field3D::sample_normalized(double nx, double ny, double nz) const {
  double fx = (nx + 1.0) * 0.5 * static_cast<double>(dims_.x - 1);
  double fy = (ny + 1.0) * 0.5 * static_cast<double>(dims_.y - 1);
  double fz = (nz + 1.0) * 0.5 * static_cast<double>(dims_.z - 1);
  return sample(fx, fy, fz);
}

float Field3D::min_value() const {
  return *std::min_element(data_.begin(), data_.end());
}

float Field3D::max_value() const {
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace vizcache
