#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Integer 3D extents (voxels).
struct Dims3 {
  usize x = 0;
  usize y = 0;
  usize z = 0;

  constexpr bool operator==(const Dims3&) const = default;

  usize voxels() const { return x * y * z; }
  usize max_axis() const;
  std::string to_string() const;
};

/// Metadata of a (possibly multivariate, time-varying) volume dataset —
/// the rows of the paper's Table I.
struct VolumeDesc {
  std::string name;
  std::string description;
  Dims3 dims;
  usize variables = 1;
  usize timesteps = 1;
  usize bytes_per_value = 4;  ///< all paper datasets are float32

  /// Total dataset size in bytes across all variables and timesteps.
  u64 total_bytes() const;
  /// Size of one scalar field (one variable, one timestep).
  u64 field_bytes() const;
};

}  // namespace vizcache
