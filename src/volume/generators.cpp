#include "volume/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "volume/noise.hpp"

namespace vizcache {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Gaussian bump.
double bump(double d2, double width) { return std::exp(-d2 / (width * width)); }

}  // namespace

SyntheticVolume make_ball_volume(Dims3 dims, u64 seed) {
  SyntheticVolume v;
  v.desc = {"3d_ball", "a synthetic dataset", dims, 1, 1, 4};
  auto noise = std::make_shared<ValueNoise>(seed);
  v.fn = [noise](const Vec3& p, usize, usize) -> float {
    double r = p.norm();
    if (r > 0.95) return 0.0f;  // outside the ball: constant ambient
    // Continuous interior variation: radial falloff + concentric shells +
    // a whisper of noise so no two blocks are identical.
    double shells = 0.5 + 0.5 * std::sin(r * 18.0);
    double falloff = 1.0 - r / 0.95;
    double n = 0.1 * noise->fbm(p.x * 4.0, p.y * 4.0, p.z * 4.0, 3);
    return static_cast<float>(falloff * (0.7 + 0.3 * shells) + n);
  };
  return v;
}

SyntheticVolume make_flame_volume(const std::string& name, Dims3 dims,
                                  u64 seed) {
  SyntheticVolume v;
  v.desc = {name, "a combustion simulation dataset", dims, 1, 1, 4};
  auto noise = std::make_shared<ValueNoise>(seed);
  v.fn = [noise](const Vec3& p, usize, usize) -> float {
    // Jet axis along +y: `s` in [0,1] is downstream distance, radial
    // coordinate rho measured from a slowly meandering centerline.
    double s = (p.y + 1.0) * 0.5;
    double meander_x = 0.15 * std::sin(s * 7.0);
    double meander_z = 0.12 * std::cos(s * 5.0);
    double rho = std::hypot(p.x - meander_x, p.z - meander_z);

    // Jet widens downstream; turbulence grows downstream (lifted flame).
    double jet_radius = 0.12 + 0.35 * s;
    double turb = noise->fbm(p.x * 6.0, p.y * 6.0, p.z * 6.0, 4, 0.55) - 0.5;
    double wrinkle = 0.18 * s * turb;

    // Mixture fraction: ~1 in the core, ~0 ambient, steep sheet between.
    double mixfrac = sigmoid((jet_radius - rho + wrinkle) * 24.0);
    // Lifted base: nothing below 10% downstream.
    if (s < 0.1) mixfrac *= s / 0.1;
    return static_cast<float>(mixfrac);
  };
  return v;
}

SyntheticVolume make_climate_volume(Dims3 dims, usize variables,
                                    usize timesteps, u64 seed) {
  VIZ_REQUIRE(variables >= 1, "climate volume needs >=1 variable");
  VIZ_REQUIRE(timesteps >= 1, "climate volume needs >=1 timestep");
  SyntheticVolume v;
  v.desc = {"climate", "a climate simulation dataset", dims, variables,
            timesteps, 4};
  auto noise = std::make_shared<ValueNoise>(seed);

  v.fn = [noise, timesteps](const Vec3& p, usize var, usize t) -> float {
    double time = timesteps > 1
                      ? static_cast<double>(t) / static_cast<double>(timesteps - 1)
                      : 0.0;
    // Typhoon vortex drifts west-northwest over time (xy-plane).
    double cx = 0.4 - 0.6 * time;
    double cy = -0.2 + 0.3 * time;
    double dx = p.x - cx, dy = p.y - cy;
    double d2 = dx * dx + dy * dy;
    double vortex = bump(d2, 0.35);
    // Altitude factor: activity concentrated near the "surface" (low z).
    double alt = 0.5 * (1.0 - p.z);

    // The four physical prototypes.
    double qvapor = alt * (0.55 + 0.3 * std::cos(p.y * 2.2)) +
                    0.35 * vortex +
                    0.12 * noise->fbm(p.x * 3.0 + 7.0, p.y * 3.0, p.z * 3.0, 3);
    double wind = vortex * (0.9 + 0.4 * std::sin(std::atan2(dy, dx) * 3.0)) +
                  0.15 * noise->fbm(p.x * 4.0, p.y * 4.0 + 3.0, p.z * 4.0, 3);
    // Smoke plume: localized band southeast of the vortex, advected.
    double px = p.x - (0.1 + 0.3 * time), py = p.y + 0.45;
    double plume = bump(px * px * 2.0 + py * py * 6.0, 0.4) * alt;
    double smoke = plume * (0.7 + 0.5 * noise->fbm(p.x * 5.0, p.y * 5.0,
                                                   p.z * 5.0 + 11.0, 4));
    double temperature = 0.8 - 0.35 * p.z * p.z - 0.25 * std::abs(p.y) -
                         0.2 * vortex;

    switch (var % 4) {
      case 0: {
        double base = qvapor;
        if (var >= 4) {
          // Derived variables: correlated mixture with seeded perturbation.
          double mix = noise->fbm(p.x * 2.0 + static_cast<double>(var) * 0.7,
                                  p.y * 2.0, p.z * 2.0, 2);
          base = 0.7 * qvapor + 0.3 * mix;
        }
        return static_cast<float>(base);
      }
      case 1: {
        double base = wind;
        if (var >= 4) {
          double mix = noise->fbm(p.x * 2.0, p.y * 2.0 + static_cast<double>(var),
                                  p.z * 2.0, 2);
          base = 0.6 * wind + 0.4 * mix;
        }
        return static_cast<float>(base);
      }
      case 2: {
        double base = smoke;
        if (var >= 4) {
          double mix = noise->fbm(p.x * 2.0, p.y * 2.0,
                                  p.z * 2.0 + static_cast<double>(var) * 0.9, 2);
          base = 0.65 * smoke + 0.35 * mix;
        }
        return static_cast<float>(base);
      }
      default: {
        double base = temperature;
        if (var >= 4) {
          double mix = noise->fbm(p.x * 1.5 + static_cast<double>(var) * 0.3,
                                  p.y * 1.5, p.z * 1.5, 2);
          base = 0.75 * temperature + 0.25 * mix;
        }
        return static_cast<float>(base);
      }
    }
  };
  return v;
}

SyntheticVolume make_turbulence_volume(Dims3 dims, u64 seed) {
  SyntheticVolume v;
  v.desc = {"turbulence", "isotropic fBm turbulence", dims, 1, 1, 4};
  auto noise = std::make_shared<ValueNoise>(seed);
  v.fn = [noise](const Vec3& p, usize, usize) -> float {
    return static_cast<float>(
        noise->fbm(p.x * 8.0, p.y * 8.0, p.z * 8.0, 5, 0.6));
  };
  return v;
}

SyntheticVolume make_flow_volume(Dims3 dims, u64 seed) {
  SyntheticVolume v;
  v.desc = {"flow", "a synthetic 3-component velocity field", dims, 3, 1, 4};
  auto noise = std::make_shared<ValueNoise>(seed);
  v.fn = [noise](const Vec3& p, usize var, usize) -> float {
    // Vortex around the z axis with a Gaussian core, plus an upward jet in
    // the core and a little turbulence.
    double r2 = p.x * p.x + p.y * p.y;
    double swirl = std::exp(-r2 / 0.35);
    double u = -p.y * swirl;
    double vcomp = p.x * swirl;
    double w = 0.6 * std::exp(-r2 / 0.15);
    double turb = 0.08 * (noise->fbm(p.x * 4.0 + static_cast<double>(var) * 3.0,
                                     p.y * 4.0, p.z * 4.0, 3) -
                          0.5);
    // Smooth boundary damping so trajectories stop at the walls.
    double damp = 1.0;
    for (double c : {p.x, p.y, p.z}) {
      damp *= std::clamp(2.5 * (1.0 - std::abs(c)), 0.0, 1.0);
    }
    double value = var == 0 ? u : var == 1 ? vcomp : w;
    return static_cast<float>((value + turb) * damp);
  };
  return v;
}

Field3D rasterize(const SyntheticVolume& vol, usize var, usize timestep) {
  VIZ_REQUIRE(var < vol.desc.variables, "variable index out of range");
  VIZ_REQUIRE(timestep < vol.desc.timesteps, "timestep out of range");
  const Dims3& d = vol.desc.dims;
  Field3D f(d);
  auto norm = [](usize i, usize total) {
    return total == 1 ? 0.0
                      : -1.0 + 2.0 * static_cast<double>(i) /
                                   static_cast<double>(total - 1);
  };
  for (usize z = 0; z < d.z; ++z) {
    double nz = norm(z, d.z);
    for (usize y = 0; y < d.y; ++y) {
      double ny = norm(y, d.y);
      for (usize x = 0; x < d.x; ++x) {
        f.at(x, y, z) = vol.fn({norm(x, d.x), ny, nz}, var, timestep);
      }
    }
  }
  return f;
}

}  // namespace vizcache
