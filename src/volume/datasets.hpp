#pragma once

#include <vector>

#include "volume/generators.hpp"

namespace vizcache {

/// Identifiers for the paper's Table I datasets.
enum class DatasetId { kBall3d, kLiftedMixFrac, kLiftedRr, kClimate };

const char* dataset_name(DatasetId id);

/// Full-resolution extents from Table I.
Dims3 paper_dims(DatasetId id);
usize paper_variables(DatasetId id);

/// Build a Table I dataset at `scale` times its paper resolution per axis
/// (scale = 1.0 reproduces the paper's sizes; benches default to ~0.25 so
/// the whole suite runs in minutes). Variable/timestep counts for climate
/// are scaled by the same factor with a floor of 4/1.
SyntheticVolume make_dataset(DatasetId id, double scale = 1.0);

/// All four Table I datasets.
std::vector<DatasetId> all_datasets();

}  // namespace vizcache
