#include "volume/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vizcache {

const char* dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kBall3d: return "3d_ball";
    case DatasetId::kLiftedMixFrac: return "lifted_mix_frac";
    case DatasetId::kLiftedRr: return "lifted_rr";
    case DatasetId::kClimate: return "climate";
  }
  throw InvalidArgument("unknown dataset id");
}

Dims3 paper_dims(DatasetId id) {
  switch (id) {
    case DatasetId::kBall3d: return {1024, 1024, 1024};
    case DatasetId::kLiftedMixFrac: return {800, 686, 215};
    case DatasetId::kLiftedRr: return {800, 800, 400};
    case DatasetId::kClimate: return {294, 258, 98};
  }
  throw InvalidArgument("unknown dataset id");
}

usize paper_variables(DatasetId id) {
  // Table I: climate carries 244 variables (7.2 GB across timesteps); the
  // scalar sets carry one.
  return id == DatasetId::kClimate ? 244 : 1;
}

SyntheticVolume make_dataset(DatasetId id, double scale) {
  VIZ_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  Dims3 full = paper_dims(id);
  auto scaled = [&](usize v) {
    return std::max<usize>(8, static_cast<usize>(
                                  std::llround(static_cast<double>(v) * scale)));
  };
  Dims3 dims{scaled(full.x), scaled(full.y), scaled(full.z)};

  switch (id) {
    case DatasetId::kBall3d:
      return make_ball_volume(dims);
    case DatasetId::kLiftedMixFrac:
      return make_flame_volume("lifted_mix_frac", dims, 11);
    case DatasetId::kLiftedRr:
      return make_flame_volume("lifted_rr", dims, 19);
    case DatasetId::kClimate: {
      usize vars = std::max<usize>(
          4, static_cast<usize>(std::llround(244.0 * scale)));
      usize steps = std::max<usize>(
          1, static_cast<usize>(std::llround(8.0 * scale)));
      return make_climate_volume(dims, vars, steps);
    }
  }
  throw InvalidArgument("unknown dataset id");
}

std::vector<DatasetId> all_datasets() {
  return {DatasetId::kBall3d, DatasetId::kLiftedMixFrac, DatasetId::kLiftedRr,
          DatasetId::kClimate};
}

}  // namespace vizcache
