#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "volume/volume_desc.hpp"

namespace vizcache {

/// Integer block coordinates within the grid.
struct BlockCoord {
  usize bx = 0;
  usize by = 0;
  usize bz = 0;
  constexpr bool operator==(const BlockCoord&) const = default;
};

/// Uniform partition of a volume into blocks (bricks). Implements the
/// paper's "volume data divided into a set of uniform-size blocks": block
/// ids are dense in [0, block_count()), edge blocks may be partial.
///
/// Geometry: the volume is mapped to the normalized frame [-1, 1]^3 per axis
/// (the paper's normalized edge size 2), so block AABBs are directly usable
/// with the view-cone visibility test.
class BlockGrid {
 public:
  BlockGrid() = default;
  /// `block_dims` is the voxel size of one (interior) block.
  BlockGrid(Dims3 volume_dims, Dims3 block_dims);

  /// Grid with a target total block count: picks near-cubical block dims so
  /// that block_count() is close to `target_blocks` (used by Fig. 9/12
  /// "divided into N blocks" experiments).
  static BlockGrid with_target_block_count(Dims3 volume_dims,
                                           usize target_blocks);

  const Dims3& volume_dims() const { return volume_dims_; }
  const Dims3& block_dims() const { return block_dims_; }
  /// Number of blocks along each axis.
  const Dims3& grid_dims() const { return grid_dims_; }

  usize block_count() const { return grid_dims_.voxels(); }

  BlockCoord coord_of(BlockId id) const;
  BlockId id_of(const BlockCoord& c) const;

  /// Voxel extents of a block (edge blocks clipped to the volume).
  Dims3 block_voxel_origin(BlockId id) const;
  Dims3 block_voxel_extent(BlockId id) const;

  /// Voxel count of a block (edge blocks may be smaller).
  usize block_voxels(BlockId id) const;

  /// Bytes of one block payload for a float32 scalar field.
  u64 block_bytes(BlockId id) const { return block_voxels(id) * 4; }
  /// Bytes of a full interior block.
  u64 nominal_block_bytes() const { return block_dims_.voxels() * 4; }

  /// Block bounds in the normalized [-1, 1]^3 frame.
  AABB block_bounds(BlockId id) const;

  /// Block id containing a normalized-frame point, or kInvalidBlock when the
  /// point lies outside the volume.
  BlockId block_at_normalized(const Vec3& p) const;

  /// All block ids (0..count), convenience for whole-volume sweeps.
  std::vector<BlockId> all_blocks() const;

 private:
  Dims3 volume_dims_;
  Dims3 block_dims_;
  Dims3 grid_dims_;
};

}  // namespace vizcache
