#pragma once

#include <span>
#include <vector>

#include "volume/volume_desc.hpp"

namespace vizcache {

/// Dense scalar field: one variable at one timestep, x-fastest layout.
class Field3D {
 public:
  Field3D() = default;
  explicit Field3D(Dims3 dims, float fill = 0.0f);

  const Dims3& dims() const { return dims_; }
  usize voxels() const { return data_.size(); }

  float& at(usize x, usize y, usize z);
  float at(usize x, usize y, usize z) const;

  usize index(usize x, usize y, usize z) const {
    return (z * dims_.y + y) * dims_.x + x;
  }

  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }

  /// Trilinear sample at fractional voxel coordinates (clamped to edges).
  float sample(double fx, double fy, double fz) const;

  /// Trilinear sample at normalized coordinates in [-1, 1]^3.
  float sample_normalized(double nx, double ny, double nz) const;

  float min_value() const;
  float max_value() const;

 private:
  Dims3 dims_;
  std::vector<float> data_;
};

}  // namespace vizcache
