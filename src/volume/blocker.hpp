#pragma once

#include <vector>

#include "volume/block_grid.hpp"
#include "volume/field.hpp"

namespace vizcache {

/// Copy the voxels of block `id` out of a dense field (x-fastest within the
/// block, edge blocks clipped).
std::vector<float> extract_block(const Field3D& field, const BlockGrid& grid,
                                 BlockId id);

/// Inverse of extract_block: write a block payload back into a dense field.
void insert_block(Field3D& field, const BlockGrid& grid, BlockId id,
                  const std::vector<float>& payload);

}  // namespace vizcache
