#include "volume/tbon.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace vizcache {

TemporalOctree TemporalOctree::build(const BlockGrid& grid,
                                     const BlockStore& store, usize var) {
  VIZ_REQUIRE(store.grid().block_count() == grid.block_count(),
              "store/grid block count mismatch");
  TemporalOctree tree;
  const Dims3& g = grid.grid_dims();
  tree.nodes_.reserve(grid.block_count() * 2);
  tree.build_node(grid, 0, 0, 0, g.x, g.y, g.z);

  const usize timesteps = store.desc().timesteps;
  tree.values_.resize(timesteps);
  for (usize t = 0; t < timesteps; ++t) {
    BlockMetadataTable metadata = BlockMetadataTable::build(store, var + 1, t);
    tree.values_[t].resize(tree.nodes_.size());
    tree.fill_values(metadata, var, tree.values_[t]);
  }
  return tree;
}

i64 TemporalOctree::build_node(const BlockGrid& grid, usize x0, usize y0,
                               usize z0, usize x1, usize y1, usize z1) {
  if (x0 >= x1 || y0 >= y1 || z0 >= z1) return -1;

  const i64 index = static_cast<i64>(nodes_.size());
  nodes_.emplace_back();

  if (x1 - x0 == 1 && y1 - y0 == 1 && z1 - z0 == 1) {
    Node& leaf = nodes_.back();
    leaf.leaf = true;
    leaf.block = grid.id_of({x0, y0, z0});
    leaf.bounds = grid.block_bounds(leaf.block);
    leaf.sphere_center = leaf.bounds.center();
    leaf.sphere_radius = leaf.bounds.diagonal() * 0.5;
    ++leaves_;
    return index;
  }

  usize xm = x1 - x0 == 1 ? x1 : x0 + std::max<usize>(1, (x1 - x0) / 2);
  usize ym = y1 - y0 == 1 ? y1 : y0 + std::max<usize>(1, (y1 - y0) / 2);
  usize zm = z1 - z0 == 1 ? z1 : z0 + std::max<usize>(1, (z1 - z0) / 2);
  const usize xs[3] = {x0, xm, x1};
  const usize ys[3] = {y0, ym, y1};
  const usize zs[3] = {z0, zm, z1};

  AABB bounds;
  bool first = true;
  usize slot = 0;
  for (usize cz = 0; cz < 2; ++cz) {
    for (usize cy = 0; cy < 2; ++cy) {
      for (usize cx = 0; cx < 2; ++cx) {
        i64 child = build_node(grid, xs[cx], ys[cy], zs[cz], xs[cx + 1],
                               ys[cy + 1], zs[cz + 1]);
        nodes_[static_cast<usize>(index)].children[slot++] = child;
        if (child >= 0) {
          const AABB& cb = nodes_[static_cast<usize>(child)].bounds;
          bounds = first ? cb : bounds.united(cb);
          first = false;
        }
      }
    }
  }
  VIZ_CHECK(!first, "interior T-BON node without children");
  Node& node = nodes_[static_cast<usize>(index)];
  node.bounds = bounds;
  node.sphere_center = bounds.center();
  node.sphere_radius = bounds.diagonal() * 0.5;
  return index;
}

void TemporalOctree::fill_values(const BlockMetadataTable& metadata, usize var,
                                 std::vector<MinMax>& out) const {
  // Children always have larger indices than their parent (pre-order
  // allocation), so a reverse sweep is bottom-up.
  for (usize i = nodes_.size(); i-- > 0;) {
    const Node& n = nodes_[i];
    if (n.leaf) {
      const auto& e = metadata.entry(n.block, var);
      out[i] = {e.min, e.max};
      continue;
    }
    float mn = std::numeric_limits<float>::infinity();
    float mx = -std::numeric_limits<float>::infinity();
    for (i64 child : n.children) {
      if (child < 0) continue;
      mn = std::min(mn, out[static_cast<usize>(child)].min);
      mx = std::max(mx, out[static_cast<usize>(child)].max);
    }
    out[i] = {mn, mx};
  }
}

template <typename NodeFilter>
void TemporalOctree::traverse(i64 node, const std::vector<MinMax>& values,
                              float lo, float hi, const NodeFilter& extra,
                              std::vector<BlockId>& out) const {
  if (node < 0) return;
  const usize i = static_cast<usize>(node);
  const Node& n = nodes_[i];
  if (values[i].min > hi || values[i].max < lo) return;
  if (!extra(n)) return;
  if (n.leaf) {
    out.push_back(n.block);
    return;
  }
  for (i64 child : n.children) traverse(child, values, lo, hi, extra, out);
}

std::vector<BlockId> TemporalOctree::query_range(usize timestep, float lo,
                                                 float hi) const {
  VIZ_REQUIRE(timestep < values_.size(), "timestep out of range");
  VIZ_REQUIRE(lo <= hi, "inverted value range");
  std::vector<BlockId> out;
  if (nodes_.empty()) return out;
  traverse(0, values_[timestep], lo, hi, [](const Node&) { return true; },
           out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> TemporalOctree::query_frustum_range(
    usize timestep, const ConeFrustum& frustum, float lo, float hi) const {
  VIZ_REQUIRE(timestep < values_.size(), "timestep out of range");
  VIZ_REQUIRE(lo <= hi, "inverted value range");
  std::vector<BlockId> out;
  if (nodes_.empty()) return out;
  auto view_ok = [&](const Node& n) {
    if (n.leaf) return frustum.intersects_block(n.bounds);
    return frustum.may_intersect_sphere(n.sphere_center, n.sphere_radius);
  };
  traverse(0, values_[timestep], lo, hi, view_ok, out);
  std::sort(out.begin(), out.end());
  return out;
}

u64 TemporalOctree::value_bytes_per_timestep() const {
  return nodes_.size() * sizeof(MinMax);
}

u64 TemporalOctree::topology_bytes() const {
  return nodes_.size() * sizeof(Node);
}

}  // namespace vizcache
