#pragma once

#include <string>

#include "volume/block_store.hpp"

namespace vizcache {

/// Block store backed by raw brick files on disk: one file per
/// (block, variable, timestep) under a root directory. This is the
/// "real I/O" backend — the examples use it to demonstrate the policy
/// against an actual filesystem, while benches use the simulator.
///
/// Layout: <root>/v<var>_t<step>/block_<id>.raw  (little-endian float32).
class FileBlockStore final : public BlockStore {
 public:
  /// Open an existing store written by write_store().
  FileBlockStore(std::string root, const VolumeDesc& desc, Dims3 block_dims);

  /// Materialize `volume` into brick files under `root`; returns the opened
  /// store. Existing files are overwritten.
  static FileBlockStore write_store(const std::string& root,
                                    const SyntheticVolume& volume,
                                    Dims3 block_dims);

  const BlockGrid& grid() const override { return grid_; }
  const VolumeDesc& desc() const override { return desc_; }
  std::vector<float> read_block(BlockId id, usize var,
                                usize timestep) const override;

  std::string block_path(BlockId id, usize var, usize timestep) const;
  const std::string& root() const { return root_; }

 private:
  std::string root_;
  VolumeDesc desc_;
  BlockGrid grid_;
};

}  // namespace vizcache
