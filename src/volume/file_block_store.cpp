#include "volume/file_block_store.hpp"

#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace vizcache {

namespace fs = std::filesystem;

FileBlockStore::FileBlockStore(std::string root, const VolumeDesc& desc,
                               Dims3 block_dims)
    : root_(std::move(root)), desc_(desc), grid_(desc.dims, block_dims) {
  if (!fs::exists(root_)) {
    throw IoError("block store root does not exist: " + root_);
  }
}

std::string FileBlockStore::block_path(BlockId id, usize var,
                                       usize timestep) const {
  return root_ + "/v" + std::to_string(var) + "_t" + std::to_string(timestep) +
         "/block_" + std::to_string(id) + ".raw";
}

FileBlockStore FileBlockStore::write_store(const std::string& root,
                                           const SyntheticVolume& volume,
                                           Dims3 block_dims) {
  SyntheticBlockStore source(volume, block_dims);
  const BlockGrid& grid = source.grid();
  for (usize t = 0; t < volume.desc.timesteps; ++t) {
    for (usize v = 0; v < volume.desc.variables; ++v) {
      fs::path dir = fs::path(root) / ("v" + std::to_string(v) + "_t" +
                                       std::to_string(t));
      fs::create_directories(dir);
      for (BlockId id = 0; id < grid.block_count(); ++id) {
        std::vector<float> payload = source.read_block(id, v, t);
        fs::path p = dir / ("block_" + std::to_string(id) + ".raw");
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        if (!out) throw IoError("cannot write brick: " + p.string());
        out.write(reinterpret_cast<const char*>(payload.data()),
                  static_cast<std::streamsize>(payload.size() * sizeof(float)));
        if (!out) throw IoError("short write on brick: " + p.string());
      }
    }
  }
  return FileBlockStore(root, volume.desc, block_dims);
}

std::vector<float> FileBlockStore::read_block(BlockId id, usize var,
                                              usize timestep) const {
  VIZ_REQUIRE(id < grid_.block_count(), "block id out of range");
  std::string path = block_path(id, var, timestep);
  // analyze: allow(hot-path-io): the store IS the storage boundary — this is
  // where the hot path is allowed to touch the device (the read the cache
  // hierarchy exists to amortize).
  std::ifstream in(path, std::ios::binary);
  // analyze: allow(hot-path-throw): a missing brick is unrecoverable here;
  // AsyncPrefetcher catches and converts to note_failure/propagation.
  if (!in) throw IoError("cannot open brick: " + path);
  std::vector<float> payload(grid_.block_voxels(id));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size() * sizeof(float)));
  if (in.gcount() !=
      static_cast<std::streamsize>(payload.size() * sizeof(float))) {
    // analyze: allow(hot-path-throw): a truncated brick is unrecoverable
    // here; AsyncPrefetcher catches and converts to note_failure/propagation.
    throw IoError("short read on brick: " + path);
  }
  return payload;
}

}  // namespace vizcache
