#include "volume/packed_block_store.hpp"

#include <cstring>
#include <filesystem>

#include "util/error.hpp"

namespace vizcache {

namespace {
constexpr char kMagic[4] = {'V', 'Z', 'P', 'K'};
}

PackedFileBlockStore PackedFileBlockStore::write_store(
    const std::string& path, const SyntheticVolume& volume, Dims3 block_dims) {
  SyntheticBlockStore source(volume, block_dims);
  const BlockGrid& grid = source.grid();
  const VolumeDesc& desc = volume.desc;
  const usize entries =
      grid.block_count() * desc.variables * desc.timesteps;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create packed store: " + path);

  out.write(kMagic, 4);
  u64 header[8] = {desc.dims.x, desc.dims.y,     desc.dims.z, desc.variables,
                   desc.timesteps, block_dims.x, block_dims.y, block_dims.z};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  u64 entry_count = entries;
  out.write(reinterpret_cast<const char*>(&entry_count), sizeof(entry_count));

  // Offsets are relative to the start of the payload section.
  std::vector<u64> offsets(entries + 1, 0);
  usize i = 0;
  for (usize t = 0; t < desc.timesteps; ++t) {
    for (usize v = 0; v < desc.variables; ++v) {
      for (BlockId id = 0; id < grid.block_count(); ++id) {
        offsets[i + 1] = offsets[i] + grid.block_bytes(id);
        ++i;
      }
    }
  }
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(u64)));

  for (usize t = 0; t < desc.timesteps; ++t) {
    for (usize v = 0; v < desc.variables; ++v) {
      for (BlockId id = 0; id < grid.block_count(); ++id) {
        std::vector<float> payload = source.read_block(id, v, t);
        out.write(reinterpret_cast<const char*>(payload.data()),
                  static_cast<std::streamsize>(payload.size() * sizeof(float)));
      }
    }
  }
  if (!out) throw IoError("packed store write failed: " + path);
  out.close();
  return PackedFileBlockStore(path);
}

PackedFileBlockStore::ParsedHeader PackedFileBlockStore::parse_header(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open packed store: " + path);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw IoError("not a vizcache packed store: " + path);
  }
  u64 header[8];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  u64 entry_count = 0;
  in.read(reinterpret_cast<char*>(&entry_count), sizeof(entry_count));
  if (!in) throw IoError("truncated packed store header: " + path);

  ParsedHeader parsed;
  parsed.desc.name = std::filesystem::path(path).stem().string();
  parsed.desc.description = "packed block store";
  parsed.desc.dims = {header[0], header[1], header[2]};
  parsed.desc.variables = header[3];
  parsed.desc.timesteps = header[4];
  Dims3 block_dims{header[5], header[6], header[7]};
  parsed.grid = BlockGrid(parsed.desc.dims, block_dims);

  const usize expected = parsed.grid.block_count() * parsed.desc.variables *
                         parsed.desc.timesteps;
  if (entry_count != expected) {
    throw IoError("packed store entry count mismatch: " + path);
  }
  parsed.offsets.resize(entry_count + 1);
  in.read(reinterpret_cast<char*>(parsed.offsets.data()),
          static_cast<std::streamsize>(parsed.offsets.size() * sizeof(u64)));
  if (!in) throw IoError("truncated packed store index: " + path);
  parsed.payload_start = static_cast<u64>(in.tellg());
  return parsed;
}

PackedFileBlockStore::PackedFileBlockStore(const std::string& path)
    : PackedFileBlockStore(path, parse_header(path)) {}

PackedFileBlockStore::PackedFileBlockStore(const std::string& path,
                                           ParsedHeader header)
    : path_(path),
      desc_(std::move(header.desc)),
      grid_(header.grid),
      offsets_(std::move(header.offsets)),
      payload_start_(header.payload_start) {
  file_.open(path, std::ios::binary);
  if (!file_) throw IoError("cannot open packed store: " + path);
}

usize PackedFileBlockStore::entry_index(BlockId id, usize var,
                                        usize timestep) const {
  VIZ_REQUIRE(id < grid_.block_count(), "block id out of range");
  VIZ_REQUIRE(var < desc_.variables, "variable out of range");
  VIZ_REQUIRE(timestep < desc_.timesteps, "timestep out of range");
  return (timestep * desc_.variables + var) * grid_.block_count() + id;
}

std::vector<float> PackedFileBlockStore::read_block(BlockId id, usize var,
                                                    usize timestep) const {
  const usize entry = entry_index(id, var, timestep);
  const u64 begin = offsets_[entry];
  const u64 bytes = offsets_[entry + 1] - begin;
  std::vector<float> payload(bytes / sizeof(float));

  MutexLock lock(io_mutex_);
  file_.clear();
  // analyze: allow(hot-path-io): the store IS the storage boundary — this is
  // where the hot path is allowed to touch the device (the read the cache
  // hierarchy exists to amortize).
  file_.seekg(static_cast<std::streamoff>(payload_start_ + begin));
  // analyze: allow(hot-path-io): same boundary — the positioned bulk read.
  file_.read(reinterpret_cast<char*>(payload.data()),
             static_cast<std::streamsize>(bytes));
  if (file_.gcount() != static_cast<std::streamsize>(bytes)) {
    // analyze: allow(hot-path-throw): a truncated packed read is
    // unrecoverable here; AsyncPrefetcher catches and converts to
    // note_failure/propagation.
    throw IoError("short read in packed store: " + path_);
  }
  return payload;
}

u64 PackedFileBlockStore::file_bytes() const {
  return static_cast<u64>(std::filesystem::file_size(path_));
}

}  // namespace vizcache
