#include "volume/block_metadata.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "util/error.hpp"

namespace vizcache {

BlockMetadataTable BlockMetadataTable::build(const BlockStore& store,
                                             usize variables, usize timestep) {
  if (variables == 0) variables = store.desc().variables;
  VIZ_REQUIRE(variables <= store.desc().variables,
              "more variables requested than the dataset has");

  BlockMetadataTable table;
  table.blocks_ = store.grid().block_count();
  table.variables_ = variables;
  table.entries_.resize(table.blocks_ * variables);

  for (usize var = 0; var < variables; ++var) {
    for (BlockId id = 0; id < table.blocks_; ++id) {
      std::vector<float> payload = store.read_block(id, var, timestep);
      Entry e;
      e.min = std::numeric_limits<float>::infinity();
      e.max = -std::numeric_limits<float>::infinity();
      double sum = 0.0;
      for (float v : payload) {
        e.min = std::min(e.min, v);
        e.max = std::max(e.max, v);
        sum += static_cast<double>(v);
      }
      e.mean = payload.empty()
                   ? 0.0f
                   : static_cast<float>(sum / static_cast<double>(payload.size()));
      if (payload.empty()) e.min = e.max = 0.0f;
      table.entries_[var * table.blocks_ + id] = e;
    }
  }
  return table;
}

const BlockMetadataTable::Entry& BlockMetadataTable::entry(BlockId id,
                                                           usize var) const {
  VIZ_REQUIRE(id < blocks_, "block id out of range");
  VIZ_REQUIRE(var < variables_, "variable out of range");
  return entries_[var * blocks_ + id];
}

bool BlockMetadataTable::intersects_range(BlockId id, usize var, float lo,
                                          float hi) const {
  const Entry& e = entry(id, var);
  return e.min <= hi && e.max >= lo;
}

std::vector<BlockId> BlockMetadataTable::blocks_in_range(usize var, float lo,
                                                         float hi) const {
  VIZ_REQUIRE(lo <= hi, "inverted value range");
  std::vector<BlockId> out;
  for (BlockId id = 0; id < blocks_; ++id) {
    if (intersects_range(id, var, lo, hi)) out.push_back(id);
  }
  return out;
}

std::pair<float, float> BlockMetadataTable::variable_range(usize var) const {
  VIZ_REQUIRE(var < variables_, "variable out of range");
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (BlockId id = 0; id < blocks_; ++id) {
    const Entry& e = entry(id, var);
    lo = std::min(lo, e.min);
    hi = std::max(hi, e.max);
  }
  if (blocks_ == 0) lo = hi = 0.0f;
  return {lo, hi};
}

void BlockMetadataTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open metadata table for writing: " + path);
  u64 header[2] = {blocks_, variables_};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(entries_.data()),
            static_cast<std::streamsize>(entries_.size() * sizeof(Entry)));
  if (!out) throw IoError("metadata table write failed: " + path);
}

BlockMetadataTable BlockMetadataTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open metadata table: " + path);
  u64 header[2] = {0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  BlockMetadataTable table;
  table.blocks_ = header[0];
  table.variables_ = header[1];
  table.entries_.resize(table.blocks_ * table.variables_);
  in.read(reinterpret_cast<char*>(table.entries_.data()),
          static_cast<std::streamsize>(table.entries_.size() * sizeof(Entry)));
  if (!in) throw IoError("metadata table read failed: " + path);
  return table;
}

}  // namespace vizcache
