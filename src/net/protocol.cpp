#include "net/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace vizcache {
namespace {

/// Append-only little-endian frame builder. The first 4 bytes are reserved
/// for the length prefix and patched in take().
class WireWriter {
 public:
  WireWriter() : bytes_(4, 0) {}

  void put_u8(u8 v) { bytes_.push_back(v); }
  void put_u16(u16 v) { put_le(v); }
  void put_u32(u32 v) { put_le(v); }
  void put_u64(u64 v) { put_le(v); }
  void put_f64(double v) { put_le(std::bit_cast<u64>(v)); }
  void put_type(FrameType t) { put_u8(static_cast<u8>(t)); }

  std::vector<u8> take() {
    const u32 payload = static_cast<u32>(bytes_.size() - 4);
    for (usize i = 0; i < 4; ++i) {
      bytes_[i] = static_cast<u8>(payload >> (8 * i));
    }
    return std::move(bytes_);
  }

 private:
  template <typename T>
  void put_le(T v) {
    for (usize i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }
  }

  std::vector<u8> bytes_;
};

/// Bounds-checked little-endian reader over a frame body. Every read_* is
/// false on underrun; decoders additionally require done() at the end so
/// trailing garbage is rejected, not silently accepted.
class WireReader {
 public:
  explicit WireReader(std::span<const u8> bytes) : bytes_(bytes) {}

  bool read_u8(u8& out) { return read_le(out); }
  bool read_u16(u16& out) { return read_le(out); }
  bool read_u32(u32& out) { return read_le(out); }
  bool read_u64(u64& out) { return read_le(out); }
  bool read_f64(double& out) {
    u64 bits = 0;
    if (!read_le(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }
  bool read_bytes(std::span<const u8>& out, usize n) {
    if (bytes_.size() - pos_ < n) return false;
    out = bytes_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  template <typename T>
  bool read_le(T& out) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    T v = 0;
    for (usize i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(bytes_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    out = v;
    return true;
  }

  std::span<const u8> bytes_;
  usize pos_ = 0;
};

std::vector<u8> empty_request(FrameType type) {
  WireWriter w;
  w.put_type(type);
  return w.take();
}

}  // namespace

std::vector<u8> encode_open() { return empty_request(FrameType::kOpen); }
std::vector<u8> encode_close() { return empty_request(FrameType::kClose); }

std::vector<u8> encode_step(const Camera& camera) {
  WireWriter w;
  w.put_type(FrameType::kStep);
  w.put_f64(camera.position().x);
  w.put_f64(camera.position().y);
  w.put_f64(camera.position().z);
  w.put_f64(camera.view_angle_deg());
  return w.take();
}

std::vector<u8> encode_fetch(BlockId id) {
  WireWriter w;
  w.put_type(FrameType::kFetch);
  w.put_u32(id);
  return w.take();
}

std::vector<u8> encode_open_ok(SessionId session) {
  WireWriter w;
  w.put_type(FrameType::kOpenOk);
  w.put_u32(session);
  return w.take();
}

std::vector<u8> encode_step_ok(const SessionStepResult& result) {
  WireWriter w;
  w.put_type(FrameType::kStepOk);
  w.put_u64(result.step);
  w.put_u64(result.visible_blocks);
  w.put_u64(result.fast_misses);
  w.put_u64(result.coalesced_hits);
  w.put_u64(result.prefetched);
  w.put_u64(result.prefetch_shed);
  w.put_u64(result.prefetch_suppressed);
  w.put_f64(result.io_time);
  w.put_f64(result.lookup_time);
  w.put_f64(result.prefetch_time);
  w.put_f64(result.render_time);
  w.put_f64(result.total_time);
  return w.take();
}

std::vector<u8> encode_fetch_ok(BlockId id, bool fast_hit, bool coalesced,
                                SimSeconds seconds, u64 payload_bytes) {
  VIZ_REQUIRE(payload_bytes + 22 <= kMaxResponsePayload,
              "fetch payload exceeds the response frame cap");
  WireWriter w;
  w.put_type(FrameType::kFetchOk);
  w.put_u32(id);
  w.put_u8(fast_hit ? 1 : 0);
  w.put_u8(coalesced ? 1 : 0);
  w.put_f64(seconds);
  w.put_u64(payload_bytes);
  for (u64 i = 0; i < payload_bytes; ++i) w.put_u8(block_payload_byte(id, i));
  return w.take();
}

std::vector<u8> encode_close_ok(const SessionSummary& summary) {
  WireWriter w;
  w.put_type(FrameType::kCloseOk);
  w.put_u32(summary.id);
  w.put_u64(summary.steps);
  w.put_u64(summary.demand_requests);
  w.put_u64(summary.fast_misses);
  w.put_u64(summary.coalesced_hits);
  w.put_u64(summary.prefetched);
  w.put_u64(summary.prefetch_shed);
  w.put_u64(summary.prefetch_suppressed);
  w.put_f64(summary.sim_time);
  return w.take();
}

std::vector<u8> encode_error(NetErrorCode code, const std::string& message) {
  WireWriter w;
  w.put_type(FrameType::kError);
  w.put_u16(static_cast<u16>(code));
  const usize len = std::min<usize>(message.size(), 512);
  w.put_u16(static_cast<u16>(len));
  for (usize i = 0; i < len; ++i) w.put_u8(static_cast<u8>(message[i]));
  return w.take();
}

std::optional<Camera> decode_step(std::span<const u8> body) {
  WireReader r(body);
  Vec3 pos;
  double angle = 0.0;
  if (!r.read_f64(pos.x) || !r.read_f64(pos.y) || !r.read_f64(pos.z) ||
      !r.read_f64(angle) || !r.done()) {
    return std::nullopt;
  }
  // Reject what Camera's constructor would refuse (it throws): a hostile
  // frame must come out of here as nullopt, never as an exception. The
  // comparison is NaN-safe — NaN fails `angle > 0.0`.
  if (!(angle > 0.0 && angle < 180.0)) return std::nullopt;
  if (!std::isfinite(pos.x) || !std::isfinite(pos.y) || !std::isfinite(pos.z)) {
    return std::nullopt;
  }
  return Camera(pos, angle);
}

std::optional<BlockId> decode_fetch(std::span<const u8> body) {
  WireReader r(body);
  BlockId id = kInvalidBlock;
  if (!r.read_u32(id) || !r.done()) return std::nullopt;
  return id;
}

std::optional<SessionId> decode_open_ok(std::span<const u8> body) {
  WireReader r(body);
  SessionId id = 0;
  if (!r.read_u32(id) || !r.done()) return std::nullopt;
  return id;
}

std::optional<SessionStepResult> decode_step_ok(std::span<const u8> body) {
  WireReader r(body);
  SessionStepResult sr;
  u64 visible = 0, misses = 0, coalesced = 0, prefetched = 0, shed = 0,
      suppressed = 0;
  if (!r.read_u64(sr.step) || !r.read_u64(visible) || !r.read_u64(misses) ||
      !r.read_u64(coalesced) || !r.read_u64(prefetched) || !r.read_u64(shed) ||
      !r.read_u64(suppressed) || !r.read_f64(sr.io_time) ||
      !r.read_f64(sr.lookup_time) || !r.read_f64(sr.prefetch_time) ||
      !r.read_f64(sr.render_time) || !r.read_f64(sr.total_time) || !r.done()) {
    return std::nullopt;
  }
  sr.visible_blocks = static_cast<usize>(visible);
  sr.fast_misses = static_cast<usize>(misses);
  sr.coalesced_hits = static_cast<usize>(coalesced);
  sr.prefetched = static_cast<usize>(prefetched);
  sr.prefetch_shed = static_cast<usize>(shed);
  sr.prefetch_suppressed = static_cast<usize>(suppressed);
  return sr;
}

std::optional<FetchReply> decode_fetch_ok(std::span<const u8> body) {
  WireReader r(body);
  FetchReply reply;
  u8 fast_hit = 0, coalesced = 0;
  u64 payload_bytes = 0;
  std::span<const u8> payload;
  if (!r.read_u32(reply.block) || !r.read_u8(fast_hit) ||
      !r.read_u8(coalesced) || !r.read_f64(reply.seconds) ||
      !r.read_u64(payload_bytes) ||
      !r.read_bytes(payload, static_cast<usize>(payload_bytes)) || !r.done()) {
    return std::nullopt;
  }
  reply.fast_hit = fast_hit != 0;
  reply.coalesced = coalesced != 0;
  reply.payload.assign(payload.begin(), payload.end());
  return reply;
}

std::optional<SessionSummary> decode_close_ok(std::span<const u8> body) {
  WireReader r(body);
  SessionSummary s;
  if (!r.read_u32(s.id) || !r.read_u64(s.steps) ||
      !r.read_u64(s.demand_requests) || !r.read_u64(s.fast_misses) ||
      !r.read_u64(s.coalesced_hits) || !r.read_u64(s.prefetched) ||
      !r.read_u64(s.prefetch_shed) || !r.read_u64(s.prefetch_suppressed) ||
      !r.read_f64(s.sim_time) || !r.done()) {
    return std::nullopt;
  }
  return s;
}

std::optional<NetErrorReply> decode_error(std::span<const u8> body) {
  WireReader r(body);
  u16 code = 0, len = 0;
  std::span<const u8> text;
  if (!r.read_u16(code) || !r.read_u16(len) || !r.read_bytes(text, len) ||
      !r.done()) {
    return std::nullopt;
  }
  NetErrorReply reply;
  reply.code = static_cast<NetErrorCode>(code);
  reply.message.assign(text.begin(), text.end());
  return reply;
}

ParseStatus try_parse_frame(std::span<const u8> buffer, usize max_payload,
                            ParsedFrame& out) {
  if (buffer.size() < 4) return ParseStatus::kNeedMore;
  u32 length = 0;
  for (usize i = 0; i < 4; ++i) {
    length |= static_cast<u32>(buffer[i]) << (8 * i);
  }
  // A frame with no type byte is as fatal as an oversized one: the stream
  // offers no way to resynchronise, so the connection must go.
  if (length == 0 || length > max_payload) return ParseStatus::kTooLarge;
  if (buffer.size() - 4 < length) return ParseStatus::kNeedMore;
  out.type = static_cast<FrameType>(buffer[4]);
  out.body = buffer.subspan(5, length - 1);
  out.frame_bytes = 4 + static_cast<usize>(length);
  return ParseStatus::kFrame;
}

}  // namespace vizcache
