#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/camera.hpp"
#include "service/block_service.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace vizcache {

/// Wire protocol of the serving front-end (NetServer / NetClient).
///
/// Every frame is `u32 payload_length` (little-endian, counting every byte
/// after the length field) followed by the payload, whose first byte is the
/// FrameType. All integers are little-endian; doubles travel as the
/// little-endian bytes of their IEEE-754 bit pattern. Decoders are strict:
/// truncated or over-long payloads yield nullopt, never a crash.

/// First payload byte of every frame. Requests < 0x80 <= responses.
enum class FrameType : u8 {
  kOpen = 0x01,     ///< body: empty
  kStep = 0x02,     ///< body: f64 pos.x, pos.y, pos.z, view_angle_deg
  kFetch = 0x03,    ///< body: u32 block id
  kClose = 0x04,    ///< body: empty

  kOpenOk = 0x81,   ///< body: u32 session id
  kStepOk = 0x82,   ///< body: SessionStepResult (see encode_step_ok)
  kFetchOk = 0x83,  ///< body: u32 id, u8 fast_hit, u8 coalesced, f64
                    ///< seconds, u64 payload_bytes, payload bytes
  kCloseOk = 0x84,  ///< body: SessionSummary (see encode_close_ok)
  kError = 0xFF,    ///< body: u16 code, u16 message length, message bytes
};

/// Typed error codes carried by kError frames. Codes <= kShutdown close the
/// connection after the reply; the application-level codes (kRejected,
/// kBadBlock) leave it open so the client can retry.
enum class NetErrorCode : u16 {
  kMalformed = 1,      ///< frame failed to decode (truncated / trailing bytes)
  kFrameTooLarge = 2,  ///< declared payload length above the receiver's cap
  kUnknownType = 3,    ///< unrecognised FrameType
  kNoSession = 4,      ///< STEP/FETCH/CLOSE before a successful OPEN
  kSessionOpen = 5,    ///< OPEN while the connection already holds a session
  kOverloaded = 6,     ///< slow client: write queue exceeded its bound
  kShutdown = 7,       ///< server is stopping
  kInternal = 8,       ///< the service threw while serving the request
  kRejected = 100,     ///< admission control: max_sessions reached
  kBadBlock = 101,     ///< FETCH of an out-of-range block id
};

/// True for the codes after which the server closes the connection.
constexpr bool error_closes_connection(NetErrorCode code) {
  return static_cast<u16>(code) < 100;
}

/// Hard bounds. Requests are tiny (largest is STEP at 33 payload bytes);
/// responses carry block payloads, so their cap is generous.
constexpr usize kMaxRequestPayload = 256;
constexpr usize kMaxResponsePayload = usize{8} << 20;

/// The serving hierarchy is simulated, so FETCH payload bytes are synthesized
/// deterministically from (block id, offset) — clients and tests can verify
/// payload integrity without shipping a real volume over the wire.
inline u8 block_payload_byte(BlockId id, u64 offset) {
  u64 x = (static_cast<u64>(id) << 32) ^ (offset + 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<u8>(x);
}

/// Decoded kError frame.
struct NetErrorReply {
  NetErrorCode code = NetErrorCode::kInternal;
  std::string message;
};

/// Decoded kFetchOk frame.
struct FetchReply {
  BlockId block = kInvalidBlock;
  bool fast_hit = false;
  bool coalesced = false;
  SimSeconds seconds = 0.0;
  std::vector<u8> payload;
};

/// Thrown by NetClient when the server answers with a kError frame.
class NetProtocolError : public VizError {
 public:
  NetProtocolError(NetErrorCode code, const std::string& message)
      : VizError(message), code_(code) {}
  NetErrorCode code() const { return code_; }

 private:
  NetErrorCode code_;
};

// ---------------------------------------------------------------------------
// Encoders: return a complete frame (length prefix included).

std::vector<u8> encode_open();
std::vector<u8> encode_step(const Camera& camera);
std::vector<u8> encode_fetch(BlockId id);
std::vector<u8> encode_close();

std::vector<u8> encode_open_ok(SessionId session);
std::vector<u8> encode_step_ok(const SessionStepResult& result);
/// Synthesizes `payload_bytes` bytes of block_payload_byte(id, i) payload.
std::vector<u8> encode_fetch_ok(BlockId id, bool fast_hit, bool coalesced,
                                SimSeconds seconds, u64 payload_bytes);
std::vector<u8> encode_close_ok(const SessionSummary& summary);
std::vector<u8> encode_error(NetErrorCode code, const std::string& message);

// ---------------------------------------------------------------------------
// Decoders: `body` is the frame payload AFTER the FrameType byte. Strict —
// nullopt on truncation, trailing bytes, or any out-of-bounds length.

std::optional<Camera> decode_step(std::span<const u8> body);
std::optional<BlockId> decode_fetch(std::span<const u8> body);
std::optional<SessionId> decode_open_ok(std::span<const u8> body);
std::optional<SessionStepResult> decode_step_ok(std::span<const u8> body);
std::optional<FetchReply> decode_fetch_ok(std::span<const u8> body);
std::optional<SessionSummary> decode_close_ok(std::span<const u8> body);
std::optional<NetErrorReply> decode_error(std::span<const u8> body);

// ---------------------------------------------------------------------------
// Incremental framing over a byte stream.

enum class ParseStatus {
  kNeedMore,   ///< the buffer does not yet hold a complete frame
  kFrame,      ///< `out` holds one frame (type may still be unknown)
  kTooLarge,   ///< declared length is 0 or exceeds `max_payload` — fatal
};

/// One frame cut out of `buffer`; `body` views into the caller's buffer.
struct ParsedFrame {
  FrameType type = FrameType::kError;
  std::span<const u8> body;  ///< payload after the type byte
  usize frame_bytes = 0;     ///< total bytes consumed (prefix + payload)
};

/// Try to cut one frame off the front of `buffer`.
ParseStatus try_parse_frame(std::span<const u8> buffer, usize max_payload,
                            ParsedFrame& out);

}  // namespace vizcache
