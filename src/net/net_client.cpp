#include "net/net_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace vizcache {

NetClient::~NetClient() { disconnect(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rbuf_(std::move(other.rbuf_)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void NetClient::connect(const std::string& host, u16 port,
                        int so_rcvbuf_bytes) {
  VIZ_REQUIRE(fd_ < 0, "NetClient is already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  VIZ_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "NetClient::connect needs a numeric IPv4 host");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw IoError("NetClient: socket() failed");
  if (so_rcvbuf_bytes > 0) {
    // Must precede connect() so the small window is what gets advertised.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &so_rcvbuf_bytes,
                 sizeof so_rcvbuf_bytes);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("NetClient: connect to " + host + " failed");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  rbuf_.clear();
}

void NetClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rbuf_.clear();
}

void NetClient::send_raw(std::span<const u8> bytes) {
  VIZ_REQUIRE(fd_ >= 0, "NetClient is not connected");
  usize sent = 0;
  while (sent < bytes.size()) {
    const ssize_t s =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (s > 0) {
      sent += static_cast<usize>(s);
      continue;
    }
    if (errno == EINTR) continue;
    throw IoError("NetClient: send failed");
  }
}

std::optional<RawFrame> NetClient::read_frame() {
  VIZ_REQUIRE(fd_ >= 0, "NetClient is not connected");
  for (;;) {
    ParsedFrame frame;
    const ParseStatus status =
        try_parse_frame(rbuf_, kMaxResponsePayload, frame);
    if (status == ParseStatus::kTooLarge) {
      throw IoError("NetClient: unparseable response stream");
    }
    if (status == ParseStatus::kFrame) {
      RawFrame out;
      out.type = frame.type;
      out.body.assign(frame.body.begin(), frame.body.end());
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(frame.frame_bytes));
      return out;
    }
    u8 buf[16384];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + r);
      continue;
    }
    if (r == 0) return std::nullopt;  // orderly EOF
    if (errno == EINTR) continue;
    throw IoError("NetClient: recv failed");
  }
}

RawFrame NetClient::round_trip(const std::vector<u8>& request,
                               FrameType expected) {
  send_raw(request);
  std::optional<RawFrame> frame = read_frame();
  if (!frame) throw IoError("NetClient: connection closed by server");
  if (frame->type == FrameType::kError) {
    const std::optional<NetErrorReply> err = decode_error(frame->body);
    if (!err) throw IoError("NetClient: undecodable error frame");
    throw NetProtocolError(err->code, err->message);
  }
  if (frame->type != expected) {
    throw IoError("NetClient: unexpected response frame type");
  }
  return *std::move(frame);
}

SessionId NetClient::open() {
  const RawFrame frame = round_trip(encode_open(), FrameType::kOpenOk);
  const std::optional<SessionId> sid = decode_open_ok(frame.body);
  if (!sid) throw IoError("NetClient: undecodable OPEN_OK");
  return *sid;
}

SessionStepResult NetClient::step(const Camera& camera) {
  const RawFrame frame = round_trip(encode_step(camera), FrameType::kStepOk);
  const std::optional<SessionStepResult> sr = decode_step_ok(frame.body);
  if (!sr) throw IoError("NetClient: undecodable STEP_OK");
  return *sr;
}

FetchReply NetClient::fetch(BlockId id) {
  const RawFrame frame = round_trip(encode_fetch(id), FrameType::kFetchOk);
  std::optional<FetchReply> reply = decode_fetch_ok(frame.body);
  if (!reply) throw IoError("NetClient: undecodable FETCH_OK");
  return *std::move(reply);
}

SessionSummary NetClient::close_session() {
  const RawFrame frame = round_trip(encode_close(), FrameType::kCloseOk);
  const std::optional<SessionSummary> summary = decode_close_ok(frame.body);
  if (!summary) throw IoError("NetClient: undecodable CLOSE_OK");
  return *summary;
}

}  // namespace vizcache
