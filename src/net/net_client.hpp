#pragma once

#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace vizcache {

/// One raw frame as read off the socket (used by protocol tests and the
/// load generator's malformed-input scenarios).
struct RawFrame {
  FrameType type = FrameType::kError;
  std::vector<u8> body;
};

/// Small blocking client for the NetServer wire protocol: one TCP
/// connection, one request in flight at a time. Error frames surface as
/// NetProtocolError; transport failures as IoError. Movable, not copyable —
/// the load generator keeps hundreds of these in a vector.
///
/// Not thread-safe: one NetClient belongs to one driving thread.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;

  /// Connect to `host:port` (numeric IPv4 host, e.g. "127.0.0.1").
  /// `so_rcvbuf_bytes` > 0 shrinks SO_RCVBUF before connecting, so a client
  /// that stops reading exerts backpressure after only a few kilobytes —
  /// the slow-client scenarios depend on this.
  void connect(const std::string& host, u16 port, int so_rcvbuf_bytes = 0);
  bool connected() const { return fd_ >= 0; }

  /// Abrupt close: no CLOSE frame — the server must reap the session.
  void disconnect();

  SessionId open();
  SessionStepResult step(const Camera& camera);
  FetchReply fetch(BlockId id);
  SessionSummary close_session();

  /// Escape hatches for malformed-input and backpressure scenarios.
  void send_raw(std::span<const u8> bytes);
  /// Blocking read of one frame; nullopt on EOF. Throws IoError on a
  /// transport error or an unparseable stream.
  std::optional<RawFrame> read_frame();

 private:
  /// Send `request`, read one frame, require `expected` (kError throws
  /// NetProtocolError, EOF and anything else IoError).
  RawFrame round_trip(const std::vector<u8>& request, FrameType expected);

  int fd_ = -1;
  std::vector<u8> rbuf_;
};

}  // namespace vizcache
