#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "service/block_service.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_pool.hpp"

namespace vizcache {

struct NetServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (read it via port()).
  u16 port = 0;

  /// Service executor threads. BlockService::step can block in the read
  /// coalescer, so requests run on workers, never on the event loop — that
  /// is also what lets two connections' fetches coalesce at all.
  usize workers = 2;

  /// Accepts beyond this are refused with a kOverloaded error frame.
  usize max_connections = 4096;

  /// Per-connection cap on the declared payload length of INCOMING frames.
  /// Requests are tiny; anything bigger is hostile or corrupt.
  usize max_request_payload = kMaxRequestPayload;

  /// Backpressure, part 1: once a connection's pending write bytes exceed
  /// this bound the server stops reading from it (no new requests accepted
  /// until the client drains).
  usize max_write_queue_bytes = usize{4} << 20;

  /// Backpressure, part 2: a connection whose pending writes make no
  /// progress for this long is dropped (net.backpressure.closed). 0 never
  /// drops.
  u64 write_stall_timeout_ms = 5000;

  /// When > 0, shrink SO_SNDBUF on accepted sockets — lets tests and the
  /// bench make a slow client overflow the write queue quickly.
  int so_sndbuf_bytes = 0;
};

/// Non-blocking epoll event-loop front-end serving the wire protocol of
/// protocol.hpp over TCP on behalf of one BlockService.
///
/// Threading: ONE event-loop thread owns every connection object and all
/// socket fds — no lock guards them. Service calls run on a ThreadPool and
/// hand their encoded reply back through CompletionQueue, the net layer's
/// only mutex (a leaf lock, per the DESIGN.md no-nesting rule: neither the
/// loop nor a worker ever calls BlockService or touches a socket while
/// holding it). At most one request per connection is in flight at a time —
/// replies stay in order and a flooding client queues in its own rbuf.
class NetServer {
 public:
  /// `service` must outlive the server.
  explicit NetServer(BlockService& service, NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind, listen, and spawn the event loop. Throws IoError on bind failure.
  void start();

  /// Graceful shutdown: stop accepting, finish in-flight requests, close
  /// every live session, drop every connection, join the loop. Idempotent;
  /// also run by the destructor.
  void stop();

  /// The bound port (useful with config.port == 0).
  u16 port() const { return port_; }

  bool running() const { return started_ && !stopped_; }

  usize active_connections() const { return conn_count_.load(); }

 private:
  /// A worker's reply to the event loop. The loop applies these in arrival
  /// order; `opened`/`closed_session` keep the connection's session field in
  /// sync even when the connection died while the request was in flight.
  struct Completion {
    u64 conn = 0;
    std::vector<u8> frame;
    bool close_after = false;
    std::optional<SessionId> opened;
    bool closed_session = false;
  };

  /// The only lock in the net layer (leaf): workers push, the loop drains.
  class CompletionQueue {
   public:
    void push(Completion completion) EXCLUDES(mutex_);
    std::vector<Completion> drain() EXCLUDES(mutex_);

   private:
    Mutex mutex_;
    std::vector<Completion> items_ GUARDED_BY(mutex_);
  };

  enum class ConnState : u8 {
    kServing,   ///< reading requests, writing replies
    kDraining,  ///< error/shutdown reply queued: flush wbuf, then close
    kZombie,    ///< socket gone but a worker still holds the request
  };

  /// Owned exclusively by the event-loop thread.
  struct Connection {
    int fd = -1;
    u64 id = 0;
    ConnState state = ConnState::kServing;
    bool op_pending = false;
    std::optional<SessionId> session;
    std::vector<u8> rbuf;
    std::vector<u8> wbuf;
    usize wpos = 0;              ///< bytes of wbuf already sent
    u32 epoll_events = 0;        ///< mask currently registered with epoll
    u64 last_progress_ms = 0;    ///< loop clock at the last socket progress
  };

  struct Instruments {
    MetricCounter* accepted = nullptr;
    MetricCounter* closed = nullptr;
    MetricCounter* rejected = nullptr;
    MetricGauge* active = nullptr;
    MetricCounter* frames_received = nullptr;
    MetricCounter* frames_sent = nullptr;
    MetricCounter* bytes_read = nullptr;
    MetricCounter* bytes_written = nullptr;
    MetricCounter* malformed = nullptr;
    MetricCounter* backpressure_closed = nullptr;
  };

  void loop();
  void accept_ready();
  void handle_conn_event(u64 id, u32 events);
  void handle_disconnect(Connection& conn);
  void close_session_quietly(SessionId session);
  void read_ready(Connection& conn);
  void parse_frames(Connection& conn);
  void dispatch(Connection& conn, const ParsedFrame& frame);
  void submit_open(Connection& conn);
  void submit_step(Connection& conn, const Camera& camera);
  void submit_fetch(Connection& conn, BlockId block);
  void submit_close(Connection& conn);
  void process_completions();
  void apply_completion(Completion& completion);
  void enqueue(Connection& conn, std::vector<u8> frame);
  void fail_conn(Connection& conn, NetErrorCode code, const char* message);
  void flush(Connection& conn);
  void update_events(Connection& conn);
  void check_write_stalls(u64 now_ms);
  void destroy_conn(u64 id);
  void teardown_all();
  void wake();
  usize pending_write_bytes(const Connection& conn) const {
    return conn.wbuf.size() - conn.wpos;
  }

  BlockService& service_;
  const NetServerConfig config_;
  Instruments ins_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  u16 port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<usize> conn_count_{0};

  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
  CompletionQueue completions_;

  // Event-loop-thread state (never touched by workers or callers).
  std::unordered_map<u64, Connection> conns_;
  u64 next_conn_id_ = 1;
};

}  // namespace vizcache
