#include "net/net_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "util/error.hpp"
#include "util/log.hpp"

namespace vizcache {
namespace {

constexpr u64 kWakeToken = 0;
constexpr u64 kListenToken = 1;
constexpr u64 kFirstConnId = 2;

/// Per-wakeup budget of bytes buffered off one socket — bounds a flooder's
/// rbuf; the rest stays in the kernel until the connection catches up.
constexpr usize kReadBudget = 64 * 1024;

u64 loop_now_ms() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

void NetServer::CompletionQueue::push(Completion completion) {
  MutexLock lock(mutex_);
  items_.push_back(std::move(completion));
}

std::vector<NetServer::Completion> NetServer::CompletionQueue::drain() {
  MutexLock lock(mutex_);
  std::vector<Completion> out;
  out.swap(items_);
  return out;
}

NetServer::NetServer(BlockService& service, NetServerConfig config)
    : service_(service), config_(config) {
  VIZ_REQUIRE(config_.workers >= 1, "NetServer needs at least one worker");
  VIZ_REQUIRE(config_.max_request_payload >= 64,
              "request payload cap below the largest request frame");
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  VIZ_REQUIRE(!started_.load(), "NetServer::start called twice");

  MetricsRegistry& reg = service_.metrics();
  ins_.accepted = &reg.counter("net.connections.accepted");
  ins_.closed = &reg.counter("net.connections.closed");
  ins_.rejected = &reg.counter("net.connections.rejected");
  ins_.active = &reg.gauge("net.connections.active");
  ins_.frames_received = &reg.counter("net.frames.received");
  ins_.frames_sent = &reg.counter("net.frames.sent");
  ins_.bytes_read = &reg.counter("net.bytes.read");
  ins_.bytes_written = &reg.counter("net.bytes.written");
  ins_.malformed = &reg.counter("net.errors.malformed");
  ins_.backpressure_closed = &reg.counter("net.backpressure.closed");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw IoError("NetServer: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 512) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("NetServer: bind/listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw IoError("NetServer: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.u64 = kListenToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  pool_ = std::make_unique<ThreadPool>(config_.workers);
  started_.store(true);
  loop_thread_ = std::thread([this] { loop(); });
  VIZ_LOG_INFO << "net: serving on 127.0.0.1:" << port_ << " ("
               << config_.workers << " workers)";
}

void NetServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stopping_.store(true);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  pool_->shutdown();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  VIZ_LOG_INFO << "net: stopped (port " << port_ << ")";
}

void NetServer::wake() {
  const u64 one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void NetServer::loop() {
  std::vector<epoll_event> events(128);
  bool draining = false;
  for (;;) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout_ms=*/200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // fatal epoll failure: fall through to teardown below
    }
    for (int i = 0; i < n; ++i) {
      const u64 token = events[i].data.u64;
      if (token == kWakeToken) {
        u64 buf = 0;
        while (::read(wake_fd_, &buf, sizeof buf) == sizeof buf) {
        }
      } else if (token == kListenToken) {
        accept_ready();
      } else {
        handle_conn_event(token, events[i].events);
      }
    }
    process_completions();
    check_write_stalls(loop_now_ms());
    if (stopping_.load() && !draining) {
      draining = true;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    if (draining) {
      bool pending = false;
      for (const auto& [id, conn] : conns_) {
        if (conn.op_pending) {
          pending = true;
          break;
        }
      }
      if (!pending) break;  // every worker reply has been applied
    }
  }
  teardown_all();
}

void NetServer::accept_ready() {
  const u64 now = loop_now_ms();
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for the next event
    }
    if (stopping_.load() || conns_.size() >= config_.max_connections) {
      // Count before the frame leaves: a client that has observed the
      // rejection (error frame or the close) must also observe the counter.
      ins_.rejected->inc();
      const std::vector<u8> err =
          encode_error(stopping_.load() ? NetErrorCode::kShutdown
                                        : NetErrorCode::kOverloaded,
                       "server not accepting connections");
      (void)::send(fd, err.data(), err.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (config_.so_sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf_bytes,
                   sizeof(int));
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_ < kFirstConnId ? kFirstConnId : next_conn_id_;
    next_conn_id_ = conn.id + 1;
    conn.last_progress_ms = now;
    conn.epoll_events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(conn.id, std::move(conn));
    ins_.accepted->inc();
    conn_count_.store(conns_.size());
    ins_.active->set(static_cast<double>(conns_.size()));
  }
}

void NetServer::handle_conn_event(u64 id, u32 events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // destroyed earlier in this batch
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    handle_disconnect(it->second);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush(it->second);
    it = conns_.find(id);  // flush may have destroyed the connection
    if (it == conns_.end()) return;
  }
  if ((events & EPOLLIN) != 0) read_ready(it->second);
}

void NetServer::handle_disconnect(Connection& conn) {
  if (conn.op_pending) {
    // A worker still holds this connection's request; keep the bookkeeping
    // entry (and its session) alive until the completion lands, then reap.
    if (conn.fd >= 0) ::close(conn.fd);  // epoll deregisters automatically
    conn.fd = -1;
    conn.state = ConnState::kZombie;
    return;
  }
  destroy_conn(conn.id);
}

void NetServer::read_ready(Connection& conn) {
  usize budget = kReadBudget;
  for (;;) {
    u8 buf[16384];
    const usize want = std::min(budget, sizeof buf);
    if (want == 0) break;
    const ssize_t r = ::recv(conn.fd, buf, want, 0);
    if (r > 0) {
      conn.rbuf.insert(conn.rbuf.end(), buf, buf + r);
      conn.last_progress_ms = loop_now_ms();
      ins_.bytes_read->inc(static_cast<u64>(r));
      budget -= static_cast<usize>(r);
      continue;
    }
    if (r == 0) {
      handle_disconnect(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    handle_disconnect(conn);
    return;
  }
  parse_frames(conn);
}

void NetServer::parse_frames(Connection& conn) {
  usize pos = 0;
  while (conn.state == ConnState::kServing && !conn.op_pending &&
         pending_write_bytes(conn) <= config_.max_write_queue_bytes) {
    ParsedFrame frame;
    const ParseStatus status =
        try_parse_frame(std::span<const u8>(conn.rbuf).subspan(pos),
                        config_.max_request_payload, frame);
    if (status == ParseStatus::kNeedMore) break;
    if (status == ParseStatus::kTooLarge) {
      fail_conn(conn, NetErrorCode::kFrameTooLarge,
                "frame length outside the accepted range");
      break;
    }
    ins_.frames_received->inc();
    pos += frame.frame_bytes;
    dispatch(conn, frame);
  }
  if (pos > 0) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  update_events(conn);
}

void NetServer::dispatch(Connection& conn, const ParsedFrame& frame) {
  switch (frame.type) {
    case FrameType::kOpen:
      if (!frame.body.empty()) {
        fail_conn(conn, NetErrorCode::kMalformed, "OPEN carries a body");
      } else if (conn.session) {
        fail_conn(conn, NetErrorCode::kSessionOpen,
                  "connection already holds a session");
      } else {
        submit_open(conn);
      }
      return;
    case FrameType::kStep: {
      if (!conn.session) {
        fail_conn(conn, NetErrorCode::kNoSession, "STEP before OPEN");
        return;
      }
      const std::optional<Camera> camera = decode_step(frame.body);
      if (!camera) {
        fail_conn(conn, NetErrorCode::kMalformed, "undecodable STEP body");
        return;
      }
      submit_step(conn, *camera);
      return;
    }
    case FrameType::kFetch: {
      if (!conn.session) {
        fail_conn(conn, NetErrorCode::kNoSession, "FETCH before OPEN");
        return;
      }
      const std::optional<BlockId> block = decode_fetch(frame.body);
      if (!block) {
        fail_conn(conn, NetErrorCode::kMalformed, "undecodable FETCH body");
        return;
      }
      if (*block >= service_.grid().block_count()) {
        // Application-level error: reply and keep serving the connection.
        enqueue(conn, encode_error(NetErrorCode::kBadBlock,
                                   "block id out of range"));
        return;
      }
      submit_fetch(conn, *block);
      return;
    }
    case FrameType::kClose:
      if (!frame.body.empty()) {
        fail_conn(conn, NetErrorCode::kMalformed, "CLOSE carries a body");
      } else if (!conn.session) {
        fail_conn(conn, NetErrorCode::kNoSession, "CLOSE before OPEN");
      } else {
        submit_close(conn);
      }
      return;
    default:
      fail_conn(conn, NetErrorCode::kUnknownType, "unknown frame type");
      return;
  }
}

void NetServer::submit_open(Connection& conn) {
  conn.op_pending = true;
  const u64 cid = conn.id;
  pool_->submit([this, cid] {
    Completion completion;
    completion.conn = cid;
    try {
      if (const std::optional<SessionId> sid = service_.open_session()) {
        completion.opened = *sid;
        completion.frame = encode_open_ok(*sid);
      } else {
        completion.frame =
            encode_error(NetErrorCode::kRejected, "max sessions reached");
      }
    } catch (const VizError& e) {
      completion.frame = encode_error(NetErrorCode::kInternal, e.what());
      completion.close_after = true;
    }
    completions_.push(std::move(completion));
    wake();
  });
}

void NetServer::submit_step(Connection& conn, const Camera& camera) {
  conn.op_pending = true;
  const u64 cid = conn.id;
  const SessionId session = *conn.session;
  pool_->submit([this, cid, session, camera] {
    Completion completion;
    completion.conn = cid;
    try {
      completion.frame = encode_step_ok(service_.step(session, camera));
    } catch (const VizError& e) {
      completion.frame = encode_error(NetErrorCode::kInternal, e.what());
      completion.close_after = true;
    }
    completions_.push(std::move(completion));
    wake();
  });
}

void NetServer::submit_fetch(Connection& conn, BlockId block) {
  conn.op_pending = true;
  const u64 cid = conn.id;
  const SessionId session = *conn.session;
  pool_->submit([this, cid, session, block] {
    Completion completion;
    completion.conn = cid;
    try {
      const BlockService::BlockFetch bf = service_.fetch_block(session, block);
      completion.frame =
          encode_fetch_ok(block, bf.fetch.fast_hit, bf.fetch.coalesced,
                          bf.fetch.seconds, bf.bytes);
    } catch (const VizError& e) {
      completion.frame = encode_error(NetErrorCode::kInternal, e.what());
      completion.close_after = true;
    }
    completions_.push(std::move(completion));
    wake();
  });
}

void NetServer::submit_close(Connection& conn) {
  conn.op_pending = true;
  const u64 cid = conn.id;
  const SessionId session = *conn.session;
  pool_->submit([this, cid, session] {
    Completion completion;
    completion.conn = cid;
    try {
      completion.frame = encode_close_ok(service_.close_session(session));
      completion.closed_session = true;
    } catch (const VizError& e) {
      completion.frame = encode_error(NetErrorCode::kInternal, e.what());
      completion.close_after = true;
    }
    completions_.push(std::move(completion));
    wake();
  });
}

void NetServer::process_completions() {
  for (Completion& completion : completions_.drain()) {
    apply_completion(completion);
  }
}

void NetServer::apply_completion(Completion& completion) {
  auto it = conns_.find(completion.conn);
  if (it == conns_.end()) {
    // The connection is gone without leaving a zombie (should not happen,
    // but never leak a session the worker opened meanwhile).
    if (completion.opened) close_session_quietly(*completion.opened);
    return;
  }
  Connection& conn = it->second;
  conn.op_pending = false;
  if (completion.opened) conn.session = *completion.opened;
  if (completion.closed_session) conn.session.reset();
  if (conn.state == ConnState::kZombie) {
    destroy_conn(conn.id);  // reaps any session the connection still holds
    return;
  }
  enqueue(conn, std::move(completion.frame));
  if (completion.close_after && conn.state == ConnState::kServing) {
    conn.state = ConnState::kDraining;
  }
  parse_frames(conn);  // serve the next pipelined request, refresh epoll mask
}

void NetServer::enqueue(Connection& conn, std::vector<u8> frame) {
  conn.wbuf.insert(conn.wbuf.end(), frame.begin(), frame.end());
  ins_.frames_sent->inc();
  update_events(conn);
}

void NetServer::fail_conn(Connection& conn, NetErrorCode code,
                          const char* message) {
  if (conn.state != ConnState::kServing) return;
  if (code == NetErrorCode::kMalformed || code == NetErrorCode::kFrameTooLarge ||
      code == NetErrorCode::kUnknownType) {
    ins_.malformed->inc();
  }
  enqueue(conn, encode_error(code, message));
  if (error_closes_connection(code)) conn.state = ConnState::kDraining;
}

void NetServer::flush(Connection& conn) {
  while (conn.wpos < conn.wbuf.size()) {
    const ssize_t s = ::send(conn.fd, conn.wbuf.data() + conn.wpos,
                             conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
    if (s > 0) {
      conn.wpos += static_cast<usize>(s);
      conn.last_progress_ms = loop_now_ms();
      ins_.bytes_written->inc(static_cast<u64>(s));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    handle_disconnect(conn);
    return;
  }
  if (conn.wpos == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.wpos = 0;
    if (conn.state == ConnState::kDraining) {
      destroy_conn(conn.id);  // error/shutdown reply delivered: close
      return;
    }
  }
  // Draining below the bound lifts the backpressure pause; requests that
  // were already buffered in rbuf get no further socket event, so parse
  // them now (parse_frames refreshes the epoll mask either way).
  parse_frames(conn);
}

void NetServer::update_events(Connection& conn) {
  if (conn.fd < 0) return;
  u32 want = 0;
  // Backpressure: reading pauses while a request is in flight or while the
  // client has not drained its replies below the write-queue bound.
  if (conn.state == ConnState::kServing && !conn.op_pending &&
      pending_write_bytes(conn) <= config_.max_write_queue_bytes) {
    want |= EPOLLIN;
  }
  if (pending_write_bytes(conn) > 0) want |= EPOLLOUT;
  if (want == conn.epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.epoll_events = want;
}

void NetServer::check_write_stalls(u64 now_ms) {
  if (config_.write_stall_timeout_ms == 0) return;
  std::vector<u64> stalled;
  for (const auto& [id, conn] : conns_) {
    if (conn.fd < 0 || pending_write_bytes(conn) == 0) continue;
    if (now_ms - conn.last_progress_ms > config_.write_stall_timeout_ms) {
      stalled.push_back(id);
    }
  }
  for (const u64 id : stalled) {
    ins_.backpressure_closed->inc();
    handle_disconnect(conns_.at(id));
  }
}

void NetServer::close_session_quietly(SessionId session) {
  try {
    service_.close_session(session);
  } catch (const VizError&) {
    // Already closed by the request that raced the disconnect.
  }
}

void NetServer::destroy_conn(u64 id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (conn.session) close_session_quietly(*conn.session);
  if (conn.fd >= 0) ::close(conn.fd);
  conns_.erase(it);
  ins_.closed->inc();
  conn_count_.store(conns_.size());
  ins_.active->set(static_cast<double>(conns_.size()));
}

void NetServer::teardown_all() {
  const std::vector<u8> notice =
      encode_error(NetErrorCode::kShutdown, "server shutting down");
  std::vector<u64> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ids.push_back(id);
    if (conn.fd >= 0 && conn.state == ConnState::kServing) {
      (void)::send(conn.fd, notice.data(), notice.size(), MSG_NOSIGNAL);
    }
  }
  for (const u64 id : ids) destroy_conn(id);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace vizcache
