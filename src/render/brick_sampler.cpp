#include "render/brick_sampler.hpp"

#include <utility>

#include "util/error.hpp"

namespace vizcache {

ResidentBrickSet::ResidentBrickSet(const BlockGrid& grid)
    : grid_(grid),
      payloads_(grid.block_count()),
      views_(grid.block_count()) {}

BrickView ResidentBrickSet::brick(BlockId id) const {
  VIZ_REQUIRE(id < views_.size(), "block id out of range");
  return views_[id];
}

void ResidentBrickSet::load(const BlockStore& store, BlockId id, usize var,
                            usize timestep) {
  VIZ_REQUIRE(id < views_.size(), "block id out of range");
  std::vector<float> payload = store.read_block(id, var, timestep);
  VIZ_CHECK(payload.size() == grid_.block_voxels(id),
            "block payload size does not match grid");
  if (!views_[id].resident()) ++resident_count_;
  payloads_[id] = std::move(payload);
  const Dims3 o = grid_.block_voxel_origin(id);
  const Dims3 e = grid_.block_voxel_extent(id);
  views_[id] = {payloads_[id].data(), o.x, o.y, o.z, e.x, e.y, e.z};
}

void ResidentBrickSet::load_all(const BlockStore& store, usize var,
                                usize timestep) {
  for (usize id = 0; id < grid_.block_count(); ++id) {
    load(store, static_cast<BlockId>(id), var, timestep);
  }
}

void ResidentBrickSet::evict(BlockId id) {
  VIZ_REQUIRE(id < views_.size(), "block id out of range");
  if (!views_[id].resident()) return;
  payloads_[id].clear();
  payloads_[id].shrink_to_fit();
  views_[id] = BrickView{};
  --resident_count_;
}

bool ResidentBrickSet::resident(BlockId id) const {
  VIZ_REQUIRE(id < views_.size(), "block id out of range");
  return views_[id].resident();
}

std::function<std::optional<float>(const Vec3&)> make_reference_sampler(
    const BrickSampler& bricks) {
  const BrickSampler* src = &bricks;
  return [src](const Vec3& p) -> std::optional<float> {
    const BlockGrid& grid = src->grid();
    BlockId id = grid.block_at_normalized(p);
    if (id == kInvalidBlock) return std::nullopt;
    BrickView view = src->brick(id);
    if (!view.resident()) return std::nullopt;
    return sample_brick_trilinear(grid.volume_dims(), view, p);
  };
}

}  // namespace vizcache
