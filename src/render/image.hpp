#pragma once

#include <string>
#include <vector>

#include "render/transfer_function.hpp"
#include "util/types.hpp"

namespace vizcache {

/// Float RGBA framebuffer with PPM export (examples write renderings for
/// visual inspection).
class Image {
 public:
  Image(usize width, usize height, Rgba fill = {});

  usize width() const { return width_; }
  usize height() const { return height_; }

  Rgba& at(usize x, usize y) { return pixels_[y * width_ + x]; }
  const Rgba& at(usize x, usize y) const { return pixels_[y * width_ + x]; }

  /// Fraction of pixels with non-zero alpha (tests use this to check that a
  /// rendering actually hit the volume).
  double coverage() const;

  /// Mean luminance of the color channels.
  double mean_luminance() const;

  /// Binary 8-bit PPM (P6); throws IoError on failure.
  void write_ppm(const std::string& path) const;

 private:
  usize width_;
  usize height_;
  std::vector<Rgba> pixels_;
};

}  // namespace vizcache
