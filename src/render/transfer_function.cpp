#include "render/transfer_function.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vizcache {

TransferFunction::TransferFunction(std::vector<ControlPoint> points)
    : points_(std::move(points)) {
  VIZ_REQUIRE(!points_.empty(), "transfer function needs control points");
  std::sort(points_.begin(), points_.end(),
            [](const ControlPoint& a, const ControlPoint& b) {
              return a.value < b.value;
            });
}

Rgba TransferFunction::sample(float value) const {
  VIZ_CHECK(!points_.empty(), "empty transfer function");
  value = std::clamp(value, 0.0f, 1.0f);
  if (value <= points_.front().value) return points_.front().color;
  if (value >= points_.back().value) return points_.back().color;
  for (usize i = 1; i < points_.size(); ++i) {
    if (value <= points_[i].value) {
      const ControlPoint& a = points_[i - 1];
      const ControlPoint& b = points_[i];
      float span = b.value - a.value;
      float t = span > 0.0f ? (value - a.value) / span : 0.0f;
      auto lerp = [t](float x, float y) { return x + (y - x) * t; };
      return {lerp(a.color.r, b.color.r), lerp(a.color.g, b.color.g),
              lerp(a.color.b, b.color.b), lerp(a.color.a, b.color.a)};
    }
  }
  return points_.back().color;
}

void TransferFunction::scale_opacity(float factor) {
  for (ControlPoint& p : points_) {
    p.color.a = std::clamp(p.color.a * factor, 0.0f, 1.0f);
  }
}

TransferFunction TransferFunction::grayscale() {
  return TransferFunction({{0.0f, {0, 0, 0, 0.0f}}, {1.0f, {1, 1, 1, 0.8f}}});
}

TransferFunction TransferFunction::fire() {
  return TransferFunction({{0.0f, {0, 0, 0, 0.0f}},
                           {0.3f, {0.5f, 0.0f, 0.0f, 0.05f}},
                           {0.6f, {1.0f, 0.4f, 0.0f, 0.3f}},
                           {0.85f, {1.0f, 0.8f, 0.2f, 0.6f}},
                           {1.0f, {1.0f, 1.0f, 0.9f, 0.9f}}});
}

TransferFunction TransferFunction::cool_warm() {
  return TransferFunction({{0.0f, {0.23f, 0.30f, 0.75f, 0.02f}},
                           {0.5f, {0.87f, 0.87f, 0.87f, 0.1f}},
                           {1.0f, {0.71f, 0.02f, 0.15f, 0.7f}}});
}

TransferFunctionLUT::TransferFunctionLUT(const TransferFunction& tf,
                                         double step_size, usize resolution)
    : step_size_(step_size) {
  VIZ_REQUIRE(step_size > 0.0, "LUT step size must be positive");
  VIZ_REQUIRE(resolution >= 1, "LUT needs at least one segment");
  const float exponent = static_cast<float>(step_size * 10.0);
  entries_.resize(resolution + 1);
  for (usize i = 0; i <= resolution; ++i) {
    const float v = static_cast<float>(i) / static_cast<float>(resolution);
    const Rgba c = tf.sample(v);
    const float ac = 1.0f - std::pow(1.0f - c.a, exponent);
    entries_[i] = {c.r * ac, c.g * ac, c.b * ac, ac};
  }
  scale_ = static_cast<float>(resolution);
}

TransferFunction TransferFunction::iso_band(float lo, float hi, Rgba color) {
  VIZ_REQUIRE(lo < hi, "iso band range inverted");
  float eps = 0.02f;
  Rgba clear{0, 0, 0, 0};
  return TransferFunction({{0.0f, clear},
                           {std::max(0.0f, lo - eps), clear},
                           {lo, color},
                           {hi, color},
                           {std::min(1.0f, hi + eps), clear},
                           {1.0f, clear}});
}

}  // namespace vizcache
