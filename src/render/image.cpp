#include "render/image.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"

namespace vizcache {

Image::Image(usize width, usize height, Rgba fill)
    : width_(width), height_(height) {
  VIZ_REQUIRE(width > 0 && height > 0, "empty image");
  pixels_.assign(width * height, fill);
}

double Image::coverage() const {
  usize hit = 0;
  for (const Rgba& p : pixels_) {
    if (p.a > 0.0f) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(pixels_.size());
}

double Image::mean_luminance() const {
  double sum = 0.0;
  for (const Rgba& p : pixels_) {
    sum += 0.2126 * static_cast<double>(p.r) + 0.7152 * static_cast<double>(p.g) +
           0.0722 * static_cast<double>(p.b);
  }
  return sum / static_cast<double>(pixels_.size());
}

void Image::write_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open image for writing: " + path);
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  auto to8 = [](float v) {
    return static_cast<unsigned char>(
        std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
  };
  for (const Rgba& p : pixels_) {
    unsigned char rgb[3] = {to8(p.r), to8(p.g), to8(p.b)};
    out.write(reinterpret_cast<const char*>(rgb), 3);
  }
  if (!out) throw IoError("image write failed: " + path);
}

}  // namespace vizcache
