#pragma once

#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "geom/vec3.hpp"
#include "volume/block_store.hpp"

namespace vizcache {

/// Raw, non-owning view of one resident brick's payload: the voxel window
/// [ox, ox+ex) x [oy, oy+ey) x [oz, oz+ez) of the volume, x-fastest layout.
/// A default-constructed view (null `data`) means "not resident".
struct BrickView {
  const float* data = nullptr;
  usize ox = 0;  ///< voxel origin in the volume
  usize oy = 0;
  usize oz = 0;
  usize ex = 0;  ///< voxel extent (edge bricks are clipped)
  usize ey = 0;
  usize ez = 0;

  bool resident() const { return data != nullptr; }
};

/// Trilinear sample of a brick at a normalized-frame point. Voxel centers
/// sit at i + 0.5 in voxel space, so p maps to s = (p+1)/2 * dims - 0.5 per
/// axis. Neighbor indices are clamped to the brick's own window — there is
/// no ghost layer, so values flatten across brick faces. The scalar
/// reference path funnels through this helper; the block-coherent ray
/// caster inlines a float-precision variant of the same math, and the
/// golden-image tests bound the difference between the two.
inline float sample_brick_trilinear(const Dims3& volume_dims,
                                    const BrickView& brick, const Vec3& p) {
  struct Axis {
    usize i0, i1;
    float f;
  };
  auto resolve = [](double np, usize dim, usize origin, usize extent) {
    double s = (np + 1.0) * 0.5 * static_cast<double>(dim) - 0.5;
    double fl = std::floor(s);
    i64 lo = static_cast<i64>(fl);
    const i64 bmin = static_cast<i64>(origin);
    const i64 bmax = static_cast<i64>(origin + extent) - 1;
    i64 c0 = lo < bmin ? bmin : (lo > bmax ? bmax : lo);
    i64 c1 = lo + 1 < bmin ? bmin : (lo + 1 > bmax ? bmax : lo + 1);
    return Axis{static_cast<usize>(c0 - bmin), static_cast<usize>(c1 - bmin),
                static_cast<float>(s - fl)};
  };
  const Axis ax = resolve(p.x, volume_dims.x, brick.ox, brick.ex);
  const Axis ay = resolve(p.y, volume_dims.y, brick.oy, brick.ey);
  const Axis az = resolve(p.z, volume_dims.z, brick.oz, brick.ez);
  const usize rx = brick.ex;
  const usize rxy = brick.ex * brick.ey;
  const float* d = brick.data;
  auto at = [&](usize x, usize y, usize z) { return d[z * rxy + y * rx + x]; };
  const float c00 = at(ax.i0, ay.i0, az.i0) +
                    (at(ax.i1, ay.i0, az.i0) - at(ax.i0, ay.i0, az.i0)) * ax.f;
  const float c10 = at(ax.i0, ay.i1, az.i0) +
                    (at(ax.i1, ay.i1, az.i0) - at(ax.i0, ay.i1, az.i0)) * ax.f;
  const float c01 = at(ax.i0, ay.i0, az.i1) +
                    (at(ax.i1, ay.i0, az.i1) - at(ax.i0, ay.i0, az.i1)) * ax.f;
  const float c11 = at(ax.i0, ay.i1, az.i1) +
                    (at(ax.i1, ay.i1, az.i1) - at(ax.i0, ay.i1, az.i1)) * ax.f;
  const float c0 = c00 + (c10 - c00) * ay.f;
  const float c1 = c01 + (c11 - c01) * ay.f;
  return c0 + (c1 - c0) * az.f;
}

/// Block-granular scalar source for the ray-caster. Where VolumeSampler
/// answers "value at this point?" per sample, a BrickSampler answers "give
/// me the whole brick" once per ray/block segment, so residency is resolved
/// O(1) per segment and sampling runs through a raw pointer.
///
/// Thread-safety: brick() must be safe to call concurrently from render
/// workers. Implementations that mutate residency (load/evict) must not do
/// so while a render is in flight.
class BrickSampler {
 public:
  virtual ~BrickSampler() = default;

  virtual const BlockGrid& grid() const = 0;

  /// View of a block's payload; `resident()` is false when it is not loaded.
  virtual BrickView brick(BlockId id) const = 0;
};

/// BrickSampler over an explicit set of loaded bricks — the render-side
/// mirror of the paper's "composite only the blocks resident in fast
/// memory". Payloads are owned here; views are precomputed per block so
/// brick() is an O(1) vector read with no hashing and no locks.
class ResidentBrickSet final : public BrickSampler {
 public:
  explicit ResidentBrickSet(const BlockGrid& grid);

  const BlockGrid& grid() const override { return grid_; }
  BrickView brick(BlockId id) const override;

  /// Fetch one block from `store` and make it resident (replaces any
  /// previous payload for the same id).
  void load(const BlockStore& store, BlockId id, usize var = 0,
            usize timestep = 0);
  /// Make every block of the volume resident.
  void load_all(const BlockStore& store, usize var = 0, usize timestep = 0);
  /// Drop a block's payload (no-op when not resident).
  void evict(BlockId id);

  bool resident(BlockId id) const;
  usize resident_count() const { return resident_count_; }

 private:
  BlockGrid grid_;
  std::vector<std::vector<float>> payloads_;  ///< indexed by BlockId
  std::vector<BrickView> views_;              ///< indexed by BlockId
  usize resident_count_ = 0;
};

/// Per-point VolumeSampler over `bricks` — the retained scalar reference
/// path. Pays block lookup + virtual dispatch + std::function indirection
/// per sample but computes the exact same trilinear values as the
/// block-coherent path. `bricks` must outlive the returned function.
std::function<std::optional<float>(const Vec3&)> make_reference_sampler(
    const BrickSampler& bricks);

}  // namespace vizcache
