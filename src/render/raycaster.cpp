#include "render/raycaster.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace vizcache {

namespace {

/// Ray/box intersection with the normalized volume [-1,1]^3; returns entry
/// and exit distances along the ray, or nullopt on a miss.
std::optional<std::pair<double, double>> intersect_volume(const Vec3& origin,
                                                          const Vec3& dir) {
  double t0 = 0.0, t1 = std::numeric_limits<double>::infinity();
  const double o[3] = {origin.x, origin.y, origin.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-12) {
      if (o[axis] < -1.0 || o[axis] > 1.0) return std::nullopt;
      continue;
    }
    double inv = 1.0 / d[axis];
    double ta = (-1.0 - o[axis]) * inv;
    double tb = (1.0 - o[axis]) * inv;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return std::nullopt;
  }
  return std::make_pair(t0, t1);
}

}  // namespace

Image raycast(const Camera& camera, const VolumeSampler& sampler,
              const TransferFunction& tf, const RaycastParams& params,
              ThreadPool* pool) {
  VIZ_REQUIRE(params.step_size > 0.0, "raycast step must be positive");
  VIZ_REQUIRE(params.value_max > params.value_min, "empty value range");

  Image image(params.image_width, params.image_height);

  const Vec3 eye = camera.position();
  const Vec3 forward = camera.view_direction();
  Vec3 helper = std::abs(forward.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{0, 1, 0};
  const Vec3 right = forward.cross(helper).normalized();
  const Vec3 up = right.cross(forward).normalized();

  const double tan_half = std::tan(camera.view_angle_rad() * 0.5);
  const double aspect = static_cast<double>(params.image_width) /
                        static_cast<double>(params.image_height);
  const float inv_range = 1.0f / (params.value_max - params.value_min);

  auto render_row = [&](usize y) {
    double ndc_y =
        1.0 - 2.0 * (static_cast<double>(y) + 0.5) /
                  static_cast<double>(params.image_height);
    for (usize x = 0; x < params.image_width; ++x) {
      double ndc_x = 2.0 * (static_cast<double>(x) + 0.5) /
                         static_cast<double>(params.image_width) -
                     1.0;
      Vec3 dir = (forward + right * (ndc_x * tan_half * aspect) +
                  up * (ndc_y * tan_half))
                     .normalized();

      auto hit = intersect_volume(eye, dir);
      if (!hit) continue;

      Rgba acc{0, 0, 0, 0};
      for (double t = hit->first; t < hit->second; t += params.step_size) {
        std::optional<float> value = sampler(eye + dir * t);
        if (!value) continue;  // brick not resident: skip this segment
        float v = std::clamp((*value - params.value_min) * inv_range, 0.0f, 1.0f);
        Rgba c = tf.sample(v);
        if (c.a <= 0.0f) continue;
        // Opacity correction for the step length relative to a unit step.
        float alpha =
            1.0f - std::pow(1.0f - c.a, static_cast<float>(params.step_size * 10.0));
        float w = alpha * (1.0f - acc.a);
        acc.r += c.r * w;
        acc.g += c.g * w;
        acc.b += c.b * w;
        acc.a += w;
        if (acc.a >= params.early_termination) break;
      }
      image.at(x, y) = acc;
    }
  };

  if (pool && pool->thread_count() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(params.image_height);
    for (usize y = 0; y < params.image_height; ++y) {
      futures.push_back(pool->submit([&, y] { render_row(y); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (usize y = 0; y < params.image_height; ++y) render_row(y);
  }
  return image;
}

}  // namespace vizcache
