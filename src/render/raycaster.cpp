#include "render/raycaster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "render/raycaster_detail.hpp"
#include "util/error.hpp"

namespace vizcache {

using render_detail::for_each_row;
using render_detail::intersect_volume;
using render_detail::make_ray_frame;
using render_detail::pixel_ray_dir;
using render_detail::RayFrame;

Image raycast(const Camera& camera, const VolumeSampler& sampler,
              const TransferFunction& tf, const RaycastParams& params,
              ThreadPool* pool, RaycastStats* stats) {
  VIZ_REQUIRE(params.step_size > 0.0, "raycast step must be positive");
  VIZ_REQUIRE(params.value_max > params.value_min, "empty value range");

  Image image(params.image_width, params.image_height);
  const RayFrame frame = make_ray_frame(camera, params);
  const float inv_range = 1.0f / (params.value_max - params.value_min);

  auto render_row = [&](usize y, RaycastStats& rs) {
    for (usize x = 0; x < params.image_width; ++x) {
      Vec3 dir = pixel_ray_dir(frame, params, x, y);
      auto hit = intersect_volume(frame.eye, dir);
      if (!hit) continue;
      ++rs.rays;

      Rgba acc{0, 0, 0, 0};
      for (double t = hit->first; t < hit->second; t += params.step_size) {
        std::optional<float> value = sampler(frame.eye + dir * t);
        ++rs.samples;
        if (!value) continue;  // brick not resident: skip this segment
        float v = std::clamp((*value - params.value_min) * inv_range, 0.0f, 1.0f);
        Rgba c = tf.sample(v);
        if (c.a <= 0.0f) continue;
        // Opacity correction for the step length relative to a unit step.
        float alpha =
            1.0f - std::pow(1.0f - c.a, static_cast<float>(params.step_size * 10.0));
        float w = alpha * (1.0f - acc.a);
        acc.r += c.r * w;
        acc.g += c.g * w;
        acc.b += c.b * w;
        acc.a += w;
        ++rs.composited;
        if (acc.a >= params.early_termination) break;
      }
      image.at(x, y) = acc;
    }
  };

  for_each_row(params, pool, stats, render_row);
  return image;
}

Image raycast(const Camera& camera, const BrickSampler& bricks,
              const TransferFunctionLUT& lut, const RaycastParams& params,
              ThreadPool* pool, RaycastStats* stats) {
  VIZ_REQUIRE(params.step_size > 0.0, "raycast step must be positive");
  VIZ_REQUIRE(params.value_max > params.value_min, "empty value range");
  VIZ_REQUIRE(std::abs(lut.step_size() - params.step_size) <= 1e-12,
              "transfer-function LUT was baked for a different step size");

  Image image(params.image_width, params.image_height);
  const BlockGrid& grid = bricks.grid();
  const Dims3 dims = grid.volume_dims();
  const Dims3 gdims = grid.grid_dims();
  const RayFrame frame = make_ray_frame(camera, params);
  const float inv_range = 1.0f / (params.value_max - params.value_min);
  const double step = params.step_size;
  const double dimsd[3] = {static_cast<double>(dims.x),
                           static_cast<double>(dims.y),
                           static_cast<double>(dims.z)};
  // When the table origin is fully transparent (alpha ramps up from zero,
  // true of every preset), samples at or below value_min can skip the LUT
  // lerp: they would composite nothing either way.
  const bool transparent_at_min = lut.sample(0.0f).a <= 0.0f;

  auto render_row = [&](usize y, RaycastStats& rs) {
    for (usize x = 0; x < params.image_width; ++x) {
      Vec3 dir = pixel_ray_dir(frame, params, x, y);
      auto hit = intersect_volume(frame.eye, dir);
      if (!hit) continue;
      ++rs.rays;
      const double t_entry = hit->first;
      const double t_far = hit->second;
      const double o[3] = {frame.eye.x, frame.eye.y, frame.eye.z};
      const double d[3] = {dir.x, dir.y, dir.z};
      // The ray in voxel-center space is affine in t: s(t) = va + t*vb per
      // axis. Precomputing the coefficients removes the point/convert work
      // from the per-sample loop (the reference path derives the identical
      // coordinates from the world-space point; the rounding difference is
      // far below the golden-test tolerance).
      double va[3], vb[3];
      for (int axis = 0; axis < 3; ++axis) {
        va[axis] = (o[axis] + 1.0) * 0.5 * dimsd[axis] - 0.5;
        vb[axis] = d[axis] * 0.5 * dimsd[axis];
      }

      Rgba acc{0, 0, 0, 0};
      // Sample positions are indexed globally (t_k = t_entry + k*step) so
      // skipping a non-resident segment advances k without perturbing the
      // positions of later samples — they stay identical to the scalar
      // reference path's.
      usize k = 0;
      bool done = false;
      BlockId id = kInvalidBlock;
      i64 cx = 0, cy = 0, cz = 0;  // DDA block coords (signed for stepping)

      while (!done) {
        double t = t_entry + static_cast<double>(k) * step;
        if (t >= t_far) break;
        if (id == kInvalidBlock) {
          // (Re-)anchor the DDA at the current sample. Only needed at ray
          // entry, where the sample can sit on a volume face and land a ulp
          // outside; every later segment is reached by coordinate stepping.
          id = grid.block_at_normalized(frame.eye + dir * t);
          if (id == kInvalidBlock) {
            ++k;
            continue;
          }
          BlockCoord c = grid.coord_of(id);
          cx = static_cast<i64>(c.bx);
          cy = static_cast<i64>(c.by);
          cz = static_cast<i64>(c.bz);
        }

        // Exit distance of the current block along the ray, and which axis
        // the ray leaves through.
        const AABB box = grid.block_bounds(id);
        const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
        const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
        double t_exit = std::numeric_limits<double>::infinity();
        int exit_axis = -1;
        for (int axis = 0; axis < 3; ++axis) {
          if (std::abs(d[axis]) < 1e-12) continue;
          double bound = d[axis] > 0.0 ? hi[axis] : lo[axis];
          double tb = (bound - o[axis]) / d[axis];
          if (tb < t_exit) {
            t_exit = tb;
            exit_axis = axis;
          }
        }
        if (exit_axis < 0) break;  // degenerate direction; cannot happen
        const double seg_end = std::min(t_exit, t_far);

        // Residency is resolved once for the whole segment.
        BrickView view = bricks.brick(id);
        if (!view.resident()) {
          // O(1) skip: first sample index at or beyond seg_end.
          double n = std::ceil((seg_end - t_entry) / step);
          usize k_next = n <= 0.0 ? 0 : static_cast<usize>(n);
          if (k_next > k) rs.skipped += k_next - k;
          k = std::max(k, k_next);
        } else {
          // Per-segment hoists: the brick's voxel window and raw pointer are
          // loop constants, so the per-sample work is three float adds,
          // int32 truncate-and-clamp indexing, eight loads, seven lerps, one
          // LUT lerp, and four compositing multiply-adds.
          const i32 wx0 = static_cast<i32>(view.ox);
          const i32 wy0 = static_cast<i32>(view.oy);
          const i32 wz0 = static_cast<i32>(view.oz);
          const i32 wx1 = wx0 + static_cast<i32>(view.ex) - 1;
          const i32 wy1 = wy0 + static_cast<i32>(view.ey) - 1;
          const i32 wz1 = wz0 + static_cast<i32>(view.ez) - 1;
          const usize rx = view.ex;
          const usize rxy = view.ex * view.ey;
          const float* data = view.data;
          auto clamp_i = [](i32 v, i32 vmin, i32 vmax) {
            return v < vmin ? vmin : (v > vmax ? vmax : v);
          };
          // Counted loop over the segment's global sample indices. The end
          // index comes from the same ceil() used for non-resident skips; a
          // one-ulp disagreement with the reference's t<seg_end comparison
          // only re-attributes a face-adjacent sample to the neighboring
          // brick, which the golden tests bound. Voxel coordinates step
          // incrementally in float (s += step·vb per axis), re-anchored from
          // the double affine form at every segment start, so drift is
          // bounded by one segment (~1e-5 voxel — far below tolerance).
          const double n_end = std::ceil((seg_end - t_entry) / step);
          const usize k_end = n_end <= 0.0 ? 0 : static_cast<usize>(n_end);
          const float bx = static_cast<float>(step * vb[0]);
          const float by = static_cast<float>(step * vb[1]);
          const float bz = static_cast<float>(step * vb[2]);
          const double t0 = t_entry + static_cast<double>(k) * step;
          float sx = static_cast<float>(va[0] + t0 * vb[0]);
          float sy = static_cast<float>(va[1] + t0 * vb[1]);
          float sz = static_cast<float>(va[2] + t0 * vb[2]);
          const usize samples_before = rs.samples;
          usize k_local = k;
          for (; k_local < k_end;
               ++k_local, sx += bx, sy += by, sz += bz) {
            // Truncation matches floor wherever the neighbor indices are not
            // both clamped to the same voxel (s >= 0 inside the volume); in
            // the clamped-to-one-voxel case the fraction cancels out.
            const i32 ix = static_cast<i32>(sx);
            const i32 iy = static_cast<i32>(sy);
            const i32 iz = static_cast<i32>(sz);
            const float fx = sx - static_cast<float>(ix);
            const float fy = sy - static_cast<float>(iy);
            const float fz = sz - static_cast<float>(iz);
            const usize x0 = static_cast<usize>(clamp_i(ix, wx0, wx1) - wx0);
            const usize x1 = static_cast<usize>(clamp_i(ix + 1, wx0, wx1) - wx0);
            const usize y0 = static_cast<usize>(clamp_i(iy, wy0, wy1) - wy0);
            const usize y1 = static_cast<usize>(clamp_i(iy + 1, wy0, wy1) - wy0);
            const usize z0 = static_cast<usize>(clamp_i(iz, wz0, wz1) - wz0);
            const usize z1 = static_cast<usize>(clamp_i(iz + 1, wz0, wz1) - wz0);
            const float* p0 = data + z0 * rxy;
            const float* p1 = data + z1 * rxy;
            const usize i00 = y0 * rx + x0;
            const usize i01 = y0 * rx + x1;
            const usize i10 = y1 * rx + x0;
            const usize i11 = y1 * rx + x1;
            const float c00 = p0[i00] + (p0[i01] - p0[i00]) * fx;
            const float c10 = p0[i10] + (p0[i11] - p0[i10]) * fx;
            const float c01 = p1[i00] + (p1[i01] - p1[i00]) * fx;
            const float c11 = p1[i10] + (p1[i11] - p1[i10]) * fx;
            const float c0 = c00 + (c10 - c00) * fy;
            const float c1 = c01 + (c11 - c01) * fy;
            const float value = c0 + (c1 - c0) * fz;
            if (transparent_at_min && value <= params.value_min) continue;
            // lut.sample clamps to [0,1] internally — no extra clamp here.
            TransferFunctionLUT::Entry e =
                lut.sample((value - params.value_min) * inv_range);
            if (e.a <= 0.0f) continue;
            // Entries are premultiplied and opacity-corrected at bake time,
            // so compositing is four fused multiply-adds, no pow.
            float w = 1.0f - acc.a;
            acc.r += e.r * w;
            acc.g += e.g * w;
            acc.b += e.b * w;
            acc.a += e.a * w;
            ++rs.composited;
            if (acc.a >= params.early_termination) {
              done = true;
              break;
            }
          }
          // Every loop iteration evaluates the field once; on early
          // termination the final iteration broke before ++k_local.
          rs.samples = samples_before + (k_local - k) + (done ? 1 : 0);
          k = k_local;
        }
        if (done || t_exit >= t_far) break;

        // DDA step into the neighbor block through the exit face.
        i64* coord = exit_axis == 0 ? &cx : (exit_axis == 1 ? &cy : &cz);
        *coord += d[exit_axis] > 0.0 ? 1 : -1;
        if (cx < 0 || cy < 0 || cz < 0 || cx >= static_cast<i64>(gdims.x) ||
            cy >= static_cast<i64>(gdims.y) || cz >= static_cast<i64>(gdims.z)) {
          break;  // stepped off the grid: ray has left the volume
        }
        id = grid.id_of({static_cast<usize>(cx), static_cast<usize>(cy),
                         static_cast<usize>(cz)});
      }
      image.at(x, y) = acc;
    }
  };

  for_each_row(params, pool, stats, render_row);
  return image;
}

}  // namespace vizcache
