#pragma once

#include <functional>
#include <optional>

#include "geom/camera.hpp"
#include "render/image.hpp"
#include "render/transfer_function.hpp"
#include "util/thread_pool.hpp"

namespace vizcache {

/// Scalar source for the ray-caster: returns the field value at a point in
/// the normalized [-1,1]^3 frame, or nullopt where no data is available
/// (e.g. the containing block is not resident in fast memory). Non-resident
/// regions are skipped, exactly like an out-of-core renderer that can only
/// composite loaded bricks.
using VolumeSampler = std::function<std::optional<float>(const Vec3&)>;

/// Ray-casting parameters.
struct RaycastParams {
  usize image_width = 128;
  usize image_height = 128;
  double step_size = 0.01;      ///< sampling step along the ray
  float early_termination = 0.98f;  ///< stop when accumulated alpha exceeds this
  float value_min = 0.0f;       ///< value range mapped onto the transfer function
  float value_max = 1.0f;
};

/// Front-to-back compositing volume ray-caster. Perspective camera looking
/// at the origin with the camera's cone angle as vertical field of view.
/// Pass a ThreadPool to parallelize across image rows (optional).
///
/// Thread-safety: when a pool is given, each row of `image` is written by
/// exactly one task (disjoint pixels; the Image is allocated up front), and
/// `sampler` is invoked concurrently from the workers — it must be
/// const-thread-safe (AsyncPrefetcher::get_if_ready and the block stores
/// are). No locks are taken on the render hot path.
Image raycast(const Camera& camera, const VolumeSampler& sampler,
              const TransferFunction& tf, const RaycastParams& params,
              ThreadPool* pool = nullptr);

}  // namespace vizcache
