#pragma once

#include <functional>
#include <optional>

#include "geom/camera.hpp"
#include "render/brick_sampler.hpp"
#include "render/image.hpp"
#include "render/sampling_mask.hpp"
#include "render/transfer_function.hpp"
#include "util/thread_pool.hpp"

namespace vizcache {

/// Scalar source for the ray-caster: returns the field value at a point in
/// the normalized [-1,1]^3 frame, or nullopt where no data is available
/// (e.g. the containing block is not resident in fast memory). Non-resident
/// regions are skipped, exactly like an out-of-core renderer that can only
/// composite loaded bricks.
using VolumeSampler = std::function<std::optional<float>(const Vec3&)>;

/// Ray-casting parameters.
struct RaycastParams {
  usize image_width = 128;
  usize image_height = 128;
  double step_size = 0.01;      ///< sampling step along the ray
  float early_termination = 0.98f;  ///< stop when accumulated alpha exceeds this
  float value_min = 0.0f;       ///< value range mapped onto the transfer function
  float value_max = 1.0f;
};

/// Work counters filled by a render (all paths). `samples` counts data
/// evaluations — the denominator of the bench's ns/sample metric.
/// `skipped` counts sample positions the block-coherent paths jumped over
/// in O(1) because the containing brick was not resident (the reference
/// path evaluates those positions instead, so its `samples` includes
/// them). At full residency, `samples`, `skipped`, and `rays` of the
/// DDA and packet paths agree exactly — a regression test pins this.
struct RaycastStats {
  u64 rays = 0;        ///< rays that intersected the volume
  u64 samples = 0;     ///< scalar data evaluations along those rays
  u64 composited = 0;  ///< samples that contributed color (alpha > 0)
  u64 skipped = 0;     ///< sample positions skipped over non-resident bricks
};

/// Front-to-back compositing volume ray-caster. Perspective camera looking
/// at the origin with the camera's cone angle as vertical field of view.
/// Pass a ThreadPool to parallelize across image rows (optional).
///
/// This overload is the retained scalar reference path: one VolumeSampler
/// call per sample, piecewise-linear transfer-function scan, `pow` opacity
/// correction. It is kept as the semantic baseline the block-coherent path
/// is benchmarked and golden-tested against.
///
/// Thread-safety: when a pool is given, each row of `image` is written by
/// exactly one task (disjoint pixels; the Image is allocated up front), and
/// `sampler` is invoked concurrently from the workers — it must be
/// const-thread-safe (AsyncPrefetcher::get_if_ready and the block stores
/// are). No locks are taken on the render hot path.
Image raycast(const Camera& camera, const VolumeSampler& sampler,
              const TransferFunction& tf, const RaycastParams& params,
              ThreadPool* pool = nullptr, RaycastStats* stats = nullptr);

/// Block-coherent fast path. Rays are marched through the block grid with a
/// 3D-DDA: residency is resolved once per ray/block segment via
/// `bricks.brick()`, resident segments are sampled through a raw pointer
/// with trilinear filtering, and non-resident segments are skipped in O(1).
/// Colors come from the precomputed `lut`, whose baked step size must match
/// `params.step_size`. Sample positions are identical to the reference
/// path's (t_k = t_entry + k*step with global k), so the two paths agree to
/// LUT precision on the same residency set.
///
/// Thread-safety: same contract as the reference overload; `bricks.brick()`
/// is called concurrently from render workers.
Image raycast(const Camera& camera, const BrickSampler& bricks,
              const TransferFunctionLUT& lut, const RaycastParams& params,
              ThreadPool* pool = nullptr, RaycastStats* stats = nullptr);

/// SIMD ray-packet fast path. Eight coherent rays (adjacent pixels of one
/// row) march as one packet: per-lane 3D-DDA segment bookkeeping stays in
/// scalar double precision (bit-identical segment bounds to the
/// block-coherent path above), while the per-sample inner loop — trilinear
/// fetch, LUT lookup, and front-to-back compositing — runs across all
/// lanes at once through util/simd.hpp (AVX2, or the identical-width
/// portable fallback). Lanes retire independently under a mask: early-out
/// opacity termination and ray exit drop a lane without disturbing the
/// others, non-resident segments are skipped per lane in O(1), and when
/// packet coherence breaks at brick boundaries the corner fetches fall
/// back from one shared gather base to per-lane loads.
///
/// `mask` (optional) enables importance-masked adaptive sampling: blocks
/// with stride s > 1 are sampled at every s-th position of the global
/// sample lattice, with the LUT's baked opacity correction rescaled
/// exactly for the longer effective step (alpha' = 1-(1-alpha)^s, a
/// closed-form polynomial for s in {2, 4}). Strides outside {1, 2, 4} are
/// rejected. At full rate (null or all-ones mask) the image matches the
/// block-coherent path to vector-FP precision and the golden tests bound
/// it against the scalar oracle at the usual 1e-3/channel; under adaptive
/// sampling the documented looser bound applies (see DESIGN.md).
///
/// Thread-safety: same contract as the other overloads.
Image raycast_packet(const Camera& camera, const BrickSampler& bricks,
                     const TransferFunctionLUT& lut,
                     const RaycastParams& params, ThreadPool* pool = nullptr,
                     RaycastStats* stats = nullptr,
                     const SamplingMask* mask = nullptr);

/// Compile-time lane width of the packet path (8 in both the AVX2 and the
/// portable fallback build).
usize raycast_packet_width();

/// True when the packet path was compiled against native AVX2 intrinsics,
/// false in the portable scalar-width fallback build (-DVIZCACHE_SIMD=OFF
/// or a compiler without -mavx2).
bool raycast_packet_native();

}  // namespace vizcache
