#pragma once

#include <functional>
#include <optional>

#include "geom/camera.hpp"
#include "render/brick_sampler.hpp"
#include "render/image.hpp"
#include "render/transfer_function.hpp"
#include "util/thread_pool.hpp"

namespace vizcache {

/// Scalar source for the ray-caster: returns the field value at a point in
/// the normalized [-1,1]^3 frame, or nullopt where no data is available
/// (e.g. the containing block is not resident in fast memory). Non-resident
/// regions are skipped, exactly like an out-of-core renderer that can only
/// composite loaded bricks.
using VolumeSampler = std::function<std::optional<float>(const Vec3&)>;

/// Ray-casting parameters.
struct RaycastParams {
  usize image_width = 128;
  usize image_height = 128;
  double step_size = 0.01;      ///< sampling step along the ray
  float early_termination = 0.98f;  ///< stop when accumulated alpha exceeds this
  float value_min = 0.0f;       ///< value range mapped onto the transfer function
  float value_max = 1.0f;
};

/// Work counters filled by a render (all paths). `samples` counts data
/// evaluations — the denominator of the bench's ns/sample metric.
struct RaycastStats {
  u64 rays = 0;        ///< rays that intersected the volume
  u64 samples = 0;     ///< scalar data evaluations along those rays
  u64 composited = 0;  ///< samples that contributed color (alpha > 0)
};

/// Front-to-back compositing volume ray-caster. Perspective camera looking
/// at the origin with the camera's cone angle as vertical field of view.
/// Pass a ThreadPool to parallelize across image rows (optional).
///
/// This overload is the retained scalar reference path: one VolumeSampler
/// call per sample, piecewise-linear transfer-function scan, `pow` opacity
/// correction. It is kept as the semantic baseline the block-coherent path
/// is benchmarked and golden-tested against.
///
/// Thread-safety: when a pool is given, each row of `image` is written by
/// exactly one task (disjoint pixels; the Image is allocated up front), and
/// `sampler` is invoked concurrently from the workers — it must be
/// const-thread-safe (AsyncPrefetcher::get_if_ready and the block stores
/// are). No locks are taken on the render hot path.
Image raycast(const Camera& camera, const VolumeSampler& sampler,
              const TransferFunction& tf, const RaycastParams& params,
              ThreadPool* pool = nullptr, RaycastStats* stats = nullptr);

/// Block-coherent fast path. Rays are marched through the block grid with a
/// 3D-DDA: residency is resolved once per ray/block segment via
/// `bricks.brick()`, resident segments are sampled through a raw pointer
/// with trilinear filtering, and non-resident segments are skipped in O(1).
/// Colors come from the precomputed `lut`, whose baked step size must match
/// `params.step_size`. Sample positions are identical to the reference
/// path's (t_k = t_entry + k*step with global k), so the two paths agree to
/// LUT precision on the same residency set.
///
/// Thread-safety: same contract as the reference overload; `bricks.brick()`
/// is called concurrently from render workers.
Image raycast(const Camera& camera, const BrickSampler& bricks,
              const TransferFunctionLUT& lut, const RaycastParams& params,
              ThreadPool* pool = nullptr, RaycastStats* stats = nullptr);

}  // namespace vizcache
