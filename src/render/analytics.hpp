#pragma once

#include <span>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "volume/block_store.hpp"

namespace vizcache {

/// Data-dependent analytics over the currently visible region — the Fig. 3
/// workload: per-variable value histograms and the cross-variable
/// correlation matrix, recomputed for the blocks seen from a view. These
/// operations need the *full-resolution* data of every visible block, which
/// is precisely why the paper cannot fall back on multi-resolution LOD for
/// data-dependent operations.
struct RegionAnalytics {
  std::vector<Histogram> histograms;    ///< one per analyzed variable
  CorrelationMatrix correlation;        ///< across analyzed variables
  u64 voxels_analyzed = 0;

  explicit RegionAnalytics(usize variables)
      : correlation(variables) {}
};

/// Compute analytics over `blocks` for the first `variables` variables of
/// the store at `timestep`. `value_lo/value_hi` bound the histogram range;
/// `bins` sets histogram resolution. `stride` subsamples voxels (1 = all).
RegionAnalytics analyze_region(const BlockStore& store,
                               std::span<const BlockId> blocks,
                               usize variables, usize timestep = 0,
                               double value_lo = 0.0, double value_hi = 1.0,
                               usize bins = 64, usize stride = 1);

}  // namespace vizcache
