#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// RGBA color (all components in [0, 1], straight alpha).
struct Rgba {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
  float a = 0.0f;
};

/// Piecewise-linear transfer function mapping scalar values in [0, 1] to
/// color and opacity — the user-tunable "data-dependent" control of the
/// paper (Section III-A). Control points are kept sorted by value.
class TransferFunction {
 public:
  struct ControlPoint {
    float value;  ///< in [0, 1]
    Rgba color;
  };

  TransferFunction() = default;
  explicit TransferFunction(std::vector<ControlPoint> points);

  /// Interpolated color/opacity at a normalized value (clamped to [0,1]).
  Rgba sample(float value) const;

  /// Scale all opacities by `factor` (interactive opacity tweaking).
  void scale_opacity(float factor);

  const std::vector<ControlPoint>& points() const { return points_; }

  /// Presets.
  static TransferFunction grayscale();
  /// Black-body "fire" ramp (combustion data).
  static TransferFunction fire();
  /// Cool-to-warm diverging map.
  static TransferFunction cool_warm();
  /// Mostly-transparent map isolating a value band [lo, hi] — mimics an
  /// iso-band query (Fig. 1 d/e style data-dependent operation).
  static TransferFunction iso_band(float lo, float hi, Rgba color);

 private:
  std::vector<ControlPoint> points_;
};

}  // namespace vizcache
