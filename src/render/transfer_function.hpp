#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// RGBA color (all components in [0, 1], straight alpha).
struct Rgba {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
  float a = 0.0f;
};

/// Piecewise-linear transfer function mapping scalar values in [0, 1] to
/// color and opacity — the user-tunable "data-dependent" control of the
/// paper (Section III-A). Control points are kept sorted by value.
class TransferFunction {
 public:
  struct ControlPoint {
    float value;  ///< in [0, 1]
    Rgba color;
  };

  TransferFunction() = default;
  explicit TransferFunction(std::vector<ControlPoint> points);

  /// Interpolated color/opacity at a normalized value (clamped to [0,1]).
  Rgba sample(float value) const;

  /// Scale all opacities by `factor` (interactive opacity tweaking).
  void scale_opacity(float factor);

  const std::vector<ControlPoint>& points() const { return points_; }

  /// Presets.
  static TransferFunction grayscale();
  /// Black-body "fire" ramp (combustion data).
  static TransferFunction fire();
  /// Cool-to-warm diverging map.
  static TransferFunction cool_warm();
  /// Mostly-transparent map isolating a value band [lo, hi] — mimics an
  /// iso-band query (Fig. 1 d/e style data-dependent operation).
  static TransferFunction iso_band(float lo, float hi, Rgba color);

 private:
  std::vector<ControlPoint> points_;
};

/// Precomputed lookup table over a TransferFunction, baked for one sampling
/// step size. Each entry stores the *opacity-corrected, premultiplied* color
///
///   { r·ac, g·ac, b·ac, ac }   with   ac = 1 - (1 - a)^(step·10)
///
/// so the ray-caster inner loop is one lerp and four fused multiply-adds —
/// no piecewise-linear scan and no `pow` per sample. Entries are sampled at
/// the N+1 nodes v = i/N, which reproduces the piecewise-linear function
/// exactly at the nodes; between nodes the residual comes only from the
/// curvature `pow` introduces, bounded by Δslope/(4N) at the worst kink.
/// The default N=1024 keeps every preset except a sharp iso_band below
/// 1e-3 per channel; narrow-band functions should pass a higher resolution.
class TransferFunctionLUT {
 public:
  /// Premultiplied, opacity-corrected RGBA (see class comment).
  struct Entry {
    float r = 0.0f;
    float g = 0.0f;
    float b = 0.0f;
    float a = 0.0f;
  };

  /// Bakes `tf` for rays marched with `step_size`. `resolution` is the
  /// number of segments N (the table holds N+1 node entries).
  TransferFunctionLUT(const TransferFunction& tf, double step_size,
                      usize resolution = 1024);

  /// Linearly interpolated entry at a normalized value (clamped to [0,1]).
  Entry sample(float value) const {
    value = value < 0.0f ? 0.0f : (value > 1.0f ? 1.0f : value);
    float u = value * scale_;
    usize i0 = static_cast<usize>(u);
    const usize last = entries_.size() - 2;
    if (i0 > last) i0 = last;
    const float t = u - static_cast<float>(i0);
    const Entry& lo = entries_[i0];
    const Entry& hi = entries_[i0 + 1];
    return {lo.r + (hi.r - lo.r) * t, lo.g + (hi.g - lo.g) * t,
            lo.b + (hi.b - lo.b) * t, lo.a + (hi.a - lo.a) * t};
  }

  usize resolution() const { return entries_.size() - 1; }
  double step_size() const { return step_size_; }

  /// Raw node array viewed as a flat float sequence: entry i occupies
  /// floats [4i, 4i+4) in r,g,b,a order. The SIMD packet path gathers
  /// channel c of nodes i0/i0+1 at flat()[4*i0 + c] / [4*i0 + c + 4],
  /// reproducing sample() lane-for-lane.
  const float* flat() const {
    static_assert(sizeof(Entry) == 4 * sizeof(float),
                  "Entry must be four contiguous floats for the flat view");
    return &entries_[0].r;
  }

 private:
  std::vector<Entry> entries_;  ///< resolution()+1 node samples
  float scale_ = 0.0f;          ///< == resolution(), cached for sample()
  double step_size_ = 0.0;
};

}  // namespace vizcache
