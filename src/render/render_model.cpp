#include "render/render_model.hpp"

namespace vizcache {

RenderTimeModel gpu_render_model() { return {5e-3, 0.4e-3}; }

RenderTimeModel cpu_render_model() { return {30e-3, 3e-3}; }

}  // namespace vizcache
