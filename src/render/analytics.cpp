#include "render/analytics.hpp"

#include "util/error.hpp"

namespace vizcache {

RegionAnalytics analyze_region(const BlockStore& store,
                               std::span<const BlockId> blocks,
                               usize variables, usize timestep,
                               double value_lo, double value_hi, usize bins,
                               usize stride) {
  VIZ_REQUIRE(variables >= 1, "need at least one variable");
  VIZ_REQUIRE(variables <= store.desc().variables,
              "more variables requested than the dataset has");
  VIZ_REQUIRE(stride >= 1, "stride must be >= 1");

  RegionAnalytics out(variables);
  out.histograms.reserve(variables);
  for (usize v = 0; v < variables; ++v) {
    out.histograms.emplace_back(bins, value_lo, value_hi);
  }

  std::vector<std::vector<float>> payloads(variables);
  std::vector<double> sample(variables);
  for (BlockId id : blocks) {
    for (usize v = 0; v < variables; ++v) {
      payloads[v] = store.read_block(id, v, timestep);
    }
    const usize n = payloads[0].size();
    for (usize i = 0; i < n; i += stride) {
      for (usize v = 0; v < variables; ++v) {
        double val = static_cast<double>(payloads[v][i]);
        out.histograms[v].add(val);
        sample[v] = val;
      }
      out.correlation.add_sample(std::span<const double>(sample));
      ++out.voxels_analyzed;
    }
  }
  return out;
}

}  // namespace vizcache
