#pragma once

#include "util/types.hpp"

namespace vizcache {

/// Deterministic model of per-frame GPU rendering time, used by the
/// simulated benches (the paper overlaps prefetching with rendering, so the
/// render duration directly determines how much prefetch time is hidden).
/// The examples use the real CPU ray-caster instead; this model mirrors its
/// scaling: a fixed per-frame setup cost plus a per-visible-block cost.
struct RenderTimeModel {
  SimSeconds base_s = 5e-3;        ///< frame setup / compositing
  SimSeconds per_block_s = 0.4e-3; ///< per visible block raymarch cost

  SimSeconds frame_time(usize visible_blocks) const {
    return base_s + per_block_s * static_cast<double>(visible_blocks);
  }
};

/// GPU-class renderer (paper's testbed uses GPU-accelerated rendering).
RenderTimeModel gpu_render_model();

/// Slower CPU-class renderer (ablation: more render time hides more
/// prefetch).
RenderTimeModel cpu_render_model();

}  // namespace vizcache
