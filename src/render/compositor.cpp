#include "render/compositor.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace vizcache {

Image raycast_blocks(const Camera& camera, const BlockGrid& grid,
                     std::span<const BlockId> blocks,
                     const VolumeSampler& sampler, const TransferFunction& tf,
                     const RaycastParams& params, ThreadPool* pool) {
  // Mask by ownership: outside the listed blocks the worker contributes
  // nothing (treated like non-resident bricks).
  std::vector<u8> mine(grid.block_count(), 0);
  for (BlockId id : blocks) {
    VIZ_REQUIRE(id < grid.block_count(), "block id out of range");
    mine[id] = 1;
  }
  VolumeSampler masked = [&grid, &mine,
                          &sampler](const Vec3& p) -> std::optional<float> {
    BlockId id = grid.block_at_normalized(p);
    if (id == kInvalidBlock || !mine[id]) return std::nullopt;
    return sampler(p);
  };
  return raycast(camera, masked, tf, params, pool);
}

double block_set_depth(const Camera& camera, const BlockGrid& grid,
                       std::span<const BlockId> blocks) {
  if (blocks.empty()) return std::numeric_limits<double>::infinity();
  Vec3 centroid{0, 0, 0};
  for (BlockId id : blocks) {
    centroid += grid.block_bounds(id).center();
  }
  centroid = centroid / static_cast<double>(blocks.size());
  return (centroid - camera.position()).norm();
}

Image composite_over(std::vector<PartialRender> partials, ThreadPool* pool) {
  VIZ_REQUIRE(!partials.empty(), "nothing to composite");
  const usize w = partials.front().image.width();
  const usize h = partials.front().image.height();
  for (const PartialRender& p : partials) {
    VIZ_REQUIRE(p.image.width() == w && p.image.height() == h,
                "partial image dimensions mismatch");
  }
  // Back-to-front: farthest first, nearer layers composited over.
  std::sort(partials.begin(), partials.end(),
            [](const PartialRender& a, const PartialRender& b) {
              return a.depth > b.depth;
            });

  Image out(w, h);
  // Rows are independent; layers are applied in depth order within each row,
  // so the chunked loop composites bit-identically to the serial one.
  parallel_for(pool, 0, h, 16, [&](usize row_lo, usize row_hi) {
    for (const PartialRender& p : partials) {
      for (usize y = row_lo; y < row_hi; ++y) {
        for (usize x = 0; x < w; ++x) {
          const Rgba& src = p.image.at(x, y);   // nearer layer
          Rgba& dst = out.at(x, y);             // accumulated farther layers
          // "src over dst" with premultiplied-style accumulation matching the
          // raycaster's front-to-back output.
          float inv = 1.0f - src.a;
          dst.r = src.r + dst.r * inv;
          dst.g = src.g + dst.g * inv;
          dst.b = src.b + dst.b * inv;
          dst.a = src.a + dst.a * inv;
        }
      }
    }
  });
  return out;
}

}  // namespace vizcache
