#pragma once

#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "geom/camera.hpp"
#include "render/raycaster.hpp"
#include "util/thread_pool.hpp"

/// Camera/ray plumbing shared by the three raycast implementations
/// (scalar reference, block-coherent DDA, SIMD ray packets). Internal to
/// src/render — not part of the public render API.

namespace vizcache::render_detail {

/// Ray/box intersection with the normalized volume [-1,1]^3; returns entry
/// and exit distances along the ray, or nullopt on a miss.
inline std::optional<std::pair<double, double>> intersect_volume(
    const Vec3& origin, const Vec3& dir) {
  double t0 = 0.0, t1 = std::numeric_limits<double>::infinity();
  const double o[3] = {origin.x, origin.y, origin.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-12) {
      if (o[axis] < -1.0 || o[axis] > 1.0) return std::nullopt;
      continue;
    }
    double inv = 1.0 / d[axis];
    double ta = (-1.0 - o[axis]) * inv;
    double tb = (1.0 - o[axis]) * inv;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return std::nullopt;
  }
  return std::make_pair(t0, t1);
}

/// Camera-derived quantities shared by all render paths.
struct RayFrame {
  Vec3 eye;
  Vec3 forward;
  Vec3 right;
  Vec3 up;
  double tan_half = 0.0;
  double aspect = 1.0;
};

inline RayFrame make_ray_frame(const Camera& camera,
                               const RaycastParams& params) {
  RayFrame f;
  f.eye = camera.position();
  f.forward = camera.view_direction();
  Vec3 helper = std::abs(f.forward.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{0, 1, 0};
  f.right = f.forward.cross(helper).normalized();
  f.up = f.right.cross(f.forward).normalized();
  f.tan_half = std::tan(camera.view_angle_rad() * 0.5);
  f.aspect = static_cast<double>(params.image_width) /
             static_cast<double>(params.image_height);
  return f;
}

inline Vec3 pixel_ray_dir(const RayFrame& f, const RaycastParams& params,
                          usize x, usize y) {
  double ndc_y = 1.0 - 2.0 * (static_cast<double>(y) + 0.5) /
                           static_cast<double>(params.image_height);
  double ndc_x = 2.0 * (static_cast<double>(x) + 0.5) /
                     static_cast<double>(params.image_width) -
                 1.0;
  return (f.forward + f.right * (ndc_x * f.tan_half * f.aspect) +
          f.up * (ndc_y * f.tan_half))
      .normalized();
}

/// Runs `render_row(y, row_stats)` over every image row — chunked on the
/// pool when one is given — and accumulates per-row counters into `stats`
/// (when requested) without any locking on the render path itself.
template <typename RowFn>
void for_each_row(const RaycastParams& params, ThreadPool* pool,
                  RaycastStats* stats, const RowFn& render_row) {
  std::atomic<u64> rays{0}, samples{0}, composited{0}, skipped{0};
  parallel_for(pool, 0, params.image_height, 1, [&](usize lo, usize hi) {
    RaycastStats rs;
    for (usize y = lo; y < hi; ++y) render_row(y, rs);
    if (stats != nullptr) {
      rays.fetch_add(rs.rays, std::memory_order_relaxed);
      samples.fetch_add(rs.samples, std::memory_order_relaxed);
      composited.fetch_add(rs.composited, std::memory_order_relaxed);
      skipped.fetch_add(rs.skipped, std::memory_order_relaxed);
    }
  });
  if (stats != nullptr) {
    stats->rays = rays.load();
    stats->samples = samples.load();
    stats->composited = composited.load();
    stats->skipped = skipped.load();
  }
}

}  // namespace vizcache::render_detail
