#pragma once

#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Per-block sampling stride for importance-masked adaptive sampling
/// (PAPERS.md "Make the Fastest Faster: Importance Mask Synthesis"): the
/// packet ray-caster samples every stride-th position of the global sample
/// lattice inside a block, so high-importance blocks keep the full rate
/// (stride 1) while near-constant ambient blocks are integrated at stride
/// 2 or 4 with the opacity correction rescaled exactly (see
/// raycaster_packet.cpp). Strides must be 1, 2, or 4 — the rescale factors
/// are closed-form polynomials only for powers of two up to 4, and the
/// packet entry point rejects anything else loudly.
///
/// The struct is a plain per-BlockId table so the render layer stays
/// independent of where the importance signal comes from; the core layer
/// wires it to `ImportanceTable` via `make_sampling_mask` (importance.hpp).
struct SamplingMask {
  std::vector<u8> stride;  ///< indexed by BlockId; values in {1, 2, 4}

  /// Stride of one block; blocks beyond the table default to full rate.
  u8 stride_of(BlockId id) const {
    return id < stride.size() ? stride[id] : u8{1};
  }

  /// Every block at the same stride (stride-1 mask == no mask).
  static SamplingMask uniform(usize block_count, u8 s) {
    SamplingMask m;
    m.stride.assign(block_count, s);
    return m;
  }
};

}  // namespace vizcache
