// SIMD ray-packet render path: 8 coherent rays per packet through the
// block-coherent 3D-DDA traversal (see raycast_packet in raycaster.hpp).
//
// Division of labor:
//  - per-lane SEGMENT bookkeeping (DDA stepping, residency, segment sample
//    bounds) is scalar double-precision code mirroring the block-coherent
//    path expression-for-expression, so segment boundaries, sample counts,
//    and non-resident skip counts are bit-identical to it;
//  - the per-SAMPLE inner loop (trilinear fetch, transfer-function LUT
//    lookup, front-to-back compositing) runs across all lanes at once
//    through util/simd.hpp, with per-lane masks retiring lanes on early-out
//    opacity termination and ray exit without disturbing their neighbors.
//
// A packet's lanes usually share one brick (adjacent pixels, coherent
// rays); the corner fetches then use a single gather base. When coherence
// breaks at a brick boundary the fetches fall back to per-lane loads
// (simd::gather_lanes) while every other vector op stays packed.
//
// The vector loop runs in "runs" bounded by the earliest lane segment
// boundary (n_run = min over lanes), so with 8 staggered rays a run is
// roughly segment_length/8 iterations. All per-lane state (positions,
// window clamps, gather bases, accumulators) therefore lives in packet-
// scope arrays that persist across runs: a segment refill touches only the
// lane that changed, and a run restart costs one batch of vector loads
// instead of rebuilding every lane.

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "render/raycaster.hpp"
#include "render/raycaster_detail.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace vizcache {

namespace {

namespace sd = simd;
using render_detail::for_each_row;
using render_detail::intersect_volume;
using render_detail::make_ray_frame;
using render_detail::pixel_ray_dir;
using render_detail::RayFrame;

constexpr int kL = sd::kLanes;

/// Per-ray state of one packet lane. Segment fields mirror the scalar
/// block-coherent path's locals exactly; see advance_segment().
struct Lane {
  enum class Phase : u8 {
    kRetired,      ///< no ray, ray exited, or opacity-terminated
    kNeedSegment,  ///< must run the scalar DDA to find a resident segment
    kSampling,     ///< has a resident segment [k, k_end) ready to sample
  };

  Vec3 dir;                       ///< normalized ray direction
  double o[3] = {0.0, 0.0, 0.0};  ///< ray origin (eye)
  double d[3] = {0.0, 0.0, 0.0};  ///< == dir, per-axis
  double va[3] = {0.0, 0.0, 0.0};  ///< voxel-space affine: s(t) = va + t*vb
  double vb[3] = {0.0, 0.0, 0.0};
  double t_entry = 0.0;
  double t_far = 0.0;
  i64 cx = 0, cy = 0, cz = 0;  ///< DDA block coords (signed for stepping)
  BlockId id = kInvalidBlock;
  u64 k = 0;      ///< global sample index (t_k = t_entry + k*step)
  u64 k_end = 0;  ///< first sample index past the current segment
  // Brick hoists of the current resident segment.
  const float* data = nullptr;
  i32 wx0 = 0, wy0 = 0, wz0 = 0;
  i32 wx1 = 0, wy1 = 0, wz1 = 0;
  i32 rx = 0, rxy = 0;
  u32 stride = 1;  ///< sampling stride of the current block (1, 2, or 4)
  Phase phase = Phase::kRetired;
};

/// Scalar per-lane DDA advance: walk blocks from the lane's current
/// position until a resident segment with samples is found (-> kSampling)
/// or the ray is exhausted (-> kRetired). Mirrors the segment logic of the
/// block-coherent raycast overload expression-for-expression so `k_end`
/// sequences and skip counts are bit-identical to it.
void advance_segment(Lane& ln, const BlockGrid& grid,
                     const BrickSampler& bricks, const SamplingMask* mask,
                     const Vec3& eye, double step, const Dims3& gdims,
                     RaycastStats& rs) {
  while (true) {
    const double t = ln.t_entry + static_cast<double>(ln.k) * step;
    if (t >= ln.t_far) {
      ln.phase = Lane::Phase::kRetired;
      return;
    }
    if (ln.id == kInvalidBlock) {
      // (Re-)anchor the DDA at the current sample (ray entry only; see the
      // block-coherent path).
      ln.id = grid.block_at_normalized(eye + ln.dir * t);
      if (ln.id == kInvalidBlock) {
        ++ln.k;
        continue;
      }
      const BlockCoord c = grid.coord_of(ln.id);
      ln.cx = static_cast<i64>(c.bx);
      ln.cy = static_cast<i64>(c.by);
      ln.cz = static_cast<i64>(c.bz);
    }

    const AABB box = grid.block_bounds(ln.id);
    const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
    const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
    double t_exit = std::numeric_limits<double>::infinity();
    int exit_axis = -1;
    for (int axis = 0; axis < 3; ++axis) {
      if (std::abs(ln.d[axis]) < 1e-12) continue;
      double bound = ln.d[axis] > 0.0 ? hi[axis] : lo[axis];
      double tb = (bound - ln.o[axis]) / ln.d[axis];
      if (tb < t_exit) {
        t_exit = tb;
        exit_axis = axis;
      }
    }
    if (exit_axis < 0) {
      ln.phase = Lane::Phase::kRetired;  // degenerate direction
      return;
    }
    const double seg_end = std::min(t_exit, ln.t_far);
    const double n_end = std::ceil((seg_end - ln.t_entry) / step);
    const u64 k_end = n_end <= 0.0 ? 0 : static_cast<u64>(n_end);

    const BrickView view = bricks.brick(ln.id);
    if (view.resident() && ln.k < k_end) {
      ln.wx0 = static_cast<i32>(view.ox);
      ln.wy0 = static_cast<i32>(view.oy);
      ln.wz0 = static_cast<i32>(view.oz);
      ln.wx1 = ln.wx0 + static_cast<i32>(view.ex) - 1;
      ln.wy1 = ln.wy0 + static_cast<i32>(view.ey) - 1;
      ln.wz1 = ln.wz0 + static_cast<i32>(view.ez) - 1;
      ln.rx = static_cast<i32>(view.ex);
      ln.rxy = static_cast<i32>(view.ex * view.ey);
      ln.data = view.data;
      ln.stride = mask != nullptr ? mask->stride_of(ln.id) : 1u;
      ln.k_end = k_end;
      ln.phase = Lane::Phase::kSampling;
      return;
    }
    if (!view.resident() && k_end > ln.k) {
      // O(1) non-resident skip, counted so packet and block-coherent skip
      // totals agree exactly.
      rs.skipped += k_end - ln.k;
      ln.k = k_end;
    }
    if (t_exit >= ln.t_far) {
      ln.phase = Lane::Phase::kRetired;
      return;
    }
    // DDA step into the neighbor block through the exit face.
    i64* coord = exit_axis == 0 ? &ln.cx : (exit_axis == 1 ? &ln.cy : &ln.cz);
    *coord += ln.d[exit_axis] > 0.0 ? 1 : -1;
    if (ln.cx < 0 || ln.cy < 0 || ln.cz < 0 ||
        ln.cx >= static_cast<i64>(gdims.x) ||
        ln.cy >= static_cast<i64>(gdims.y) ||
        ln.cz >= static_cast<i64>(gdims.z)) {
      ln.phase = Lane::Phase::kRetired;  // stepped off the grid
      return;
    }
    ln.id = grid.id_of({static_cast<usize>(ln.cx), static_cast<usize>(ln.cy),
                        static_cast<usize>(ln.cz)});
  }
}

}  // namespace

usize raycast_packet_width() { return static_cast<usize>(sd::kLanes); }

bool raycast_packet_native() { return sd::kNative; }

Image raycast_packet(const Camera& camera, const BrickSampler& bricks,
                     const TransferFunctionLUT& lut,
                     const RaycastParams& params, ThreadPool* pool,
                     RaycastStats* stats, const SamplingMask* mask) {
  VIZ_REQUIRE(params.step_size > 0.0, "raycast step must be positive");
  VIZ_REQUIRE(params.value_max > params.value_min, "empty value range");
  VIZ_REQUIRE(std::abs(lut.step_size() - params.step_size) <= 1e-12,
              "transfer-function LUT was baked for a different step size");
  const BlockGrid& grid = bricks.grid();
  if (mask != nullptr) {
    VIZ_REQUIRE(mask->stride.size() == grid.block_count(),
                "sampling mask does not cover the block grid");
    for (const u8 s : mask->stride) {
      VIZ_REQUIRE(s == 1 || s == 2 || s == 4,
                  "sampling mask strides must be 1, 2, or 4");
    }
  }

  Image image(params.image_width, params.image_height);
  const Dims3 dims = grid.volume_dims();
  const Dims3 gdims = grid.grid_dims();
  const RayFrame frame = make_ray_frame(camera, params);
  const float inv_range = 1.0f / (params.value_max - params.value_min);
  const double step = params.step_size;
  const double dimsd[3] = {static_cast<double>(dims.x),
                           static_cast<double>(dims.y),
                           static_cast<double>(dims.z)};
  const bool transparent_at_min = lut.sample(0.0f).a <= 0.0f;
  // LUT raw node array: 4 floats per entry, lerped between nodes i0 and
  // i0+1 exactly like TransferFunctionLUT::sample.
  const float* lutf = lut.flat();
  const i32 lut_last = static_cast<i32>(lut.resolution()) - 1;

  auto render_row = [&](usize y, RaycastStats& rs) {
    const sd::Vf one = sd::set1(1.0f);
    const sd::Vf two = sd::set1(2.0f);
    const sd::Vf vzero = sd::zero();
    const sd::Vf v_vmin = sd::set1(params.value_min);
    const sd::Vf v_tcut =
        sd::set1(transparent_at_min ? params.value_min
                                    : -std::numeric_limits<float>::max());
    const sd::Vf v_invr = sd::set1(inv_range);
    const sd::Vf v_scale = sd::set1(static_cast<float>(lut.resolution()));
    const sd::Vi v_last = sd::iset1(lut_last);
    const sd::Vi v_four = sd::iset1(4);
    const sd::Vi ione = sd::iset1(1);
    const sd::Vf v_early = sd::set1(params.early_termination);

    for (usize x0 = 0; x0 < params.image_width;
         x0 += static_cast<usize>(kL)) {
      const int nlanes = static_cast<int>(
          std::min<usize>(static_cast<usize>(kL), params.image_width - x0));

      // Packet-persistent per-lane state. The vector loop reads these as
      // whole vectors; segment refills rewrite only the slots of the lane
      // that changed. Tail/retired lanes keep zeroed (or stale-but-masked)
      // slots — the window clamps keep any index they produce in-bounds,
      // and the lane masks keep them out of every result.
      Lane lanes[kL];
      alignas(32) float accr_a[kL] = {}, accg_a[kL] = {}, accb_a[kL] = {},
                        acca_a[kL] = {};
      alignas(32) float sx_a[kL] = {}, sy_a[kL] = {}, sz_a[kL] = {};
      alignas(32) float bx_a[kL] = {}, by_a[kL] = {}, bz_a[kL] = {};
      alignas(32) i32 wx0_a[kL] = {}, wy0_a[kL] = {}, wz0_a[kL] = {};
      alignas(32) i32 wx1_a[kL] = {}, wy1_a[kL] = {}, wz1_a[kL] = {};
      alignas(32) i32 rx_a[kL] = {}, rxy_a[kL] = {};
      const float* bases[kL] = {};
      u32 s2_bits = 0, s4_bits = 0;
      u32 hit_bits = 0;

      for (int l = 0; l < nlanes; ++l) {
        const Vec3 dir =
            pixel_ray_dir(frame, params, x0 + static_cast<usize>(l), y);
        const auto hit = intersect_volume(frame.eye, dir);
        if (!hit) continue;
        ++rs.rays;
        hit_bits |= 1u << l;
        Lane& ln = lanes[l];
        ln.dir = dir;
        ln.t_entry = hit->first;
        ln.t_far = hit->second;
        ln.o[0] = frame.eye.x;
        ln.o[1] = frame.eye.y;
        ln.o[2] = frame.eye.z;
        ln.d[0] = dir.x;
        ln.d[1] = dir.y;
        ln.d[2] = dir.z;
        for (int axis = 0; axis < 3; ++axis) {
          ln.va[axis] = (ln.o[axis] + 1.0) * 0.5 * dimsd[axis] - 0.5;
          ln.vb[axis] = ln.d[axis] * 0.5 * dimsd[axis];
        }
        ln.phase = Lane::Phase::kNeedSegment;
      }

      // Refill lane l's packet slots for its freshly advanced segment:
      // voxel coordinates re-anchored from the double-precision affine form
      // at the lane's current sample (exactly the scalar fast path's
      // per-segment re-anchor), window clamps, strides, and gather base.
      auto fill_lane = [&](int l) {
        const Lane& ln = lanes[l];
        const double t0 = ln.t_entry + static_cast<double>(ln.k) * step;
        sx_a[l] = static_cast<float>(ln.va[0] + t0 * ln.vb[0]);
        sy_a[l] = static_cast<float>(ln.va[1] + t0 * ln.vb[1]);
        sz_a[l] = static_cast<float>(ln.va[2] + t0 * ln.vb[2]);
        const float sf = static_cast<float>(ln.stride);
        bx_a[l] = static_cast<float>(step * ln.vb[0]) * sf;
        by_a[l] = static_cast<float>(step * ln.vb[1]) * sf;
        bz_a[l] = static_cast<float>(step * ln.vb[2]) * sf;
        wx0_a[l] = ln.wx0;
        wy0_a[l] = ln.wy0;
        wz0_a[l] = ln.wz0;
        wx1_a[l] = ln.wx1;
        wy1_a[l] = ln.wy1;
        wz1_a[l] = ln.wz1;
        rx_a[l] = ln.rx;
        rxy_a[l] = ln.rxy;
        bases[l] = ln.data;
        const u32 bit = 1u << l;
        s2_bits = (s2_bits & ~bit) | (ln.stride == 2 ? bit : 0u);
        s4_bits = (s4_bits & ~bit) | (ln.stride == 4 ? bit : 0u);
      };

      // Lane phases as bitmasks, maintained incrementally so each run's
      // scalar phase touches only the lanes that actually changed instead
      // of re-scanning all eight.
      u32 samp_bits = 0;
      u32 need_bits = hit_bits;
      while (true) {
        // Scalar phase: give every lane that needs one a fresh resident
        // segment (or retire it). This is where packet coherence breaks
        // are absorbed — each lane walks its own DDA independently, and
        // only refilled lanes touch the packet arrays.
        for (u32 b = need_bits; b != 0; b &= b - 1) {
          const int l = std::countr_zero(b);
          Lane& ln = lanes[l];
          advance_segment(ln, grid, bricks, mask, frame.eye, step, gdims, rs);
          if (ln.phase == Lane::Phase::kSampling) {
            fill_lane(l);
            samp_bits |= 1u << l;
          }
        }
        need_bits = 0;
        if (samp_bits == 0) break;

        // Run length: every sampling lane marches until its segment is
        // exhausted; the run stops at the earliest boundary so the packet
        // re-fills with fresh segments instead of idling lanes. Strides are
        // powers of two, so the remainder is a shift, never a divide.
        u64 n_run = std::numeric_limits<u64>::max();
        const float* base0 = nullptr;
        bool same_base = true;
        for (u32 b = samp_bits; b != 0; b &= b - 1) {
          const Lane& ln = lanes[std::countr_zero(b)];
          const u64 rem =
              (ln.k_end - ln.k + ln.stride - 1) >> std::countr_zero(ln.stride);
          n_run = std::min(n_run, rem);
          if (base0 == nullptr) {
            base0 = ln.data;
          } else if (ln.data != base0) {
            same_base = false;
          }
        }
        if (same_base) {
          // The shared-brick fast path fetches x-adjacent corner pairs in
          // one load, which needs at least two voxels of x extent.
          const Lane& ln0 = lanes[std::countr_zero(samp_bits)];
          same_base = ln0.wx1 > ln0.wx0;
        }
        const bool any_stride = ((s2_bits | s4_bits) & samp_bits) != 0;

        u32 live_bits = samp_bits;

        // The vector loop, specialized at compile time on (single gather
        // base?, any strided lane?). The rare variants would otherwise keep
        // extra values live across the whole loop and push the common
        // one-brick full-rate case into stack spills.
        //
        // The loop is fissioned into two passes over a small chunk buffer:
        // pass 1 turns positions into trilinear sample values, pass 2 turns
        // values into composited color. One fused iteration is ~200 uops —
        // more than the reorder buffer can hold twice — so the long
        // fetch->lerp->LUT->composite dependency chain never overlaps
        // across samples. Split, each pass is small enough for the CPU to
        // keep 2-3 iterations in flight.
        auto vec_loop = [&](auto same_base_c, auto any_stride_c) {
          constexpr bool kSameBase = decltype(same_base_c)::value;
          constexpr bool kAnyStride = decltype(any_stride_c)::value;

          sd::Vf sx = sd::load(sx_a), sy = sd::load(sy_a), sz = sd::load(sz_a);
          const sd::Vf bxv = sd::load(bx_a), byv = sd::load(by_a),
                       bzv = sd::load(bz_a);
          // One brick -> one window: broadcast its bounds instead of
          // reading the per-lane arrays (retired lanes then clamp into the
          // live brick too, which keeps every index in bounds and lets the
          // gathers run unmasked). The shared window also allows clamping
          // the float positions instead of both integer corners per axis:
          // whenever the clamp acts, either the two corners collapse or the
          // fraction becomes 0, so the interpolated value is unchanged —
          // at 4 ops per axis instead of 7.
          sd::Vf w0xf, w0yf, w0zf, w1xf, w1yf, w1zf;
          sd::Vi wx1m, wy1i, wz1i, biasv;
          sd::Vi wx0, wy0, wz0, wx1, wy1, wz1;
          sd::Vi rxv, rxyv;
          if constexpr (kSameBase) {
            const Lane& ln0 = lanes[std::countr_zero(samp_bits)];
            w0xf = sd::set1(static_cast<float>(ln0.wx0));
            w0yf = sd::set1(static_cast<float>(ln0.wy0));
            w0zf = sd::set1(static_cast<float>(ln0.wz0));
            w1xf = sd::set1(static_cast<float>(ln0.wx1));
            w1yf = sd::set1(static_cast<float>(ln0.wy1));
            w1zf = sd::set1(static_cast<float>(ln0.wz1));
            wx1m = sd::iset1(ln0.wx1 - 1);
            wy1i = sd::iset1(ln0.wy1);
            wz1i = sd::iset1(ln0.wz1);
            // Indices stay in volume voxel coords; the brick-local rebase
            // (-w0 per axis) folds into one subtract on the x corners.
            biasv = sd::iset1(ln0.wz0 * ln0.rxy + ln0.wy0 * ln0.rx + ln0.wx0);
            rxv = sd::iset1(ln0.rx);
            rxyv = sd::iset1(ln0.rxy);
          } else {
            wx0 = sd::iload(wx0_a);
            wy0 = sd::iload(wy0_a);
            wz0 = sd::iload(wz0_a);
            wx1 = sd::iload(wx1_a);
            wy1 = sd::iload(wy1_a);
            wz1 = sd::iload(wz1_a);
            rxv = sd::iload(rx_a);
            rxyv = sd::iload(rxy_a);
          }
          sd::Vf vaccr = sd::load(accr_a), vaccg = sd::load(accg_a),
                 vaccb = sd::load(accb_a), vacca = sd::load(acca_a);
          sd::Mask m_live = sd::mask_from_bits(live_bits);
          // Pass 1 gathers with the run's full sampling mask, not the
          // shrinking live mask: every sampling lane's base stays valid for
          // the whole run, so fetching a few samples past a lane's
          // retirement point is safe (and masked out of the color).
          const sd::Mask m_fetch = sd::mask_from_bits(samp_bits);
          // Stats accumulate in scalar registers and flush once per run:
          // adding to the shared counters inside the loop would force a
          // store (and an aliasing reload of every hoisted pointer) per
          // sample.
          u64 n_samples = 0;
          u64 n_composited = 0;

          auto fetch = [&](sd::Vi idx) {
            if constexpr (kSameBase) {
              return sd::gather(base0, idx);
            } else {
              return sd::gather_lanes(bases, idx, m_fetch);
            }
          };

          constexpr u64 kChunk = 32;
          alignas(32) float vbuf[kChunk * kL];
          // Shared-brick staging buffers between the index pass and the
          // fetch pass (see below); one chunk's worth of corner indices
          // and interpolation fractions.
          [[maybe_unused]] alignas(32) i32 ib00[kChunk * kL];
          [[maybe_unused]] alignas(32) i32 ib10[kChunk * kL];
          [[maybe_unused]] alignas(32) i32 ib01[kChunk * kL];
          [[maybe_unused]] alignas(32) i32 ib11[kChunk * kL];
          [[maybe_unused]] alignas(32) float fbx[kChunk * kL];
          [[maybe_unused]] alignas(32) float fby[kChunk * kL];
          [[maybe_unused]] alignas(32) float fbz[kChunk * kL];
          for (u64 cbeg = 0; cbeg < n_run; cbeg += kChunk) {
            const u64 cend = std::min(n_run, cbeg + kChunk);

            // Pass 1: positions -> trilinear sample values. The shared-
            // brick path splits this again — index arithmetic first, corner
            // fetches second — so the fetch loop's loads depend only on a
            // staging-buffer read, not on the whole position -> clamp ->
            // convert -> multiply chain, and several iterations' loads stay
            // in flight at once.
            if constexpr (kSameBase) {
              for (u64 i = cbeg; i < cend; ++i) {
                const u64 o = (i - cbeg) * kL;
                const sd::Vf sxc = sd::min(sd::max(sx, w0xf), w1xf);
                const sd::Vf syc = sd::min(sd::max(sy, w0yf), w1yf);
                const sd::Vf szc = sd::min(sd::max(sz, w0zf), w1zf);
                const sd::Vi iy = sd::to_int(syc);
                const sd::Vi iz = sd::to_int(szc);
                // The two x corners are adjacent in memory, so each
                // (z, y) plane pair comes from ONE paired fetch at xp,
                // chosen so [xp, xp+1] stays inside the window; at the
                // high edge the fraction becomes exactly 1 instead.
                const sd::Vi xp = sd::imin(sd::to_int(sxc), wx1m);
                sd::store(fbx + o, sd::sub(sxc, sd::to_float(xp)));
                sd::store(fby + o, sd::sub(syc, sd::to_float(iy)));
                sd::store(fbz + o, sd::sub(szc, sd::to_float(iz)));
                // The +1 corner is one row (dy) / one plane (dz) away, or
                // the same row/plane when the clamp collapses it at the
                // window's high edge — a compare+and instead of a second
                // multiply per axis.
                const sd::Vi dy = sd::iand(sd::icmp_gt(wy1i, iy), rxv);
                const sd::Vi dz = sd::iand(sd::icmp_gt(wz1i, iz), rxyv);
                const sd::Vi xb = sd::isub(xp, biasv);
                const sd::Vi i00 = sd::iadd(
                    sd::iadd(sd::imullo(iz, rxyv), sd::imullo(iy, rxv)), xb);
                const sd::Vi i01 = sd::iadd(i00, dz);
                sd::istore(ib00 + o, i00);
                sd::istore(ib10 + o, sd::iadd(i00, dy));
                sd::istore(ib01 + o, i01);
                sd::istore(ib11 + o, sd::iadd(i01, dy));
                sx = sd::add(sx, bxv);
                sy = sd::add(sy, byv);
                sz = sd::add(sz, bzv);
              }
              for (u64 i = cbeg; i < cend; ++i) {
                const u64 o = (i - cbeg) * kL;
                const sd::VfPair p00 = sd::gather_pairs(base0, sd::iload(ib00 + o));
                const sd::VfPair p10 = sd::gather_pairs(base0, sd::iload(ib10 + o));
                const sd::VfPair p01 = sd::gather_pairs(base0, sd::iload(ib01 + o));
                const sd::VfPair p11 = sd::gather_pairs(base0, sd::iload(ib11 + o));
                const sd::Vf fx = sd::load(fbx + o);
                const sd::Vf c00 = sd::lerp(p00.lo, p00.hi, fx);
                const sd::Vf c10 = sd::lerp(p10.lo, p10.hi, fx);
                const sd::Vf c01 = sd::lerp(p01.lo, p01.hi, fx);
                const sd::Vf c11 = sd::lerp(p11.lo, p11.hi, fx);
                const sd::Vf fy = sd::load(fby + o);
                const sd::Vf c0 = sd::lerp(c00, c10, fy);
                const sd::Vf c1 = sd::lerp(c01, c11, fy);
                sd::store(vbuf + o, sd::lerp(c0, c1, sd::load(fbz + o)));
              }
            } else
            for (u64 i = cbeg; i < cend; ++i) {
              sd::Vf fy, fz;
              sd::Vf c00, c10, c01, c11;
              {
                // Mixed bricks: truncate-and-clamp both integer corners
                // into each lane's own window, exactly like the scalar
                // fast path.
                const sd::Vi ix = sd::to_int(sx);
                const sd::Vi iy = sd::to_int(sy);
                const sd::Vi iz = sd::to_int(sz);
                const sd::Vf fx = sd::sub(sx, sd::to_float(ix));
                fy = sd::sub(sy, sd::to_float(iy));
                fz = sd::sub(sz, sd::to_float(iz));
                const sd::Vi x0v =
                    sd::isub(sd::imin(sd::imax(ix, wx0), wx1), wx0);
                const sd::Vi x1v = sd::isub(
                    sd::imin(sd::imax(sd::iadd(ix, ione), wx0), wx1), wx0);
                const sd::Vi y0v =
                    sd::isub(sd::imin(sd::imax(iy, wy0), wy1), wy0);
                const sd::Vi y1v = sd::isub(
                    sd::imin(sd::imax(sd::iadd(iy, ione), wy0), wy1), wy0);
                const sd::Vi z0v =
                    sd::isub(sd::imin(sd::imax(iz, wz0), wz1), wz0);
                const sd::Vi z1v = sd::isub(
                    sd::imin(sd::imax(sd::iadd(iz, ione), wz0), wz1), wz0);
                const sd::Vi zr0 = sd::imullo(z0v, rxyv);
                const sd::Vi zr1 = sd::imullo(z1v, rxyv);
                const sd::Vi yr0 = sd::imullo(y0v, rxv);
                const sd::Vi yr1 = sd::imullo(y1v, rxv);
                const sd::Vi zy00 = sd::iadd(zr0, yr0);
                const sd::Vi zy10 = sd::iadd(zr0, yr1);
                const sd::Vi zy01 = sd::iadd(zr1, yr0);
                const sd::Vi zy11 = sd::iadd(zr1, yr1);
                c00 = sd::lerp(fetch(sd::iadd(zy00, x0v)),
                               fetch(sd::iadd(zy00, x1v)), fx);
                c10 = sd::lerp(fetch(sd::iadd(zy10, x0v)),
                               fetch(sd::iadd(zy10, x1v)), fx);
                c01 = sd::lerp(fetch(sd::iadd(zy01, x0v)),
                               fetch(sd::iadd(zy01, x1v)), fx);
                c11 = sd::lerp(fetch(sd::iadd(zy11, x0v)),
                               fetch(sd::iadd(zy11, x1v)), fx);
              }
              const sd::Vf c0 = sd::lerp(c00, c10, fy);
              const sd::Vf c1 = sd::lerp(c01, c11, fy);
              sd::store(vbuf + (i - cbeg) * kL, sd::lerp(c0, c1, fz));

              sx = sd::add(sx, bxv);
              sy = sd::add(sy, byv);
              sz = sd::add(sz, bzv);
            }

            // Pass 2: values -> LUT color -> front-to-back compositing,
            // with per-lane retirement.
            for (u64 it = cbeg; it < cend; ++it) {
              const sd::Vf value = sd::load(vbuf + (it - cbeg) * kL);

              // Transparent-at-minimum is folded into an always-on
              // compare: when the volume floor maps to visible opacity,
              // the cut sits below every representable value and never
              // fires.
              sd::Mask m_contrib =
                  sd::mask_andnot(m_live, sd::cmp_le(value, v_tcut));
              // Whole packet transparent: nothing composites and the
              // accumulators cannot move, so the LUT lookup and the
              // retirement check are both dead — skip straight to the
              // sample count. Coherent rays cross empty regions together,
              // so this branch predicts well.
              if (!sd::any(m_contrib)) {
                n_samples += static_cast<u64>(std::popcount(live_bits));
                continue;
              }

              // LUT lookup (premultiplied, opacity-corrected entries),
              // lerped between nodes exactly like
              // TransferFunctionLUT::sample. Each lane reads its two
              // adjacent entries (8 contiguous floats) in one load; the
              // transpose yields the lo/hi channel columns with no index
              // vectors and no gathers.
              const sd::Vf vn = sd::min(
                  sd::max(sd::mul(sd::sub(value, v_vmin), v_invr), vzero),
                  one);
              const sd::Vf u = sd::mul(vn, v_scale);
              const sd::Vi i0 = sd::imin(sd::to_int(u), v_last);
              const sd::Vf tt = sd::sub(u, sd::to_float(i0));
              alignas(32) i32 fbase_a[kL];
              sd::istore(fbase_a, sd::imullo(i0, v_four));
              sd::Vf ent[8];
              sd::load8_transpose(lutf, fbase_a, ent);
              sd::Vf er = sd::lerp(ent[0], ent[4], tt);
              sd::Vf eg = sd::lerp(ent[1], ent[5], tt);
              sd::Vf eb = sd::lerp(ent[2], ent[6], tt);
              sd::Vf ea = sd::lerp(ent[3], ent[7], tt);
              m_contrib = sd::mask_and(m_contrib, sd::cmp_gt(ea, vzero));

              if constexpr (kAnyStride) {
                // Exact opacity-correction rescale for strided blocks: the
                // LUT bakes ac = 1-(1-a)^(step*10); a stride-s block
                // integrates an s-times longer effective step, so the
                // corrected alpha is 1-(1-ac)^s. Premultiplied channels
                // scale by the same factor:
                //   s=2: f = 2-ac          s=4: f = (2-ac)*(1+(1-ac)^2)
                const sd::Mask m_s2 = sd::mask_from_bits(s2_bits);
                const sd::Mask m_s4 = sd::mask_from_bits(s4_bits);
                const sd::Vf om = sd::sub(one, ea);
                const sd::Vf f2 = sd::sub(two, ea);
                const sd::Vf f4 = sd::mul(f2, sd::fmadd(om, om, one));
                const sd::Vf f =
                    sd::select(m_s2, f2, sd::select(m_s4, f4, one));
                er = sd::mul(er, f);
                eg = sd::mul(eg, f);
                eb = sd::mul(eb, f);
                ea = sd::mul(ea, f);
              }

              // Front-to-back compositing: each lane owns its accumulator,
              // so the cross-sample dependency is per-lane and fully
              // packed.
              const sd::Vf w =
                  sd::select(m_contrib, sd::sub(one, vacca), vzero);
              vaccr = sd::fmadd(er, w, vaccr);
              vaccg = sd::fmadd(eg, w, vaccg);
              vaccb = sd::fmadd(eb, w, vaccb);
              vacca = sd::fmadd(ea, w, vacca);
              n_composited += static_cast<u64>(sd::count(m_contrib));
              n_samples += static_cast<u64>(std::popcount(live_bits));

              // Masked lane retirement on early-out opacity termination.
              const sd::Mask m_done =
                  sd::mask_and(sd::cmp_ge(vacca, v_early), m_live);
              if (sd::any(m_done)) {
                const u32 db = sd::bits(m_done);
                for (u32 b = db; b != 0; b &= b - 1) {
                  Lane& ln = lanes[std::countr_zero(b)];
                  ln.k += (it + 1) * ln.stride;
                  ln.phase = Lane::Phase::kRetired;
                }
                live_bits &= ~db;
                if (live_bits == 0) break;
                m_live = sd::mask_from_bits(live_bits);
              }
            }
            if (live_bits == 0) break;
          }

          sd::store(sx_a, sx);
          sd::store(sy_a, sy);
          sd::store(sz_a, sz);
          sd::store(accr_a, vaccr);
          sd::store(accg_a, vaccg);
          sd::store(accb_a, vaccb);
          sd::store(acca_a, vacca);
          rs.samples += n_samples;
          rs.composited += n_composited;
        };

        if (same_base) {
          if (any_stride) {
            vec_loop(std::true_type{}, std::true_type{});
          } else {
            vec_loop(std::true_type{}, std::false_type{});
          }
        } else if (any_stride) {
          vec_loop(std::false_type{}, std::true_type{});
        } else {
          vec_loop(std::false_type{}, std::false_type{});
        }

        // Lanes retired mid-run (ET) are already out of live_bits; of the
        // rest, exhausted segments go back to the scalar phase and the
        // others keep sampling next run.
        u32 keep = 0;
        for (u32 b = live_bits; b != 0; b &= b - 1) {
          const u32 bit = b & (~b + 1);
          Lane& ln = lanes[std::countr_zero(b)];
          ln.k += n_run * ln.stride;
          if (ln.k >= ln.k_end) {
            ln.phase = Lane::Phase::kNeedSegment;
            need_bits |= bit;
          } else {
            keep |= bit;
          }
        }
        samp_bits = keep;
      }

      for (int l = 0; l < nlanes; ++l) {
        if ((hit_bits >> l) & 1u) {
          image.at(x0 + static_cast<usize>(l), y) = {accr_a[l], accg_a[l],
                                                     accb_a[l], acca_a[l]};
        }
      }
    }
  };

  for_each_row(params, pool, stats, render_row);
  return image;
}

}  // namespace vizcache
