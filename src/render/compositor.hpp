#pragma once

#include <span>
#include <vector>

#include "geom/camera.hpp"
#include "render/image.hpp"
#include "render/raycaster.hpp"
#include "volume/block_grid.hpp"

namespace vizcache {

/// A partial rendering: one worker's ray-cast of just its own blocks, plus
/// the depth used for visibility ordering (distance of its block set's
/// centroid to the camera).
struct PartialRender {
  Image image;
  double depth = 0.0;
};

/// Render only the listed blocks of a volume: the sampler is masked so rays
/// accumulate solely inside `blocks`. This is the per-worker render of a
/// parallel pipeline (each node renders what it owns).
Image raycast_blocks(const Camera& camera, const BlockGrid& grid,
                     std::span<const BlockId> blocks,
                     const VolumeSampler& sampler, const TransferFunction& tf,
                     const RaycastParams& params, ThreadPool* pool = nullptr);

/// Depth of a block set for compositing order: distance from the camera to
/// the centroid of the blocks' bounds centers. Empty sets sort last.
double block_set_depth(const Camera& camera, const BlockGrid& grid,
                       std::span<const BlockId> blocks);

/// Back-to-front "over" composite of partial renders (sorted internally by
/// descending depth). All images must share dimensions. This is the
/// standard sort-last compositing step of parallel volume rendering — the
/// "parallel ... rendering" extension the paper names as future work.
///
/// Exactness caveat (inherent to sort-last with convex-ish regions): the
/// result equals the monolithic single-pass raycast when the partition
/// regions are depth-separable along the view ray (e.g. slab partitions
/// viewed down the slab axis); interleaved partitions composite
/// approximately, as in real sort-last renderers.
///
/// Pass a ThreadPool to chunk the pixel loop across rows (each row is
/// written by exactly one task; layer order is preserved per pixel, so the
/// result is identical with or without a pool).
Image composite_over(std::vector<PartialRender> partials,
                     ThreadPool* pool = nullptr);

}  // namespace vizcache
