#pragma once

#include "geom/vec3.hpp"

namespace vizcache {

/// Spherical coordinates of a camera position relative to the volume center o.
/// theta = polar angle from +z in [0, pi], phi = azimuth from +x in [0, 2pi),
/// r = distance from o. The paper keys its visibility table on the tuple
/// <l, d> where l = direction(v->o) and d = ||v - o||; (theta, phi) encode l.
struct Spherical {
  double theta = 0.0;
  double phi = 0.0;
  double r = 1.0;
};

/// Cartesian position from spherical coordinates (origin-centered).
Vec3 spherical_to_cartesian(const Spherical& s);

/// Spherical coordinates of a cartesian point; r==0 maps to theta=phi=0.
Spherical cartesian_to_spherical(const Vec3& p);

/// Unit direction for (theta, phi).
Vec3 direction_from_angles(double theta, double phi);

/// Great-circle (angular) distance in radians between two unit directions.
double angular_distance(const Vec3& dir_a, const Vec3& dir_b);

/// Rotate `dir` by `angle_rad` toward/around a random tangent, producing a new
/// unit direction whose angular distance from `dir` is exactly `angle_rad`.
/// `tangent_angle` in [0, 2pi) selects the tangent-plane direction.
Vec3 perturb_direction(const Vec3& dir, double angle_rad, double tangent_angle);

}  // namespace vizcache
