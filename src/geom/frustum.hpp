#pragma once

#include "geom/aabb.hpp"
#include "geom/camera.hpp"

namespace vizcache {

/// View-cone visibility test from the paper (Section IV-B, Eq. 1).
///
/// The frustum of a camera at v looking at the volume center o is modeled as
/// a cone with apex v, axis v->o, and full apex angle theta. A block b is
/// visible iff the angle phi between v->b_i and v->o is below theta/2 for
/// some corner b_i of b. We additionally treat a block as visible when the
/// camera is inside it or when the cone axis pierces it (which the corner
/// test alone can miss for blocks larger than the cone cross-section).
class ConeFrustum {
 public:
  explicit ConeFrustum(const Camera& camera);

  const Vec3& apex() const { return apex_; }
  const Vec3& axis() const { return axis_; }
  double half_angle_rad() const { return half_angle_; }

  /// Is point p inside the cone?
  bool contains_point(const Vec3& p) const;

  /// Paper Eq. 1 on the eight corners, plus robustness extensions.
  bool intersects_block(const AABB& block) const;

  /// Conservative sphere test: false only when the sphere certainly lies
  /// outside the cone (no false negatives — used for hierarchical culling,
  /// e.g. octree nodes, where a wrong reject would drop a whole subtree).
  bool may_intersect_sphere(const Vec3& center, double radius) const;

 private:
  Vec3 apex_;
  Vec3 axis_;       // unit vector toward the volume center
  double half_angle_;
  double cos_half_angle_;
};

}  // namespace vizcache
