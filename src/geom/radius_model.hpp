#pragma once

#include "util/types.hpp"

namespace vizcache {

/// Analytic model for the vicinal-sphere radius r (paper Section V-B2,
/// Eq. 3-6). The volume edge is normalized to 2 (coordinates in [-1, 1]);
/// aggregating the frustums of all points in the vicinal ball phi around a
/// sampling position at distance d yields a cone-frustum zeta between the
/// volume's near and far planes. Choosing r so that vol(zeta) / 8 equals the
/// fast:slow cache-size ratio fills fast memory exactly:
///
///   r(theta, d, ratio) = sqrt(4*ratio/pi - tan^2(theta/2)/3) - d*tan(theta/2)
///
/// with theta the full view-cone angle. The derivation uses
/// h = d + 1 + r/tan(theta/2), h' = d - 1 + r/tan(theta/2) and
/// vol(zeta) = pi tan^2(theta/2) (h^3 - h'^3) / 3.
struct RadiusModel {
  double view_angle_deg = 30.0;  ///< theta
  double cache_ratio = 0.5;      ///< fast cache size / slow cache size
  double min_radius = 1e-3;      ///< floor: never collapse to a point

  /// Optimal r for a camera at distance d (Eq. 6), clamped to min_radius.
  double optimal_radius(double view_distance) const;

  /// The aggregated-frustum volume fraction (vol(zeta)/8) that a given r
  /// produces at distance d — the left side of Eq. 3. Tests verify
  /// frustum_fraction(optimal_radius(d), d) == cache_ratio.
  double frustum_fraction(double r, double view_distance) const;

  /// The radius whose aggregated frustum covers `fraction` of the volume at
  /// distance d (Eq. 6 with an arbitrary right-hand side).
  double radius_for_fraction(double view_distance, double fraction) const;

  /// r must also be at least the camera-path step length so the vicinal ball
  /// of the nearest sample contains the *next* path position (Section IV-B).
  /// The floor is capped at radius_for_fraction(d, 0.5): past the point
  /// where the aggregated frustum covers half the volume, the entry
  /// degenerates into a global importance ranking and a larger radius only
  /// dilutes the prediction (over-prediction, Section IV-B).
  /// Returns max(optimal, min(path_step_length, cap), min_radius).
  double radius_with_step_floor(double view_distance,
                                double path_step_length) const;
};

}  // namespace vizcache
