#pragma once

#include <cmath>

namespace vizcache {

/// 3D double-precision vector. The whole geometry layer works in the paper's
/// normalized frame: the volume occupies [-1, 1]^3 (edge size 2) and the
/// exploration domain Omega is a sphere centered at the origin o.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

  constexpr bool operator==(const Vec3& o) const = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector; returns +x axis for the zero vector.
  Vec3 normalized() const {
    double n = norm();
    if (n == 0.0) return {1.0, 0.0, 0.0};
    return *this / n;
  }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Angle in radians between two vectors; 0 if either is zero-length.
inline double angle_between(const Vec3& a, const Vec3& b) {
  double na = a.norm(), nb = b.norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return std::acos(c);
}

inline constexpr double deg_to_rad(double deg) {
  return deg * 3.14159265358979323846 / 180.0;
}
inline constexpr double rad_to_deg(double rad) {
  return rad * 180.0 / 3.14159265358979323846;
}

}  // namespace vizcache
