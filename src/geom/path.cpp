#include "geom/path.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vizcache {

CameraPath make_spherical_path(const SphericalPathSpec& spec) {
  VIZ_REQUIRE(spec.positions >= 1, "path needs at least one position");
  VIZ_REQUIRE(spec.step_deg > 0.0, "step must be positive");
  VIZ_REQUIRE(spec.distance > 0.0, "distance must be positive");

  CameraPath path;
  path.reserve(spec.positions);
  // Start at the equator; walk the great circle, tilting the travel tangent
  // slightly each step so the orbit precesses over the sphere.
  Vec3 dir{1.0, 0.0, 0.0};
  double tangent_angle = 0.0;
  const double step_rad = deg_to_rad(spec.step_deg);
  const double precession_rad = deg_to_rad(spec.precession_deg);
  for (usize i = 0; i < spec.positions; ++i) {
    path.emplace_back(dir * spec.distance, spec.view_angle_deg);
    dir = perturb_direction(dir, step_rad, tangent_angle);
    tangent_angle += precession_rad;
  }
  return path;
}

CameraPath make_random_path(const RandomPathSpec& spec) {
  VIZ_REQUIRE(spec.positions >= 1, "path needs at least one position");
  VIZ_REQUIRE(spec.step_min_deg >= 0.0 && spec.step_max_deg >= spec.step_min_deg,
              "invalid step range");
  VIZ_REQUIRE(spec.distance_min > 0.0 && spec.distance_max >= spec.distance_min,
              "invalid distance range");

  Rng rng(spec.seed);
  CameraPath path;
  path.reserve(spec.positions);
  Vec3 dir{1.0, 0.0, 0.0};
  double d = 0.5 * (spec.distance_min + spec.distance_max);
  for (usize i = 0; i < spec.positions; ++i) {
    path.emplace_back(dir * d, spec.view_angle_deg);
    double step_rad = deg_to_rad(rng.uniform(spec.step_min_deg, spec.step_max_deg));
    double tangent = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    dir = perturb_direction(dir, step_rad, tangent);
    if (spec.distance_max > spec.distance_min) {
      d = rng.uniform(spec.distance_min, spec.distance_max);
    }
  }
  return path;
}

double mean_step_degrees(const CameraPath& path) {
  if (path.size() < 2) return 0.0;
  double sum = 0.0;
  for (usize i = 1; i < path.size(); ++i) {
    sum += rad_to_deg(angular_distance(path[i - 1].view_direction(),
                                       path[i].view_direction()));
  }
  return sum / static_cast<double>(path.size() - 1);
}

}  // namespace vizcache
