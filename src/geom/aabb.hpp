#pragma once

#include <array>

#include "geom/vec3.hpp"

namespace vizcache {

/// Axis-aligned box. Data blocks are AABBs in the normalized [-1,1]^3 frame.
struct AABB {
  Vec3 lo;
  Vec3 hi;

  AABB() = default;
  AABB(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return hi - lo; }
  double volume() const;
  double diagonal() const { return (hi - lo).norm(); }

  bool contains(const Vec3& p) const;
  bool intersects(const AABB& o) const;

  /// The eight corner points b_i, i in [0, 7] (paper Eq. 1 iterates these).
  std::array<Vec3, 8> corners() const;

  /// Smallest box covering both.
  AABB united(const AABB& o) const;

  /// Closest point inside the box to p (p itself if contained).
  Vec3 clamp_point(const Vec3& p) const;
};

}  // namespace vizcache
