#include "geom/spherical.hpp"

#include <algorithm>
#include <cmath>

namespace vizcache {

Vec3 spherical_to_cartesian(const Spherical& s) {
  double st = std::sin(s.theta), ct = std::cos(s.theta);
  double sp = std::sin(s.phi), cp = std::cos(s.phi);
  return {s.r * st * cp, s.r * st * sp, s.r * ct};
}

Spherical cartesian_to_spherical(const Vec3& p) {
  Spherical s;
  s.r = p.norm();
  if (s.r == 0.0) return {0.0, 0.0, 0.0};
  s.theta = std::acos(std::clamp(p.z / s.r, -1.0, 1.0));
  s.phi = std::atan2(p.y, p.x);
  if (s.phi < 0.0) s.phi += 2.0 * 3.14159265358979323846;
  return s;
}

Vec3 direction_from_angles(double theta, double phi) {
  return spherical_to_cartesian({theta, phi, 1.0});
}

double angular_distance(const Vec3& dir_a, const Vec3& dir_b) {
  return angle_between(dir_a, dir_b);
}

Vec3 perturb_direction(const Vec3& dir, double angle_rad, double tangent_angle) {
  Vec3 d = dir.normalized();
  // Build an orthonormal tangent basis {t1, t2} at d.
  Vec3 helper = std::abs(d.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
  Vec3 t1 = d.cross(helper).normalized();
  Vec3 t2 = d.cross(t1).normalized();
  Vec3 tangent = t1 * std::cos(tangent_angle) + t2 * std::sin(tangent_angle);
  // Walk along the great circle through d in direction `tangent`.
  return (d * std::cos(angle_rad) + tangent * std::sin(angle_rad)).normalized();
}

}  // namespace vizcache
