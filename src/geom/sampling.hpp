#pragma once

#include <vector>

#include "geom/spherical.hpp"
#include "geom/vec3.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace vizcache {

/// Sampling grid over the exploration domain Omega (paper Step 1): camera
/// positions are placed on a lattice of view directions (theta x phi) crossed
/// with a set of view distances. 36 x 72 x 10 reproduces the paper's 25,920
/// sampling positions.
struct OmegaSamplingSpec {
  usize theta_steps = 36;   ///< polar divisions over [0, pi]
  usize phi_steps = 72;     ///< azimuthal divisions over [0, 2pi)
  usize distance_steps = 10;
  double distance_min = 2.0;
  double distance_max = 4.0;

  usize total_positions() const {
    return theta_steps * phi_steps * distance_steps;
  }
};

/// All sampled camera positions for a spec, in deterministic lattice order:
/// index = (t * phi_steps + p) * distance_steps + d.
std::vector<Vec3> sample_omega_positions(const OmegaSamplingSpec& spec);

/// Lattice index of the sample nearest to an arbitrary position (O(1) grid
/// lookup; equivalent result to brute-force nearest-neighbor over the lattice
/// for interior points).
usize nearest_omega_index(const OmegaSamplingSpec& spec, const Vec3& position);

/// Brute-force nearest neighbor over an explicit position set (used to model
/// and validate the table-scan lookup cost the paper observes in Fig. 7b).
usize nearest_position_linear(const std::vector<Vec3>& positions,
                              const Vec3& query);

/// Sample `count` points uniformly inside the vicinal ball phi of radius r
/// centered at `center` (paper Fig. 6: the points v' whose frustums are
/// aggregated). Deterministic given the rng state.
std::vector<Vec3> sample_vicinal_ball(const Vec3& center, double radius,
                                      usize count, Rng& rng);

/// `count` near-uniform unit directions via the Fibonacci sphere lattice.
std::vector<Vec3> fibonacci_sphere(usize count);

}  // namespace vizcache
