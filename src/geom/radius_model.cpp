#include "geom/radius_model.hpp"

#include <algorithm>
#include <cmath>

#include "geom/vec3.hpp"
#include "util/error.hpp"

namespace vizcache {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double RadiusModel::optimal_radius(double view_distance) const {
  VIZ_REQUIRE(view_distance > 0.0, "view distance must be positive");
  VIZ_REQUIRE(cache_ratio > 0.0 && cache_ratio <= 1.0,
              "cache ratio must be in (0, 1]");
  const double t = std::tan(deg_to_rad(view_angle_deg) * 0.5);
  const double inner = 4.0 * cache_ratio / kPi - t * t / 3.0;
  if (inner <= 0.0) return min_radius;  // cache too small for any aggregation
  double r = std::sqrt(inner) - view_distance * t;
  return std::max(r, min_radius);
}

double RadiusModel::frustum_fraction(double r, double view_distance) const {
  VIZ_REQUIRE(r >= 0.0, "negative radius");
  const double t = std::tan(deg_to_rad(view_angle_deg) * 0.5);
  // Apex of the aggregated cone sits r/t behind the sampling position; the
  // frustum zeta spans the volume's near plane (d - 1) to far plane (d + 1).
  const double h = view_distance + 1.0 + r / t;
  const double hp = view_distance - 1.0 + r / t;
  const double vol = kPi * t * t * (h * h * h - hp * hp * hp) / 3.0;
  return vol / 8.0;  // normalized volume size is 2^3 = 8
}

double RadiusModel::radius_for_fraction(double view_distance,
                                        double fraction) const {
  VIZ_REQUIRE(view_distance > 0.0, "view distance must be positive");
  VIZ_REQUIRE(fraction > 0.0, "fraction must be positive");
  const double t = std::tan(deg_to_rad(view_angle_deg) * 0.5);
  const double inner = 4.0 * fraction / kPi - t * t / 3.0;
  if (inner <= 0.0) return min_radius;
  return std::max(min_radius, std::sqrt(inner) - view_distance * t);
}

double RadiusModel::radius_with_step_floor(double view_distance,
                                           double path_step_length) const {
  const double cap = radius_for_fraction(view_distance, 0.5);
  return std::max({optimal_radius(view_distance),
                   std::min(path_step_length, cap), min_radius});
}

}  // namespace vizcache
