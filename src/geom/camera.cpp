#include "geom/camera.hpp"

#include "util/error.hpp"

namespace vizcache {

Camera::Camera(const Vec3& position, double view_angle_deg)
    : position_(position), view_angle_deg_(view_angle_deg) {
  VIZ_REQUIRE(view_angle_deg > 0.0 && view_angle_deg < 180.0,
              "view angle must be in (0, 180) degrees");
}

Camera Camera::from_spherical(const Spherical& s, double view_angle_deg) {
  return Camera(spherical_to_cartesian(s), view_angle_deg);
}

Vec3 Camera::view_direction() const {
  return (-position_).normalized();
}

}  // namespace vizcache
