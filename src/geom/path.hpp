#pragma once

#include <vector>

#include "geom/camera.hpp"
#include "util/rng.hpp"

namespace vizcache {

/// An ordered sequence of camera positions a user traverses (paper: 400
/// positions per path in every experiment).
using CameraPath = std::vector<Camera>;

/// Spherical sweep path: the camera orbits the volume at fixed distance,
/// advancing a fixed number of degrees per position along a great circle
/// whose axis slowly precesses so the path covers the sphere rather than a
/// single ring. Matches the paper's "spherical path with different degree
/// intervals" (Fig. 9a-g, Fig. 12a).
struct SphericalPathSpec {
  double step_deg = 5.0;        ///< view-direction change per position
  double distance = 3.0;        ///< camera distance d from the center
  double view_angle_deg = 10.0; ///< cone apex angle theta
  usize positions = 400;
  double precession_deg = 0.37; ///< per-step tilt of the orbit plane
};

CameraPath make_spherical_path(const SphericalPathSpec& spec);

/// Random walk path: each step perturbs the view direction by a random angle
/// drawn uniformly from [step_min_deg, step_max_deg] in a random tangent
/// direction; the distance optionally jitters in [distance_min, distance_max].
/// Matches the paper's "random path with different degree changes"
/// (Fig. 9h-n, Fig. 12b, Fig. 13).
struct RandomPathSpec {
  double step_min_deg = 10.0;
  double step_max_deg = 15.0;
  double distance_min = 3.0;
  double distance_max = 3.0;
  double view_angle_deg = 10.0;
  usize positions = 400;
  u64 seed = 42;
};

CameraPath make_random_path(const RandomPathSpec& spec);

/// Mean view-direction change between consecutive positions, in degrees.
/// Used by tests to validate generators against their specs.
double mean_step_degrees(const CameraPath& path);

}  // namespace vizcache
