#include "geom/frustum.hpp"

#include <algorithm>
#include <cmath>

namespace vizcache {

ConeFrustum::ConeFrustum(const Camera& camera)
    : apex_(camera.position()),
      axis_(camera.view_direction()),
      half_angle_(camera.view_angle_rad() * 0.5),
      cos_half_angle_(std::cos(half_angle_)) {}

bool ConeFrustum::contains_point(const Vec3& p) const {
  Vec3 to_p = p - apex_;
  double n = to_p.norm();
  if (n == 0.0) return true;  // the apex itself
  return to_p.dot(axis_) >= cos_half_angle_ * n;
}

bool ConeFrustum::may_intersect_sphere(const Vec3& center,
                                       double radius) const {
  Vec3 to_c = center - apex_;
  double dist = to_c.norm();
  if (dist <= radius) return true;  // the apex is inside the sphere
  // The smallest possible angle between the axis and any point of the
  // sphere is angle(axis, center) - asin(radius / dist); if even that
  // exceeds the half-angle the sphere cannot touch the cone.
  double center_angle = angle_between(axis_, to_c);
  double angular_radius = std::asin(std::min(1.0, radius / dist));
  return center_angle - angular_radius <= half_angle_;
}

bool ConeFrustum::intersects_block(const AABB& block) const {
  // Camera inside the block: everything around the apex is "visible".
  if (block.contains(apex_)) return true;

  // Eq. 1: any of the eight corners within the view cone.
  for (const Vec3& c : block.corners()) {
    if (contains_point(c)) return true;
  }

  // Robustness: the cone axis may pierce a face without any corner being
  // inside the cone (blocks wider than the local cone cross-section). Test
  // the point of the block closest to the axis ray.
  Vec3 closest = block.clamp_point(apex_);
  if (contains_point(closest)) return true;
  // March a few points along the axis and test their block-clamped images.
  double reach = (block.center() - apex_).norm() + block.diagonal();
  for (int i = 1; i <= 4; ++i) {
    Vec3 p = apex_ + axis_ * (reach * static_cast<double>(i) / 4.0);
    if (contains_point(block.clamp_point(p))) return true;
  }
  return false;
}

}  // namespace vizcache
