#include "geom/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace vizcache {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<Vec3> sample_omega_positions(const OmegaSamplingSpec& spec) {
  VIZ_REQUIRE(spec.theta_steps >= 1 && spec.phi_steps >= 1 &&
                  spec.distance_steps >= 1,
              "empty omega sampling spec");
  VIZ_REQUIRE(spec.distance_min > 0.0 && spec.distance_max >= spec.distance_min,
              "invalid omega distance range");

  std::vector<Vec3> out;
  out.reserve(spec.total_positions());
  for (usize t = 0; t < spec.theta_steps; ++t) {
    // Cell-centered to avoid degenerate poles.
    double theta = kPi * (static_cast<double>(t) + 0.5) /
                   static_cast<double>(spec.theta_steps);
    for (usize p = 0; p < spec.phi_steps; ++p) {
      double phi = 2.0 * kPi * static_cast<double>(p) /
                   static_cast<double>(spec.phi_steps);
      for (usize di = 0; di < spec.distance_steps; ++di) {
        double frac = spec.distance_steps == 1
                          ? 0.5
                          : static_cast<double>(di) /
                                static_cast<double>(spec.distance_steps - 1);
        double d = spec.distance_min + frac * (spec.distance_max - spec.distance_min);
        out.push_back(spherical_to_cartesian({theta, phi, d}));
      }
    }
  }
  return out;
}

usize nearest_omega_index(const OmegaSamplingSpec& spec, const Vec3& position) {
  Spherical s = cartesian_to_spherical(position);

  double t_real = s.theta / kPi * static_cast<double>(spec.theta_steps) - 0.5;
  i64 t = static_cast<i64>(std::llround(t_real));
  t = std::clamp<i64>(t, 0, static_cast<i64>(spec.theta_steps) - 1);

  double p_real = s.phi / (2.0 * kPi) * static_cast<double>(spec.phi_steps);
  i64 p = static_cast<i64>(std::llround(p_real)) %
          static_cast<i64>(spec.phi_steps);
  if (p < 0) p += static_cast<i64>(spec.phi_steps);

  i64 d;
  if (spec.distance_steps == 1 || spec.distance_max == spec.distance_min) {
    d = 0;
  } else {
    double frac = (s.r - spec.distance_min) / (spec.distance_max - spec.distance_min);
    d = static_cast<i64>(std::llround(frac * static_cast<double>(spec.distance_steps - 1)));
    d = std::clamp<i64>(d, 0, static_cast<i64>(spec.distance_steps) - 1);
  }

  return (static_cast<usize>(t) * spec.phi_steps + static_cast<usize>(p)) *
             spec.distance_steps +
         static_cast<usize>(d);
}

usize nearest_position_linear(const std::vector<Vec3>& positions,
                              const Vec3& query) {
  VIZ_REQUIRE(!positions.empty(), "nearest over empty position set");
  usize best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (usize i = 0; i < positions.size(); ++i) {
    double d2 = (positions[i] - query).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

std::vector<Vec3> sample_vicinal_ball(const Vec3& center, double radius,
                                      usize count, Rng& rng) {
  VIZ_REQUIRE(radius >= 0.0, "negative vicinal radius");
  std::vector<Vec3> out;
  out.reserve(count + 1);
  // Always include the center itself so the sample's own frustum is covered.
  out.push_back(center);
  while (out.size() < count + 1) {
    // Rejection sampling in the cube for uniform density in the ball.
    Vec3 p{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    if (p.norm2() <= 1.0) out.push_back(center + p * radius);
  }
  return out;
}

std::vector<Vec3> fibonacci_sphere(usize count) {
  VIZ_REQUIRE(count >= 1, "fibonacci sphere needs >=1 point");
  std::vector<Vec3> out;
  out.reserve(count);
  const double golden = kPi * (3.0 - std::sqrt(5.0));
  for (usize i = 0; i < count; ++i) {
    double y = count == 1 ? 0.0
                          : 1.0 - 2.0 * static_cast<double>(i) /
                                      static_cast<double>(count - 1);
    double r = std::sqrt(std::max(0.0, 1.0 - y * y));
    double phi = golden * static_cast<double>(i);
    out.push_back({std::cos(phi) * r, y, std::sin(phi) * r});
  }
  return out;
}

}  // namespace vizcache
