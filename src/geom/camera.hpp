#pragma once

#include "geom/spherical.hpp"
#include "geom/vec3.hpp"

namespace vizcache {

/// A camera exploring the spherical domain Omega around the volume. Per the
/// paper, the camera always looks at the volume center o (the origin), so a
/// position fully determines view direction l = normalize(o - position) and
/// view distance d = ||position||. The frustum is modeled as a cone with full
/// apex angle `view_angle_deg` (theta in the paper).
class Camera {
 public:
  Camera() = default;
  Camera(const Vec3& position, double view_angle_deg);

  /// Construct from spherical coordinates of the position.
  static Camera from_spherical(const Spherical& s, double view_angle_deg);

  const Vec3& position() const { return position_; }

  /// Unit view direction l = (o - position) / ||o - position||.
  Vec3 view_direction() const;

  /// Distance d to the volume center.
  double view_distance() const { return position_.norm(); }

  /// Full apex angle theta of the view cone, degrees / radians.
  double view_angle_deg() const { return view_angle_deg_; }
  double view_angle_rad() const { return deg_to_rad(view_angle_deg_); }

  Spherical spherical() const { return cartesian_to_spherical(position_); }

 private:
  Vec3 position_{0.0, 0.0, 3.0};
  double view_angle_deg_ = 30.0;
};

}  // namespace vizcache
