#include "geom/aabb.hpp"

#include <algorithm>

namespace vizcache {

double AABB::volume() const {
  Vec3 e = extent();
  if (e.x < 0.0 || e.y < 0.0 || e.z < 0.0) return 0.0;
  return e.x * e.y * e.z;
}

bool AABB::contains(const Vec3& p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
         p.z >= lo.z && p.z <= hi.z;
}

bool AABB::intersects(const AABB& o) const {
  return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y && hi.y >= o.lo.y &&
         lo.z <= o.hi.z && hi.z >= o.lo.z;
}

std::array<Vec3, 8> AABB::corners() const {
  return {Vec3{lo.x, lo.y, lo.z}, Vec3{hi.x, lo.y, lo.z},
          Vec3{lo.x, hi.y, lo.z}, Vec3{hi.x, hi.y, lo.z},
          Vec3{lo.x, lo.y, hi.z}, Vec3{hi.x, lo.y, hi.z},
          Vec3{lo.x, hi.y, hi.z}, Vec3{hi.x, hi.y, hi.z}};
}

AABB AABB::united(const AABB& o) const {
  return {{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y), std::min(lo.z, o.lo.z)},
          {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y), std::max(hi.z, o.hi.z)}};
}

Vec3 AABB::clamp_point(const Vec3& p) const {
  return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y),
          std::clamp(p.z, lo.z, hi.z)};
}

}  // namespace vizcache
