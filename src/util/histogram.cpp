#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vizcache {

Histogram::Histogram(usize bins, double lo, double hi) : lo_(lo), hi_(hi) {
  VIZ_REQUIRE(bins >= 1, "histogram needs at least one bin");
  VIZ_REQUIRE(lo <= hi, "histogram range inverted");
  if (lo_ == hi_) hi_ = lo_ + 1.0;  // constant field: single-bin behaviour
  inv_width_ = static_cast<double>(bins) / (hi_ - lo_);
  counts_.assign(bins, 0);
}

usize Histogram::bin_for(double value) const {
  double t = (value - lo_) * inv_width_;
  auto b = static_cast<i64>(t);
  b = std::clamp<i64>(b, 0, static_cast<i64>(counts_.size()) - 1);
  return static_cast<usize>(b);
}

void Histogram::add(double value) {
  ++counts_[bin_for(value)];
  ++total_;
}

void Histogram::add(std::span<const float> values) {
  for (float v : values) add(static_cast<double>(v));
}

void Histogram::add(std::span<const double> values) {
  for (double v : values) add(v);
}

void Histogram::merge(const Histogram& other) {
  VIZ_REQUIRE(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
                  other.hi_ == hi_,
              "histogram binning mismatch in merge");
  for (usize i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::pmf(usize bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::entropy_bits() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  const double inv_total = 1.0 / static_cast<double>(total_);
  for (u64 c : counts_) {
    if (c == 0) continue;
    double p = static_cast<double>(c) * inv_total;
    h -= p * std::log2(p);
  }
  return h;
}

double Histogram::max_entropy_bits() const {
  return std::log2(static_cast<double>(counts_.size()));
}

double shannon_entropy_bits(std::span<const float> values, usize bins) {
  if (values.empty()) return 0.0;
  auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  if (*mn == *mx) return 0.0;
  Histogram h(bins, static_cast<double>(*mn), static_cast<double>(*mx));
  h.add(values);
  return h.entropy_bits();
}

}  // namespace vizcache
