#pragma once

#include <limits>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  u64 count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Pairwise Pearson correlation accumulator for a fixed set of variables.
/// Backs the Fig. 3 "correlation matrix of primary variables" analytics.
class CorrelationMatrix {
 public:
  explicit CorrelationMatrix(usize variables);

  /// Add one joint sample: `sample[i]` is the value of variable i.
  void add_sample(std::span<const float> sample);
  void add_sample(std::span<const double> sample);

  usize variable_count() const { return vars_; }
  u64 sample_count() const { return n_; }

  /// Pearson correlation in [-1, 1]; 1 on the diagonal; 0 when a variable is
  /// constant or there are fewer than two samples.
  double correlation(usize i, usize j) const;

  /// Full matrix, row-major vars x vars.
  std::vector<double> matrix() const;

 private:
  usize vars_;
  u64 n_ = 0;
  std::vector<double> mean_;     // per-variable running mean
  std::vector<double> co_;       // upper-triangular co-moment sums
  usize tri_index(usize i, usize j) const;
};

/// Simple summary over a finished sample set.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::span<const double> values);

}  // namespace vizcache
