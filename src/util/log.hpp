#pragma once

#include <sstream>
#include <string>

namespace vizcache {

/// Log severity, ordered.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal leveled logger writing to stderr. Thread-safe at line granularity.
/// Global level defaults to kInfo; benches drop to kWarn to keep output clean.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  static void write(LogLevel level, const std::string& msg);

  /// Write `text` verbatim to stdout, serialized with the logger's mutex so
  /// report output (e.g. TablePrinter) and log lines never interleave.
  /// Console I/O is confined to util/log — the repo lint (tools/lint.py)
  /// rejects std::cout/std::cerr anywhere else under src/.
  static void write_stdout(const std::string& text);

  /// Stream-style helper: Log::Line(LogLevel::kInfo) << "x=" << x;
  class Line {
   public:
    explicit Line(LogLevel level) : level_(level) {}
    ~Line();
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;

    template <typename T>
    Line& operator<<(const T& v) {
      os_ << v;
      return *this;
    }

   private:
    LogLevel level_;
    std::ostringstream os_;
  };
};

}  // namespace vizcache

#define VIZ_LOG_DEBUG ::vizcache::Log::Line(::vizcache::LogLevel::kDebug)
#define VIZ_LOG_INFO ::vizcache::Log::Line(::vizcache::LogLevel::kInfo)
#define VIZ_LOG_WARN ::vizcache::Log::Line(::vizcache::LogLevel::kWarn)
#define VIZ_LOG_ERROR ::vizcache::Log::Line(::vizcache::LogLevel::kError)
