#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vizcache {

void OnlineStats::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge.
  double delta = other.mean_ - mean_;
  u64 n = n_ + other.n_;
  double nd = static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / nd;
  mean_ += delta * static_cast<double>(other.n_) / nd;
  n_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

CorrelationMatrix::CorrelationMatrix(usize variables) : vars_(variables) {
  VIZ_REQUIRE(variables >= 1, "correlation matrix needs >=1 variable");
  mean_.assign(vars_, 0.0);
  co_.assign(vars_ * (vars_ + 1) / 2, 0.0);
}

usize CorrelationMatrix::tri_index(usize i, usize j) const {
  if (i > j) std::swap(i, j);
  // Upper-triangular row-major packing.
  return i * vars_ - i * (i + 1) / 2 + j;
}

void CorrelationMatrix::add_sample(std::span<const double> sample) {
  VIZ_REQUIRE(sample.size() == vars_, "sample arity mismatch");
  ++n_;
  double inv_n = 1.0 / static_cast<double>(n_);
  // Co-moment update (multivariate Welford): use pre-update deltas for i and
  // post-update deltas for j.
  std::vector<double> delta_pre(vars_);
  for (usize i = 0; i < vars_; ++i) delta_pre[i] = sample[i] - mean_[i];
  for (usize i = 0; i < vars_; ++i) mean_[i] += delta_pre[i] * inv_n;
  for (usize i = 0; i < vars_; ++i) {
    for (usize j = i; j < vars_; ++j) {
      co_[tri_index(i, j)] += delta_pre[i] * (sample[j] - mean_[j]);
    }
  }
}

void CorrelationMatrix::add_sample(std::span<const float> sample) {
  std::vector<double> d(sample.begin(), sample.end());
  add_sample(std::span<const double>(d));
}

double CorrelationMatrix::correlation(usize i, usize j) const {
  VIZ_REQUIRE(i < vars_ && j < vars_, "variable index out of range");
  if (i == j) return 1.0;
  if (n_ < 2) return 0.0;
  double cij = co_[tri_index(i, j)];
  double cii = co_[tri_index(i, i)];
  double cjj = co_[tri_index(j, j)];
  if (cii <= 0.0 || cjj <= 0.0) return 0.0;
  return cij / std::sqrt(cii * cjj);
}

std::vector<double> CorrelationMatrix::matrix() const {
  std::vector<double> m(vars_ * vars_);
  for (usize i = 0; i < vars_; ++i)
    for (usize j = 0; j < vars_; ++j) m[i * vars_ + j] = correlation(i, j);
  return m;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  OnlineStats os;
  for (double v : values) os.add(v);
  s.mean = os.mean();
  s.stddev = os.stddev();
  s.min = os.min();
  s.max = os.max();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  usize mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

}  // namespace vizcache
