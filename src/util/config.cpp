#include "util/config.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace vizcache {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      cfg.positionals_.push_back(arg);
    } else {
      cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

i64 Config::get_int(const std::string& key, i64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("config key '" + key + "' is not an integer: " +
                          it->second);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("config key '" + key + "' is not a number: " +
                          it->second);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw InvalidArgument("config key '" + key + "' is not a boolean: " + v);
}

u64 Config::get_bytes(const std::string& key, u64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_bytes(it->second);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace vizcache
