#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Flat key=value configuration used by example apps and bench binaries.
/// Values come from command-line arguments of the form `key=value`; bare
/// arguments are collected as positionals.
class Config {
 public:
  Config() = default;

  /// Parse argv (skipping argv[0]).
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  i64 get_int(const std::string& key, i64 fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Byte sizes ("512M"); see parse_bytes().
  u64 get_bytes(const std::string& key, u64 fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// All keys, sorted (for help/diagnostics output).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace vizcache
