#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotated_mutex.hpp"
#include "util/types.hpp"

namespace vizcache {

/// Monotonically increasing counter. Increments are relaxed atomics: hot
/// paths (cache hits, fetch loops, prefetcher workers) pay one uncontended
/// RMW and no lock. Exact totals are still guaranteed — relaxed ordering
/// only permits reordering against *other* memory, not lost increments.
class MetricCounter {
 public:
  void inc(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Point-in-time double value, settable and accumulable from any thread.
/// add() is a CAS loop rather than std::atomic<double>::fetch_add so the
/// class stays portable to standard libraries without lock-free FP RMW.
class MetricGauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only copy of a histogram's state at snapshot time.
struct HistogramSnapshot {
  std::vector<double> bounds;   ///< ascending upper bounds; +inf is implicit
  std::vector<u64> buckets;     ///< bounds.size() + 1 entries
  u64 count = 0;
  double sum = 0.0;
  double min = 0.0;             ///< undefined (0) while count == 0
  double max = 0.0;
};

/// Value-distribution histogram over fixed upper-bound buckets (the last
/// bucket is the +inf overflow). observe() takes the histogram's own leaf
/// Mutex — cheap at simulator rates, and exact under concurrency.
class MetricHistogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit MetricHistogram(std::vector<double> bounds);

  void observe(double value) EXCLUDES(mutex_);

  u64 count() const EXCLUDES(mutex_);
  double sum() const EXCLUDES(mutex_);
  HistogramSnapshot snapshot() const EXCLUDES(mutex_);
  void reset() EXCLUDES(mutex_);

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  const std::vector<double> bounds_;
  mutable Mutex mutex_;
  std::vector<u64> buckets_ GUARDED_BY(mutex_);
  u64 count_ GUARDED_BY(mutex_) = 0;
  double sum_ GUARDED_BY(mutex_) = 0.0;
  double min_ GUARDED_BY(mutex_) = 0.0;
  double max_ GUARDED_BY(mutex_) = 0.0;
};

/// Default bucket bounds for simulated-latency histograms: one bucket per
/// decade from 1 microsecond to 1 second, spanning DRAM touch to HDD seek.
std::vector<double> latency_seconds_bounds();

/// Flattened, name-sorted view of a whole registry (value types only, no
/// references into the registry) — what exporters and RunResult carry.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    u64 value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  bool has_histogram(const std::string& name) const;
  /// Value of a named counter/gauge; throws InvalidArgument when absent.
  u64 counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramSnapshot& histogram(const std::string& name) const;
};

/// Named metrics registry: the pipeline-observability substrate. Components
/// (BlockCache, MemoryHierarchy, AsyncPrefetcher, the pipelines) register
/// their instruments once by name and then increment without the registry
/// lock — counter/gauge/histogram references stay valid for the registry's
/// lifetime (instruments are heap-owned and never removed).
///
/// Naming convention (see DESIGN.md "Observability"):
/// `<component>.<subject>.<metric>` in lowercase [a-z0-9._] with unit
/// suffixes `_seconds` / `_bytes` where applicable, e.g.
/// `cache.dram.hits`, `hierarchy.prefetch.backing_reads`,
/// `pipeline.render_seconds`.
///
/// Thread-safety: registration takes the registry's leaf Mutex; increments
/// on the returned instruments are atomic (counters/gauges) or take the
/// instrument's own leaf Mutex (histograms). snapshot() collects instrument
/// pointers under the registry lock and reads them after releasing it, so
/// no two vizcache locks are ever held at once (DESIGN.md leaf-lock rule).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Names must match the convention above.
  MetricCounter& counter(const std::string& name) EXCLUDES(mutex_);
  MetricGauge& gauge(const std::string& name) EXCLUDES(mutex_);
  /// `bounds` applies only when the histogram is created by this call
  /// (defaults to latency_seconds_bounds()); a later lookup of an existing
  /// name returns the original instrument unchanged.
  MetricHistogram& histogram(const std::string& name,
                             std::vector<double> bounds = {}) EXCLUDES(mutex_);

  /// Zero every instrument, keeping all registrations (and thus every
  /// reference handed out) valid.
  void reset() EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const EXCLUDES(mutex_);

  usize counter_count() const EXCLUDES(mutex_);
  usize gauge_count() const EXCLUDES(mutex_);
  usize histogram_count() const EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace vizcache
