#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Fixed-size worker pool used by the asynchronous prefetch engine and the
/// CPU ray-caster. Tasks are plain std::function<void()>; submit() returns a
/// future for completion tracking.
class ThreadPool {
 public:
  /// Creates `threads` workers (>=1). Defaults to hardware concurrency.
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future completed when the task finishes.
  std::future<void> submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  usize thread_count() const { return workers_.size(); }

  /// Number of tasks queued but not yet started.
  usize pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  usize active_ = 0;
  bool stop_ = false;
};

}  // namespace vizcache
