#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotated_mutex.hpp"
#include "util/types.hpp"

namespace vizcache {

/// Fixed-size worker pool used by the asynchronous prefetch engine and the
/// CPU ray-caster. Tasks are plain std::function<void()>; submit() returns a
/// future for completion tracking.
///
/// Thread-safety: all public methods may be called from any thread. mutex_ is
/// a leaf lock (never held while running a task or calling out). Shutdown is
/// fail-loud: once shutdown() has begun — explicitly or via the destructor —
/// submit() throws VizError instead of racing the worker teardown.
class ThreadPool {
 public:
  /// Creates `threads` workers (>=1). Defaults to hardware concurrency.
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future completed when the task finishes.
  /// Throws VizError if shutdown has begun (a silently dropped task would
  /// leave its future forever pending).
  std::future<void> submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Chunked parallel loop over [begin, end): `body(chunk_begin, chunk_end)`
  /// is invoked for consecutive `grain`-sized chunks (the last one may be
  /// short), each chunk exactly once. The calling thread and up to
  /// thread_count() helper tasks pull chunks off one shared atomic counter —
  /// a single heap allocation per helper instead of one future per index —
  /// so load balances even when chunk costs are skewed.
  ///
  /// Blocks until every chunk has finished. The first exception thrown by
  /// `body` is rethrown here; remaining unclaimed chunks are abandoned.
  ///
  /// Safe to call from inside a pool task (nested use): the caller always
  /// participates, so the loop completes even if every worker is busy —
  /// including on a 1-thread pool. Helper tasks that start after the range
  /// is exhausted exit without touching `body`.
  void parallel_for(usize begin, usize end, usize grain,
                    const std::function<void(usize, usize)>& body)
      EXCLUDES(mutex_);

  /// Block until every task submitted so far has finished.
  void wait_idle() EXCLUDES(mutex_);

  /// Drain the queue, run every already-submitted task to completion, and
  /// join the workers. Idempotent; called by the destructor. After this,
  /// submit() throws. Must not be called from inside a pool task.
  void shutdown() EXCLUDES(mutex_);

  /// Workers are spawned in the constructor and only removed by shutdown(),
  /// so reading the count is safe without the lock on any thread that can
  /// still reach this pool.
  usize thread_count() const { return workers_.size(); }

  /// Number of tasks queued but not yet started.
  usize pending() const EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar cv_task_;  ///< signalled on submit() and shutdown()
  CondVar cv_idle_;  ///< signalled when the pool drains to empty+idle
  std::deque<std::packaged_task<void()>> queue_ GUARDED_BY(mutex_);
  // analyze: allow(lock-unguarded-field): mutated only in the constructor
  // (before any worker runs) and in shutdown() after the stop_ handshake.
  std::vector<std::thread> workers_;  ///< set in ctor, cleared by shutdown()
  usize active_ GUARDED_BY(mutex_) = 0;  ///< tasks currently executing
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// parallel_for that degrades gracefully: serial (but identically chunked)
/// when `pool` is null or single-threaded, pooled otherwise. This is the
/// form the render/build hot paths call so every caller keeps its optional
/// `ThreadPool*` parameter.
void parallel_for(ThreadPool* pool, usize begin, usize end, usize grain,
                  const std::function<void(usize, usize)>& body);

}  // namespace vizcache
