#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/annotated_mutex.hpp"

namespace vizcache {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
/// Serializes console output (stderr log lines and raw stdout writes) so
/// concurrent writers emit whole lines. Leaf lock: nothing is called while
/// it is held.
Mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }
LogLevel Log::level() { return g_level.load(); }

void Log::write(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::cerr << "[vizcache " << level_tag(level) << "] " << msg << "\n";
}

void Log::write_stdout(const std::string& text) {
  MutexLock lock(g_mutex);
  std::cout << text << std::flush;
}

Log::Line::~Line() { Log::write(level_, os_.str()); }

}  // namespace vizcache
