#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace vizcache {

u64 Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush; tiny state keeps
  // fork() cheap and the generator trivially copyable.
  u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

u64 Rng::next_below(u64 n) {
  VIZ_REQUIRE(n > 0, "next_below(0)");
  // Rejection sampling to avoid modulo bias.
  const u64 threshold = (0ULL - n) % n;
  for (;;) {
    u64 r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace vizcache
