#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace vizcache {

namespace {
std::string fmt1(double v, const char* suffix, int precision = 2) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v << ' ' << suffix;
  return os.str();
}
}  // namespace

std::string format_bytes(u64 bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kTiB) return fmt1(b / static_cast<double>(kTiB), "TiB");
  if (bytes >= kGiB) return fmt1(b / static_cast<double>(kGiB), "GiB");
  if (bytes >= kMiB) return fmt1(b / static_cast<double>(kMiB), "MiB");
  if (bytes >= kKiB) return fmt1(b / static_cast<double>(kKiB), "KiB");
  return std::to_string(bytes) + " B";
}

std::string format_seconds(double seconds) {
  double a = std::abs(seconds);
  if (a >= 1.0) return fmt1(seconds, "s", 3);
  if (a >= 1e-3) return fmt1(seconds * 1e3, "ms", 3);
  if (a >= 1e-6) return fmt1(seconds * 1e6, "us", 3);
  return fmt1(seconds * 1e9, "ns", 3);
}

u64 parse_bytes(const std::string& text) {
  VIZ_REQUIRE(!text.empty(), "empty byte string");
  usize pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.'))
    ++pos;
  VIZ_REQUIRE(pos > 0, "byte string must start with a number: " + text);
  double value = std::stod(text.substr(0, pos));
  std::string suffix = text.substr(pos);
  // Strip optional trailing "iB"/"B".
  u64 mult = 1;
  if (!suffix.empty()) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(suffix[0])));
    switch (c) {
      case 'k': mult = kKiB; break;
      case 'm': mult = kMiB; break;
      case 'g': mult = kGiB; break;
      case 't': mult = kTiB; break;
      case 'b': mult = 1; break;
      default:
        throw InvalidArgument("unknown byte suffix: " + suffix);
    }
  }
  return static_cast<u64>(value * static_cast<double>(mult));
}

}  // namespace vizcache
