#include "util/table_printer.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace vizcache {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  VIZ_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void TablePrinter::row(std::vector<std::string> cells) {
  VIZ_REQUIRE(cells.size() == columns_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render(const std::string& title) const {
  std::vector<usize> width(columns_.size());
  for (usize c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rows_)
    for (usize c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (usize c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(columns_);
  usize total = 0;
  for (usize c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TablePrinter::print(const std::string& title) const {
  Log::write_stdout(render(title));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace vizcache
