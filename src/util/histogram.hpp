#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Fixed-bin histogram over a known value range. This is the substrate for
/// (a) per-block Shannon entropy (paper Section IV-C, Eq. 2) and (b) the
/// data-dependent analytics of Fig. 3 (region value distributions).
class Histogram {
 public:
  /// `bins` must be >= 1; if lo == hi the range is widened epsilon-style so
  /// constant fields land in one bin.
  Histogram(usize bins, double lo, double hi);

  void add(double value);
  void add(std::span<const float> values);
  void add(std::span<const double> values);

  /// Merge another histogram with identical binning.
  void merge(const Histogram& other);

  void clear();

  usize bin_count() const { return counts_.size(); }
  u64 count(usize bin) const { return counts_[bin]; }
  u64 total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Bin index for a value (clamped to [0, bins-1]).
  usize bin_for(double value) const;

  /// Normalized probability mass of a bin (0 if histogram empty).
  double pmf(usize bin) const;

  /// Shannon entropy in bits: H = -sum p log2 p (Eq. 2 of the paper).
  /// Empty histogram has entropy 0.
  double entropy_bits() const;

  /// Maximum achievable entropy for this binning (log2 of bin count).
  double max_entropy_bits() const;

  const std::vector<u64>& counts() const { return counts_; }

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

/// Convenience: entropy in bits of a float span using `bins` equal bins over
/// the span's own [min, max] range. Constant spans return 0.
double shannon_entropy_bits(std::span<const float> values, usize bins = 256);

}  // namespace vizcache
