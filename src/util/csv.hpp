#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Row-oriented CSV writer. Every bench binary emits its series both to
/// stdout (human-readable table) and to a CSV file for plotting.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws IoError on
  /// failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: mixed string/number row built by the caller via to_cell().
  static std::string to_cell(double v);
  static std::string to_cell(u64 v);
  static std::string to_cell(i64 v);
  static std::string to_cell(const std::string& v);

  const std::string& path() const { return path_; }
  usize rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  usize columns_;
  usize rows_ = 0;
};

}  // namespace vizcache
