#pragma once

#include <cstddef>
#include <cstdint>

/// Common scalar aliases used throughout vizcache.
namespace vizcache {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Identifier of a data block (brick) within a blocked volume.
/// Block ids are dense: [0, BlockGrid::block_count()).
using BlockId = u32;

/// Sentinel for "no block".
inline constexpr BlockId kInvalidBlock = static_cast<BlockId>(-1);

/// Simulated time in seconds. All hierarchy/device costs are expressed in
/// simulated seconds so results are machine-independent and deterministic.
using SimSeconds = double;

}  // namespace vizcache
