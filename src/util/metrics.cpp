#include "util/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok) return false;
  }
  return true;
}

void require_valid_name(const std::string& name) {
  VIZ_REQUIRE(valid_metric_name(name),
              "metric name must be lowercase dotted [a-z0-9._]: '" + name + "'");
}

}  // namespace

MetricHistogram::MetricHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  VIZ_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  VIZ_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly ascending");
}

void MetricHistogram::observe(double value) {
  // Inclusive upper bounds (Prometheus `le` convention): a value exactly on
  // a bound lands in that bound's bucket. lower_bound = first bound >= value.
  const usize bucket =
      static_cast<usize>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                         bounds_.begin());
  MutexLock lock(mutex_);
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

u64 MetricHistogram::count() const {
  MutexLock lock(mutex_);
  return count_;
}

double MetricHistogram::sum() const {
  MutexLock lock(mutex_);
  return sum_;
}

HistogramSnapshot MetricHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  MutexLock lock(mutex_);
  snap.buckets = buckets_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

void MetricHistogram::reset() {
  MutexLock lock(mutex_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::vector<double> latency_seconds_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
}

bool MetricsSnapshot::has_counter(const std::string& name) const {
  return std::any_of(counters.begin(), counters.end(),
                     [&](const CounterValue& c) { return c.name == name; });
}

bool MetricsSnapshot::has_gauge(const std::string& name) const {
  return std::any_of(gauges.begin(), gauges.end(),
                     [&](const GaugeValue& g) { return g.name == name; });
}

bool MetricsSnapshot::has_histogram(const std::string& name) const {
  return std::any_of(histograms.begin(), histograms.end(),
                     [&](const HistogramValue& h) { return h.name == name; });
}

u64 MetricsSnapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  throw InvalidArgument("no such counter in snapshot: " + name);
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  throw InvalidArgument("no such gauge in snapshot: " + name);
}

const HistogramSnapshot& MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return h.hist;
  }
  throw InvalidArgument("no such histogram in snapshot: " + name);
}

MetricCounter& MetricsRegistry::counter(const std::string& name) {
  require_valid_name(name);
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<MetricCounter>();
  return *slot;
}

MetricGauge& MetricsRegistry::gauge(const std::string& name) {
  require_valid_name(name);
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MetricGauge>();
  return *slot;
}

MetricHistogram& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> bounds) {
  require_valid_name(name);
  if (bounds.empty()) bounds = latency_seconds_bounds();
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<MetricHistogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  // Collect instrument pointers under the registry lock, mutate after
  // releasing it: histogram reset takes the instrument's own leaf Mutex and
  // no vizcache code path may hold two locks at once (DESIGN.md).
  std::vector<MetricCounter*> counters;
  std::vector<MetricGauge*> gauges;
  std::vector<MetricHistogram*> histograms;
  {
    MutexLock lock(mutex_);
    for (auto& [_, c] : counters_) counters.push_back(c.get());
    for (auto& [_, g] : gauges_) gauges.push_back(g.get());
    for (auto& [_, h] : histograms_) histograms.push_back(h.get());
  }
  for (MetricCounter* c : counters) c->reset();
  for (MetricGauge* g : gauges) g->reset();
  for (MetricHistogram* h : histograms) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::vector<std::pair<std::string, const MetricCounter*>> counters;
  std::vector<std::pair<std::string, const MetricGauge*>> gauges;
  std::vector<std::pair<std::string, const MetricHistogram*>> histograms;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  // std::map iteration already yields names sorted ascending.
  MetricsSnapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, c] : counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges.size());
  for (const auto& [name, g] : gauges) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms.size());
  for (const auto& [name, h] : histograms) {
    snap.histograms.push_back({name, h->snapshot()});
  }
  return snap;
}

usize MetricsRegistry::counter_count() const {
  MutexLock lock(mutex_);
  return counters_.size();
}

usize MetricsRegistry::gauge_count() const {
  MutexLock lock(mutex_);
  return gauges_.size();
}

usize MetricsRegistry::histogram_count() const {
  MutexLock lock(mutex_);
  return histograms_.size();
}

}  // namespace vizcache
