#include "util/step_timeline.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace vizcache {

const char* step_event_kind_name(StepEvent::Kind kind) {
  switch (kind) {
    case StepEvent::Kind::kFetch: return "fetch";
    case StepEvent::Kind::kLookup: return "lookup";
    case StepEvent::Kind::kPrefetch: return "prefetch";
    case StepEvent::Kind::kRender: return "render";
  }
  return "?";
}

void StepTimeline::record(const StepEvent& event) {
  VIZ_REQUIRE(event.end >= event.start, "step event ends before it starts");
  // analyze: allow(hot-path-alloc): the timeline is the observability
  // product — amortized append of a trivially-copyable event, a few per
  // step, never per block or per pixel.
  events_.push_back(event);
}

std::vector<StepEvent> StepTimeline::events_of(StepEvent::Kind kind) const {
  std::vector<StepEvent> out;
  for (const StepEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

SimSeconds StepTimeline::span_end() const {
  SimSeconds end = 0.0;
  for (const StepEvent& e : events_) end = std::max(end, e.end);
  return end;
}

SimSeconds StepTimeline::overlap_seconds(StepEvent::Kind a,
                                         StepEvent::Kind b) const {
  // Summed pairwise intersection. Spans of one kind never overlap each
  // other (steps are serial on the simulated clock), so no double counting.
  SimSeconds total = 0.0;
  for (const StepEvent& ea : events_) {
    if (ea.kind != a) continue;
    for (const StepEvent& eb : events_) {
      if (eb.kind != b || eb.worker != ea.worker) continue;
      const SimSeconds lo = std::max(ea.start, eb.start);
      const SimSeconds hi = std::min(ea.end, eb.end);
      if (hi > lo) total += hi - lo;
    }
  }
  return total;
}

namespace {

/// Trace lane of an event: fetch/render share the worker's demand lane,
/// lookup/prefetch go to the worker's overlap lane so chrome://tracing draws
/// concurrent spans side by side instead of nesting them.
u32 lane_of(const StepEvent& e) {
  const bool overlap_lane = e.kind == StepEvent::Kind::kLookup ||
                            e.kind == StepEvent::Kind::kPrefetch;
  return e.worker * 2 + (overlap_lane ? 1 : 0);
}

std::string micros(SimSeconds seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << seconds * 1e6;
  return os.str();
}

}  // namespace

std::string StepTimeline::chrome_trace_json() const {
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "\n" : ",\n") << "    " << line;
    first = false;
  };

  emit("{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"vizcache simulated pipeline\"}}");
  std::map<u32, std::string> lanes;  // ordered: deterministic output
  for (const StepEvent& e : events_) {
    std::string label = "w" + std::to_string(e.worker);
    label += lane_of(e) % 2 == 0 ? " fetch+render" : " lookup+prefetch";
    lanes.emplace(lane_of(e), std::move(label));
  }
  for (const auto& [tid, label] : lanes) {
    emit("{\"ph\": \"M\", \"pid\": 0, \"tid\": " + std::to_string(tid) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" + label +
         "\"}}");
  }
  for (const StepEvent& e : events_) {
    std::ostringstream ev;
    ev << "{\"ph\": \"X\", \"pid\": 0, \"tid\": " << lane_of(e)
       << ", \"name\": \"" << step_event_kind_name(e.kind)
       << "\", \"cat\": \"sim\", \"ts\": " << micros(e.start)
       << ", \"dur\": " << micros(e.end - e.start)
       << ", \"args\": {\"step\": " << e.step << ", \"blocks\": " << e.blocks
       << "}}";
    emit(ev.str());
  }
  os << "\n  ]\n}";
  return os.str();
}

void StepTimeline::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open trace output for writing: " + path);
  out << chrome_trace_json() << "\n";
  if (!out) throw IoError("trace write failed: " + path);
}

}  // namespace vizcache
