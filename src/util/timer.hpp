#pragma once

#include <chrono>

namespace vizcache {

/// Wall-clock stopwatch. Used only for micro-benchmarks and example apps;
/// all experiment results use simulated time (see util/types.hpp).
class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vizcache
