#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Console table with aligned columns, used by the bench harness to print
/// paper-style result rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void row(std::vector<std::string> cells);

  /// Render with a header rule, column padding, and a title line.
  std::string render(const std::string& title = "") const;

  /// Render and write to stdout.
  void print(const std::string& title = "") const;

  static std::string fmt(double v, int precision = 4);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vizcache
