#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "util/types.hpp"

/// Portable 8-wide SIMD lanes for the render hot path.
///
/// Two interchangeable implementations sit behind one fixed-width
/// (kLanes = 8) interface:
///
///  - native: AVX2 intrinsics, selected when the translation unit is
///    compiled with -mavx2 (the vizcache_simd CMake interface target adds
///    the flag when -DVIZCACHE_SIMD=ON, the default);
///  - fallback: plain float/int arrays with per-lane loops, selected on
///    non-AVX2 builds and forced by -DVIZCACHE_SIMD=OFF (which defines
///    VIZCACHE_SIMD_FORCE_SCALAR).
///
/// The width is a compile-time constant in BOTH implementations, and the
/// fallback reproduces the native conversion semantics (truncating
/// float->int with INT32_MIN for out-of-range/NaN inputs, IEEE single
/// arithmetic), so callers, tests, and golden images are identical
/// regardless of which implementation is active.
///
/// ODR rule: include this header only from .cpp files (or test TUs built
/// with the same flags) — never from another public header. The lane types
/// differ between flag sets and must not leak across TU boundaries.

#if !defined(VIZCACHE_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#include <immintrin.h>
#define VIZCACHE_SIMD_NATIVE 1
#else
#define VIZCACHE_SIMD_NATIVE 0
#endif

namespace vizcache::simd {

inline constexpr int kLanes = 8;

/// True when this TU compiled against the AVX2 implementation.
inline constexpr bool kNative = VIZCACHE_SIMD_NATIVE != 0;

#if VIZCACHE_SIMD_NATIVE

struct Vf {
  __m256 v;
};
struct Vi {
  __m256i v;
};
/// Per-lane predicate: all-ones (true) or all-zeros (false) float lanes.
struct Mask {
  __m256 v;
};

inline Vf set1(float x) { return {_mm256_set1_ps(x)}; }
inline Vf zero() { return {_mm256_setzero_ps()}; }
inline Vf load(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void store(float* p, Vf a) { _mm256_storeu_ps(p, a.v); }
inline Vf add(Vf a, Vf b) { return {_mm256_add_ps(a.v, b.v)}; }
inline Vf sub(Vf a, Vf b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline Vf mul(Vf a, Vf b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline Vf min(Vf a, Vf b) { return {_mm256_min_ps(a.v, b.v)}; }
inline Vf max(Vf a, Vf b) { return {_mm256_max_ps(a.v, b.v)}; }

inline Vi iset1(i32 x) { return {_mm256_set1_epi32(x)}; }
inline Vi iload(const i32* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
inline void istore(i32* p, Vi a) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
}
inline Vi iadd(Vi a, Vi b) { return {_mm256_add_epi32(a.v, b.v)}; }
inline Vi isub(Vi a, Vi b) { return {_mm256_sub_epi32(a.v, b.v)}; }
inline Vi imullo(Vi a, Vi b) { return {_mm256_mullo_epi32(a.v, b.v)}; }
inline Vi imin(Vi a, Vi b) { return {_mm256_min_epi32(a.v, b.v)}; }
inline Vi imax(Vi a, Vi b) { return {_mm256_max_epi32(a.v, b.v)}; }
/// Lane-wise a > b, all-ones (-1) where true, 0 where false.
inline Vi icmp_gt(Vi a, Vi b) { return {_mm256_cmpgt_epi32(a.v, b.v)}; }
inline Vi iand(Vi a, Vi b) { return {_mm256_and_si256(a.v, b.v)}; }

/// Truncate toward zero; out-of-range and NaN lanes become INT32_MIN
/// (the x86 "integer indefinite" — the fallback mirrors this exactly).
inline Vi to_int(Vf a) { return {_mm256_cvttps_epi32(a.v)}; }
inline Vf to_float(Vi a) { return {_mm256_cvtepi32_ps(a.v)}; }

/// a*b + c, fused. The scalar render paths get FMA contraction from the
/// compiler (-ffp-contract on by default); explicit intrinsics do not, so
/// the packet path must ask for it — both for speed and so its rounding
/// tracks the scalar fast path's.
inline Vf fmadd(Vf a, Vf b, Vf c) {
#if defined(__FMA__)
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
  return add(mul(a, b), c);
#endif
}

inline Mask cmp_lt(Vf a, Vf b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)}; }
inline Mask cmp_le(Vf a, Vf b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)}; }
inline Mask cmp_gt(Vf a, Vf b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)}; }
inline Mask cmp_ge(Vf a, Vf b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)}; }
inline Mask mask_and(Mask a, Mask b) { return {_mm256_and_ps(a.v, b.v)}; }
inline Mask mask_or(Mask a, Mask b) { return {_mm256_or_ps(a.v, b.v)}; }
/// keep & ~drop
inline Mask mask_andnot(Mask keep, Mask drop) {
  return {_mm256_andnot_ps(drop.v, keep.v)};
}

inline Mask mask_from_bits(u32 bits) {
  const __m256i lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i b = _mm256_set1_epi32(static_cast<i32>(bits));
  const __m256i hit =
      _mm256_cmpeq_epi32(_mm256_and_si256(b, lane_bit), lane_bit);
  return {_mm256_castsi256_ps(hit)};
}
inline u32 bits(Mask m) {
  return static_cast<u32>(_mm256_movemask_ps(m.v));
}

/// m ? a : b per lane.
inline Vf select(Mask m, Vf a, Vf b) {
  return {_mm256_blendv_ps(b.v, a.v, m.v)};
}

/// base[idx] per lane; inactive lanes yield 0 and are NOT dereferenced.
inline Vf gather(const float* base, Vi idx, Mask active) {
  return {_mm256_mask_i32gather_ps(_mm256_setzero_ps(), base, idx.v, active.v,
                                   4)};
}

/// base[idx] for EVERY lane — no mask, so every index must be in bounds.
/// Cheaper than the masked form (no mask register copy per gather); used
/// when the whole packet shares one brick and the window clamp already
/// guarantees in-bounds indices for live and retired lanes alike.
inline Vf gather(const float* base, Vi idx) {
  return {_mm256_i32gather_ps(base, idx.v, 4)};
}

/// bases[l][idx[l]] per lane; inactive lanes yield 0 and are NOT
/// dereferenced (their base pointer may be null). Used where a ray packet
/// spans several bricks and no single gather base exists.
inline Vf gather_lanes(const float* const* bases, Vi idx, Mask active) {
  alignas(32) i32 ix[kLanes];
  alignas(32) float out[kLanes];
  istore(ix, idx);
  const u32 m = bits(active);
  for (int l = 0; l < kLanes; ++l) {
    out[l] = (m >> l) & 1u ? bases[l][ix[l]] : 0.0f;
  }
  return load(out);
}

/// Two adjacent floats per lane: lo = base[idx], hi = base[idx + 1].
struct VfPair {
  Vf lo, hi;
};

/// gather_pairs(base, idx) = { base[idx], base[idx+1] } per lane — no
/// mask, so idx and idx+1 must be in bounds for EVERY lane. Plain 8-byte
/// loads instead of gather instructions: a hardware gather moves at most
/// one vector per instruction regardless of element size, while eight
/// independent loads dual-issue on the load ports.
inline VfPair gather_pairs(const float* base, Vi idx) {
  alignas(32) i32 ia[kLanes];
  istore(ia, idx);
  auto pair2 = [base](i32 i0, i32 i1) {
    // memcpy, not a double* cast: the pairs are only float-aligned, and a
    // typed misaligned load is UB even where movsd/movhpd would be fine.
    double d0, d1;
    std::memcpy(&d0, base + i0, sizeof d0);
    std::memcpy(&d1, base + i1, sizeof d1);
    return _mm_castpd_ps(_mm_setr_pd(d0, d1));
  };
  // Pack lane pairs so shuffle_ps (which picks [a0 a2 b0 b2] per 128-bit
  // half) emits the lo/hi columns directly in lane order — no lane-crossing
  // fixup needed afterwards:
  //   a = [l0 h0 l1 h1 | l4 h4 l5 h5], b = [l2 h2 l3 h3 | l6 h6 l7 h7]
  const __m256 a = _mm256_insertf128_ps(
      _mm256_castps128_ps256(pair2(ia[0], ia[1])), pair2(ia[4], ia[5]), 1);
  const __m256 b = _mm256_insertf128_ps(
      _mm256_castps128_ps256(pair2(ia[2], ia[3])), pair2(ia[6], ia[7]), 1);
  return {{_mm256_shuffle_ps(a, b, 0x88)}, {_mm256_shuffle_ps(a, b, 0xDD)}};
}

/// out[c].lane[l] = base[idx[l] + c] for c in [0, 8): one contiguous
/// 8-float load per lane, transposed into 8 column vectors. Every lane's
/// window must be readable — there is no mask. This is the structure-of-
/// arrays form of "each lane reads a small record": 8 loads plus a fixed
/// shuffle network instead of 8 gathers, and no per-column index vectors.
inline void load8_transpose(const float* base, const i32* idx, Vf out[8]) {
  // Each lane's record is read as two 16-byte halves dropped straight into
  // their final 128-bit positions (memory-form vinsertf128 runs on the
  // load ports, not the shuffle port), so no lane-crossing permutes are
  // needed afterwards — just two in-half 4x4 transposes.
  auto two = [base, idx](int l, int o) {
    return _mm256_insertf128_ps(
        _mm256_castps128_ps256(_mm_loadu_ps(base + idx[l] + o)),
        _mm_loadu_ps(base + idx[l + 4] + o), 1);
  };
  auto quad4 = [](__m256 a0, __m256 a1, __m256 a2, __m256 a3, Vf* o) {
    const __m256 t0 = _mm256_unpacklo_ps(a0, a1);
    const __m256 t1 = _mm256_unpackhi_ps(a0, a1);
    const __m256 t2 = _mm256_unpacklo_ps(a2, a3);
    const __m256 t3 = _mm256_unpackhi_ps(a2, a3);
    o[0] = {_mm256_shuffle_ps(t0, t2, 0x44)};
    o[1] = {_mm256_shuffle_ps(t0, t2, 0xEE)};
    o[2] = {_mm256_shuffle_ps(t1, t3, 0x44)};
    o[3] = {_mm256_shuffle_ps(t1, t3, 0xEE)};
  };
  quad4(two(0, 0), two(1, 0), two(2, 0), two(3, 0), out);
  quad4(two(0, 4), two(1, 4), two(2, 4), two(3, 4), out + 4);
}

#else  // ------------------------------------------------------------------

struct Vf {
  float lane[kLanes];
};
struct Vi {
  i32 lane[kLanes];
};
struct Mask {
  bool lane[kLanes];
};

inline Vf set1(float x) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = x;
  return r;
}
inline Vf zero() { return set1(0.0f); }
inline Vf load(const float* p) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = p[l];
  return r;
}
inline void store(float* p, Vf a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.lane[l];
}
inline Vf add(Vf a, Vf b) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] + b.lane[l];
  return r;
}
inline Vf sub(Vf a, Vf b) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] - b.lane[l];
  return r;
}
inline Vf mul(Vf a, Vf b) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] * b.lane[l];
  return r;
}
inline Vf min(Vf a, Vf b) {
  Vf r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = b.lane[l] < a.lane[l] ? b.lane[l] : a.lane[l];
  return r;
}
inline Vf max(Vf a, Vf b) {
  Vf r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = b.lane[l] > a.lane[l] ? b.lane[l] : a.lane[l];
  return r;
}

inline Vi iset1(i32 x) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = x;
  return r;
}
inline Vi iload(const i32* p) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = p[l];
  return r;
}
inline void istore(i32* p, Vi a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.lane[l];
}
inline Vi iadd(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] + b.lane[l];
  return r;
}
inline Vi isub(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] - b.lane[l];
  return r;
}
inline Vi imullo(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] * b.lane[l];
  return r;
}
inline Vi imin(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = b.lane[l] < a.lane[l] ? b.lane[l] : a.lane[l];
  return r;
}
inline Vi imax(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = b.lane[l] > a.lane[l] ? b.lane[l] : a.lane[l];
  return r;
}
/// Lane-wise a > b, all-ones (-1) where true, 0 where false.
inline Vi icmp_gt(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] > b.lane[l] ? -1 : 0;
  return r;
}
inline Vi iand(Vi a, Vi b) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] & b.lane[l];
  return r;
}

inline Vi to_int(Vf a) {
  Vi r;
  for (int l = 0; l < kLanes; ++l) {
    const float f = a.lane[l];
    // Mirror cvttps: out-of-range and NaN produce the integer indefinite.
    r.lane[l] = (f >= -2147483648.0f && f < 2147483648.0f)
                    ? static_cast<i32>(f)
                    : INT32_MIN;
  }
  return r;
}
inline Vf to_float(Vi a) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = static_cast<float>(a.lane[l]);
  return r;
}

inline Mask cmp_lt(Vf a, Vf b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] < b.lane[l];
  return r;
}
inline Mask cmp_le(Vf a, Vf b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] <= b.lane[l];
  return r;
}
inline Mask cmp_gt(Vf a, Vf b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] > b.lane[l];
  return r;
}
inline Mask cmp_ge(Vf a, Vf b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] >= b.lane[l];
  return r;
}
inline Mask mask_and(Mask a, Mask b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] && b.lane[l];
  return r;
}
inline Mask mask_or(Mask a, Mask b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] || b.lane[l];
  return r;
}
inline Mask mask_andnot(Mask keep, Mask drop) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = keep.lane[l] && !drop.lane[l];
  return r;
}

inline Mask mask_from_bits(u32 b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = ((b >> l) & 1u) != 0;
  return r;
}
inline u32 bits(Mask m) {
  u32 b = 0;
  for (int l = 0; l < kLanes; ++l) b |= m.lane[l] ? (1u << l) : 0u;
  return b;
}

inline Vf select(Mask m, Vf a, Vf b) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = m.lane[l] ? a.lane[l] : b.lane[l];
  return r;
}

inline Vf gather(const float* base, Vi idx, Mask active) {
  Vf r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = active.lane[l] ? base[idx.lane[l]] : 0.0f;
  return r;
}

inline Vf gather(const float* base, Vi idx) {
  Vf r;
  for (int l = 0; l < kLanes; ++l) r.lane[l] = base[idx.lane[l]];
  return r;
}

inline Vf gather_lanes(const float* const* bases, Vi idx, Mask active) {
  Vf r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = active.lane[l] ? bases[l][idx.lane[l]] : 0.0f;
  return r;
}

struct VfPair {
  Vf lo, hi;
};

inline VfPair gather_pairs(const float* base, Vi idx) {
  VfPair r;
  for (int l = 0; l < kLanes; ++l) {
    r.lo.lane[l] = base[idx.lane[l]];
    r.hi.lane[l] = base[idx.lane[l] + 1];
  }
  return r;
}

/// a*b + c. Written as one expression so the compiler may contract it to a
/// scalar fma, matching what it does to the scalar render paths.
inline Vf fmadd(Vf a, Vf b, Vf c) {
  Vf r;
  for (int l = 0; l < kLanes; ++l)
    r.lane[l] = a.lane[l] * b.lane[l] + c.lane[l];
  return r;
}

inline void load8_transpose(const float* base, const i32* idx, Vf out[8]) {
  for (int c = 0; c < 8; ++c) {
    for (int l = 0; l < kLanes; ++l) out[c].lane[l] = base[idx[l] + c];
  }
}

#endif  // VIZCACHE_SIMD_NATIVE

inline bool any(Mask m) { return bits(m) != 0; }
inline int count(Mask m) { return std::popcount(bits(m)); }

/// a + (b - a) * t per lane — the lerp shape both trilinear sampling and
/// the LUT lookup use, fused like the compiler fuses the scalar paths'.
inline Vf lerp(Vf a, Vf b, Vf t) { return fmadd(sub(b, a), t, a); }

}  // namespace vizcache::simd
