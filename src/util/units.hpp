#pragma once

#include <string>

#include "util/types.hpp"

namespace vizcache {

inline constexpr u64 kKiB = 1024ULL;
inline constexpr u64 kMiB = 1024ULL * kKiB;
inline constexpr u64 kGiB = 1024ULL * kMiB;
inline constexpr u64 kTiB = 1024ULL * kGiB;

/// "4.00 GiB", "472.0 MiB", "17 B" — human-readable byte counts.
std::string format_bytes(u64 bytes);

/// "1.23 s", "45.6 ms", "789 us" — human-readable durations.
std::string format_seconds(double seconds);

/// Parse "64M", "2G", "512k", plain digits; throws InvalidArgument on junk.
u64 parse_bytes(const std::string& text);

}  // namespace vizcache
