#include "util/csv.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vizcache {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), columns_(columns.size()) {
  VIZ_REQUIRE(!columns.empty(), "CSV needs at least one column");
  out_.open(path, std::ios::trunc);
  if (!out_) throw IoError("cannot open CSV for writing: " + path);
  for (usize i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<std::string>& cells) {
  VIZ_REQUIRE(cells.size() == columns_, "CSV row arity mismatch");
  for (usize i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) throw IoError("CSV write failed: " + path_);
  ++rows_;
}

std::string CsvWriter::to_cell(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

std::string CsvWriter::to_cell(u64 v) { return std::to_string(v); }
std::string CsvWriter::to_cell(i64 v) { return std::to_string(v); }
std::string CsvWriter::to_cell(const std::string& v) { return v; }

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace vizcache
