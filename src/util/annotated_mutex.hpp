#pragma once

// Capability-annotated synchronization primitives.
//
// Wraps std::mutex / std::condition_variable behind types that carry Clang's
// thread-safety attributes, so `clang++ -Wthread-safety` statically checks the
// locking discipline: every shared field is declared GUARDED_BY its mutex, and
// the analysis rejects any access outside a critical section, double locks,
// and forgotten unlocks. On other compilers (and in SWIG/doc runs) every macro
// expands to nothing and Mutex is a zero-overhead shim over std::mutex.
//
// Repo rule (enforced by tools/lint.py): code under src/ must synchronize via
// these wrappers — raw std::mutex / std::lock_guard / std::condition_variable
// are reserved to this header, so nothing can bypass the analysis.
//
// Locking discipline (see DESIGN.md, "Locking discipline"): all vizcache
// mutexes are *leaf* locks. Never acquire a second Mutex, call back into user
// code, or call into another lock-holding subsystem (e.g. ThreadPool::submit)
// while holding one.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define VIZ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VIZ_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) VIZ_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY VIZ_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) VIZ_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) VIZ_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) VIZ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) VIZ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  VIZ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VIZ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) VIZ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  VIZ_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) VIZ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VIZ_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  VIZ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) VIZ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) VIZ_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) VIZ_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  VIZ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vizcache {

/// std::mutex carrying the `capability` attribute so fields can be declared
/// GUARDED_BY an instance and functions REQUIRES/EXCLUDES one.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII guard over a Mutex (the annotated std::lock_guard). The
/// SCOPED_CAPABILITY attribute tells the analysis the capability is held for
/// the guard's lifetime.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable usable with Mutex. wait() is declared REQUIRES(mutex):
/// the caller must hold the lock, exactly as with std::condition_variable.
/// The internal unlock/relock during the wait is invisible to the analysis
/// (standard for condition variables — the capability is held again when
/// wait() returns, which is what the annotations promise).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, sleep until notified, re-acquire.
  /// Spurious wakeups possible — always wait in a predicate loop.
  void wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vizcache
