#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {

ThreadPool::ThreadPool(usize threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stop_) return;  // second call: the first already joined the workers
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    MutexLock lock(mutex_);
    VIZ_CHECK(!stop_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(pt));
  }
  cv_task_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) cv_idle_.wait(mutex_);
}

usize ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // exceptions land in the task's future, never escape here
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vizcache
