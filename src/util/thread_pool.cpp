#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/error.hpp"

namespace vizcache {

ThreadPool::ThreadPool(usize threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stop_) return;  // second call: the first already joined the workers
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    MutexLock lock(mutex_);
    VIZ_CHECK(!stop_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(pt));
  }
  cv_task_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) cv_idle_.wait(mutex_);
}

usize ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

namespace {

/// Shared state of one parallel_for. Heap-allocated and owned jointly by the
/// caller and every helper task, so a helper that only gets scheduled after
/// the caller has returned still finds live state — it then sees the range
/// exhausted (or failed) and exits without calling `body`.
struct ParallelForState {
  ParallelForState(usize items_, usize grain_,
                   std::function<void(usize, usize)> body_)
      : items(items_), grain(grain_), body(std::move(body_)) {}

  const usize items;  ///< range length (chunks indexed from 0)
  const usize grain;
  const std::function<void(usize, usize)> body;  ///< own copy: outlives caller
  std::atomic<usize> next{0};        ///< next unclaimed item index
  std::atomic<bool> failed{false};   ///< sticky: stop claiming new chunks
  Mutex mutex;
  CondVar cv_done;                              ///< signalled on inflight -> 0
  usize inflight GUARDED_BY(mutex) = 0;         ///< participants in the loop
  std::exception_ptr error GUARDED_BY(mutex);   ///< first failure, if any
};

/// Chunk-pulling loop run by the caller and by each helper task. Registers
/// in `inflight` *before* claiming a chunk, so once a waiter observes
/// inflight == 0 with the range exhausted, no body invocation is running or
/// can ever start.
void pull_chunks(ParallelForState& st) {
  for (;;) {
    {
      MutexLock lock(st.mutex);
      ++st.inflight;
    }
    usize i = st.next.fetch_add(st.grain);
    bool claimed = i < st.items && !st.failed.load();
    if (claimed) {
      try {
        st.body(i, std::min(st.items, i + st.grain));
      } catch (...) {
        MutexLock lock(st.mutex);
        if (!st.error) st.error = std::current_exception();
        st.failed.store(true);
      }
    }
    {
      MutexLock lock(st.mutex);
      --st.inflight;
      if (st.inflight == 0) st.cv_done.notify_all();
    }
    if (!claimed) return;
  }
}

}  // namespace

void ThreadPool::parallel_for(usize begin, usize end, usize grain,
                              const std::function<void(usize, usize)>& body) {
  VIZ_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (begin >= end) return;
  const usize items = end - begin;
  const usize chunks = (items + grain - 1) / grain;

  // Body indices are offset by `begin` so the shared counter can start at 0.
  auto offset_body = [begin, &body](usize lo, usize hi) {
    body(begin + lo, begin + hi);
  };
  auto st = std::make_shared<ParallelForState>(
      items, grain, std::function<void(usize, usize)>(offset_body));

  // The caller participates too, so only chunks-1 helpers can ever be useful.
  const usize helpers = std::min(thread_count(), chunks - 1);
  for (usize i = 0; i < helpers; ++i) {
    try {
      // The future is dropped deliberately: completion is tracked through
      // st->inflight, which (unlike the future) lets the caller return while
      // never-started helpers are still queued behind busy workers — the key
      // to nested parallel_for not deadlocking a saturated pool.
      submit([st] { pull_chunks(*st); });
    } catch (const VizError&) {
      break;  // shutdown raced us: the caller alone still completes the range
    }
  }

  pull_chunks(*st);
  {
    MutexLock lock(st->mutex);
    while (st->inflight != 0) st->cv_done.wait(st->mutex);
    if (st->error) std::rethrow_exception(st->error);
  }
}

void parallel_for(ThreadPool* pool, usize begin, usize end, usize grain,
                  const std::function<void(usize, usize)>& body) {
  VIZ_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (begin >= end) return;
  if (pool == nullptr || pool->thread_count() <= 1 || end - begin <= grain) {
    for (usize i = begin; i < end; i += grain) {
      body(i, std::min(end, i + grain));
    }
    return;
  }
  pool->parallel_for(begin, end, grain, body);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // exceptions land in the task's future, never escape here
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vizcache
