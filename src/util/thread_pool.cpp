#include "util/thread_pool.hpp"

#include <algorithm>

namespace vizcache {

ThreadPool::ThreadPool(usize threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(pt));
  }
  cv_task_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

usize ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vizcache
