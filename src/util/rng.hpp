#pragma once

#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// Deterministic, seedable pseudo-random generator (SplitMix64 core).
///
/// Every stochastic component in vizcache (camera paths, dataset noise,
/// vicinal-sphere sampling) takes an explicit Rng so experiments are exactly
/// reproducible from a printed seed. Never uses wall-clock entropy.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  u64 next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  u64 next_below(u64 n);

  /// Standard normal via Box-Muller (consumes two uniforms).
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);

  /// Derive an independent child stream (for per-component seeding).
  Rng fork();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (usize i = v.size() - 1; i > 0; --i) {
      usize j = static_cast<usize>(next_below(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  u64 state_;
};

}  // namespace vizcache
