#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace vizcache {

/// One simulated span of pipeline work: a demand-fetch batch, a T_visible
/// lookup, a prefetch batch, or a render, with simulated start/end times on
/// the run's global clock. `worker` is the parallel-pipeline worker index
/// (0 for the sequential pipeline); `blocks` is the number of blocks the
/// span covered (0 for lookup/render).
struct StepEvent {
  enum class Kind { kFetch, kLookup, kPrefetch, kRender };

  Kind kind = Kind::kFetch;
  u64 step = 0;
  u32 worker = 0;
  SimSeconds start = 0.0;
  SimSeconds end = 0.0;
  usize blocks = 0;
};

const char* step_event_kind_name(StepEvent::Kind kind);

/// Append-only per-run event timeline recorded by VizPipeline::run_step and
/// ParallelPipeline::run. Makes Algorithm 1's overlap claim (line 22:
/// prefetch during rendering) directly inspectable below the per-run
/// aggregate: the app-aware pipeline's prefetch spans overlap its render
/// spans, a baseline's spans are strictly serial.
///
/// Thread-compatible, not thread-safe (the simulators record from one
/// thread); copies freely as part of RunResult.
class StepTimeline {
 public:
  void record(const StepEvent& event);

  const std::vector<StepEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  usize size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events of one kind, in record order.
  std::vector<StepEvent> events_of(StepEvent::Kind kind) const;

  /// Simulated end time of the last-ending event (0 when empty).
  SimSeconds span_end() const;

  /// Total simulated duration during which an event of kind `a` and an
  /// event of kind `b` on the SAME worker are simultaneously active. The
  /// paper's overlap claim in one number: for an app-aware run
  /// overlap_seconds(kPrefetch, kRender) > 0, for baselines it is 0.
  SimSeconds overlap_seconds(StepEvent::Kind a, StepEvent::Kind b) const;

  /// Chrome trace-event JSON ("traceEvents" array of complete events, one
  /// timeline lane per worker for fetch/render and one for lookup/prefetch
  /// so overlapped spans render side by side). Load via chrome://tracing or
  /// https://ui.perfetto.dev. Timestamps are simulated microseconds.
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() + '\n' to `path`; throws IoError on failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  std::vector<StepEvent> events_;
};

}  // namespace vizcache
