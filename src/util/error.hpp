#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vizcache {

/// Base exception for all vizcache errors.
class VizError : public std::runtime_error {
 public:
  explicit VizError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a precondition on a public API argument is violated.
class InvalidArgument : public VizError {
 public:
  explicit InvalidArgument(const std::string& what) : VizError(what) {}
};

/// Thrown on I/O failures (file-backed block stores, table serialization).
class IoError : public VizError {
 public:
  explicit IoError(const std::string& what) : VizError(what) {}
};

namespace detail {
template <typename E>
[[noreturn]] inline void throw_error(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw E(os.str());
}
}  // namespace detail

}  // namespace vizcache

/// Precondition check on public API arguments; throws InvalidArgument.
#define VIZ_REQUIRE(expr, msg)                                                   \
  do {                                                                           \
    if (!(expr))                                                                 \
      ::vizcache::detail::throw_error<::vizcache::InvalidArgument>(#expr,        \
                                                                   __FILE__,     \
                                                                   __LINE__,     \
                                                                   (msg));       \
  } while (0)

/// Internal invariant check; throws VizError.
#define VIZ_CHECK(expr, msg)                                                     \
  do {                                                                           \
    if (!(expr))                                                                 \
      ::vizcache::detail::throw_error<::vizcache::VizError>(#expr, __FILE__,     \
                                                            __LINE__, (msg));    \
  } while (0)
