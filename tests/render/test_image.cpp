#include "render/image.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace vizcache {
namespace {

namespace fs = std::filesystem;

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  img.at(3, 2) = {1, 0.5f, 0, 1};
  EXPECT_FLOAT_EQ(img.at(3, 2).r, 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0).a, 0.0f);
}

TEST(Image, CoverageCountsNonZeroAlpha) {
  Image img(2, 2);
  EXPECT_DOUBLE_EQ(img.coverage(), 0.0);
  img.at(0, 0).a = 0.5f;
  img.at(1, 1).a = 1.0f;
  EXPECT_DOUBLE_EQ(img.coverage(), 0.5);
}

TEST(Image, MeanLuminanceWeights) {
  Image img(1, 1);
  img.at(0, 0) = {1, 1, 1, 1};
  EXPECT_NEAR(img.mean_luminance(), 1.0, 1e-6);
  img.at(0, 0) = {0, 1, 0, 1};
  EXPECT_NEAR(img.mean_luminance(), 0.7152, 1e-6);
}

TEST(Image, WritePpmProducesValidHeaderAndSize) {
  Image img(5, 4, {0.5f, 0.25f, 1.0f, 1.0f});
  std::string path = (fs::temp_directory_path() / "vizcache_img.ppm").string();
  img.write_ppm(path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  usize w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 5u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255u);
  in.get();  // single whitespace after header
  std::vector<char> pixels(5 * 4 * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  // First pixel: 0.5 -> 128, 0.25 -> 64, 1.0 -> 255.
  EXPECT_EQ(static_cast<unsigned char>(pixels[0]), 128);
  EXPECT_EQ(static_cast<unsigned char>(pixels[1]), 64);
  EXPECT_EQ(static_cast<unsigned char>(pixels[2]), 255);
  fs::remove(path);
}

TEST(Image, WritePpmClampsValues) {
  Image img(1, 1, {2.0f, -1.0f, 0.0f, 1.0f});
  std::string path = (fs::temp_directory_path() / "vizcache_img2.ppm").string();
  img.write_ppm(path);
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::getline(in, line);  // P6
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  char px[3];
  in.read(px, 3);
  EXPECT_EQ(static_cast<unsigned char>(px[0]), 255);
  EXPECT_EQ(static_cast<unsigned char>(px[1]), 0);
  fs::remove(path);
}

TEST(Image, BadPathThrows) {
  Image img(1, 1);
  EXPECT_THROW(img.write_ppm("/nonexistent_dir/x.ppm"), IoError);
}

TEST(Image, EmptyDimsThrow) {
  EXPECT_THROW(Image(0, 5), InvalidArgument);
  EXPECT_THROW(Image(5, 0), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
