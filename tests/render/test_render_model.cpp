#include "render/render_model.hpp"

#include <gtest/gtest.h>

namespace vizcache {
namespace {

TEST(RenderTimeModel, LinearInBlocks) {
  RenderTimeModel m{1e-3, 2e-3};
  EXPECT_DOUBLE_EQ(m.frame_time(0), 1e-3);
  EXPECT_DOUBLE_EQ(m.frame_time(10), 1e-3 + 20e-3);
}

TEST(RenderTimeModel, GpuFasterThanCpu) {
  EXPECT_LT(gpu_render_model().frame_time(100), cpu_render_model().frame_time(100));
}

TEST(RenderTimeModel, MonotoneInBlockCount) {
  RenderTimeModel m = gpu_render_model();
  double prev = m.frame_time(0);
  for (usize b : {10u, 100u, 1000u}) {
    EXPECT_GT(m.frame_time(b), prev);
    prev = m.frame_time(b);
  }
}

}  // namespace
}  // namespace vizcache
