#include "render/transfer_function.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vizcache {
namespace {

TEST(TransferFunction, InterpolatesLinearly) {
  TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 1}}});
  Rgba mid = tf.sample(0.5f);
  EXPECT_FLOAT_EQ(mid.r, 0.5f);
  EXPECT_FLOAT_EQ(mid.a, 0.5f);
  Rgba quarter = tf.sample(0.25f);
  EXPECT_FLOAT_EQ(quarter.g, 0.25f);
}

TEST(TransferFunction, ClampsOutOfRange) {
  TransferFunction tf({{0.2f, {1, 0, 0, 0.1f}}, {0.8f, {0, 1, 0, 0.9f}}});
  EXPECT_FLOAT_EQ(tf.sample(-1.0f).r, 1.0f);
  EXPECT_FLOAT_EQ(tf.sample(2.0f).g, 1.0f);
  EXPECT_FLOAT_EQ(tf.sample(0.1f).r, 1.0f);  // below first point
}

TEST(TransferFunction, SortsControlPoints) {
  TransferFunction tf({{0.9f, {1, 1, 1, 1}}, {0.1f, {0, 0, 0, 0}}});
  EXPECT_LT(tf.points().front().value, tf.points().back().value);
  EXPECT_LT(tf.sample(0.2f).r, tf.sample(0.8f).r);
}

TEST(TransferFunction, ExactControlPointValues) {
  TransferFunction tf(
      {{0.0f, {0, 0, 0, 0}}, {0.5f, {1, 0, 0, 0.5f}}, {1.0f, {0, 0, 1, 1}}});
  Rgba at = tf.sample(0.5f);
  EXPECT_FLOAT_EQ(at.r, 1.0f);
  EXPECT_FLOAT_EQ(at.a, 0.5f);
}

TEST(TransferFunction, ScaleOpacityClamps) {
  TransferFunction tf = TransferFunction::grayscale();
  tf.scale_opacity(10.0f);
  for (const auto& p : tf.points()) {
    EXPECT_LE(p.color.a, 1.0f);
  }
  tf.scale_opacity(0.0f);
  for (const auto& p : tf.points()) {
    EXPECT_FLOAT_EQ(p.color.a, 0.0f);
  }
}

TEST(TransferFunction, PresetsAreValid) {
  for (const TransferFunction& tf :
       {TransferFunction::grayscale(), TransferFunction::fire(),
        TransferFunction::cool_warm()}) {
    EXPECT_GE(tf.points().size(), 2u);
    // Opacity generally grows toward the high end for these presets.
    EXPECT_GT(tf.sample(1.0f).a, tf.sample(0.0f).a);
  }
}

TEST(TransferFunction, IsoBandIsolatesRange) {
  TransferFunction tf =
      TransferFunction::iso_band(0.4f, 0.6f, {1, 0, 0, 0.8f});
  EXPECT_FLOAT_EQ(tf.sample(0.5f).a, 0.8f);
  EXPECT_FLOAT_EQ(tf.sample(0.1f).a, 0.0f);
  EXPECT_FLOAT_EQ(tf.sample(0.9f).a, 0.0f);
}

TEST(TransferFunction, IsoBandRejectsInvertedRange) {
  EXPECT_THROW(TransferFunction::iso_band(0.6f, 0.4f, {1, 0, 0, 1}),
               InvalidArgument);
}

TEST(TransferFunction, EmptyPointsThrow) {
  EXPECT_THROW(TransferFunction(std::vector<TransferFunction::ControlPoint>{}),
               InvalidArgument);
}

}  // namespace
}  // namespace vizcache
