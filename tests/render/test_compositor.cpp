#include "render/compositor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

struct CompositeWorld {
  SyntheticVolume volume = make_ball_volume({32, 32, 32});
  BlockGrid grid{{32, 32, 32}, {8, 8, 8}};
  VolumeSampler sampler = [this](const Vec3& p) -> std::optional<float> {
    return volume.fn(p, 0, 0);
  };
  TransferFunction tf = TransferFunction::grayscale();
  RaycastParams params = [] {
    RaycastParams p;
    p.image_width = 24;
    p.image_height = 24;
    p.step_size = 0.05;
    return p;
  }();
  Camera camera{{3, 0, 0}, 35.0};
};

TEST(Compositor, MaskedRenderOnlyShowsOwnedBlocks) {
  CompositeWorld w;
  // Rendering zero blocks gives an empty image.
  Image none = raycast_blocks(w.camera, w.grid, {}, w.sampler, w.tf, w.params);
  EXPECT_DOUBLE_EQ(none.coverage(), 0.0);
  // Rendering every block matches the unmasked raycast.
  auto all_ids = w.grid.all_blocks();
  Image all = raycast_blocks(w.camera, w.grid, all_ids, w.sampler, w.tf,
                             w.params);
  Image mono = raycast(w.camera, w.sampler, w.tf, w.params);
  for (usize y = 0; y < w.params.image_height; ++y) {
    for (usize x = 0; x < w.params.image_width; ++x) {
      EXPECT_NEAR(all.at(x, y).a, mono.at(x, y).a, 1e-5f);
    }
  }
}

TEST(Compositor, SlabCompositeMatchesMonolithicAlongViewAxis) {
  CompositeWorld w;
  // Two slabs split along x; camera on +x looks straight down the split
  // axis, so the regions are depth-separable and the composite must match
  // the single-pass render closely.
  std::vector<BlockId> near_slab, far_slab;
  for (BlockId id = 0; id < w.grid.block_count(); ++id) {
    if (w.grid.coord_of(id).bx >= 2) {
      near_slab.push_back(id);  // x in [0,1]: closer to camera at +3x
    } else {
      far_slab.push_back(id);
    }
  }
  std::vector<PartialRender> partials;
  partials.push_back(
      {raycast_blocks(w.camera, w.grid, far_slab, w.sampler, w.tf, w.params),
       block_set_depth(w.camera, w.grid, far_slab)});
  partials.push_back(
      {raycast_blocks(w.camera, w.grid, near_slab, w.sampler, w.tf, w.params),
       block_set_depth(w.camera, w.grid, near_slab)});
  Image composite = composite_over(std::move(partials));
  Image mono = raycast(w.camera, w.sampler, w.tf, w.params);

  double max_err = 0.0;
  for (usize y = 0; y < w.params.image_height; ++y) {
    for (usize x = 0; x < w.params.image_width; ++x) {
      max_err = std::max(
          max_err, std::abs(static_cast<double>(composite.at(x, y).a) -
                            static_cast<double>(mono.at(x, y).a)));
    }
  }
  // Boundary voxels straddle the cut: allow a modest tolerance.
  EXPECT_LT(max_err, 0.15);
  EXPECT_NEAR(composite.coverage(), mono.coverage(), 0.05);
}

TEST(Compositor, DepthOrderingMatters) {
  // A fully-opaque near layer must hide the far layer regardless of the
  // order partials are supplied in.
  Image red(4, 4, {1, 0, 0, 1});
  Image blue(4, 4, {0, 0, 1, 1});
  std::vector<PartialRender> a;
  a.push_back({red, 1.0});   // near
  a.push_back({blue, 5.0});  // far
  Image out_a = composite_over(std::move(a));
  EXPECT_FLOAT_EQ(out_a.at(0, 0).r, 1.0f);
  EXPECT_FLOAT_EQ(out_a.at(0, 0).b, 0.0f);

  std::vector<PartialRender> b;
  b.push_back({blue, 5.0});
  b.push_back({red, 1.0});
  Image out_b = composite_over(std::move(b));
  EXPECT_FLOAT_EQ(out_b.at(0, 0).r, 1.0f);
  EXPECT_FLOAT_EQ(out_b.at(0, 0).b, 0.0f);
}

TEST(Compositor, TranslucentLayersAccumulate) {
  Image half_red(2, 2, {0.5f, 0, 0, 0.5f});  // premultiplied-style half red
  Image half_blue(2, 2, {0, 0, 0.5f, 0.5f});
  std::vector<PartialRender> p;
  p.push_back({half_red, 1.0});   // near
  p.push_back({half_blue, 2.0});  // far
  Image out = composite_over(std::move(p));
  // red over blue: r = 0.5, b = 0.5 * (1 - 0.5) = 0.25, a = 0.75.
  EXPECT_FLOAT_EQ(out.at(0, 0).r, 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0).b, 0.25f);
  EXPECT_FLOAT_EQ(out.at(0, 0).a, 0.75f);
}

TEST(Compositor, BlockSetDepth) {
  CompositeWorld w;
  std::vector<BlockId> near_block{w.grid.block_at_normalized({0.9, 0, 0})};
  std::vector<BlockId> far_block{w.grid.block_at_normalized({-0.9, 0, 0})};
  EXPECT_LT(block_set_depth(w.camera, w.grid, near_block),
            block_set_depth(w.camera, w.grid, far_block));
  EXPECT_TRUE(std::isinf(block_set_depth(w.camera, w.grid, {})));
}

TEST(Compositor, InvalidInputsThrow) {
  CompositeWorld w;
  std::vector<BlockId> bad{static_cast<BlockId>(w.grid.block_count())};
  EXPECT_THROW(
      raycast_blocks(w.camera, w.grid, bad, w.sampler, w.tf, w.params),
      InvalidArgument);
  EXPECT_THROW(composite_over({}), InvalidArgument);
  std::vector<PartialRender> mismatched;
  mismatched.push_back({Image(2, 2), 1.0});
  mismatched.push_back({Image(3, 3), 2.0});
  EXPECT_THROW(composite_over(std::move(mismatched)), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
