#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "render/brick_sampler.hpp"
#include "render/raycaster.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "volume/block_store.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

/// Fully-resident brick set over the analytic ball, bricked 4x4x4 — the
/// same scene the block-coherent golden suite uses.
struct BallScene {
  BallScene()
      : store(make_ball_volume({32, 32, 32}), {8, 8, 8}),
        bricks(store.grid()) {
    bricks.load_all(store);
  }
  SyntheticBlockStore store;
  ResidentBrickSet bricks;
};

RaycastParams strict_params() {
  RaycastParams p;
  p.image_width = 48;
  p.image_height = 48;
  p.step_size = 0.02;
  p.early_termination = 1.0f;  // see test_brick_raycaster.cpp
  return p;
}

double max_channel_diff(const Image& a, const Image& b) {
  double worst = 0.0;
  for (usize y = 0; y < a.height(); ++y) {
    for (usize x = 0; x < a.width(); ++x) {
      const Rgba& pa = a.at(x, y);
      const Rgba& pb = b.at(x, y);
      worst = std::max({worst, std::abs(static_cast<double>(pa.r - pb.r)),
                        std::abs(static_cast<double>(pa.g - pb.g)),
                        std::abs(static_cast<double>(pa.b - pb.b)),
                        std::abs(static_cast<double>(pa.a - pb.a))});
    }
  }
  return worst;
}

/// Golden comparison: the packet image must match the retained scalar
/// reference path within tol per channel (same oracle, same tolerance as
/// the block-coherent suite).
void expect_packet_matches_reference(const BrickSampler& bricks,
                                     const TransferFunction& tf,
                                     const RaycastParams& p, double tol,
                                     usize lut_resolution = 1024) {
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  const TransferFunctionLUT lut(tf, p.step_size, lut_resolution);
  Image packet = raycast_packet(cam, bricks, lut, p);
  Image ref = raycast(cam, make_reference_sampler(bricks), tf, p);
  EXPECT_LT(max_channel_diff(packet, ref), tol);
  EXPECT_GT(packet.coverage(), 0.05);
}

TEST(PacketRaycaster, WidthIsEightInBothBuilds) {
  // The packet width is a fixed compile-time constant in the native AVX2
  // build AND the portable fallback — goldens and stats are identical
  // regardless of which implementation is active.
  EXPECT_EQ(raycast_packet_width(), 8u);
  // viz_render's packet TU and this test TU link the same vizcache_simd
  // flags, so their notion of "native" must agree (ODR guard).
  EXPECT_EQ(raycast_packet_native(), simd::kNative);
}

TEST(PacketRaycaster, GoldenGrayscale) {
  BallScene s;
  expect_packet_matches_reference(s.bricks, TransferFunction::grayscale(),
                                  strict_params(), 1e-3);
}

TEST(PacketRaycaster, GoldenFire) {
  BallScene s;
  expect_packet_matches_reference(s.bricks, TransferFunction::fire(),
                                  strict_params(), 1e-3);
}

TEST(PacketRaycaster, GoldenCoolWarm) {
  BallScene s;
  expect_packet_matches_reference(s.bricks, TransferFunction::cool_warm(),
                                  strict_params(), 1e-3);
}

TEST(PacketRaycaster, GoldenIsoBandNeedsResolution) {
  BallScene s;
  TransferFunction band =
      TransferFunction::iso_band(0.4f, 0.5f, {0.9f, 0.3f, 0.1f, 0.6f});
  expect_packet_matches_reference(s.bricks, band, strict_params(), 1e-3,
                                  16384);
}

TEST(PacketRaycaster, GoldenPartialResidency) {
  // Evict every 3rd brick: packet lanes must skip exactly the regions the
  // reference sampler reports as non-resident.
  BallScene s;
  const usize n = s.store.grid().block_count();
  for (BlockId id = 0; id < n; id += 3) s.bricks.evict(id);
  ASSERT_LT(s.bricks.resident_count(), n);
  ASSERT_GT(s.bricks.resident_count(), 0u);
  expect_packet_matches_reference(s.bricks, TransferFunction::fire(),
                                  strict_params(), 1e-3);
}

TEST(PacketRaycaster, MatchesBlockCoherentPathClosely) {
  // The packet path shares the DDA path's segment math and sampling
  // positions; the only divergence is float re-anchoring at intra-segment
  // run boundaries, far below the reference-golden tolerance.
  BallScene s;
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  Image packet = raycast_packet(cam, s.bricks, lut, p);
  Image dda = raycast(cam, s.bricks, lut, p);
  EXPECT_LT(max_channel_diff(packet, dda), 1e-4);
}

TEST(PacketRaycaster, StatsMatchBlockCoherentExactly) {
  // Regression pin for the RaycastStats aggregation: per-lane sample and
  // skip counts must sum to exactly the block-coherent path's totals —
  // both use the same double-precision segment bounds, so the integer
  // counts are bit-identical. Early termination is disabled (threshold
  // above any reachable alpha) so an FP-sensitive termination flip cannot
  // re-attribute the tail of a ray.
  BallScene s;
  const usize n = s.store.grid().block_count();
  for (BlockId id = 1; id < n; id += 4) s.bricks.evict(id);  // partial set
  RaycastParams p = strict_params();
  p.early_termination = 2.0f;
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  RaycastStats ps, ds;
  (void)raycast_packet(cam, s.bricks, lut, p, nullptr, &ps);
  (void)raycast(cam, s.bricks, lut, p, nullptr, &ds);
  EXPECT_EQ(ps.rays, ds.rays);
  EXPECT_EQ(ps.samples, ds.samples);
  EXPECT_EQ(ps.skipped, ds.skipped);
  EXPECT_GT(ps.samples, 0u);
  EXPECT_GT(ps.skipped, 0u);
  // Compositing decisions depend on sampled float values, which can move
  // by ulps at run re-anchors; allow a sliver of slack.
  const double pc = static_cast<double>(ps.composited);
  const double dc = static_cast<double>(ds.composited);
  EXPECT_NEAR(pc, dc, std::max(4.0, 0.001 * dc));
}

TEST(PacketRaycaster, StatsMatchAtFullResidencyToo) {
  BallScene s;
  RaycastParams p = strict_params();
  p.early_termination = 2.0f;
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  RaycastStats ps, ds;
  (void)raycast_packet(cam, s.bricks, lut, p, nullptr, &ps);
  (void)raycast(cam, s.bricks, lut, p, nullptr, &ds);
  EXPECT_EQ(ps.rays, ds.rays);
  EXPECT_EQ(ps.samples, ds.samples);
  EXPECT_EQ(ps.skipped, 0u);
  EXPECT_EQ(ds.skipped, 0u);
}

TEST(PacketRaycaster, ThreadPoolMatchesSerial) {
  BallScene s;
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  Image serial = raycast_packet(cam, s.bricks, lut, p, nullptr);
  ThreadPool pool(4);
  Image parallel = raycast_packet(cam, s.bricks, lut, p, &pool);
  for (usize y = 0; y < p.image_height; ++y) {
    for (usize x = 0; x < p.image_width; ++x) {
      EXPECT_FLOAT_EQ(serial.at(x, y).r, parallel.at(x, y).r);
      EXPECT_FLOAT_EQ(serial.at(x, y).a, parallel.at(x, y).a);
    }
  }
}

TEST(PacketRaycaster, EmptyResidencyGivesEmptyImage) {
  BallScene s;
  const usize n = s.store.grid().block_count();
  for (BlockId id = 0; id < n; ++id) s.bricks.evict(id);
  const TransferFunctionLUT lut(TransferFunction::fire(),
                                strict_params().step_size);
  Image img = raycast_packet(Camera({3, 0, 0}, 40.0), s.bricks, lut,
                             strict_params());
  EXPECT_DOUBLE_EQ(img.coverage(), 0.0);
}

TEST(PacketRaycaster, StrideOneMaskIsIdentity) {
  // An all-ones mask must reproduce the unmasked packet image bit-exactly:
  // stride 1 takes the no-rescale select branch with the same positions.
  BallScene s;
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  const SamplingMask mask =
      SamplingMask::uniform(s.store.grid().block_count(), 1);
  Image plain = raycast_packet(cam, s.bricks, lut, p);
  Image masked = raycast_packet(cam, s.bricks, lut, p, nullptr, nullptr,
                                &mask);
  for (usize y = 0; y < p.image_height; ++y) {
    for (usize x = 0; x < p.image_width; ++x) {
      EXPECT_FLOAT_EQ(plain.at(x, y).r, masked.at(x, y).r);
      EXPECT_FLOAT_EQ(plain.at(x, y).a, masked.at(x, y).a);
    }
  }
}

TEST(PacketRaycaster, AdaptiveStrideBoundsErrorAndCutsSamples) {
  // Uniform coarse strides: the opacity-corrected rescale keeps the image
  // within the documented adaptive bound of the full-rate packet image
  // (DESIGN.md "Render hot path") while evaluating the field 2x/4x less.
  BallScene s;
  const usize n = s.store.grid().block_count();
  RaycastParams p = strict_params();
  p.early_termination = 2.0f;  // keep sample counts exactly comparable
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  RaycastStats full_stats;
  Image full = raycast_packet(cam, s.bricks, lut, p, nullptr, &full_stats);

  const double bound[2] = {0.06, 0.12};  // stride 2, stride 4
  const u8 strides[2] = {2, 4};
  for (int i = 0; i < 2; ++i) {
    const SamplingMask mask = SamplingMask::uniform(n, strides[i]);
    RaycastStats st;
    Image img = raycast_packet(cam, s.bricks, lut, p, nullptr, &st, &mask);
    EXPECT_LT(max_channel_diff(img, full), bound[i]) << "stride "
                                                     << int{strides[i]};
    // Stride s takes every s-th lattice position per segment, so the count
    // is ceil-divided per segment: full/s plus at most one extra sample per
    // ray/block segment (a ray crosses at most ~a dozen bricks here).
    EXPECT_LT(st.samples * strides[i],
              full_stats.samples + full_stats.rays * strides[i] * 16)
        << "stride " << int{strides[i]};
    EXPECT_LT(st.samples * 3 / 2, full_stats.samples)
        << "stride " << int{strides[i]};
  }
}

TEST(PacketRaycaster, MixedStrideMaskStaysWithinCoarsestBound) {
  // Lanes of one packet may carry different strides simultaneously; the
  // per-lane rescale select must apply the right factor to each.
  BallScene s;
  const usize n = s.store.grid().block_count();
  SamplingMask mask = SamplingMask::uniform(n, 1);
  for (usize id = 0; id < n; ++id) {
    mask.stride[id] = id % 3 == 0 ? u8{4} : (id % 3 == 1 ? u8{2} : u8{1});
  }
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  Image full = raycast_packet(cam, s.bricks, lut, p);
  Image adaptive = raycast_packet(cam, s.bricks, lut, p, nullptr, nullptr,
                                  &mask);
  EXPECT_LT(max_channel_diff(adaptive, full), 0.12);
}

TEST(PacketRaycaster, RejectsBadMasks) {
  BallScene s;
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({3, 0, 0}, 40.0);
  const usize n = s.store.grid().block_count();
  // Stride 3 has no closed-form opacity rescale — rejected loudly.
  SamplingMask bad_stride = SamplingMask::uniform(n, 3);
  EXPECT_THROW(
      raycast_packet(cam, s.bricks, lut, p, nullptr, nullptr, &bad_stride),
      InvalidArgument);
  // A mask that does not cover the grid is a wiring bug, not a default.
  SamplingMask short_mask = SamplingMask::uniform(n - 1, 2);
  EXPECT_THROW(
      raycast_packet(cam, s.bricks, lut, p, nullptr, nullptr, &short_mask),
      InvalidArgument);
}

TEST(PacketRaycaster, MismatchedLutStepThrows) {
  BallScene s;
  RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size * 2.0);
  EXPECT_THROW(raycast_packet(Camera({3, 0, 0}, 40.0), s.bricks, lut, p),
               InvalidArgument);
}

TEST(PacketRaycaster, OddImageWidthCoversTailPixels) {
  // Width 37 leaves a 5-lane tail packet; every volume-hitting pixel must
  // still be rendered (compare against the block-coherent path).
  BallScene s;
  RaycastParams p = strict_params();
  p.image_width = 37;
  p.image_height = 19;
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  Image packet = raycast_packet(cam, s.bricks, lut, p);
  Image dda = raycast(cam, s.bricks, lut, p);
  EXPECT_LT(max_channel_diff(packet, dda), 1e-4);
  EXPECT_GT(packet.coverage(), 0.05);
}

TEST(PacketRaycaster, EarlyTerminationRetiresLanesIndependently) {
  // With a dense transfer function and a low threshold, neighboring lanes
  // terminate at different depths; the image must stay close to the
  // block-coherent path (same loose bound as its own golden, since the
  // flip sample is FP-sensitive in both).
  BallScene s;
  RaycastParams p = strict_params();
  p.early_termination = 0.5f;
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  Image packet = raycast_packet(cam, s.bricks, lut, p);
  Image dda = raycast(cam, s.bricks, lut, p);
  EXPECT_LT(max_channel_diff(packet, dda), 0.05);
  EXPECT_GT(packet.coverage(), 0.05);
}

}  // namespace
}  // namespace vizcache
