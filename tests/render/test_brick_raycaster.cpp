#include "render/brick_sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "render/raycaster.hpp"
#include "util/error.hpp"
#include "volume/block_store.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

/// Fully-resident brick set over the analytic ball, bricked 4x4x4.
struct BallScene {
  BallScene()
      : store(make_ball_volume({32, 32, 32}), {8, 8, 8}),
        bricks(store.grid()) {
    bricks.load_all(store);
  }
  SyntheticBlockStore store;
  ResidentBrickSet bricks;
};

RaycastParams strict_params() {
  RaycastParams p;
  p.image_width = 48;
  p.image_height = 48;
  p.step_size = 0.02;
  // Early termination compares accumulated alpha against a threshold; the
  // two paths can disagree on the flip sample at default 0.98 and then
  // diverge by a whole sample's contribution. Disable it for golden runs.
  p.early_termination = 1.0f;
  return p;
}

double max_channel_diff(const Image& a, const Image& b) {
  double worst = 0.0;
  for (usize y = 0; y < a.height(); ++y) {
    for (usize x = 0; x < a.width(); ++x) {
      const Rgba& pa = a.at(x, y);
      const Rgba& pb = b.at(x, y);
      worst = std::max({worst, std::abs(static_cast<double>(pa.r - pb.r)),
                        std::abs(static_cast<double>(pa.g - pb.g)),
                        std::abs(static_cast<double>(pa.b - pb.b)),
                        std::abs(static_cast<double>(pa.a - pb.a))});
    }
  }
  return worst;
}

/// Golden comparison: the block-coherent DDA+LUT image must match the
/// retained scalar reference path within tol per channel.
void expect_paths_agree(const BrickSampler& bricks, const TransferFunction& tf,
                        const RaycastParams& p, double tol,
                        usize lut_resolution = 1024) {
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  const TransferFunctionLUT lut(tf, p.step_size, lut_resolution);
  Image fast = raycast(cam, bricks, lut, p);
  Image ref = raycast(cam, make_reference_sampler(bricks), tf, p);
  EXPECT_LT(max_channel_diff(fast, ref), tol);
  // And the image is not trivially empty — agreement on black proves nothing.
  EXPECT_GT(fast.coverage(), 0.05);
}

TEST(BrickRaycaster, GoldenGrayscale) {
  BallScene s;
  expect_paths_agree(s.bricks, TransferFunction::grayscale(), strict_params(),
                     1e-3);
}

TEST(BrickRaycaster, GoldenFire) {
  BallScene s;
  expect_paths_agree(s.bricks, TransferFunction::fire(), strict_params(),
                     1e-3);
}

TEST(BrickRaycaster, GoldenCoolWarm) {
  BallScene s;
  expect_paths_agree(s.bricks, TransferFunction::cool_warm(), strict_params(),
                     1e-3);
}

TEST(BrickRaycaster, GoldenIsoBandNeedsResolution) {
  // A narrow iso band has steep opacity kinks: the default 1024-entry LUT
  // smooths them past 1e-3, a denser table does not.
  BallScene s;
  TransferFunction band =
      TransferFunction::iso_band(0.4f, 0.5f, {0.9f, 0.3f, 0.1f, 0.6f});
  expect_paths_agree(s.bricks, band, strict_params(), 1e-3, 16384);
}

TEST(BrickRaycaster, GoldenWithDefaultEarlyTermination) {
  // With early termination on, the flip sample may differ between paths, so
  // only a loose per-channel bound holds.
  BallScene s;
  RaycastParams p = strict_params();
  p.early_termination = 0.98f;
  expect_paths_agree(s.bricks, TransferFunction::fire(), p, 0.05);
}

TEST(BrickRaycaster, PartialResidencyMatchesReference) {
  // Evict a handful of bricks: both paths must skip exactly the same
  // regions (reference returns nullopt, DDA skips the segment in O(1)).
  BallScene s;
  const usize n = s.store.grid().block_count();
  for (BlockId id = 0; id < n; id += 3) s.bricks.evict(id);
  ASSERT_LT(s.bricks.resident_count(), n);
  ASSERT_GT(s.bricks.resident_count(), 0u);
  expect_paths_agree(s.bricks, TransferFunction::fire(), strict_params(),
                     1e-3);
}

TEST(BrickRaycaster, PartialResidencyAllThreePathsAgree) {
  // Same eviction pattern, third implementation: the SIMD packet path must
  // skip exactly the same non-resident regions as the DDA path and the
  // reference sampler (the packet path's own suite lives in
  // test_packet_raycaster.cpp; this pins the three-way agreement alongside
  // the original two-way golden).
  BallScene s;
  const usize n = s.store.grid().block_count();
  for (BlockId id = 0; id < n; id += 3) s.bricks.evict(id);
  const RaycastParams p = strict_params();
  const TransferFunction tf = TransferFunction::fire();
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  const TransferFunctionLUT lut(tf, p.step_size);
  Image packet = raycast_packet(cam, s.bricks, lut, p);
  Image dda = raycast(cam, s.bricks, lut, p);
  Image ref = raycast(cam, make_reference_sampler(s.bricks), tf, p);
  EXPECT_LT(max_channel_diff(packet, ref), 1e-3);
  EXPECT_LT(max_channel_diff(packet, dda), 1e-4);
  EXPECT_GT(packet.coverage(), 0.05);
}

TEST(BrickRaycaster, EmptyResidencyGivesEmptyImage) {
  BallScene s;
  const usize n = s.store.grid().block_count();
  for (BlockId id = 0; id < n; ++id) s.bricks.evict(id);
  const TransferFunctionLUT lut(TransferFunction::fire(),
                                strict_params().step_size);
  Image img = raycast(Camera({3, 0, 0}, 40.0), s.bricks, lut, strict_params());
  EXPECT_DOUBLE_EQ(img.coverage(), 0.0);
}

TEST(BrickRaycaster, ThreadPoolMatchesSerial) {
  BallScene s;
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  const Camera cam({2.4, 1.2, 0.7}, 38.0);
  Image serial = raycast(cam, s.bricks, lut, p, nullptr);
  ThreadPool pool(4);
  Image parallel = raycast(cam, s.bricks, lut, p, &pool);
  for (usize y = 0; y < p.image_height; ++y) {
    for (usize x = 0; x < p.image_width; ++x) {
      EXPECT_FLOAT_EQ(serial.at(x, y).r, parallel.at(x, y).r);
      EXPECT_FLOAT_EQ(serial.at(x, y).a, parallel.at(x, y).a);
    }
  }
}

TEST(BrickRaycaster, StatsCountRaysAndSamples) {
  BallScene s;
  const RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size);
  RaycastStats stats;
  raycast(Camera({3, 0, 0}, 40.0), s.bricks, lut, p, nullptr, &stats);
  // Rays are counted only when they intersect the volume bounds.
  EXPECT_GT(stats.rays, 0u);
  EXPECT_LE(stats.rays, p.image_width * p.image_height);
  EXPECT_GT(stats.samples, 0u);
  EXPECT_GT(stats.composited, 0u);
  EXPECT_LE(stats.composited, stats.samples);
}

TEST(BrickRaycaster, MismatchedLutStepThrows) {
  BallScene s;
  RaycastParams p = strict_params();
  const TransferFunctionLUT lut(TransferFunction::fire(), p.step_size * 2.0);
  EXPECT_THROW(raycast(Camera({3, 0, 0}, 40.0), s.bricks, lut, p),
               InvalidArgument);
}

TEST(ResidentBrickSet, LoadEvictTracksResidency) {
  BallScene s;
  const usize n = s.store.grid().block_count();
  EXPECT_EQ(s.bricks.resident_count(), n);
  EXPECT_TRUE(s.bricks.resident(0));
  s.bricks.evict(0);
  EXPECT_FALSE(s.bricks.resident(0));
  EXPECT_EQ(s.bricks.resident_count(), n - 1);
  EXPECT_FALSE(s.bricks.brick(0).resident());
  s.bricks.load(s.store, 0);
  EXPECT_TRUE(s.bricks.resident(0));
  EXPECT_EQ(s.bricks.resident_count(), n);
}

TEST(TransferFunctionLUT, ExactAtNodesPremultiplied) {
  const TransferFunction tf = TransferFunction::fire();
  const double step = 0.01;
  const TransferFunctionLUT lut(tf, step, 256);
  for (usize i = 0; i <= 256; ++i) {
    const float v = static_cast<float>(i) / 256.0f;
    const Rgba c = tf.sample(v);
    const float ac =
        1.0f - std::pow(1.0f - c.a, static_cast<float>(step * 10.0));
    const TransferFunctionLUT::Entry e = lut.sample(v);
    EXPECT_NEAR(e.a, ac, 1e-6f);
    EXPECT_NEAR(e.r, c.r * ac, 1e-6f);
    EXPECT_NEAR(e.g, c.g * ac, 1e-6f);
    EXPECT_NEAR(e.b, c.b * ac, 1e-6f);
  }
}

TEST(TransferFunctionLUT, ClampsOutOfRangeAndValidates) {
  const TransferFunction tf = TransferFunction::grayscale();
  const TransferFunctionLUT lut(tf, 0.02);
  const auto lo = lut.sample(-5.0f);
  const auto lo2 = lut.sample(0.0f);
  EXPECT_FLOAT_EQ(lo.a, lo2.a);
  const auto hi = lut.sample(5.0f);
  const auto hi2 = lut.sample(1.0f);
  EXPECT_FLOAT_EQ(hi.a, hi2.a);
  EXPECT_THROW(TransferFunctionLUT(tf, 0.0), InvalidArgument);
  EXPECT_THROW(TransferFunctionLUT(tf, 0.02, 0), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
