#include "render/analytics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "volume/block_store.hpp"

namespace vizcache {
namespace {

SyntheticBlockStore climate_store() {
  return SyntheticBlockStore(make_climate_volume({16, 16, 8}, 6, 2),
                             {8, 8, 4});
}

TEST(Analytics, HistogramsCoverAllVoxels) {
  SyntheticBlockStore store = climate_store();
  std::vector<BlockId> blocks{0, 1, 2};
  RegionAnalytics a = analyze_region(store, blocks, 3);
  usize expected = 0;
  for (BlockId id : blocks) expected += store.grid().block_voxels(id);
  EXPECT_EQ(a.voxels_analyzed, expected);
  ASSERT_EQ(a.histograms.size(), 3u);
  for (const Histogram& h : a.histograms) {
    EXPECT_EQ(h.total(), expected);
  }
  EXPECT_EQ(a.correlation.sample_count(), expected);
}

TEST(Analytics, StrideSubsamples) {
  SyntheticBlockStore store = climate_store();
  std::vector<BlockId> blocks{0};
  RegionAnalytics full = analyze_region(store, blocks, 2, 0, 0.0, 1.0, 64, 1);
  RegionAnalytics sub = analyze_region(store, blocks, 2, 0, 0.0, 1.0, 64, 4);
  EXPECT_EQ(sub.voxels_analyzed, (full.voxels_analyzed + 3) / 4);
}

TEST(Analytics, CorrelatedVariablesDetected) {
  // Climate vars 0 and 4 share the qvapor prototype: correlation above 0.
  SyntheticBlockStore store(make_climate_volume({16, 16, 8}, 6, 1), {8, 8, 4});
  auto blocks = store.grid().all_blocks();
  RegionAnalytics a = analyze_region(store, blocks, 5);
  EXPECT_GT(a.correlation.correlation(0, 4), 0.3);
  EXPECT_DOUBLE_EQ(a.correlation.correlation(2, 2), 1.0);
}

TEST(Analytics, RegionDependence) {
  // The Fig. 3 property: different visible regions give different
  // statistics.
  SyntheticBlockStore store(make_climate_volume({16, 16, 16}, 4, 1), {8, 8, 8});
  std::vector<BlockId> low{0};
  std::vector<BlockId> high{static_cast<BlockId>(store.grid().block_count() - 1)};
  RegionAnalytics a = analyze_region(store, low, 1);
  RegionAnalytics b = analyze_region(store, high, 1);
  bool histograms_differ = false;
  for (usize bin = 0; bin < a.histograms[0].bin_count(); ++bin) {
    if (a.histograms[0].count(bin) != b.histograms[0].count(bin)) {
      histograms_differ = true;
    }
  }
  EXPECT_TRUE(histograms_differ);
}

TEST(Analytics, TimestepSelectsData) {
  SyntheticBlockStore store = climate_store();
  std::vector<BlockId> blocks{0};
  RegionAnalytics t0 = analyze_region(store, blocks, 2, 0);
  RegionAnalytics t1 = analyze_region(store, blocks, 2, 1);
  // Wind around the moving vortex changes between steps.
  bool differ = false;
  for (usize bin = 0; bin < t0.histograms[1].bin_count(); ++bin) {
    if (t0.histograms[1].count(bin) != t1.histograms[1].count(bin)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Analytics, InvalidArgsThrow) {
  SyntheticBlockStore store = climate_store();
  std::vector<BlockId> blocks{0};
  EXPECT_THROW(analyze_region(store, blocks, 0), InvalidArgument);
  EXPECT_THROW(analyze_region(store, blocks, 100), InvalidArgument);
  EXPECT_THROW(analyze_region(store, blocks, 2, 0, 0.0, 1.0, 64, 0),
               InvalidArgument);
}

TEST(Analytics, EmptyRegionIsEmpty) {
  SyntheticBlockStore store = climate_store();
  RegionAnalytics a = analyze_region(store, {}, 2);
  EXPECT_EQ(a.voxels_analyzed, 0u);
  EXPECT_EQ(a.correlation.sample_count(), 0u);
}

}  // namespace
}  // namespace vizcache
