#include "render/raycaster.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

/// Full-volume sampler over the analytic ball.
VolumeSampler ball_sampler() {
  auto vol = std::make_shared<SyntheticVolume>(make_ball_volume({32, 32, 32}));
  return [vol](const Vec3& p) -> std::optional<float> {
    return vol->fn(p, 0, 0);
  };
}

RaycastParams small_params() {
  RaycastParams p;
  p.image_width = 32;
  p.image_height = 32;
  p.step_size = 0.05;
  return p;
}

TEST(Raycaster, BallProducesCenteredImage) {
  Camera cam({3, 0, 0}, 40.0);
  Image img = raycast(cam, ball_sampler(), TransferFunction::grayscale(),
                      small_params());
  // Center pixel passes through the dense core: opaque-ish.
  EXPECT_GT(img.at(16, 16).a, 0.1f);
  // Corner rays miss the volume entirely.
  EXPECT_FLOAT_EQ(img.at(0, 0).a, 0.0f);
  EXPECT_GT(img.coverage(), 0.05);
  EXPECT_LT(img.coverage(), 0.9);
}

TEST(Raycaster, EmptySamplerGivesEmptyImage) {
  Camera cam({3, 0, 0}, 40.0);
  VolumeSampler none = [](const Vec3&) -> std::optional<float> {
    return std::nullopt;
  };
  Image img = raycast(cam, none, TransferFunction::grayscale(), small_params());
  EXPECT_DOUBLE_EQ(img.coverage(), 0.0);
}

TEST(Raycaster, NonResidentRegionsAreSkipped) {
  // Only the x>0 half of the volume is "resident": the image still renders,
  // with less accumulated opacity than the full volume.
  auto vol = std::make_shared<SyntheticVolume>(make_ball_volume({32, 32, 32}));
  VolumeSampler half = [vol](const Vec3& p) -> std::optional<float> {
    if (p.x < 0.0) return std::nullopt;
    return vol->fn(p, 0, 0);
  };
  Camera cam({3, 0, 0}, 40.0);
  Image full = raycast(cam, ball_sampler(), TransferFunction::grayscale(),
                       small_params());
  Image partial =
      raycast(cam, half, TransferFunction::grayscale(), small_params());
  EXPECT_GT(partial.coverage(), 0.0);
  EXPECT_LE(partial.at(16, 16).a, full.at(16, 16).a + 1e-5f);
}

TEST(Raycaster, ViewIndependentOfDirectionForSymmetricVolume) {
  RaycastParams p = small_params();
  Image a = raycast(Camera({3, 0, 0}, 40.0), ball_sampler(),
                    TransferFunction::grayscale(), p);
  Image b = raycast(Camera({0, 3, 0}, 40.0), ball_sampler(),
                    TransferFunction::grayscale(), p);
  EXPECT_NEAR(a.coverage(), b.coverage(), 0.08);
}

TEST(Raycaster, TransparentTransferFunctionYieldsNothing) {
  TransferFunction clear({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 0}}});
  Camera cam({3, 0, 0}, 40.0);
  Image img = raycast(cam, ball_sampler(), clear, small_params());
  EXPECT_DOUBLE_EQ(img.coverage(), 0.0);
}

TEST(Raycaster, ThreadPoolMatchesSerial) {
  Camera cam({2.5, 1.0, 0.5}, 35.0);
  RaycastParams p = small_params();
  Image serial =
      raycast(cam, ball_sampler(), TransferFunction::fire(), p, nullptr);
  ThreadPool pool(4);
  Image parallel =
      raycast(cam, ball_sampler(), TransferFunction::fire(), p, &pool);
  for (usize y = 0; y < p.image_height; ++y) {
    for (usize x = 0; x < p.image_width; ++x) {
      EXPECT_FLOAT_EQ(serial.at(x, y).r, parallel.at(x, y).r);
      EXPECT_FLOAT_EQ(serial.at(x, y).a, parallel.at(x, y).a);
    }
  }
}

TEST(Raycaster, EarlyTerminationCapsAlpha) {
  RaycastParams p = small_params();
  p.early_termination = 0.5f;
  TransferFunction opaque({{0.0f, {1, 1, 1, 0.9f}}, {1.0f, {1, 1, 1, 0.9f}}});
  Camera cam({3, 0, 0}, 40.0);
  Image img = raycast(cam, ball_sampler(), opaque, p);
  // Accumulation stops shortly after crossing 0.5.
  EXPECT_GE(img.at(16, 16).a, 0.5f);
  EXPECT_LT(img.at(16, 16).a, 0.95f);
}

TEST(Raycaster, InvalidParamsThrow) {
  Camera cam({3, 0, 0}, 40.0);
  RaycastParams p = small_params();
  p.step_size = 0.0;
  EXPECT_THROW(
      raycast(cam, ball_sampler(), TransferFunction::grayscale(), p),
      InvalidArgument);
  p = small_params();
  p.value_min = 1.0f;
  p.value_max = 0.0f;
  EXPECT_THROW(
      raycast(cam, ball_sampler(), TransferFunction::grayscale(), p),
      InvalidArgument);
}

}  // namespace
}  // namespace vizcache
