#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "storage/hierarchy.hpp"
#include "util/rng.hpp"

namespace vizcache {
namespace {

/// An independent, deliberately naive re-implementation of the two-level
/// LRU hierarchy with per-step protection. The production simulator must
/// agree with it event for event on random traces — a golden-model anchor
/// for the miss counts and timings every figure rests on.
class ReferenceHierarchy {
 public:
  ReferenceHierarchy(usize dram_blocks, usize ssd_blocks, u64 block_bytes)
      : dram_cap_(dram_blocks), ssd_cap_(ssd_blocks), bytes_(block_bytes) {}

  struct Outcome {
    int level;  // 0 = DRAM hit, 1 = SSD hit, 2 = backing store
    SimSeconds time;
  };

  Outcome fetch(BlockId id, u64 step) {
    Outcome out{};
    if (resident(dram_, id)) {
      out.level = 0;
      out.time = dram_device().transfer_time(bytes_);
      touch(dram_, id, step);
      return out;
    }
    if (resident(ssd_, id)) {
      out.level = 1;
      out.time = ssd_device().transfer_time(bytes_);
      touch(ssd_, id, step);
      insert(dram_, dram_cap_, id, step);
      return out;
    }
    out.level = 2;
    out.time = hdd_device().transfer_time(bytes_);
    insert(ssd_, ssd_cap_, id, step);
    insert(dram_, dram_cap_, id, step);
    return out;
  }

 private:
  struct Entry {
    BlockId id;
    u64 step;
  };
  using Lru = std::list<Entry>;  // front = most recent

  static bool resident(const Lru& lru, BlockId id) {
    for (const Entry& e : lru) {
      if (e.id == id) return true;
    }
    return false;
  }

  static void touch(Lru& lru, BlockId id, u64 step) {
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->id == id) {
        Entry e{id, step};
        lru.erase(it);
        lru.push_front(e);
        return;
      }
    }
  }

  static void insert(Lru& lru, usize cap, BlockId id, u64 step) {
    if (resident(lru, id)) {
      touch(lru, id, step);
      return;
    }
    if (lru.size() >= cap) {
      // Evict the least recent entry whose step precedes the current one.
      for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
        if (it->step < step) {
          lru.erase(std::next(it).base());
          lru.push_front({id, step});
          return;
        }
      }
      return;  // everything protected: bypass
    }
    lru.push_front({id, step});
  }

  usize dram_cap_;
  usize ssd_cap_;
  u64 bytes_;
  Lru dram_;
  Lru ssd_;
};

TEST(GoldenModel, HierarchyMatchesReferenceOnRandomTraces) {
  const u64 kBytes = 1000;
  for (u64 seed : {1u, 2u, 3u}) {
    std::vector<LevelSpec> specs{
        {"DRAM", dram_device(), 8 * kBytes, PolicyKind::kLru},
        {"SSD", ssd_device(), 16 * kBytes, PolicyKind::kLru},
    };
    MemoryHierarchy real(std::move(specs), hdd_device(),
                         [](BlockId) -> u64 { return kBytes; });
    ReferenceHierarchy ref(8, 16, kBytes);

    Rng rng(seed);
    u64 step = 1;
    for (int op = 0; op < 3000; ++op) {
      if (rng.next_double() < 0.15) ++step;
      // Skewed access pattern: hot set of 6, cold tail of 40.
      BlockId id = rng.next_double() < 0.6
                       ? static_cast<BlockId>(rng.next_below(6))
                       : static_cast<BlockId>(6 + rng.next_below(40));

      bool dram_before = real.cache(0).contains(id);
      bool ssd_before = real.cache(1).contains(id);
      SimSeconds t = real.fetch(id, step);
      ReferenceHierarchy::Outcome expected = ref.fetch(id, step);

      int level = dram_before ? 0 : ssd_before ? 1 : 2;
      ASSERT_EQ(level, expected.level) << "seed " << seed << " op " << op;
      ASSERT_DOUBLE_EQ(t, expected.time) << "seed " << seed << " op " << op;
    }
    // Aggregate stats agree by construction if every event agreed; sanity
    // check the counters are self-consistent.
    const HierarchyStats& s = real.stats();
    EXPECT_EQ(s.level[0].hits + s.level[0].misses, s.demand_requests);
    EXPECT_EQ(s.level[1].hits + s.level[1].misses, s.level[0].misses);
    EXPECT_EQ(s.demand_backing_reads, s.level[1].misses);
    EXPECT_EQ(s.prefetch_backing_reads, 0u);  // demand-only workload
  }
}

}  // namespace
}  // namespace vizcache
