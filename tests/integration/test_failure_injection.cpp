#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "service/async_prefetcher.hpp"
#include "util/error.hpp"
#include "volume/file_block_store.hpp"
#include "volume/packed_block_store.hpp"

namespace vizcache {
namespace {

namespace fs = std::filesystem;

/// Failure-injection coverage: I/O errors must surface cleanly (exceptions
/// on demand paths, counted-and-recovered on background paths), never hang
/// or corrupt the prefetcher.
class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique: ctest -j runs sibling tests of this fixture as separate
    // concurrent processes, so a shared directory would be remove_all'd out
    // from under a running test.
    dir_ = fs::temp_directory_path() /
           ("vizcache_fault_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FailureInjectionTest, BackgroundPrefetchFailureIsCountedAndRetried) {
  SyntheticVolume ball = make_ball_volume({16, 16, 16});
  FileBlockStore store =
      FileBlockStore::write_store((dir_ / "bricks").string(), ball, {8, 8, 8});

  // Delete one brick out from under the store.
  fs::remove(store.block_path(3, 0, 0));

  AsyncPrefetcher pf(store, 2);
  std::vector<BlockId> ids{0, 1, 2, 3, 4};
  pf.request(ids);
  pf.drain();

  EXPECT_EQ(pf.stats().failures, 1u);
  EXPECT_EQ(pf.stats().prefetched, 4u);
  EXPECT_EQ(pf.get_if_ready(3), nullptr);
  // The healthy blocks are all usable.
  for (BlockId id : {0u, 1u, 2u, 4u}) {
    EXPECT_NE(pf.get_if_ready(id), nullptr);
  }

  // The failed block is retryable: restore the brick, re-request, succeed.
  FileBlockStore::write_store((dir_ / "bricks").string(), ball, {8, 8, 8});
  std::vector<BlockId> retry{3};
  pf.request(retry);
  pf.drain();
  EXPECT_NE(pf.get_if_ready(3), nullptr);
  EXPECT_EQ(pf.stats().prefetched, 5u);
}

TEST_F(FailureInjectionTest, DemandReadFailureThrowsToCaller) {
  SyntheticVolume ball = make_ball_volume({16, 16, 16});
  FileBlockStore store =
      FileBlockStore::write_store((dir_ / "bricks").string(), ball, {8, 8, 8});
  fs::remove(store.block_path(5, 0, 0));

  AsyncPrefetcher pf(store, 1);
  EXPECT_THROW(pf.get_blocking(5), IoError);
  // The prefetcher stays usable after the demand failure.
  EXPECT_NE(pf.get_blocking(0), nullptr);
}

TEST_F(FailureInjectionTest, TruncatedPackedStoreFailsOnlyAffectedBlocks) {
  SyntheticVolume ball = make_ball_volume({16, 16, 16});
  std::string path = (dir_ / "store.vzpk").string();
  PackedFileBlockStore store =
      PackedFileBlockStore::write_store(path, ball, {8, 8, 8});

  // Chop off the tail: the last bricks become unreadable, earlier ones keep
  // working (the index survives at the front of the file).
  u64 brick_bytes = 8ull * 8 * 8 * 4;
  fs::resize_file(path, fs::file_size(path) - brick_bytes);
  PackedFileBlockStore damaged(path);
  EXPECT_NO_THROW(damaged.read_block(0, 0, 0));
  EXPECT_THROW(damaged.read_block(7, 0, 0), IoError);
  // And reads after a failure still work (stream state is cleared).
  EXPECT_NO_THROW(damaged.read_block(1, 0, 0));
}

TEST_F(FailureInjectionTest, CorruptTableFilesRejected) {
  // Garbage where a serialized table is expected.
  std::string junk = (dir_ / "junk.bin").string();
  {
    std::ofstream out(junk, std::ios::binary);
    out << "not a table";
  }
  EXPECT_THROW(PackedFileBlockStore{junk}, IoError);
}

}  // namespace
}  // namespace vizcache
