#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/workbench.hpp"

namespace vizcache {
namespace {

/// Qualitative claims of the paper's evaluation, asserted with generous
/// margins so they hold across parameter noise. These are the properties
/// the bench binaries then report quantitatively.
class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = 0.1;
    spec.target_blocks = 512;
    spec.omega = {12, 24, 3, 2.5, 3.5};
    bench_ = std::make_unique<Workbench>(spec);
  }
  static void TearDownTestSuite() { bench_.reset(); }

  static std::unique_ptr<Workbench> bench_;
};

std::unique_ptr<Workbench> PaperShapes::bench_;

TEST_F(PaperShapes, OptBeatsBaselinesOnSlowSphericalPath) {
  // Fig. 12a at small degree steps: OPT well below FIFO and LRU.
  bench_->set_path_step_deg(2.0);
  SphericalPathSpec sp;
  sp.step_deg = 2.0;
  sp.positions = 150;
  CameraPath path = make_spherical_path(sp);
  double fifo = bench_->run_baseline(PolicyKind::kFifo, path).fast_miss_rate;
  double lru = bench_->run_baseline(PolicyKind::kLru, path).fast_miss_rate;
  double opt = bench_->run_app_aware(path).fast_miss_rate;
  EXPECT_LT(opt, fifo * 0.8);
  EXPECT_LT(opt, lru * 0.8);
}

TEST_F(PaperShapes, MissRateIncreasesWithDegreeChange) {
  // Fig. 12: larger view-direction changes raise miss rates for every
  // policy.
  SphericalPathSpec sp;
  sp.positions = 100;
  double prev_lru = -1.0;
  for (double deg : {1.0, 10.0, 30.0}) {
    sp.step_deg = deg;
    double lru = bench_
                     ->run_baseline(PolicyKind::kLru,
                                    make_spherical_path(sp))
                     .fast_miss_rate;
    EXPECT_GE(lru, prev_lru - 0.02) << "deg " << deg;
    prev_lru = lru;
  }
}

TEST_F(PaperShapes, OverlapMakesOptTotalTimeCompetitive) {
  // Fig. 13 at small degree changes: OPT's total time (io + max(render,
  // prefetch)) undercuts LRU and FIFO (io + render).
  bench_->set_path_step_deg(5.0);
  RandomPathSpec rp;
  rp.step_min_deg = 4.0;
  rp.step_max_deg = 6.0;
  rp.positions = 150;
  CameraPath path = make_random_path(rp);
  double fifo = bench_->run_baseline(PolicyKind::kFifo, path).total_time;
  double lru = bench_->run_baseline(PolicyKind::kLru, path).total_time;
  double opt = bench_->run_app_aware(path).total_time;
  EXPECT_LT(opt, lru);
  EXPECT_LT(opt, fifo);
}

TEST_F(PaperShapes, LargerCacheRatioHelpsOptAtBigSteps) {
  // Fig. 13b: raising the ratio from 0.5 to 0.7 lets OPT hold predicted
  // blocks and reduces its miss rate at 10-15 degree steps.
  bench_->set_path_step_deg(12.5);
  RandomPathSpec rp;
  rp.step_min_deg = 10.0;
  rp.step_max_deg = 15.0;
  rp.positions = 120;
  CameraPath path = make_random_path(rp);

  double opt_small = bench_->run_app_aware(path).fast_miss_rate;
  bench_->set_cache_ratio(0.7);
  double opt_large = bench_->run_app_aware(path).fast_miss_rate;
  bench_->set_cache_ratio(0.5);  // restore for other tests
  EXPECT_LT(opt_large, opt_small);
}

TEST_F(PaperShapes, PrefetchTimeIsOverlappedNotAdded) {
  // Section V-D: OPT's total is io + max(render, prefetch), strictly less
  // than the naive io + render + prefetch whenever both are positive.
  bench_->set_path_step_deg(5.0);
  RandomPathSpec rp;
  rp.step_min_deg = 4.0;
  rp.step_max_deg = 6.0;
  rp.positions = 80;
  RunResult opt = bench_->run_app_aware(make_random_path(rp));
  EXPECT_GT(opt.prefetch_time, 0.0);
  EXPECT_LT(opt.total_time,
            opt.io_time + opt.render_time + opt.prefetch_time + opt.lookup_time);
}

TEST_F(PaperShapes, MoreSamplingPositionsLowerMissRate) {
  // Fig. 7a: a denser Omega lattice predicts better.
  RandomPathSpec rp;
  rp.step_min_deg = 10.0;
  rp.step_max_deg = 15.0;
  rp.positions = 100;
  CameraPath path = make_random_path(rp);

  bench_->set_path_step_deg(12.5);
  bench_->rebuild_table({4, 8, 2, 2.5, 3.5}, std::nullopt);
  double sparse = bench_->run_app_aware(path).fast_miss_rate;
  bench_->rebuild_table({12, 24, 3, 2.5, 3.5}, std::nullopt);
  double dense = bench_->run_app_aware(path).fast_miss_rate;
  EXPECT_LE(dense, sparse + 0.01);
}

TEST_F(PaperShapes, ModelRadiusCompetitiveWithFixedRadii) {
  // Fig. 11: the Eq. 6 radius yields an io+prefetch time no worse than the
  // best fixed radius choice (within tolerance).
  bench_->set_path_step_deg(5.0);
  RandomPathSpec rp;
  rp.step_min_deg = 4.0;
  rp.step_max_deg = 6.0;
  rp.positions = 100;
  CameraPath path = make_random_path(rp);

  RunResult model = bench_->run_app_aware(path);
  double model_cost = model.io_time + model.prefetch_time;

  double best_fixed = 1e18;
  for (double r : {0.025, 0.05, 0.075, 0.1}) {
    bench_->rebuild_table(bench_->spec().omega, r);
    RunResult run = bench_->run_app_aware(path);
    best_fixed = std::min(best_fixed, run.io_time + run.prefetch_time);
  }
  bench_->rebuild_table(bench_->spec().omega, std::nullopt);
  EXPECT_LT(model_cost, best_fixed * 1.15);
}

}  // namespace
}  // namespace vizcache
