#include <gtest/gtest.h>

#include "core/workbench.hpp"

namespace vizcache {
namespace {

/// Everything in the experiment stack must be bit-identical across repeat
/// runs and across independent reconstructions — the property every bench
/// relies on when it prints a seed.
TEST(Determinism, WorkbenchReconstructionIdentical) {
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kLiftedRr;
  spec.scale = 0.06;
  spec.target_blocks = 128;
  spec.omega = {6, 12, 2, 2.5, 3.5};

  Workbench a(spec);
  Workbench b(spec);

  ASSERT_EQ(a.grid().block_count(), b.grid().block_count());
  EXPECT_DOUBLE_EQ(a.sigma_bits(), b.sigma_bits());
  for (BlockId id = 0; id < a.grid().block_count(); ++id) {
    EXPECT_DOUBLE_EQ(a.importance().entropy(id), b.importance().entropy(id));
  }
  ASSERT_EQ(a.table().entry_count(), b.table().entry_count());
  for (usize i = 0; i < a.table().entry_count(); ++i) {
    EXPECT_EQ(a.table().entry(i), b.table().entry(i));
  }

  RandomPathSpec rp;
  rp.positions = 40;
  rp.seed = 1234;
  CameraPath path = make_random_path(rp);

  for (int rep = 0; rep < 2; ++rep) {
    RunResult ra = a.run_app_aware(path);
    RunResult rb = b.run_app_aware(path);
    EXPECT_DOUBLE_EQ(ra.io_time, rb.io_time);
    EXPECT_DOUBLE_EQ(ra.prefetch_time, rb.prefetch_time);
    EXPECT_DOUBLE_EQ(ra.total_time, rb.total_time);
    EXPECT_DOUBLE_EQ(ra.fast_miss_rate, rb.fast_miss_rate);
    EXPECT_EQ(ra.trace.id_sequence(), rb.trace.id_sequence());
  }
}

TEST(Determinism, RunsDoNotContaminateEachOther) {
  // A belady run (which replays an LRU trace) must not change subsequent
  // baseline results: every run starts from a reset hierarchy.
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = 0.06;
  spec.target_blocks = 128;
  spec.omega = {6, 12, 2, 2.5, 3.5};
  Workbench wb(spec);

  RandomPathSpec rp;
  rp.positions = 30;
  CameraPath path = make_random_path(rp);

  RunResult first = wb.run_baseline(PolicyKind::kLru, path);
  wb.run_belady(path);
  wb.run_app_aware(path);
  RunResult second = wb.run_baseline(PolicyKind::kLru, path);
  EXPECT_DOUBLE_EQ(first.fast_miss_rate, second.fast_miss_rate);
  EXPECT_DOUBLE_EQ(first.io_time, second.io_time);
}

TEST(Determinism, SimulatedTimeIndependentOfWallClock) {
  // Two runs of the same configuration separated by arbitrary work produce
  // identical simulated timings (nothing reads the wall clock).
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = 0.06;
  spec.target_blocks = 128;
  spec.omega = {6, 12, 2, 2.5, 3.5};
  Workbench wb(spec);

  SphericalPathSpec sp;
  sp.positions = 25;
  CameraPath path = make_spherical_path(sp);

  RunResult a = wb.run_app_aware(path);
  // Arbitrary busywork.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  RunResult b = wb.run_app_aware(path);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.lookup_time, b.lookup_time);
}

}  // namespace
}  // namespace vizcache
