#include <gtest/gtest.h>

#include <filesystem>

#include "service/async_prefetcher.hpp"
#include "core/importance.hpp"
#include "core/visibility.hpp"
#include "core/visibility_table.hpp"
#include "core/workbench.hpp"
#include "render/analytics.hpp"
#include "render/raycaster.hpp"
#include "volume/file_block_store.hpp"

namespace vizcache {
namespace {

namespace fs = std::filesystem;

/// Full live loop against real disk bricks: build tables, walk a path,
/// prefetch with real threads, render with the real ray-caster off the
/// prefetcher's cache, and run the data-dependent analytics — everything
/// the simulated pipeline models, exercised for real.
TEST(EndToEnd, LiveOutOfCoreExploration) {
  std::string root =
      (fs::temp_directory_path() / "vizcache_e2e_store").string();
  fs::remove_all(root);
  fs::create_directories(root);

  SyntheticVolume flame = make_flame_volume("e2e", {48, 48, 48});
  FileBlockStore store = FileBlockStore::write_store(root, flame, {12, 12, 12});
  const BlockGrid& grid = store.grid();

  ImportanceTable importance = ImportanceTable::build(store, 64);

  VisibilityTableSpec ts;
  ts.omega = {6, 12, 2, 2.5, 3.5};
  ts.vicinal_samples = 6;
  ts.view_angle_deg = 20.0;
  ts.radius_model = {20.0, 0.25, 1e-3};
  VisibilityTable table = VisibilityTable::build(grid, ts, &importance);

  BlockBoundsIndex bounds(grid);
  AsyncPrefetcher prefetcher(store, 2);

  SphericalPathSpec ps;
  ps.step_deg = 8.0;
  ps.positions = 12;
  ps.view_angle_deg = 20.0;
  CameraPath path = make_spherical_path(ps);

  RaycastParams rp;
  rp.image_width = 24;
  rp.image_height = 24;
  rp.step_size = 0.1;

  double covered_frames = 0;
  for (const Camera& cam : path) {
    std::vector<BlockId> visible = bounds.visible_blocks(cam);
    ASSERT_FALSE(visible.empty());

    // Demand-load the visible set (hits come from earlier prefetches).
    std::unordered_map<BlockId, AsyncPrefetcher::Payload> resident;
    for (BlockId id : visible) {
      resident[id] = prefetcher.get_blocking(id);
    }

    // Kick off prefetch of the predicted next view while we render.
    prefetcher.request(table.query(cam.position()));

    VolumeSampler sampler = [&](const Vec3& p) -> std::optional<float> {
      BlockId id = grid.block_at_normalized(p);
      if (id == kInvalidBlock) return std::nullopt;
      auto it = resident.find(id);
      if (it == resident.end()) return std::nullopt;
      // Nearest-voxel lookup within the brick.
      Dims3 o = grid.block_voxel_origin(id);
      Dims3 e = grid.block_voxel_extent(id);
      const Dims3& vd = grid.volume_dims();
      auto voxel = [](double np, usize total) {
        auto v = static_cast<i64>((np + 1.0) * 0.5 *
                                  static_cast<double>(total));
        return static_cast<usize>(
            std::clamp<i64>(v, 0, static_cast<i64>(total) - 1));
      };
      usize lx = voxel(p.x, vd.x) - o.x;
      usize ly = voxel(p.y, vd.y) - o.y;
      usize lz = voxel(p.z, vd.z) - o.z;
      return (*it->second)[(lz * e.y + ly) * e.x + lx];
    };

    Image img = raycast(cam, sampler, TransferFunction::fire(), rp);
    if (img.coverage() > 0.0) covered_frames += 1.0;
  }
  prefetcher.drain();

  // Most frames must actually show the flame.
  EXPECT_GT(covered_frames, 8.0);
  // Prefetching must have produced real cache hits.
  EXPECT_GT(prefetcher.stats().demand_hits, 0u);
  EXPECT_GT(prefetcher.stats().prefetched, 0u);

  // Data-dependent pass over the last visible set (Fig. 3 analytics).
  Camera last = path.back();
  std::vector<BlockId> visible = bounds.visible_blocks(last);
  RegionAnalytics analytics = analyze_region(store, visible, 1);
  EXPECT_GT(analytics.voxels_analyzed, 0u);
  EXPECT_GT(analytics.histograms[0].total(), 0u);

  fs::remove_all(root);
}

/// The simulated pipeline and the bench workbench agree on basics for a
/// non-ball dataset (climate).
TEST(EndToEnd, ClimateWorkbenchRuns) {
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kClimate;
  spec.scale = 0.15;
  spec.target_blocks = 128;
  spec.omega = {6, 12, 2, 2.5, 3.5};
  Workbench wb(spec);

  RandomPathSpec rp;
  rp.positions = 30;
  CameraPath path = make_random_path(rp);

  RunResult fifo = wb.run_baseline(PolicyKind::kFifo, path);
  RunResult opt = wb.run_app_aware(path);
  EXPECT_EQ(fifo.steps.size(), opt.steps.size());
  EXPECT_GT(opt.hierarchy.prefetch_requests, 0u);
  EXPECT_LE(opt.io_time, fifo.io_time + 1e-9);
}

}  // namespace
}  // namespace vizcache
