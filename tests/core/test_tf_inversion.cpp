#include <gtest/gtest.h>

#include "core/query.hpp"
#include "util/rng.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

TEST(TfInversion, GrayscaleGivesOneInterval) {
  // grayscale: alpha 0 at v=0 rising to 0.8 at v=1; above 0 -> (0, 1].
  auto queries = queries_from_transfer_function(TransferFunction::grayscale());
  ASSERT_EQ(queries.size(), 1u);
  const RangeClause& c = queries[0].clauses()[0];
  EXPECT_NEAR(c.lo, 0.0f, 1e-5f);
  EXPECT_FLOAT_EQ(c.hi, 1.0f);
}

TEST(TfInversion, ThresholdShrinksInterval) {
  TransferFunction tf({{0.0f, {0, 0, 0, 0.0f}}, {1.0f, {1, 1, 1, 1.0f}}});
  auto queries = queries_from_transfer_function(tf, 0, 0.5f);
  ASSERT_EQ(queries.size(), 1u);
  const RangeClause& c = queries[0].clauses()[0];
  EXPECT_NEAR(c.lo, 0.5f, 1e-5f);  // alpha crosses 0.5 at v = 0.5
  EXPECT_FLOAT_EQ(c.hi, 1.0f);
}

TEST(TfInversion, IsoBandGivesItsBand) {
  TransferFunction tf =
      TransferFunction::iso_band(0.4f, 0.6f, {1, 0, 0, 0.8f});
  auto queries = queries_from_transfer_function(tf);
  ASSERT_EQ(queries.size(), 1u);
  const RangeClause& c = queries[0].clauses()[0];
  // The band plus its epsilon ramps.
  EXPECT_GT(c.lo, 0.3f);
  EXPECT_LT(c.lo, 0.4f + 1e-5f);
  EXPECT_GT(c.hi, 0.6f - 1e-5f);
  EXPECT_LT(c.hi, 0.7f);
}

TEST(TfInversion, MultipleBandsGiveMultipleQueries) {
  // Two disjoint opaque bands.
  TransferFunction tf({{0.0f, {0, 0, 0, 0}},
                       {0.2f, {1, 0, 0, 0.5f}},
                       {0.3f, {0, 0, 0, 0}},
                       {0.7f, {0, 0, 0, 0}},
                       {0.8f, {0, 1, 0, 0.5f}},
                       {1.0f, {0, 0, 0, 0}}});
  auto queries = queries_from_transfer_function(tf);
  EXPECT_EQ(queries.size(), 2u);
}

TEST(TfInversion, FullyTransparentGivesNothing) {
  TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 0}}});
  EXPECT_TRUE(queries_from_transfer_function(tf).empty());
}

TEST(TfInversion, FullyOpaqueCoversEverything) {
  TransferFunction tf({{0.0f, {1, 1, 1, 1}}, {1.0f, {1, 1, 1, 1}}});
  auto queries = queries_from_transfer_function(tf);
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_FLOAT_EQ(queries[0].clauses()[0].lo, 0.0f);
  EXPECT_FLOAT_EQ(queries[0].clauses()[0].hi, 1.0f);
}

TEST(TfInversion, InversionIsSound) {
  // Property: every value whose opacity exceeds the threshold lies in some
  // returned interval (no false rejection of visible values).
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TransferFunction::ControlPoint> pts;
    usize n = 2 + static_cast<usize>(rng.next_below(5));
    for (usize i = 0; i < n; ++i) {
      pts.push_back({static_cast<float>(rng.next_double()),
                     {0, 0, 0, static_cast<float>(rng.next_double())}});
    }
    TransferFunction tf(pts);
    float thr = static_cast<float>(rng.uniform(0.0, 0.9));
    auto queries = queries_from_transfer_function(tf, 0, thr);
    for (int s = 0; s <= 200; ++s) {
      float v = static_cast<float>(s) / 200.0f;
      if (tf.sample(v).a > thr + 1e-4f) {
        bool covered = false;
        for (const RegionQuery& q : queries) {
          const RangeClause& c = q.clauses()[0];
          if (v >= c.lo - 1e-5f && v <= c.hi + 1e-5f) covered = true;
        }
        EXPECT_TRUE(covered) << "trial " << trial << " v=" << v;
      }
    }
  }
}

TEST(TfInversion, CullsAmbientBlocksOfFlame) {
  // End-to-end: a fire TF (transparent below ~0.3) must cull the flame
  // dataset's ambient blocks.
  SyntheticBlockStore store(make_flame_volume("f", {32, 32, 32}), {8, 8, 8});
  BlockMetadataTable metadata = BlockMetadataTable::build(store);
  auto queries =
      queries_from_transfer_function(TransferFunction::fire(), 0, 0.05f);
  ASSERT_FALSE(queries.empty());
  usize needed = 0;
  for (BlockId id = 0; id < metadata.block_count(); ++id) {
    if (tf_may_need_block(queries, metadata, id)) ++needed;
  }
  EXPECT_GT(needed, 0u);
  EXPECT_LT(needed, metadata.block_count());
}

}  // namespace
}  // namespace vizcache
