#include "core/visibility.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace vizcache {
namespace {

BlockGrid cube_grid(usize blocks_per_axis = 4) {
  usize n = blocks_per_axis * 8;
  return BlockGrid({n, n, n}, {8, 8, 8});
}

TEST(Visibility, MatchesOneShotHelper) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  Camera cam({3, 0.5, -0.2}, 20.0);
  EXPECT_EQ(idx.visible_blocks(cam), compute_visible_blocks(cam, grid));
}

TEST(Visibility, SortedUniqueIds) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  auto vis = idx.visible_blocks(Camera({2.5, 1.0, 0.3}, 25.0));
  EXPECT_TRUE(std::is_sorted(vis.begin(), vis.end()));
  EXPECT_EQ(std::adjacent_find(vis.begin(), vis.end()), vis.end());
}

TEST(Visibility, CentralBlocksAlwaysSeen) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  // The block containing the origin must be visible from any direction.
  BlockId central = grid.block_at_normalized({0.01, 0.01, 0.01});
  for (const Vec3& pos : {Vec3{3, 0, 0}, Vec3{0, 3, 0}, Vec3{-2, -2, 1}}) {
    auto vis = idx.visible_blocks(Camera(pos, 15.0));
    EXPECT_TRUE(std::binary_search(vis.begin(), vis.end(), central));
  }
}

TEST(Visibility, NarrowConeSeesSubsetOfWideCone) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  Camera narrow({3, 1, 0}, 10.0);
  Camera wide({3, 1, 0}, 40.0);
  auto a = idx.visible_blocks(narrow);
  auto b = idx.visible_blocks(wide);
  EXPECT_LT(a.size(), b.size());
  EXPECT_TRUE(std::includes(b.begin(), b.end(), a.begin(), a.end()));
}

TEST(Visibility, WideConeFromFarSeesWholeVolume) {
  BlockGrid grid = cube_grid(2);
  BlockBoundsIndex idx(grid);
  // 90-degree cone from far away: the entire [-1,1]^3 fits inside.
  auto vis = idx.visible_blocks(Camera({6, 0, 0}, 90.0));
  EXPECT_EQ(vis.size(), grid.block_count());
}

TEST(Visibility, VisibleFractionReasonableForPaperDefaults) {
  // The regime the experiments run in: a 10-degree cone at d=3 must see a
  // small fraction of the volume — well under the 25% DRAM share.
  BlockGrid grid = BlockGrid::with_target_block_count({128, 128, 128}, 2048);
  BlockBoundsIndex idx(grid);
  auto vis = idx.visible_blocks(Camera({3, 0, 0}, 10.0));
  double fraction =
      static_cast<double>(vis.size()) / static_cast<double>(grid.block_count());
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.25);
}

TEST(Visibility, MarkVisibleAccumulates) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  std::vector<u8> mask(grid.block_count(), 0);
  idx.mark_visible(Camera({3, 0, 0}, 15.0), mask);
  usize first = static_cast<usize>(std::count(mask.begin(), mask.end(), 1));
  idx.mark_visible(Camera({0, 3, 0}, 15.0), mask);
  usize second = static_cast<usize>(std::count(mask.begin(), mask.end(), 1));
  EXPECT_GT(first, 0u);
  EXPECT_GT(second, first);  // union grows
}

TEST(Visibility, MarkVisibleMatchesVisibleBlocks) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  Camera cam({2, -2, 1}, 30.0);
  std::vector<u8> mask(grid.block_count(), 0);
  idx.mark_visible(cam, mask);
  auto vis = idx.visible_blocks(cam);
  for (BlockId id = 0; id < grid.block_count(); ++id) {
    bool in_list = std::binary_search(vis.begin(), vis.end(), id);
    EXPECT_EQ(mask[id] != 0, in_list) << "block " << id;
  }
}

TEST(Visibility, MaskSizeMismatchThrows) {
  BlockGrid grid = cube_grid();
  BlockBoundsIndex idx(grid);
  std::vector<u8> wrong(3, 0);
  EXPECT_THROW(idx.mark_visible(Camera({3, 0, 0}, 15.0), wrong),
               InvalidArgument);
}

TEST(Visibility, NearbyCamerasShareMostBlocks) {
  // Observation 1 of the paper: small view changes leave the visible set
  // largely overlapped.
  BlockGrid grid = BlockGrid::with_target_block_count({96, 96, 96}, 1024);
  BlockBoundsIndex idx(grid);
  Camera a({3, 0, 0}, 15.0);
  Camera b = Camera(Vec3{3, 0.05, 0.0}, 15.0);  // ~1 degree away
  auto va = idx.visible_blocks(a);
  auto vb = idx.visible_blocks(b);
  std::vector<BlockId> inter;
  std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                        std::back_inserter(inter));
  double overlap = static_cast<double>(inter.size()) /
                   static_cast<double>(std::max(va.size(), vb.size()));
  EXPECT_GT(overlap, 0.8);
}

}  // namespace
}  // namespace vizcache
