#include "core/visibility_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "util/error.hpp"
#include "volume/datasets.hpp"

namespace vizcache {
namespace {

namespace fs = std::filesystem;

BlockGrid test_grid() {
  return BlockGrid::with_target_block_count({64, 64, 64}, 512);
}

VisibilityTableSpec small_spec() {
  VisibilityTableSpec spec;
  spec.omega = {6, 12, 3, 2.5, 3.5};
  spec.vicinal_samples = 6;
  spec.view_angle_deg = 15.0;
  spec.radius_model = {15.0, 0.25, 1e-3};
  return spec;
}

TEST(VisibilityTable, EntryCountMatchesOmega) {
  BlockGrid grid = test_grid();
  VisibilityTable t = VisibilityTable::build(grid, small_spec());
  EXPECT_EQ(t.entry_count(), 6u * 12 * 3);
}

TEST(VisibilityTable, EntriesSortedUniqueAndNonEmpty) {
  BlockGrid grid = test_grid();
  VisibilityTable t = VisibilityTable::build(grid, small_spec());
  for (usize i = 0; i < t.entry_count(); ++i) {
    const auto& e = t.entry(i);
    EXPECT_FALSE(e.empty());
    EXPECT_TRUE(std::is_sorted(e.begin(), e.end()));
    EXPECT_EQ(std::adjacent_find(e.begin(), e.end()), e.end());
    for (BlockId id : e) EXPECT_LT(id, grid.block_count());
  }
}

TEST(VisibilityTable, EntryContainsExactVisibleSetOfItsSample) {
  // The vicinal union must cover the sample's own frustum (the center point
  // is always included in the vicinal ball).
  BlockGrid grid = test_grid();
  VisibilityTableSpec spec = small_spec();
  VisibilityTable t = VisibilityTable::build(grid, spec);
  BlockBoundsIndex idx(grid);
  for (usize i = 0; i < t.entry_count(); i += 17) {
    auto exact =
        idx.visible_blocks(Camera(t.sample_position(i), spec.view_angle_deg));
    const auto& entry = t.entry(i);
    EXPECT_TRUE(
        std::includes(entry.begin(), entry.end(), exact.begin(), exact.end()))
        << "entry " << i << " misses blocks of its own frustum";
  }
}

TEST(VisibilityTable, QueryReturnsNearestSampleEntry) {
  BlockGrid grid = test_grid();
  VisibilityTable t = VisibilityTable::build(grid, small_spec());
  for (usize i = 0; i < t.entry_count(); i += 29) {
    const Vec3& pos = t.sample_position(i);
    EXPECT_EQ(t.nearest_index(pos), i);
    EXPECT_EQ(&t.query(pos), &t.entry(i));
  }
}

TEST(VisibilityTable, DeterministicBuilds) {
  BlockGrid grid = test_grid();
  VisibilityTable a = VisibilityTable::build(grid, small_spec());
  VisibilityTable b = VisibilityTable::build(grid, small_spec());
  ASSERT_EQ(a.entry_count(), b.entry_count());
  for (usize i = 0; i < a.entry_count(); ++i) {
    EXPECT_EQ(a.entry(i), b.entry(i));
  }
}

TEST(VisibilityTable, ThreadedBuildMatchesSerial) {
  BlockGrid grid = test_grid();
  VisibilityTable serial = VisibilityTable::build(grid, small_spec());
  ThreadPool pool(4);
  VisibilityTable parallel =
      VisibilityTable::build(grid, small_spec(), nullptr, &pool);
  ASSERT_EQ(serial.entry_count(), parallel.entry_count());
  for (usize i = 0; i < serial.entry_count(); ++i) {
    EXPECT_EQ(serial.entry(i), parallel.entry(i)) << "entry " << i;
  }
}

TEST(VisibilityTable, LargerRadiusPredictsMore) {
  BlockGrid grid = test_grid();
  VisibilityTableSpec narrow = small_spec();
  narrow.fixed_radius = 0.02;
  VisibilityTableSpec wide = small_spec();
  wide.fixed_radius = 0.5;
  VisibilityTable tn = VisibilityTable::build(grid, narrow);
  VisibilityTable tw = VisibilityTable::build(grid, wide);
  EXPECT_GT(tw.mean_entry_size(), tn.mean_entry_size());
}

TEST(VisibilityTable, ImportanceTrimCapsEntrySize) {
  BlockGrid grid = test_grid();
  SyntheticBlockStore store(make_flame_volume("f", {64, 64, 64}),
                            grid.block_dims());
  ImportanceTable imp = ImportanceTable::build(store, 64);
  VisibilityTableSpec spec = small_spec();
  spec.fixed_radius = 0.5;  // strong over-prediction
  spec.max_blocks_per_entry = 40;
  VisibilityTable t = VisibilityTable::build(grid, spec, &imp);
  EXPECT_LE(t.max_entry_size(), 40u);
  // Trimmed entries keep the *most important* blocks: every kept block's
  // entropy must be >= the entropy of any dropped block... spot-check by
  // comparing against the untrimmed union.
  VisibilityTableSpec full = spec;
  full.max_blocks_per_entry.reset();
  VisibilityTable tf = VisibilityTable::build(grid, full);
  const auto& trimmed = t.entry(0);
  const auto& complete = tf.entry(0);
  if (complete.size() > 40) {
    double min_kept = 1e18;
    for (BlockId id : trimmed) min_kept = std::min(min_kept, imp.entropy(id));
    usize better_dropped = 0;
    for (BlockId id : complete) {
      if (std::find(trimmed.begin(), trimmed.end(), id) == trimmed.end() &&
          imp.entropy(id) > min_kept + 1e-12) {
        ++better_dropped;
      }
    }
    EXPECT_EQ(better_dropped, 0u);
  }
}

TEST(VisibilityTable, TrimWithoutImportanceThrows) {
  BlockGrid grid = test_grid();
  VisibilityTableSpec spec = small_spec();
  spec.max_blocks_per_entry = 10;
  EXPECT_THROW(VisibilityTable::build(grid, spec), InvalidArgument);
}

TEST(VisibilityTable, PathStepFloorGrowsEntries) {
  BlockGrid grid = test_grid();
  VisibilityTableSpec base = small_spec();
  VisibilityTableSpec stepped = small_spec();
  stepped.path_step_deg = 20.0;
  VisibilityTable tb = VisibilityTable::build(grid, base);
  VisibilityTable ts = VisibilityTable::build(grid, stepped);
  EXPECT_GT(ts.mean_entry_size(), tb.mean_entry_size());
}

TEST(VisibilityTable, LookupCostScalesWithEntries) {
  BlockGrid grid = test_grid();
  VisibilityTableSpec spec = small_spec();
  VisibilityTable small = VisibilityTable::build(grid, spec);
  spec.omega = {12, 24, 3, 2.5, 3.5};
  VisibilityTable large = VisibilityTable::build(grid, spec);
  LookupCostModel cost;
  EXPECT_GT(large.lookup_time(cost), small.lookup_time(cost));
}

TEST(VisibilityTable, SaveLoadRoundTrip) {
  BlockGrid grid = test_grid();
  VisibilityTable t = VisibilityTable::build(grid, small_spec());
  std::string path =
      (fs::temp_directory_path() / "vizcache_vt_test.bin").string();
  t.save(path);
  VisibilityTable loaded = VisibilityTable::load(path);
  ASSERT_EQ(loaded.entry_count(), t.entry_count());
  for (usize i = 0; i < t.entry_count(); i += 7) {
    EXPECT_EQ(loaded.entry(i), t.entry(i));
  }
  // The lattice-based query must still work after load.
  Vec3 pos = t.sample_position(5);
  EXPECT_EQ(loaded.nearest_index(pos), 5u);
  fs::remove(path);
}

TEST(VisibilityTable, LoadMissingFileThrows) {
  EXPECT_THROW(VisibilityTable::load("/nonexistent/vt.bin"), IoError);
}

TEST(VisibilityTable, ZeroVicinalSamplesThrows) {
  BlockGrid grid = test_grid();
  VisibilityTableSpec spec = small_spec();
  spec.vicinal_samples = 0;
  EXPECT_THROW(VisibilityTable::build(grid, spec), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
