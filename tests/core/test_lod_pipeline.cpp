#include "core/lod_pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

class LodTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Field3D f = rasterize(make_ball_volume({64, 64, 64}));
    pyramid_ = std::make_unique<MipPyramid>(
        MipPyramid::build(std::move(f), {8, 8, 8}, 4));
  }
  static void TearDownTestSuite() { pyramid_.reset(); }

  static CameraPath path(usize n = 40) {
    RandomPathSpec rp;
    rp.step_min_deg = 4.0;
    rp.step_max_deg = 6.0;
    rp.positions = n;
    return make_random_path(rp);
  }

  static std::unique_ptr<MipPyramid> pyramid_;
};

std::unique_ptr<MipPyramid> LodTest::pyramid_;

TEST(LodSelector, DistanceBands) {
  LodSelector sel{2.0, 3};
  EXPECT_EQ(sel.level_for(0.5), 0u);
  EXPECT_EQ(sel.level_for(2.0), 0u);
  EXPECT_EQ(sel.level_for(3.9), 0u);   // < 2*base
  EXPECT_EQ(sel.level_for(4.1), 1u);
  EXPECT_EQ(sel.level_for(8.1), 2u);
  EXPECT_EQ(sel.level_for(1000.0), 3u);  // clamped
}

TEST(LodSelector, InvalidBaseThrows) {
  LodSelector sel{0.0, 2};
  EXPECT_THROW(sel.level_for(1.0), InvalidArgument);
}

TEST_F(LodTest, CoarseSelectorCutsBytesAndFidelity) {
  CameraPath p = path();
  // Everything at full resolution.
  LodPipeline full(*pyramid_, {100.0, 0}, PolicyKind::kLru, 0.5);
  LodRunResult rf = full.run(p);
  EXPECT_DOUBLE_EQ(rf.mean_fidelity, 1.0);

  // Aggressive LOD: cameras at d=3 land in level 1+.
  LodPipeline coarse(*pyramid_, {1.0, 3}, PolicyKind::kLru, 0.5);
  LodRunResult rc = coarse.run(p);
  EXPECT_LT(rc.mean_fidelity, 0.5);
  EXPECT_LT(rc.bytes_fetched, rf.bytes_fetched);
  EXPECT_LT(rc.io_time, rf.io_time);
}

TEST_F(LodTest, FidelityWithinBounds) {
  LodPipeline p(*pyramid_, {2.0, 3}, PolicyKind::kLru, 0.5);
  LodRunResult r = p.run(path());
  EXPECT_GT(r.mean_fidelity, 0.0);
  EXPECT_LE(r.mean_fidelity, 1.0);
  EXPECT_GE(r.fast_miss_rate, 0.0);
  EXPECT_LE(r.fast_miss_rate, 1.0);
}

TEST_F(LodTest, StepAccountingConsistent) {
  LodPipeline p(*pyramid_, {2.0, 2}, PolicyKind::kLru, 0.5);
  LodRunResult r = p.run(path());
  SimSeconds io = 0.0, total = 0.0;
  for (const StepResult& s : r.steps) {
    EXPECT_GT(s.visible_blocks, 0u);
    EXPECT_DOUBLE_EQ(s.total_time, s.io_time + s.render_time);
    io += s.io_time;
    total += s.total_time;
  }
  EXPECT_NEAR(r.io_time, io, 1e-9);
  EXPECT_NEAR(r.total_time, total, 1e-9);
}

TEST_F(LodTest, DeterministicRuns) {
  CameraPath p = path(25);
  LodPipeline a(*pyramid_, {2.0, 3}, PolicyKind::kLru, 0.5);
  LodPipeline b(*pyramid_, {2.0, 3}, PolicyKind::kLru, 0.5);
  LodRunResult ra = a.run(p);
  LodRunResult rb = b.run(p);
  EXPECT_DOUBLE_EQ(ra.total_time, rb.total_time);
  EXPECT_EQ(ra.bytes_fetched, rb.bytes_fetched);
  EXPECT_DOUBLE_EQ(ra.mean_fidelity, rb.mean_fidelity);
}

TEST_F(LodTest, SelectorBeyondPyramidThrows) {
  EXPECT_THROW(LodPipeline(*pyramid_, {2.0, 10}, PolicyKind::kLru, 0.5),
               InvalidArgument);
}

TEST_F(LodTest, ZoomInRaisesFidelity) {
  // A close-up path stays at level 0; a far path drops levels.
  SphericalPathSpec close_spec;
  close_spec.distance = 2.0;
  close_spec.positions = 20;
  SphericalPathSpec far_spec;
  far_spec.distance = 5.0;
  far_spec.positions = 20;
  LodSelector sel{2.0, 3};
  LodPipeline near_pipe(*pyramid_, sel, PolicyKind::kLru, 0.5);
  LodPipeline far_pipe(*pyramid_, sel, PolicyKind::kLru, 0.5);
  LodRunResult near_r = near_pipe.run(make_spherical_path(close_spec));
  LodRunResult far_r = far_pipe.run(make_spherical_path(far_spec));
  EXPECT_GT(near_r.mean_fidelity, far_r.mean_fidelity);
}

}  // namespace
}  // namespace vizcache
