#include "core/importance.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vizcache {
namespace {

TEST(SamplingMask, UniformAndDefaults) {
  const SamplingMask m = SamplingMask::uniform(5, 2);
  ASSERT_EQ(m.stride.size(), 5u);
  for (BlockId id = 0; id < 5; ++id) EXPECT_EQ(m.stride_of(id), 2);
  // Blocks beyond the table fall back to full rate, never to coarse.
  EXPECT_EQ(m.stride_of(99), 1);
}

TEST(MakeSamplingMask, ThresholdSplitsFullAndCoarse) {
  // Handcrafted entropies: blocks 0/2 are "interesting", 1/3/4 are ambient.
  const ImportanceTable table =
      ImportanceTable::from_scores({5.0, 0.5, 4.0, 0.1, 1.0});
  const SamplingMask m = make_sampling_mask(table, 2.0);
  ASSERT_EQ(m.stride.size(), 5u);
  EXPECT_EQ(m.stride_of(0), 1);
  EXPECT_EQ(m.stride_of(1), 4);  // default coarse stride
  EXPECT_EQ(m.stride_of(2), 1);
  EXPECT_EQ(m.stride_of(3), 4);
  EXPECT_EQ(m.stride_of(4), 4);
}

TEST(MakeSamplingMask, CoarseStrideIsConfigurable) {
  const ImportanceTable table = ImportanceTable::from_scores({5.0, 0.5});
  const SamplingMask m2 = make_sampling_mask(table, 2.0, 2);
  EXPECT_EQ(m2.stride_of(0), 1);
  EXPECT_EQ(m2.stride_of(1), 2);
  // Coarse stride 1 yields the identity mask (useful as an ablation knob).
  const SamplingMask m1 = make_sampling_mask(table, 2.0, 1);
  EXPECT_EQ(m1.stride_of(1), 1);
}

TEST(MakeSamplingMask, ThresholdIsStrict) {
  // Blocks exactly AT sigma go coarse — consistent with
  // ImportanceTable::above_threshold's strict compare.
  const ImportanceTable table = ImportanceTable::from_scores({2.0, 2.0001});
  const SamplingMask m = make_sampling_mask(table, 2.0);
  EXPECT_EQ(m.stride_of(0), 4);
  EXPECT_EQ(m.stride_of(1), 1);
}

TEST(MakeSamplingMask, PairsWithThresholdForFraction) {
  // The intended wiring: keep the top-fraction blocks at full rate.
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(static_cast<double>(i));
  const ImportanceTable table = ImportanceTable::from_scores(scores);
  const double sigma = table.threshold_for_fraction(0.25);
  const SamplingMask m = make_sampling_mask(table, sigma);
  usize full = 0;
  for (BlockId id = 0; id < 100; ++id) {
    if (m.stride_of(id) == 1) ++full;
  }
  EXPECT_EQ(full, 25u);
}

TEST(MakeSamplingMask, RejectsUnsupportedStride) {
  const ImportanceTable table = ImportanceTable::from_scores({1.0});
  EXPECT_THROW(make_sampling_mask(table, 0.5, 3), InvalidArgument);
  EXPECT_THROW(make_sampling_mask(table, 0.5, 8), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
