#include "core/importance.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"
#include "volume/datasets.hpp"

namespace vizcache {
namespace {

namespace fs = std::filesystem;

SyntheticBlockStore flame_store() {
  return SyntheticBlockStore(make_flame_volume("f", {48, 48, 48}), {12, 12, 12});
}

TEST(Importance, EveryBlockScored) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  EXPECT_EQ(t.block_count(), store.grid().block_count());
  EXPECT_EQ(t.ranked().size(), store.grid().block_count());
}

TEST(Importance, EntropiesNonNegativeAndBounded) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  for (BlockId id = 0; id < t.block_count(); ++id) {
    EXPECT_GE(t.entropy(id), 0.0);
    EXPECT_LE(t.entropy(id), 6.0);  // log2(64)
  }
}

TEST(Importance, RankingDescending) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  for (usize i = 1; i < t.ranked().size(); ++i) {
    EXPECT_GE(t.entropy(t.ranked()[i - 1]), t.entropy(t.ranked()[i]));
  }
}

TEST(Importance, FlameSheetBeatsAmbient) {
  // Observation 2: ambient corner blocks score ~0; jet-sheet blocks score
  // high. The flame occupies the column around the (meandering) y-axis.
  SyntheticBlockStore store = flame_store();
  const BlockGrid& grid = store.grid();
  ImportanceTable t = ImportanceTable::build(store, 64);
  BlockId ambient = grid.id_of({3, 0, 3});  // far corner, low altitude
  BlockId sheet = grid.id_of({1, 2, 1});    // central column, mid height
  EXPECT_LT(t.entropy(ambient), 0.5);
  EXPECT_GT(t.entropy(sheet), t.entropy(ambient) + 0.5);
}

TEST(Importance, TopKOrderedPrefix) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  auto top = t.top_k(5);
  ASSERT_EQ(top.size(), 5u);
  for (usize i = 0; i < 5; ++i) EXPECT_EQ(top[i], t.ranked()[i]);
  // k beyond block count clamps.
  EXPECT_EQ(t.top_k(1'000'000).size(), t.block_count());
}

TEST(Importance, AboveThresholdConsistent) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  double sigma = t.mean_entropy();
  auto above = t.above_threshold(sigma);
  for (BlockId id : above) EXPECT_GT(t.entropy(id), sigma);
  // Completeness: everything above sigma is in the list.
  usize expected = 0;
  for (BlockId id = 0; id < t.block_count(); ++id) {
    if (t.entropy(id) > sigma) ++expected;
  }
  EXPECT_EQ(above.size(), expected);
}

TEST(Importance, ThresholdForFraction) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  double sigma = t.threshold_for_fraction(0.25);
  auto above = t.above_threshold(sigma);
  double fraction = static_cast<double>(above.size()) /
                    static_cast<double>(t.block_count());
  EXPECT_NEAR(fraction, 0.25, 0.1);
  // Edge fractions.
  EXPECT_TRUE(t.above_threshold(t.threshold_for_fraction(0.0)).empty());
  EXPECT_EQ(t.above_threshold(t.threshold_for_fraction(1.0)).size(),
            t.block_count());
}

TEST(Importance, MinMaxMeanConsistent) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  EXPECT_LE(t.min_entropy(), t.mean_entropy());
  EXPECT_LE(t.mean_entropy(), t.max_entropy());
  EXPECT_DOUBLE_EQ(t.max_entropy(), t.entropy(t.ranked().front()));
  EXPECT_DOUBLE_EQ(t.min_entropy(), t.entropy(t.ranked().back()));
}

TEST(Importance, ConstantDatasetAllZero) {
  Field3D constant({16, 16, 16}, 1.0f);
  MemoryBlockStore store(constant, {8, 8, 8});
  ImportanceTable t = ImportanceTable::build(store, 64);
  for (BlockId id = 0; id < t.block_count(); ++id) {
    EXPECT_DOUBLE_EQ(t.entropy(id), 0.0);
  }
}

TEST(Importance, TurbulenceBeatsBallOnAverage) {
  SyntheticBlockStore turb(make_turbulence_volume({32, 32, 32}), {8, 8, 8});
  SyntheticBlockStore ball(make_ball_volume({32, 32, 32}), {8, 8, 8});
  ImportanceTable tt = ImportanceTable::build(turb, 64);
  ImportanceTable tb = ImportanceTable::build(ball, 64);
  EXPECT_GT(tt.mean_entropy(), tb.mean_entropy());
}

TEST(Importance, SaveLoadRoundTrip) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  std::string path =
      (fs::temp_directory_path() / "vizcache_imp_test.bin").string();
  t.save(path);
  ImportanceTable loaded = ImportanceTable::load(path);
  ASSERT_EQ(loaded.block_count(), t.block_count());
  for (BlockId id = 0; id < t.block_count(); ++id) {
    EXPECT_DOUBLE_EQ(loaded.entropy(id), t.entropy(id));
  }
  EXPECT_EQ(loaded.ranked(), t.ranked());
  fs::remove(path);
}

TEST(Importance, LoadMissingFileThrows) {
  EXPECT_THROW(ImportanceTable::load("/nonexistent/imp.bin"), IoError);
}

TEST(Importance, OutOfRangeThrows) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build(store, 64);
  EXPECT_THROW(t.entropy(static_cast<BlockId>(t.block_count())),
               InvalidArgument);
  EXPECT_THROW(t.threshold_for_fraction(1.5), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
