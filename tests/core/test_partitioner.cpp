#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

BlockGrid test_grid() { return BlockGrid({32, 32, 32}, {8, 8, 8}); }

ImportanceTable flame_importance(const BlockGrid& grid) {
  SyntheticBlockStore store(make_flame_volume("f", {32, 32, 32}),
                            grid.block_dims());
  return ImportanceTable::build(store, 64);
}

/// Every strategy must assign every block to a valid worker.
class PartitionContractTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionContractTest, CompleteAndValid) {
  BlockGrid grid = test_grid();
  ImportanceTable imp = flame_importance(grid);
  for (usize workers : {1u, 2u, 3u, 7u, 16u}) {
    Partition p = make_partition(GetParam(), grid, imp, workers);
    EXPECT_EQ(p.block_count(), grid.block_count());
    EXPECT_EQ(p.worker_count(), workers);
    usize assigned = 0;
    for (u32 w = 0; w < workers; ++w) assigned += p.blocks_of(w).size();
    EXPECT_EQ(assigned, grid.block_count());
  }
}

TEST_P(PartitionContractTest, BlockCountsRoughlyEven) {
  BlockGrid grid = test_grid();
  ImportanceTable imp = flame_importance(grid);
  Partition p = make_partition(GetParam(), grid, imp, 4);
  for (u32 w = 0; w < 4; ++w) {
    usize n = p.blocks_of(w).size();
    EXPECT_GE(n, grid.block_count() / 8) << "worker " << w;
    EXPECT_LE(n, grid.block_count() / 2) << "worker " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, PartitionContractTest,
                         ::testing::Values(PartitionStrategy::kRoundRobin,
                                           PartitionStrategy::kSpatialSlabs,
                                           PartitionStrategy::kImportance),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case PartitionStrategy::kRoundRobin:
                               return "RoundRobin";
                             case PartitionStrategy::kSpatialSlabs:
                               return "SpatialSlabs";
                             default:
                               return "Importance";
                           }
                         });

TEST(Partition, RoundRobinDealsInOrder) {
  Partition p = partition_round_robin(test_grid(), 4);
  for (BlockId id = 0; id < 16; ++id) {
    EXPECT_EQ(p.owner(id), id % 4);
  }
}

TEST(Partition, SlabsAreSpatiallyContiguous) {
  BlockGrid grid = test_grid();  // 4x4x4 blocks
  Partition p = partition_spatial_slabs(grid, 4);
  // Blocks in the same slab index along the chosen axis share a worker.
  for (BlockId a = 0; a < grid.block_count(); ++a) {
    for (BlockId b = 0; b < grid.block_count(); ++b) {
      if (grid.coord_of(a).bx == grid.coord_of(b).bx) {
        EXPECT_EQ(p.owner(a), p.owner(b));
      }
    }
  }
}

TEST(Partition, ImportanceBalancesEntropyBetterThanSlabs) {
  BlockGrid grid = test_grid();
  ImportanceTable imp = flame_importance(grid);
  std::vector<double> weight(grid.block_count());
  for (BlockId id = 0; id < grid.block_count(); ++id) {
    weight[id] = imp.entropy(id);
  }
  Partition slabs = partition_spatial_slabs(grid, 4);
  Partition balanced = partition_importance_balanced(grid, imp, 4);
  double slab_imb = Partition::imbalance(slabs.worker_loads(weight));
  double bal_imb = Partition::imbalance(balanced.worker_loads(weight));
  // The flame concentrates entropy in a central column, so slabs along an
  // axis are badly skewed while LPT balance is near-perfect.
  EXPECT_LT(bal_imb, slab_imb);
  EXPECT_LT(bal_imb, 1.1);
}

TEST(Partition, ImbalanceMetric) {
  EXPECT_DOUBLE_EQ(Partition::imbalance({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Partition::imbalance({2.0, 1.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(Partition::imbalance({}), 1.0);
  EXPECT_DOUBLE_EQ(Partition::imbalance({0.0, 0.0}), 1.0);
}

TEST(Partition, SingleWorkerOwnsEverything) {
  BlockGrid grid = test_grid();
  ImportanceTable imp = flame_importance(grid);
  for (PartitionStrategy s :
       {PartitionStrategy::kRoundRobin, PartitionStrategy::kSpatialSlabs,
        PartitionStrategy::kImportance}) {
    Partition p = make_partition(s, grid, imp, 1);
    EXPECT_EQ(p.blocks_of(0).size(), grid.block_count());
  }
}

TEST(Partition, InvalidInputsThrow) {
  BlockGrid grid = test_grid();
  ImportanceTable imp = flame_importance(grid);
  EXPECT_THROW(partition_round_robin(grid, 0), InvalidArgument);
  EXPECT_THROW(Partition({0, 5}, 2), InvalidArgument);
  Partition p = partition_round_robin(grid, 2);
  EXPECT_THROW(p.owner(static_cast<BlockId>(grid.block_count())),
               InvalidArgument);
  EXPECT_THROW(p.blocks_of(2), InvalidArgument);
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(p.worker_loads(wrong), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
