#include "core/workbench.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vizcache {
namespace {

WorkbenchSpec tiny_spec() {
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = 0.06;  // ~61^3
  spec.target_blocks = 128;
  spec.omega = {6, 12, 3, 2.5, 3.5};
  return spec;
}

TEST(Workbench, BuildsAllComponents) {
  Workbench wb(tiny_spec());
  EXPECT_GT(wb.grid().block_count(), 64u);
  EXPECT_EQ(wb.importance().block_count(), wb.grid().block_count());
  EXPECT_EQ(wb.table().entry_count(), 6u * 12 * 3);
  EXPECT_GT(wb.dataset_bytes(), 0u);
}

TEST(Workbench, DefaultEntryTrimEqualsDramBlocks) {
  Workbench wb(tiny_spec());
  auto dram_blocks = static_cast<usize>(
      0.25 * static_cast<double>(wb.grid().block_count()));
  ASSERT_TRUE(wb.spec().max_blocks_per_entry.has_value());
  EXPECT_EQ(*wb.spec().max_blocks_per_entry, dram_blocks);
  EXPECT_LE(wb.table().max_entry_size(), dram_blocks);
}

TEST(Workbench, DatasetBytesMatchesGrid) {
  Workbench wb(tiny_spec());
  u64 expected = 0;
  for (BlockId id = 0; id < wb.grid().block_count(); ++id) {
    expected += wb.grid().block_bytes(id);
  }
  EXPECT_EQ(wb.dataset_bytes(), expected);
}

TEST(Workbench, RebuildTableChangesLattice) {
  Workbench wb(tiny_spec());
  usize before = wb.table().entry_count();
  wb.rebuild_table({10, 20, 3, 2.5, 3.5}, std::nullopt);
  EXPECT_EQ(wb.table().entry_count(), 10u * 20 * 3);
  EXPECT_NE(wb.table().entry_count(), before);
}

TEST(Workbench, SetCacheRatioAffectsHierarchy) {
  Workbench wb(tiny_spec());
  RandomPathSpec rp;
  rp.positions = 30;
  CameraPath path = make_random_path(rp);
  RunResult small = wb.run_baseline(PolicyKind::kLru, path);
  wb.set_cache_ratio(0.9);
  RunResult large = wb.run_baseline(PolicyKind::kLru, path);
  // Bigger caches can only help.
  EXPECT_LE(large.fast_miss_rate, small.fast_miss_rate + 1e-9);
}

TEST(Workbench, SetCacheRatioValidates) {
  Workbench wb(tiny_spec());
  EXPECT_THROW(wb.set_cache_ratio(0.0), InvalidArgument);
  EXPECT_THROW(wb.set_cache_ratio(1.5), InvalidArgument);
}

TEST(Workbench, SetPathStepValidates) {
  Workbench wb(tiny_spec());
  EXPECT_THROW(wb.set_path_step_deg(-1.0), InvalidArgument);
}

TEST(Workbench, SigmaMatchesFraction) {
  WorkbenchSpec spec = tiny_spec();
  spec.sigma_fraction = 0.5;
  Workbench wb(spec);
  auto above = wb.importance().above_threshold(wb.sigma_bits());
  double fraction = static_cast<double>(above.size()) /
                    static_cast<double>(wb.grid().block_count());
  // The ball has many exactly-zero-entropy blocks, so the split can only be
  // approximate; it must at least not exceed the block count and not be 0.
  EXPECT_GT(fraction, 0.1);
  EXPECT_LE(fraction, 1.0);
}

TEST(Workbench, FlameDatasetWorksToo) {
  WorkbenchSpec spec = tiny_spec();
  spec.dataset = DatasetId::kLiftedMixFrac;
  Workbench wb(spec);
  RandomPathSpec rp;
  rp.positions = 20;
  RunResult r = wb.run_app_aware(make_random_path(rp));
  EXPECT_EQ(r.steps.size(), 20u);
  EXPECT_GE(r.fast_miss_rate, 0.0);
}

TEST(Workbench, InvalidScaleRejected) {
  WorkbenchSpec spec = tiny_spec();
  spec.scale = 0.0;
  EXPECT_THROW(Workbench{spec}, InvalidArgument);
}

}  // namespace
}  // namespace vizcache
