#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/workbench.hpp"
#include "util/error.hpp"

namespace vizcache {
namespace {

/// Small shared workbench so the suite stays fast; individual tests run
/// fresh pipelines (cold caches) against it.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = 0.08;  // ~82^3
    spec.target_blocks = 256;
    spec.omega = {8, 16, 3, 2.5, 3.5};
    bench_ = std::make_unique<Workbench>(spec);
  }
  static void TearDownTestSuite() { bench_.reset(); }

  static CameraPath path(usize n = 60, double deg = 5.0) {
    RandomPathSpec rp;
    rp.step_min_deg = deg - 1.0;
    rp.step_max_deg = deg + 1.0;
    rp.positions = n;
    return make_random_path(rp);
  }

  static std::unique_ptr<Workbench> bench_;
};

std::unique_ptr<Workbench> PipelineTest::bench_;

TEST_F(PipelineTest, StepResultsConsistent) {
  RunResult r = bench_->run_baseline(PolicyKind::kLru, path());
  ASSERT_EQ(r.steps.size(), 60u);
  SimSeconds io = 0, render = 0, total = 0;
  for (const StepResult& s : r.steps) {
    EXPECT_GT(s.visible_blocks, 0u);
    EXPECT_LE(s.fast_misses, s.visible_blocks);
    EXPECT_GE(s.io_time, 0.0);
    EXPECT_GT(s.render_time, 0.0);
    EXPECT_DOUBLE_EQ(s.total_time, s.io_time + s.render_time);
    io += s.io_time;
    render += s.render_time;
    total += s.total_time;
  }
  EXPECT_NEAR(r.io_time, io, 1e-9);
  EXPECT_NEAR(r.render_time, render, 1e-9);
  EXPECT_NEAR(r.total_time, total, 1e-9);
}

TEST_F(PipelineTest, BaselineHasNoPrefetchOrLookup) {
  RunResult r = bench_->run_baseline(PolicyKind::kFifo, path());
  EXPECT_DOUBLE_EQ(r.prefetch_time, 0.0);
  EXPECT_DOUBLE_EQ(r.lookup_time, 0.0);
  EXPECT_EQ(r.hierarchy.prefetch_requests, 0u);
}

TEST_F(PipelineTest, AppAwarePrefetchesAndOverlaps) {
  RunResult r = bench_->run_app_aware(path());
  EXPECT_GT(r.prefetch_time, 0.0);
  EXPECT_GT(r.lookup_time, 0.0);
  EXPECT_GT(r.hierarchy.prefetch_requests, 0u);
  for (const StepResult& s : r.steps) {
    EXPECT_DOUBLE_EQ(
        s.total_time,
        s.io_time + std::max(s.render_time, s.lookup_time + s.prefetch_time));
  }
}

TEST_F(PipelineTest, TraceMatchesVisibleSets) {
  RunResult r = bench_->run_baseline(PolicyKind::kLru, path());
  usize expected = 0;
  for (const StepResult& s : r.steps) expected += s.visible_blocks;
  EXPECT_EQ(r.trace.size(), expected);
  // Steps are 1-based and non-decreasing.
  EXPECT_EQ(r.trace.accesses().front().step, 1u);
  for (usize i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace.accesses()[i].step, r.trace.accesses()[i - 1].step);
  }
}

TEST_F(PipelineTest, FirstStepAllMisses) {
  // Baselines start cold: every block of step 1 is a fast miss.
  RunResult r = bench_->run_baseline(PolicyKind::kLru, path());
  EXPECT_EQ(r.steps[0].fast_misses, r.steps[0].visible_blocks);
}

TEST_F(PipelineTest, PreloadingCutsFirstStepMisses) {
  // The app-aware run preloads important blocks; the ball's visible set
  // always contains important (interior) blocks, so step 1 must hit some.
  RunResult r = bench_->run_app_aware(path());
  EXPECT_LT(r.steps[0].fast_misses, r.steps[0].visible_blocks);
}

TEST_F(PipelineTest, MissRatesWithinBounds) {
  for (PolicyKind kind : {PolicyKind::kFifo, PolicyKind::kLru}) {
    RunResult r = bench_->run_baseline(kind, path());
    EXPECT_GE(r.fast_miss_rate, 0.0);
    EXPECT_LE(r.fast_miss_rate, 1.0);
    EXPECT_GE(r.total_miss_rate, 0.0);
    EXPECT_LE(r.total_miss_rate, 1.0);
  }
}

TEST_F(PipelineTest, DeterministicRuns) {
  CameraPath p = path();
  RunResult a = bench_->run_app_aware(p);
  RunResult b = bench_->run_app_aware(p);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.fast_miss_rate, b.fast_miss_rate);
  EXPECT_EQ(a.trace.id_sequence(), b.trace.id_sequence());
}

TEST_F(PipelineTest, SameDemandTraceAcrossPolicies) {
  // Demand accesses are the exact visible sets — identical for every mode.
  CameraPath p = path();
  RunResult fifo = bench_->run_baseline(PolicyKind::kFifo, p);
  RunResult lru = bench_->run_baseline(PolicyKind::kLru, p);
  RunResult opt = bench_->run_app_aware(p);
  EXPECT_EQ(fifo.trace.id_sequence(), lru.trace.id_sequence());
  EXPECT_EQ(fifo.trace.id_sequence(), opt.trace.id_sequence());
}

TEST_F(PipelineTest, EmptyPathThrows) {
  EXPECT_THROW(bench_->run_baseline(PolicyKind::kLru, {}), InvalidArgument);
}

TEST_F(PipelineTest, AppAwareRequiresTables) {
  PipelineConfig cfg;
  cfg.app_aware = true;
  MemoryHierarchy h = MemoryHierarchy::paper_testbed(
      1000, 0.5, PolicyKind::kLru, [](BlockId) -> u64 { return 10; });
  EXPECT_THROW(VizPipeline(bench_->grid(), std::move(h), cfg), InvalidArgument);
}

TEST_F(PipelineTest, BeladyIsLowerBoundAmongDemandPolicies) {
  CameraPath p = path(60, 10.0);
  RunResult belady = bench_->run_belady(p);
  for (PolicyKind kind : {PolicyKind::kFifo, PolicyKind::kLru,
                          PolicyKind::kMru, PolicyKind::kClock}) {
    RunResult r = bench_->run_baseline(kind, p);
    EXPECT_LE(belady.fast_miss_rate, r.fast_miss_rate + 1e-9)
        << policy_kind_name(kind);
  }
}

TEST_F(PipelineTest, PrefetchBudgetRespectsFastCapacity) {
  RunResult r = bench_->run_app_aware(path());
  const u64 capacity = 0;  // recomputed below per-step via spec
  (void)capacity;
  // No step may prefetch more bytes than DRAM minus its visible set.
  double dram_fraction =
      bench_->spec().cache_ratio * bench_->spec().cache_ratio;
  auto dram_blocks = static_cast<usize>(
      dram_fraction * static_cast<double>(bench_->grid().block_count()));
  for (const StepResult& s : r.steps) {
    EXPECT_LE(s.prefetched + s.visible_blocks, dram_blocks + s.visible_blocks);
    EXPECT_LE(s.prefetched, dram_blocks);
  }
}

TEST_F(PipelineTest, TimelineShowsPrefetchOverlappingRender) {
  // Algorithm 1 line 22 made visible: the app-aware run's prefetch spans
  // must actually intersect render spans on the simulated clock, while the
  // baseline records a strictly serial fetch->render timeline.
  RunResult opt = bench_->run_app_aware(path());
  EXPECT_FALSE(opt.timeline.events_of(StepEvent::Kind::kLookup).empty());
  EXPECT_FALSE(opt.timeline.events_of(StepEvent::Kind::kPrefetch).empty());
  EXPECT_GT(opt.timeline.overlap_seconds(StepEvent::Kind::kPrefetch,
                                         StepEvent::Kind::kRender),
            0.0);

  RunResult lru = bench_->run_baseline(PolicyKind::kLru, path());
  EXPECT_TRUE(lru.timeline.events_of(StepEvent::Kind::kLookup).empty());
  EXPECT_TRUE(lru.timeline.events_of(StepEvent::Kind::kPrefetch).empty());
  EXPECT_DOUBLE_EQ(lru.timeline.overlap_seconds(StepEvent::Kind::kPrefetch,
                                                StepEvent::Kind::kRender),
                   0.0);
}

TEST_F(PipelineTest, TimelineSpansTheWholeRun) {
  RunResult r = bench_->run_app_aware(path());
  // One fetch and one render span per step; the last span ends exactly at
  // the simulated wall clock the aggregate result reports.
  EXPECT_EQ(r.timeline.events_of(StepEvent::Kind::kRender).size(),
            r.steps.size());
  EXPECT_NEAR(r.timeline.span_end(), r.total_time, 1e-9);
}

TEST_F(PipelineTest, MetricsSnapshotHasExpectedKeys) {
  RunResult r = bench_->run_app_aware(path());
  const MetricsSnapshot& m = r.metrics;
  // Cache layer (per-level), hierarchy demand/prefetch split, pipeline
  // aggregates — the same keys the CI snapshot check greps for.
  EXPECT_TRUE(m.has_counter("cache.dram.hits"));
  EXPECT_TRUE(m.has_counter("cache.ssd.misses"));
  EXPECT_TRUE(m.has_counter("hierarchy.demand.backing_reads"));
  EXPECT_TRUE(m.has_counter("hierarchy.prefetch.backing_reads"));
  EXPECT_TRUE(m.has_gauge("pipeline.total_seconds"));
  EXPECT_TRUE(m.has_histogram("pipeline.step.total_seconds"));

  // The snapshot mirrors the stats structs, which stay the source of truth.
  EXPECT_EQ(m.counter("hierarchy.demand.requests"),
            r.hierarchy.demand_requests);
  EXPECT_EQ(m.counter("hierarchy.prefetch.requests"),
            r.hierarchy.prefetch_requests);
  EXPECT_EQ(m.counter("hierarchy.demand.backing_reads"),
            r.hierarchy.demand_backing_reads);
  EXPECT_EQ(m.counter("pipeline.steps"), r.steps.size());
  EXPECT_NEAR(m.gauge("pipeline.total_seconds"), r.total_time, 1e-9);
  EXPECT_EQ(m.histogram("pipeline.step.total_seconds").count, r.steps.size());
}

TEST_F(PipelineTest, MetricsResetBetweenRuns) {
  // Two runs on one pipeline must not double-count: run() resets the
  // registry, so each RunResult carries that run's totals only.
  CameraPath p = path();
  RunResult a = bench_->run_app_aware(p);
  RunResult b = bench_->run_app_aware(p);
  EXPECT_EQ(a.metrics.counter("pipeline.steps"),
            b.metrics.counter("pipeline.steps"));
  EXPECT_EQ(a.metrics.counter("hierarchy.demand.requests"),
            b.metrics.counter("hierarchy.demand.requests"));
}

}  // namespace
}  // namespace vizcache
