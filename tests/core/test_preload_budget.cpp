// Preload-budget semantics shared by BOTH pipelines (Algorithm 1 line 7).
// Regression: VizPipeline used to STOP preloading at the first
// over-budget block (`break`) while ParallelPipeline SKIPPED it and kept
// going (`continue`), so the two simulators preloaded different sets from
// identical inputs. The unified semantics is skip-and-continue: a block too
// large for the remaining fast-memory budget must not shadow a smaller,
// less-important block that still fits.

#include <gtest/gtest.h>

#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"

namespace vizcache {
namespace {

// Heterogeneous block sizes via a partial edge block: volume 20x4x4 split
// into 6x4x4 bricks -> blocks 0..2 are 384 bytes, block 3 is 128 bytes
// (dataset 1280 bytes). With cache_ratio 0.5 the DRAM level holds 320
// bytes: block 0 (the most important) cannot fit, block 3 can.
constexpr double kSigma = 2.0;

BlockGrid make_grid() { return BlockGrid({20, 4, 4}, {6, 4, 4}); }

ImportanceTable make_importance() {
  // Ranking: 0 (10 bits), 3 (9 bits), then 1 and 2 below sigma.
  return ImportanceTable::from_scores({10.0, 1.0, 1.0, 9.0});
}

VisibilityTable make_table(const BlockGrid& grid) {
  VisibilityTableSpec spec;
  spec.omega = {4, 8, 2, 5.0, 7.0};
  spec.vicinal_samples = 2;
  spec.view_angle_deg = 60.0;
  return VisibilityTable::build(grid, spec);
}

PipelineConfig make_config() {
  PipelineConfig cfg;
  cfg.app_aware = true;
  cfg.sigma_bits = kSigma;
  return cfg;
}

// Wide-angle camera far out on +z: all four blocks are visible, so step 1's
// fast-miss count directly reveals which blocks the preload staged.
CameraPath make_path() { return {Camera({0.0, 0.0, 6.0}, 60.0)}; }

TEST(PreloadBudget, SequentialSkipsOversizeBlockAndKeepsFilling) {
  BlockGrid grid = make_grid();
  ImportanceTable importance = make_importance();
  VisibilityTable table = make_table(grid);
  MemoryHierarchy h = MemoryHierarchy::paper_testbed(
      1280, 0.5, PolicyKind::kLru,
      [g = &grid](BlockId id) { return g->block_bytes(id); });
  ASSERT_EQ(h.cache(0).capacity_bytes(), 320u);

  VizPipeline pipe(grid, std::move(h), make_config(), &table, &importance);
  RunResult r = pipe.run(make_path());
  ASSERT_EQ(r.steps[0].visible_blocks, 4u);
  // Block 0 (384 B) overflows the 320 B budget and is skipped; block 3
  // (128 B) is preloaded. Under the old `break` nothing was preloaded and
  // all four visible blocks missed.
  EXPECT_EQ(r.steps[0].fast_misses, 3u);
}

TEST(PreloadBudget, ParallelAgreesWithSequential) {
  BlockGrid grid = make_grid();
  ImportanceTable importance = make_importance();
  VisibilityTable table = make_table(grid);

  // One worker: the parallel pipeline's preload must behave exactly like
  // the sequential one (same budget, same skip-and-continue semantics).
  Partition partition = partition_round_robin(grid, 1);
  ParallelPipeline par(grid, std::move(partition), make_config(), 0.5, &table,
                       &importance);
  ASSERT_EQ(par.worker_hierarchy(0).cache(0).capacity_bytes(), 320u);
  ParallelRunResult pr = par.run(make_path());

  MemoryHierarchy h = MemoryHierarchy::paper_testbed(
      1280, 0.5, PolicyKind::kLru,
      [g = &grid](BlockId id) { return g->block_bytes(id); });
  VizPipeline pipe(grid, std::move(h), make_config(), &table, &importance);
  RunResult sr = pipe.run(make_path());

  ASSERT_EQ(pr.steps[0].visible_blocks, sr.steps[0].visible_blocks);
  EXPECT_EQ(pr.steps[0].fast_misses, sr.steps[0].fast_misses);
  EXPECT_EQ(pr.steps[0].fast_misses, 3u);
}

}  // namespace
}  // namespace vizcache
