#include "core/temporal.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.hpp"
#include "volume/datasets.hpp"

namespace vizcache {
namespace {

/// Shared fixture: a small time-varying climate stand-in with per-timestep
/// importance tables and a visibility table.
class TemporalTest : public ::testing::Test {
 protected:
  static constexpr usize kTimesteps = 3;

  static void SetUpTestSuite() {
    volume_ = std::make_unique<SyntheticVolume>(
        make_climate_volume({32, 28, 12}, 4, kTimesteps));
    grid_ = std::make_unique<BlockGrid>(
        BlockGrid::with_target_block_count(volume_->desc.dims, 128));
    store_ = std::make_unique<SyntheticBlockStore>(*volume_,
                                                   grid_->block_dims());

    importance_ = std::make_unique<std::vector<ImportanceTable>>();
    for (usize t = 0; t < kTimesteps; ++t) {
      importance_->push_back(ImportanceTable::build(*store_, 64, 1, t));
    }

    VisibilityTableSpec ts;
    ts.omega = {6, 12, 2, 2.5, 3.5};
    ts.vicinal_samples = 6;
    ts.view_angle_deg = 15.0;
    ts.radius_model = {15.0, 0.25, 1e-3};
    table_ = std::make_unique<VisibilityTable>(
        VisibilityTable::build(*grid_, ts));
  }

  static void TearDownTestSuite() {
    table_.reset();
    importance_.reset();
    store_.reset();
    grid_.reset();
    volume_.reset();
  }

  static TemporalPipeline make_pipeline(TemporalConfig cfg,
                                        PlaybackSpec playback) {
    return TemporalPipeline(
        *grid_, make_temporal_hierarchy(*grid_, playback.timesteps, 0.5,
                                        cfg.policy),
        cfg, playback, table_.get(), importance_.get());
  }

  static CameraPath path(usize n = 30) {
    RandomPathSpec rp;
    rp.step_min_deg = 3.0;
    rp.step_max_deg = 5.0;
    rp.positions = n;
    return make_random_path(rp);
  }

  static std::unique_ptr<SyntheticVolume> volume_;
  static std::unique_ptr<BlockGrid> grid_;
  static std::unique_ptr<SyntheticBlockStore> store_;
  static std::unique_ptr<std::vector<ImportanceTable>> importance_;
  static std::unique_ptr<VisibilityTable> table_;
};

std::unique_ptr<SyntheticVolume> TemporalTest::volume_;
std::unique_ptr<BlockGrid> TemporalTest::grid_;
std::unique_ptr<SyntheticBlockStore> TemporalTest::store_;
std::unique_ptr<std::vector<ImportanceTable>> TemporalTest::importance_;
std::unique_ptr<VisibilityTable> TemporalTest::table_;

TEST(TimeBlockKey, PackUnpackRoundTrip) {
  const usize nblocks = 100;
  for (BlockId id : {0u, 1u, 57u, 99u}) {
    for (usize t : {0u, 1u, 7u}) {
      BlockId key = TimeBlockKey::pack(id, t, nblocks);
      EXPECT_EQ(TimeBlockKey::spatial(key, nblocks), id);
      EXPECT_EQ(TimeBlockKey::timestep(key, nblocks), t);
    }
  }
}

TEST(TimeBlockKey, DistinctAcrossTimesteps) {
  EXPECT_NE(TimeBlockKey::pack(5, 0, 100), TimeBlockKey::pack(5, 1, 100));
}

TEST_F(TemporalTest, TimestepScheduleClampAndLoop) {
  TemporalConfig cfg;
  PlaybackSpec pb{3, 4, false};
  TemporalPipeline p = make_pipeline(cfg, pb);
  EXPECT_EQ(p.timestep_at(0), 0u);
  EXPECT_EQ(p.timestep_at(3), 0u);
  EXPECT_EQ(p.timestep_at(4), 1u);
  EXPECT_EQ(p.timestep_at(11), 2u);
  EXPECT_EQ(p.timestep_at(100), 2u);  // clamped

  PlaybackSpec looped{3, 4, true};
  TemporalPipeline lp = make_pipeline(cfg, looped);
  EXPECT_EQ(lp.timestep_at(12), 0u);  // wrapped
  EXPECT_EQ(lp.timestep_at(16), 1u);
}

TEST_F(TemporalTest, TimeAdvanceCausesRefetch) {
  // With a static camera, a baseline must re-miss every block when the
  // timestep flips (same spatial block, new data).
  TemporalConfig cfg;
  cfg.app_aware = false;
  PlaybackSpec pb{kTimesteps, 10, false};
  TemporalPipeline p = make_pipeline(cfg, pb);

  CameraPath still(30, Camera({3, 0, 0}, 10.0));
  RunResult r = p.run(still);
  // Steps 1..10 are t=0; step 11 flips to t=1: all visible blocks miss.
  EXPECT_EQ(r.steps[10].fast_misses, r.steps[10].visible_blocks);
  EXPECT_EQ(r.steps[20].fast_misses, r.steps[20].visible_blocks);
  // Within a timestep, a still camera has zero misses after the first step.
  EXPECT_EQ(r.steps[5].fast_misses, 0u);
}

TEST_F(TemporalTest, TemporalPrefetchHidesTimestepFlips) {
  CameraPath p = path(30);
  PlaybackSpec pb{kTimesteps, 10, false};

  TemporalConfig without;
  without.app_aware = true;
  without.temporal_prefetch = false;
  RunResult r_without = make_pipeline(without, pb).run(p);

  TemporalConfig with = without;
  with.temporal_prefetch = true;
  RunResult r_with = make_pipeline(with, pb).run(p);

  // Prefetching next-timestep blocks during rendering must cut the misses
  // at the flip steps (indices 10 and 20).
  usize flips_without =
      r_without.steps[10].fast_misses + r_without.steps[20].fast_misses;
  usize flips_with =
      r_with.steps[10].fast_misses + r_with.steps[20].fast_misses;
  EXPECT_LT(flips_with, flips_without);
  EXPECT_LE(r_with.fast_miss_rate, r_without.fast_miss_rate + 1e-9);
}

TEST_F(TemporalTest, AppAwareBeatsBaselineOnPlayback) {
  CameraPath p = path(30);
  PlaybackSpec pb{kTimesteps, 10, false};

  TemporalConfig base;
  base.app_aware = false;
  base.policy = PolicyKind::kLru;
  RunResult lru = make_pipeline(base, pb).run(p);

  TemporalConfig aware;
  aware.app_aware = true;
  RunResult opt = make_pipeline(aware, pb).run(p);

  // Prefetching cannot lose on demand I/O or misses. (Whether *total* time
  // wins depends on render time being long enough to hide the prefetch —
  // the realistic-scale bench_ablation_temporal demonstrates that case.)
  EXPECT_LT(opt.io_time, lru.io_time);
  EXPECT_LE(opt.fast_miss_rate, lru.fast_miss_rate + 1e-9);
}

TEST_F(TemporalTest, DeterministicRuns) {
  CameraPath p = path(20);
  PlaybackSpec pb{kTimesteps, 5, false};
  TemporalConfig cfg;
  cfg.app_aware = true;
  RunResult a = make_pipeline(cfg, pb).run(p);
  RunResult b = make_pipeline(cfg, pb).run(p);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.trace.id_sequence(), b.trace.id_sequence());
}

TEST_F(TemporalTest, TraceKeysEncodeTimesteps) {
  TemporalConfig cfg;
  PlaybackSpec pb{kTimesteps, 10, false};
  TemporalPipeline p = make_pipeline(cfg, pb);
  RunResult r = p.run(path(30));
  bool saw_t1 = false;
  for (const Access& a : r.trace.accesses()) {
    usize t = TimeBlockKey::timestep(a.id, grid_->block_count());
    EXPECT_LT(t, kTimesteps);
    if (t == 1) saw_t1 = true;
  }
  EXPECT_TRUE(saw_t1);
}

TEST_F(TemporalTest, InvalidConfigsThrow) {
  TemporalConfig cfg;
  cfg.app_aware = true;
  PlaybackSpec pb{kTimesteps, 10, false};
  // Missing importance tables.
  EXPECT_THROW(TemporalPipeline(*grid_,
                                make_temporal_hierarchy(*grid_, kTimesteps,
                                                        0.5, cfg.policy),
                                cfg, pb, table_.get(), nullptr),
               InvalidArgument);
  // Wrong importance table count.
  std::vector<ImportanceTable> wrong;
  wrong.push_back((*importance_)[0]);
  EXPECT_THROW(TemporalPipeline(*grid_,
                                make_temporal_hierarchy(*grid_, kTimesteps,
                                                        0.5, cfg.policy),
                                cfg, pb, table_.get(), &wrong),
               InvalidArgument);
  // Zero timesteps.
  TemporalConfig plain;
  EXPECT_THROW(TemporalPipeline(*grid_,
                                make_temporal_hierarchy(*grid_, 1, 0.5,
                                                        plain.policy),
                                plain, PlaybackSpec{0, 1, false}),
               InvalidArgument);
}

}  // namespace
}  // namespace vizcache
