#include "core/parallel_pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/workbench.hpp"
#include "util/error.hpp"

namespace vizcache {
namespace {

/// Shared workbench supplying grid/tables; parallel pipelines are built per
/// test on top of it.
class ParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchSpec spec;
    spec.dataset = DatasetId::kBall3d;
    spec.scale = 0.08;
    spec.target_blocks = 256;
    spec.omega = {8, 16, 3, 2.5, 3.5};
    bench_ = std::make_unique<Workbench>(spec);
  }
  static void TearDownTestSuite() { bench_.reset(); }

  static ParallelPipeline make(usize workers, PartitionStrategy strategy,
                               bool app_aware) {
    PipelineConfig cfg;
    cfg.app_aware = app_aware;
    cfg.sigma_bits = bench_->sigma_bits();
    Partition part = make_partition(strategy, bench_->grid(),
                                    bench_->importance(), workers);
    return ParallelPipeline(bench_->grid(), std::move(part), cfg, 0.5,
                            app_aware ? &bench_->table() : nullptr,
                            app_aware ? &bench_->importance() : nullptr);
  }

  static CameraPath path(usize n = 50) {
    RandomPathSpec rp;
    rp.step_min_deg = 4.0;
    rp.step_max_deg = 6.0;
    rp.positions = n;
    return make_random_path(rp);
  }

  static std::unique_ptr<Workbench> bench_;
};

std::unique_ptr<Workbench> ParallelTest::bench_;

TEST_F(ParallelTest, SingleWorkerMatchesSequentialShape) {
  ParallelPipeline p = make(1, PartitionStrategy::kRoundRobin, false);
  ParallelRunResult r = p.run(path());
  ASSERT_EQ(r.workers.size(), 1u);
  EXPECT_NEAR(r.fetch_speedup, 1.0, 1e-9);
  // One worker does all the demand fetching.
  usize visible_total = 0;
  for (const StepResult& s : r.steps) visible_total += s.visible_blocks;
  EXPECT_EQ(r.workers[0].blocks_fetched, visible_total);
}

TEST_F(ParallelTest, MoreWorkersReduceMakespan) {
  CameraPath p = path();
  ParallelRunResult one = make(1, PartitionStrategy::kImportance, false).run(p);
  ParallelRunResult four = make(4, PartitionStrategy::kImportance, false).run(p);
  EXPECT_LT(four.io_time, one.io_time);
  EXPECT_GT(four.fetch_speedup, 1.5);
}

TEST_F(ParallelTest, SpeedupBoundedByWorkerCount) {
  CameraPath p = path();
  for (usize workers : {2u, 4u, 8u}) {
    ParallelRunResult r =
        make(workers, PartitionStrategy::kImportance, false).run(p);
    EXPECT_LE(r.fetch_speedup, static_cast<double>(workers) + 1e-9);
    EXPECT_GE(r.fetch_speedup, 1.0);
  }
}

TEST_F(ParallelTest, ImportancePartitionBeatsSlabsOnMakespan) {
  // The view cone concentrates on a region; slab partitions leave most
  // workers idle while one does the fetching. Importance-balanced spreads
  // the interesting blocks.
  CameraPath p = path();
  ParallelRunResult slabs =
      make(4, PartitionStrategy::kSpatialSlabs, false).run(p);
  ParallelRunResult balanced =
      make(4, PartitionStrategy::kImportance, false).run(p);
  EXPECT_LE(balanced.io_time, slabs.io_time * 1.05);
  EXPECT_GE(balanced.fetch_speedup, slabs.fetch_speedup * 0.95);
}

TEST_F(ParallelTest, AppAwareParallelRunWorks) {
  ParallelPipeline p = make(4, PartitionStrategy::kImportance, true);
  ParallelRunResult r = p.run(path());
  EXPECT_GT(r.prefetch_time, 0.0);
  usize prefetched = 0;
  for (const StepResult& s : r.steps) prefetched += s.prefetched;
  EXPECT_GT(prefetched, 0u);
  // Overlap accounting: total <= io + render + prefetch + lookup sums.
  EXPECT_LE(r.total_time,
            r.io_time + r.render_time + r.prefetch_time + 1.0);
}

TEST_F(ParallelTest, DeterministicRuns) {
  CameraPath p = path(30);
  ParallelRunResult a = make(4, PartitionStrategy::kImportance, true).run(p);
  ParallelRunResult b = make(4, PartitionStrategy::kImportance, true).run(p);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.fast_miss_rate, b.fast_miss_rate);
}

TEST_F(ParallelTest, WorkerStatsAccountAllFetches) {
  ParallelRunResult r = make(4, PartitionStrategy::kRoundRobin, false).run(path());
  usize visible_total = 0;
  for (const StepResult& s : r.steps) visible_total += s.visible_blocks;
  u64 fetched = 0;
  for (const WorkerStats& w : r.workers) fetched += w.blocks_fetched;
  EXPECT_EQ(fetched, visible_total);
}

TEST_F(ParallelTest, MismatchedPartitionThrows) {
  PipelineConfig cfg;
  Partition tiny({0, 0, 1}, 2);  // 3 blocks, grid has 256+
  EXPECT_THROW(ParallelPipeline(bench_->grid(), std::move(tiny), cfg, 0.5),
               InvalidArgument);
}

TEST_F(ParallelTest, TimelineHasPerWorkerLanesAndOverlap) {
  ParallelPipeline p = make(4, PartitionStrategy::kImportance, true);
  ParallelRunResult r = p.run(path());
  // Every worker renders every step in its own lane of the timeline.
  auto renders = r.timeline.events_of(StepEvent::Kind::kRender);
  EXPECT_EQ(renders.size(), r.steps.size() * 4u);
  bool saw_last_worker = false;
  for (const StepEvent& e : renders) saw_last_worker |= (e.worker == 3);
  EXPECT_TRUE(saw_last_worker);
  // App-aware workers prefetch while rendering (same-worker overlap only).
  EXPECT_GT(r.timeline.overlap_seconds(StepEvent::Kind::kPrefetch,
                                       StepEvent::Kind::kRender),
            0.0);
  // Shared registry: the metric counters aggregate across all workers.
  EXPECT_EQ(r.metrics.counter("pipeline.workers"), 4u);
  EXPECT_EQ(r.metrics.counter("pipeline.steps"), r.steps.size());
  EXPECT_TRUE(r.metrics.has_counter("hierarchy.prefetch.requests"));
  EXPECT_GT(r.metrics.counter("hierarchy.demand.requests"), 0u);
}

TEST_F(ParallelTest, AppAwareNeedsTables) {
  PipelineConfig cfg;
  cfg.app_aware = true;
  Partition part = partition_round_robin(bench_->grid(), 2);
  EXPECT_THROW(ParallelPipeline(bench_->grid(), std::move(part), cfg, 0.5),
               InvalidArgument);
}

}  // namespace
}  // namespace vizcache
