#include "core/query.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/workbench.hpp"
#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

struct QueryWorld {
  SyntheticBlockStore store;
  BlockBoundsIndex bounds;
  BlockMetadataTable metadata;

  QueryWorld()
      : store(make_flame_volume("f", {32, 32, 32}), {8, 8, 8}),
        bounds(store.grid()),
        metadata(BlockMetadataTable::build(store)) {}
};

TEST(RegionQuery, EmptyMatchesEverything) {
  QueryWorld w;
  RegionQuery q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.candidate_blocks(w.metadata).size(),
            w.store.grid().block_count());
}

TEST(RegionQuery, IsoSurfaceBand) {
  QueryWorld w;
  RegionQuery q = RegionQuery::iso_surface(0, 0.5f, 0.05f);
  ASSERT_EQ(q.clauses().size(), 1u);
  EXPECT_FLOAT_EQ(q.clauses()[0].lo, 0.45f);
  EXPECT_FLOAT_EQ(q.clauses()[0].hi, 0.55f);
  auto blocks = q.candidate_blocks(w.metadata);
  EXPECT_GT(blocks.size(), 0u);
  EXPECT_LT(blocks.size(), w.store.grid().block_count());
}

TEST(RegionQuery, ConjunctionNarrows) {
  QueryWorld w;
  RegionQuery broad = RegionQuery::range(0, 0.2f, 1.0f);
  RegionQuery narrow = RegionQuery::range(0, 0.2f, 1.0f);
  narrow.and_range(0, 0.8f, 1.0f);
  auto b = broad.candidate_blocks(w.metadata);
  auto n = narrow.candidate_blocks(w.metadata);
  EXPECT_LE(n.size(), b.size());
  // Conjunction result is a subset.
  EXPECT_TRUE(std::includes(b.begin(), b.end(), n.begin(), n.end()));
}

TEST(RegionQuery, MatchesActualContent) {
  // Soundness through the query layer: blocks that truly contain matching
  // voxels always pass.
  QueryWorld w;
  RegionQuery q = RegionQuery::range(0, 0.9f, 1.0f);
  for (BlockId id = 0; id < w.store.grid().block_count(); ++id) {
    auto payload = w.store.read_block(id, 0, 0);
    bool contains = std::any_of(payload.begin(), payload.end(),
                                [](float v) { return v >= 0.9f && v <= 1.0f; });
    if (contains) {
      EXPECT_TRUE(q.may_match(w.metadata, id));
    }
  }
}

TEST(RegionQuery, ToStringReadable) {
  RegionQuery q = RegionQuery::range(1, 0.25f, 0.5f);
  q.and_range(2, 0.0f, 0.1f);
  std::string s = q.to_string();
  EXPECT_NE(s.find("v1"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_EQ(RegionQuery().to_string(), "match-all");
}

TEST(RegionQuery, InvalidRangesThrow) {
  EXPECT_THROW(RegionQuery::range(0, 0.6f, 0.4f), InvalidArgument);
  EXPECT_THROW(RegionQuery::iso_surface(0, 0.5f, -0.1f), InvalidArgument);
  RegionQuery q;
  EXPECT_THROW(q.and_range(0, 1.0f, 0.0f), InvalidArgument);
}

TEST(QueryVisibleBlocks, IntersectionOfViewAndQuery) {
  QueryWorld w;
  Camera cam({3, 0, 0}, 20.0);
  RegionQuery q = RegionQuery::range(0, 0.8f, 1.0f);
  auto view_only = w.bounds.visible_blocks(cam);
  auto query_only = q.candidate_blocks(w.metadata);
  auto both = query_visible_blocks(cam, w.bounds, w.metadata, q);
  EXPECT_TRUE(std::includes(view_only.begin(), view_only.end(), both.begin(),
                            both.end()));
  EXPECT_TRUE(std::includes(query_only.begin(), query_only.end(), both.begin(),
                            both.end()));
  // And it is exactly the intersection.
  std::vector<BlockId> expected;
  std::set_intersection(view_only.begin(), view_only.end(), query_only.begin(),
                        query_only.end(), std::back_inserter(expected));
  EXPECT_EQ(both, expected);
}

TEST(QuerySchedule, DefaultIsMatchAll) {
  QuerySchedule sched;
  EXPECT_TRUE(sched.active_at(0).empty());
  EXPECT_TRUE(sched.active_at(100).empty());
}

TEST(QuerySchedule, ChangesActivateAtTheirStep) {
  QuerySchedule sched({{10, RegionQuery::range(0, 0.5f, 1.0f)},
                       {20, RegionQuery::range(0, 0.0f, 0.5f)}});
  EXPECT_TRUE(sched.active_at(9).empty());
  EXPECT_FLOAT_EQ(sched.active_at(10).clauses()[0].lo, 0.5f);
  EXPECT_FLOAT_EQ(sched.active_at(19).clauses()[0].lo, 0.5f);
  EXPECT_FLOAT_EQ(sched.active_at(20).clauses()[0].hi, 0.5f);
  EXPECT_FLOAT_EQ(sched.active_at(999).clauses()[0].hi, 0.5f);
}

TEST(QuerySchedule, UnsortedInputSorted) {
  QuerySchedule sched({{20, RegionQuery::range(0, 0.0f, 0.1f)},
                       {5, RegionQuery::range(0, 0.9f, 1.0f)}});
  EXPECT_FLOAT_EQ(sched.active_at(6).clauses()[0].lo, 0.9f);
}

TEST(QueryPipeline, QueryShrinksWorkingSet) {
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kLiftedMixFrac;
  spec.scale = 0.08;
  spec.target_blocks = 256;
  spec.omega = {6, 12, 2, 2.5, 3.5};
  Workbench wb(spec);

  RandomPathSpec rp;
  rp.positions = 40;
  CameraPath path = make_random_path(rp);

  QuerySchedule iso({{0, RegionQuery::iso_surface(0, 0.5f, 0.05f)}});
  RunResult full = wb.run_baseline(PolicyKind::kLru, path);
  RunResult narrowed = wb.run_baseline(PolicyKind::kLru, path, &iso);
  usize full_blocks = 0, narrowed_blocks = 0;
  for (const auto& s : full.steps) full_blocks += s.visible_blocks;
  for (const auto& s : narrowed.steps) narrowed_blocks += s.visible_blocks;
  EXPECT_LT(narrowed_blocks, full_blocks);
  EXPECT_LE(narrowed.io_time, full.io_time + 1e-9);
}

TEST(QueryPipeline, MidPathQueryChangeShiftsAccesses) {
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kLiftedMixFrac;
  spec.scale = 0.08;
  spec.target_blocks = 256;
  spec.omega = {6, 12, 2, 2.5, 3.5};
  Workbench wb(spec);

  RandomPathSpec rp;
  rp.positions = 40;
  rp.step_min_deg = 1.0;
  rp.step_max_deg = 2.0;
  CameraPath path = make_random_path(rp);

  // Transfer-function retune at step 20: ambient band -> flame core band.
  QuerySchedule sched({{0, RegionQuery::range(0, 0.0f, 0.2f)},
                       {20, RegionQuery::range(0, 0.8f, 1.0f)}});
  RunResult r = wb.run_app_aware(path, &sched);
  ASSERT_EQ(r.steps.size(), 40u);
  // The change must actually alter the demand pattern: compare average
  // working-set between the two phases (the flame core is compact).
  double phase1 = 0, phase2 = 0;
  for (usize i = 0; i < 20; ++i) phase1 += static_cast<double>(r.steps[i].visible_blocks);
  for (usize i = 20; i < 40; ++i) phase2 += static_cast<double>(r.steps[i].visible_blocks);
  EXPECT_NE(phase1, phase2);
}

TEST(QueryPipeline, ScheduleWithoutMetadataThrows) {
  WorkbenchSpec spec;
  spec.dataset = DatasetId::kBall3d;
  spec.scale = 0.06;
  spec.target_blocks = 64;
  spec.omega = {4, 8, 2, 2.5, 3.5};
  Workbench wb(spec);

  PipelineConfig cfg;
  MemoryHierarchy h = MemoryHierarchy::paper_testbed(
      wb.dataset_bytes(), 0.5, PolicyKind::kLru,
      [g = &wb.grid()](BlockId id) { return g->block_bytes(id); });
  VizPipeline pipeline(wb.grid(), std::move(h), cfg);  // no metadata
  QuerySchedule sched({{0, RegionQuery::range(0, 0.0f, 1.0f)}});
  RandomPathSpec rp;
  rp.positions = 5;
  EXPECT_THROW(pipeline.run(make_random_path(rp), &sched), InvalidArgument);
}

}  // namespace
}  // namespace vizcache
