#include <gtest/gtest.h>

#include <set>

#include "core/importance.hpp"
#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

SyntheticBlockStore flame_store() {
  return SyntheticBlockStore(make_flame_volume("f", {48, 48, 48}),
                             {12, 12, 12});
}

TEST(GradientImportance, AmbientBlocksScoreZero) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build_gradient(store);
  const BlockGrid& grid = store.grid();
  BlockId ambient = grid.id_of({3, 0, 3});
  EXPECT_NEAR(t.entropy(ambient), 0.0, 1e-3);
}

TEST(GradientImportance, SheetBlocksScoreHigh) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build_gradient(store);
  const BlockGrid& grid = store.grid();
  BlockId sheet = grid.id_of({1, 2, 1});
  BlockId ambient = grid.id_of({3, 0, 3});
  EXPECT_GT(t.entropy(sheet), t.entropy(ambient) + 0.01);
}

TEST(GradientImportance, AgreesWithEntropyOnStructure) {
  // Both metrics must broadly rank the same blocks on a structured field:
  // the top quarter by entropy and by gradient overlap substantially.
  SyntheticBlockStore store = flame_store();
  ImportanceTable entropy = ImportanceTable::build(store, 64);
  ImportanceTable gradient = ImportanceTable::build_gradient(store);
  usize k = store.grid().block_count() / 4;
  auto top_e = entropy.top_k(k);
  auto top_g = gradient.top_k(k);
  std::set<BlockId> set_e(top_e.begin(), top_e.end());
  usize overlap = 0;
  for (BlockId id : top_g) {
    if (set_e.count(id)) ++overlap;
  }
  EXPECT_GT(static_cast<double>(overlap) / static_cast<double>(k), 0.5);
}

TEST(GradientImportance, ConstantFieldScoresZeroEverywhere) {
  Field3D constant({16, 16, 16}, 3.0f);
  MemoryBlockStore store(constant, {8, 8, 8});
  ImportanceTable t = ImportanceTable::build_gradient(store);
  for (BlockId id = 0; id < t.block_count(); ++id) {
    EXPECT_DOUBLE_EQ(t.entropy(id), 0.0);
  }
}

TEST(RandomImportance, DeterministicAndComplete) {
  ImportanceTable a = ImportanceTable::build_random(100, 7);
  ImportanceTable b = ImportanceTable::build_random(100, 7);
  EXPECT_EQ(a.ranked(), b.ranked());
  EXPECT_EQ(a.block_count(), 100u);
  for (BlockId id = 0; id < 100; ++id) {
    EXPECT_GT(a.entropy(id), 0.0);
    EXPECT_LT(a.entropy(id), 1.0);
  }
}

TEST(RandomImportance, SeedsChangeRanking) {
  ImportanceTable a = ImportanceTable::build_random(100, 1);
  ImportanceTable b = ImportanceTable::build_random(100, 2);
  EXPECT_NE(a.ranked(), b.ranked());
}

TEST(RandomImportance, EmptyGridThrows) {
  EXPECT_THROW(ImportanceTable::build_random(0), InvalidArgument);
}

TEST(GradientImportance, WorksThroughAllTableOperations) {
  SyntheticBlockStore store = flame_store();
  ImportanceTable t = ImportanceTable::build_gradient(store);
  EXPECT_EQ(t.ranked().size(), t.block_count());
  double sigma = t.threshold_for_fraction(0.3);
  auto above = t.above_threshold(sigma);
  EXPECT_GT(above.size(), 0u);
  EXPECT_LT(above.size(), t.block_count());
}

}  // namespace
}  // namespace vizcache
