#include "core/streamline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "volume/generators.hpp"

namespace vizcache {
namespace {

VectorSampler uniform_flow(const Vec3& v) {
  return [v](const Vec3&) -> std::optional<Vec3> { return v; };
}

/// Rigid rotation around the z axis (angular velocity 1).
VectorSampler vortex_flow() {
  return [](const Vec3& p) -> std::optional<Vec3> {
    return Vec3{-p.y, p.x, 0.0};
  };
}

TEST(Streamline, UniformFlowIsStraight) {
  StreamlineSpec spec;
  spec.step = 0.05;
  Streamline line =
      trace_streamline({-0.9, 0.0, 0.0}, uniform_flow({1, 0, 0}), spec);
  EXPECT_TRUE(line.left_volume);
  EXPECT_FALSE(line.stagnated);
  // Every point stays on the x axis and x increases monotonically.
  for (usize i = 1; i < line.points.size(); ++i) {
    EXPECT_NEAR(line.points[i].y, 0.0, 1e-12);
    EXPECT_NEAR(line.points[i].z, 0.0, 1e-12);
    EXPECT_GT(line.points[i].x, line.points[i - 1].x);
  }
  // It must actually cross most of the volume: ~1.9 / 0.05 steps.
  EXPECT_GT(line.points.size(), 30u);
}

TEST(Streamline, Rk4PreservesVortexRadius) {
  StreamlineSpec spec;
  spec.step = 0.02;
  spec.max_steps = 400;
  Vec3 seed{0.5, 0.0, 0.0};
  Streamline line = trace_streamline(seed, vortex_flow(), spec);
  EXPECT_FALSE(line.left_volume);
  // RK4 on a circular field keeps the radius to high accuracy.
  for (const Vec3& p : line.points) {
    EXPECT_NEAR(std::hypot(p.x, p.y), 0.5, 1e-4);
  }
  // 400 steps of 0.02 rad = 8 rad: more than one full revolution.
  EXPECT_EQ(line.points.size(), 401u);
}

TEST(Streamline, StagnantFlowStops) {
  StreamlineSpec spec;
  Streamline line =
      trace_streamline({0.1, 0.1, 0.1}, uniform_flow({0, 0, 0}), spec);
  EXPECT_TRUE(line.stagnated);
  EXPECT_EQ(line.points.size(), 1u);
}

TEST(Streamline, SeedOutsideVolume) {
  StreamlineSpec spec;
  Streamline line =
      trace_streamline({2.0, 0.0, 0.0}, uniform_flow({1, 0, 0}), spec);
  EXPECT_TRUE(line.left_volume);
  EXPECT_EQ(line.points.size(), 1u);
}

TEST(Streamline, MaxStepsBounds) {
  StreamlineSpec spec;
  spec.max_steps = 10;
  Streamline line = trace_streamline({0.5, 0, 0}, vortex_flow(), spec);
  EXPECT_LE(line.points.size(), 11u);
}

TEST(Streamline, InvalidSpecThrows) {
  StreamlineSpec spec;
  spec.step = 0.0;
  EXPECT_THROW(trace_streamline({0, 0, 0}, vortex_flow(), spec),
               InvalidArgument);
}

TEST(StreamlineAccesses, CollapsesConsecutiveDuplicates) {
  BlockGrid grid({32, 32, 32}, {8, 8, 8});
  StreamlineSpec spec;
  spec.step = 0.01;  // many points per block
  Streamline line =
      trace_streamline({-0.9, 0.01, 0.01}, uniform_flow({1, 0, 0}), spec);
  auto accesses = streamline_block_accesses(line, grid);
  // Straight line along x at fixed y,z: exactly the 4 blocks of that row.
  EXPECT_EQ(accesses.size(), 4u);
  for (usize i = 1; i < accesses.size(); ++i) {
    EXPECT_NE(accesses[i], accesses[i - 1]);
  }
}

TEST(StreamlineAccesses, RevisitsAppearAgain) {
  // A circular orbit re-enters earlier blocks: accesses may repeat
  // non-consecutively (that is the cache-relevant pattern).
  BlockGrid grid({32, 32, 32}, {8, 8, 8});
  StreamlineSpec spec;
  spec.step = 0.02;
  spec.max_steps = 700;  // > 2 revolutions at r=0.5
  Streamline line = trace_streamline({0.5, 0, 0}, vortex_flow(), spec);
  auto accesses = streamline_block_accesses(line, grid);
  std::unordered_set<BlockId> unique(accesses.begin(), accesses.end());
  EXPECT_GT(accesses.size(), unique.size());
}

TEST(StreamlineWorkload, SyntheticFlowTracesThroughHierarchy) {
  SyntheticVolume flow = make_flow_volume({48, 48, 48});
  Field3D u = rasterize(flow, 0), v = rasterize(flow, 1),
          w = rasterize(flow, 2);
  VectorSampler velocity = [&](const Vec3& p) -> std::optional<Vec3> {
    return Vec3{u.sample_normalized(p.x, p.y, p.z),
                v.sample_normalized(p.x, p.y, p.z),
                w.sample_normalized(p.x, p.y, p.z)};
  };

  BlockGrid grid({48, 48, 48}, {8, 8, 8});
  MemoryHierarchy hierarchy = MemoryHierarchy::paper_testbed(
      grid.block_count() * grid.nominal_block_bytes(), 0.5, PolicyKind::kLru,
      [&grid](BlockId id) { return grid.block_bytes(id); });

  std::vector<Vec3> seeds;
  for (double x : {-0.4, -0.2, 0.2, 0.4}) {
    for (double y : {-0.3, 0.3}) seeds.push_back({x, y, -0.5});
  }
  StreamlineSpec spec;
  spec.step = 0.02;
  spec.max_steps = 500;
  StreamlineWorkloadResult r =
      run_streamline_workload(grid, hierarchy, seeds, velocity, spec);
  EXPECT_EQ(r.lines, seeds.size());
  EXPECT_GT(r.total_accesses, seeds.size());  // lines cross blocks
  EXPECT_GT(r.unique_blocks, 4u);
  EXPECT_GT(r.io_time, 0.0);
  EXPECT_GE(r.fast_miss_rate, 0.0);
  EXPECT_LE(r.fast_miss_rate, 1.0);
}

TEST(StreamlineWorkload, SharedBlocksHitAcrossLines) {
  // Two seeds on the same vortex orbit touch the same blocks: the second
  // line must enjoy cache hits from the first.
  BlockGrid grid({32, 32, 32}, {8, 8, 8});
  MemoryHierarchy hierarchy = MemoryHierarchy::paper_testbed(
      grid.block_count() * grid.nominal_block_bytes(), 0.5, PolicyKind::kLru,
      [&grid](BlockId id) { return grid.block_bytes(id); });
  StreamlineSpec spec;
  spec.step = 0.02;
  spec.max_steps = 400;
  std::vector<Vec3> seeds{{0.5, 0, 0}, {-0.5, 0, 0}};  // same orbit
  StreamlineWorkloadResult r =
      run_streamline_workload(grid, hierarchy, seeds, vortex_flow(), spec);
  EXPECT_LT(r.fast_miss_rate, 0.6);  // second pass mostly hits
}

}  // namespace
}  // namespace vizcache
