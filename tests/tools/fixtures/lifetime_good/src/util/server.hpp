#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <thread>

namespace fix {

class ThreadPool {
 public:
  using Task = std::function<void()>;
  void submit(Task t);
  void shutdown();
};

// join-in-destructor pattern (b): the destructor transitively joins the
// loop thread and shuts the pool down before any sibling state dies.
class Server {
 public:
  ~Server();
  void start();
  void stop();
  void run();
  void flush(std::string* out);
  void reuse();
  void sync_work();
  std::string_view name() const { return name_; }

 private:
  std::thread loop_;
  std::string name_;
  ThreadPool pool_;
};

// join-in-destructor pattern (a): the pool is the last-declared field,
// so its own destructor joins the workers before any sibling dies.
class Prefetcher {
 public:
  void request();

 private:
  int counter_ = 0;
  ThreadPool pool_;
};

// binding a view field from a view parameter is the sanctioned pattern:
// the caller owns the bytes, the ctor never sees a temporary owner
class Wire {
 public:
  explicit Wire(std::string_view bytes) : bytes_(bytes) {}

 private:
  std::string_view bytes_;
};

}  // namespace fix
