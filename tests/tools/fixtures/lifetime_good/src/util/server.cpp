#include "util/server.hpp"

#include <utility>

namespace fix {

Server::~Server() { stop(); }

void Server::stop() {
  if (loop_.joinable()) loop_.join();
  pool_.shutdown();
}

void Server::start() {
  loop_ = std::thread([this] { run(); });
  pool_.submit([this] { run(); });
}

void Server::run() {
  int frame = 0;
  pool_.submit([frame] { (void)frame; });
}

// a pointer capture that outlives the frame needs a written reason
void Server::flush(std::string* out) {
  // analyze: allow(escaping-ref-capture): the caller joins the pool via
  // stop() before 'out' leaves scope in every call path (frame barrier).
  pool_.submit([out] { out->clear(); });
}

void Server::reuse() {
  std::string s = "a";
  name_ = std::move(s);
  s = "b";
  (void)s.size();
}

void Server::sync_work() {
  std::thread t([this] { run(); });
  t.join();
}

void Prefetcher::request() {
  int id = 7;
  pool_.submit([this, id] { counter_ += id; });
}

}  // namespace fix
