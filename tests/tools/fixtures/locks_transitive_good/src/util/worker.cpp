#include "util/worker.hpp"

namespace fx {

void Worker::locker() {
  MutexLock lock(other_mutex_);
}

void Worker::helper() { locker(); }

// Clean twin of locks_transitive_bad: the indirect acquisition and the
// indirect sleep both happen after the MutexLock scope has closed.
void Worker::outer() {
  {
    MutexLock lock(mutex_);
  }
  helper();
}

void Worker::napper() { std::this_thread::sleep_for(nap_quantum()); }

void Worker::pause_outer() {
  {
    MutexLock lock(mutex_);
  }
  napper();
}

}  // namespace fx
