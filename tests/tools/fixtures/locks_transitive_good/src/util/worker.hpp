#pragma once
#include "util/annotated_mutex.hpp"

namespace fx {

class Worker {
 public:
  void outer() EXCLUDES(mutex_);
  void pause_outer() EXCLUDES(mutex_);

 private:
  void helper();
  void locker() EXCLUDES(other_mutex_);
  void napper();

  mutable Mutex mutex_;
  mutable Mutex other_mutex_;
};

}  // namespace fx
