#pragma once
// Fixture stub (skipped by the analyzer's IMPL_ALLOWLIST).
