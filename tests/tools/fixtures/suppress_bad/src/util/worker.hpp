#pragma once
#include "util/annotated_mutex.hpp"

namespace fx {

class Worker {
 private:
  mutable Mutex mutex_;
  int counter_ GUARDED_BY(mutex_) = 0;
  // analyze: allow(lock-unguarded-field)
  int settings = 0;
};

}  // namespace fx
