#pragma once
#include "util/annotated_mutex.hpp"

namespace fx {

class Worker {
 private:
  mutable Mutex mutex_;
  // analyze: allow(lock-unguarded-field): stale — the field is guarded.
  int counter_ GUARDED_BY(mutex_) = 0;
};

}  // namespace fx
