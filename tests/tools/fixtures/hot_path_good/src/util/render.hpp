#pragma once

namespace fx {

int helper_sum(int n);
void render_row(int n);

}  // namespace fx
