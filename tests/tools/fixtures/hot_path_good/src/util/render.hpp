#pragma once

namespace fx {

int helper_sum(int n);
void render_row(int n);
void render_packet(int n);

}  // namespace fx
