#include "util/render.hpp"

#include <vector>

namespace fx {

// Clean twin of hot_path_bad: arithmetic only on the hot path, plus one
// justified allocation proving the suppression mechanism covers hot-path
// checks too.
int helper_sum(int n) {
  std::vector<int> scratch;
  scratch.reserve(static_cast<unsigned>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) {
    // analyze: allow(hot-path-alloc): fixture — appends within the
    // capacity reserved right above.
    scratch.push_back(i);
  }
  int acc = 0;
  for (int s : scratch) acc += s;
  return acc;
}

void render_row(int n) { helper_sum(n); }

// Second registry entry: the packet twin shares the vetted helper, so a
// multi-entry registry stays clean end to end.
void render_packet(int n) { helper_sum(n * 8); }

}  // namespace fx
