#pragma once
#include "util/annotated_mutex.hpp"

namespace fx {

class Alpha;

class Beta {
 public:
  void poke(Alpha& peer) EXCLUDES(mutex_);
  void touch() EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
};

class Alpha {
 public:
  void poke(Beta& peer) EXCLUDES(mutex_);
  void touch() EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
};

}  // namespace fx
