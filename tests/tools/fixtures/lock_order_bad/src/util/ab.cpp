#include "util/ab.hpp"

namespace fx {

void Alpha::touch() { MutexLock lock(mutex_); }
void Beta::touch() { MutexLock lock(mutex_); }

void Alpha::poke(Beta& peer) {
  MutexLock lock(mutex_);
  // analyze: allow(lock-held-call): fixture — the lock-order cycle is the
  // subject under test; the nested acquisition itself is deliberate.
  peer.touch();  // seeded: edge Alpha::mutex_ -> Beta::mutex_ (line 12)
}

void Beta::poke(Alpha& peer) {
  MutexLock lock(mutex_);
  // analyze: allow(lock-held-call): fixture — the lock-order cycle is the
  // subject under test; the nested acquisition itself is deliberate.
  peer.touch();  // seeded: edge Beta::mutex_ -> Alpha::mutex_ (line 19)
}

}  // namespace fx
