#pragma once

namespace fix {

// analyze: allow(use-after-move): nothing here moves anything anymore
inline int answer() { return 42; }

}  // namespace fix
