#pragma once
#include "util/annotated_mutex.hpp"

namespace fx {

class Worker {
 public:
  void submit() EXCLUDES(mutex_);
  void run() EXCLUDES(mutex_);
  void wait_done() EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  int counter_ GUARDED_BY(mutex_) = 0;
  const int quantum_ = 10;
};

}  // namespace fx
