#include "util/worker.hpp"

namespace fx {

void Worker::submit() {
  MutexLock lock(mutex_);
  ++counter_;
}

void Worker::run() {
  {
    MutexLock lock(mutex_);
    ++counter_;
  }
  submit();  // clean: the lock scope above has already closed
}

void Worker::wait_done() {
  MutexLock lock(mutex_);
  cv_.wait(mutex_);  // clean: waiting on the held mutex is sanctioned
}

}  // namespace fx
