#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <thread>

namespace fix {

class ThreadPool {
 public:
  using Task = std::function<void()>;
  void submit(Task t);
  void shutdown();
};

class Runner {
 public:
  void go();
  void spawn();
  void enqueue(ThreadPool::Task t);
  std::string_view bad_view();
  const std::string& bad_ref();
  int use_after();

 private:
  ThreadPool pool_;
  std::thread worker_;
  int counter_ = 0;
};

class Labeled {
 public:
  explicit Labeled(std::string name) : view_(name) {}

 private:
  std::string_view view_;
};

}  // namespace fix
