#include "util/defer.hpp"

#include <string>
#include <utility>

namespace fix {

void consume(std::string s);

void Runner::enqueue(ThreadPool::Task t) { pool_.submit(std::move(t)); }

void Runner::go() {
  int local = 0;
  int* p = &counter_;
  pool_.submit([this] { counter_++; });
  pool_.submit([&local] { local++; });
  pool_.submit([&] { counter_ = local; });
  enqueue([&local] { local++; });
  pool_.submit([p] { *p = 1; });
}

void Runner::spawn() {
  worker_ = std::thread([this] { go(); });
}

std::string_view Runner::bad_view() {
  std::string s = "tmp";
  return s;
}

const std::string& Runner::bad_ref() {
  std::string s = "tmp";
  return s;
}

int Runner::use_after() {
  std::string s = "x";
  consume(std::move(s));
  return static_cast<int>(s.size());
}

}  // namespace fix
