#include "util/worker.hpp"

namespace fx {

void Worker::submit() {
  MutexLock lock(mutex_);
  ++counter_;
}

void Worker::run() {
  MutexLock lock(mutex_);
  submit();  // seeded: lock-held-call (line 12)
}

void Worker::pause() {
  MutexLock lock(mutex_);
  std::this_thread::sleep_for(pause_quantum());  // seeded: lock-blocking (17)
}

void Worker::wait_done() {
  MutexLock lock(mutex_);
  cv_.wait(other_mutex_);  // seeded: lock-foreign-wait (line 22)
}

}  // namespace fx
